//! # dmhpc — job scheduling for HPC systems with disaggregated memory
//!
//! Facade crate: re-exports the whole workspace behind one dependency and
//! provides a [`prelude`] for examples and downstream users.
//!
//! See `README.md` for the architecture overview and `DESIGN.md` for the
//! system inventory and experiment index.

#![forbid(unsafe_code)]

pub use dmhpc_des as des;
pub use dmhpc_metrics as metrics;
pub use dmhpc_platform as platform;
pub use dmhpc_sched as sched;
pub use dmhpc_sim as sim;
pub use dmhpc_workload as workload;

/// Everything a typical simulation script needs, in one import.
pub mod prelude {
    pub use dmhpc_des::queue::{BinaryHeapQueue, CalendarQueue, EventQueue};
    pub use dmhpc_des::rng::Pcg64;
    pub use dmhpc_des::stats::{CdfCollector, OnlineStats, P2Quantile, StepSeries, TimeWeighted};
    pub use dmhpc_des::time::{SimDuration, SimTime};
    pub use dmhpc_metrics::{ClassBreakdown, JobClass, SimReport};
    pub use dmhpc_platform::{
        Cluster, ClusterSpec, MemoryPool, MiB, NodeSpec, PoolTopology, SlowdownModel,
    };
    pub use dmhpc_sched::{
        BackfillPolicy, MemoryPolicy, OrderPolicy, SchedulerBuilder, SchedulerConfig,
    };
    pub use dmhpc_sim::{SimConfig, Simulation};
    pub use dmhpc_workload::{
        Job, JobId, SyntheticSpec, SystemPreset, Workload, WorkloadBuilder,
    };
}
