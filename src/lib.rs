//! # dmhpc — job scheduling for HPC systems with disaggregated memory
//!
//! Facade crate: re-exports the whole workspace behind one dependency and
//! provides a [`prelude`] for examples and downstream users.
//!
//! ## The experiment API
//!
//! The public surface revolves around three types:
//!
//! * [`sim::ExperimentSpec`] — a declarative, JSON-(de)serializable
//!   description of a run grid: workload source (calibrated preset or
//!   fixed trace), labelled cluster shapes, offered-load and seed axes,
//!   and scheduler configurations. Built fluently:
//!
//!   ```
//!   use dmhpc::prelude::*;
//!
//!   let spec = ExperimentSpec::builder("pool-sweep")
//!       .preset(SystemPreset::MidCluster, 500)
//!       .pools([
//!           PoolTopology::None,
//!           PoolTopology::PerRack { mib_per_rack: 512 * 1024 },
//!       ])
//!       .load(0.9)
//!       .seed(42)
//!       .policy_suite(SlowdownModel::Saturating { penalty: 1.5, curvature: 3.0 })
//!       .build()?;
//!   assert_eq!(spec.cell_count(), 2 * 4);
//!   # Ok::<(), dmhpc::SimError>(())
//!   ```
//!
//! * [`sim::ExperimentRunner`] — compiles the grid into concrete cells and
//!   executes them across threads with deterministic, grid-ordered
//!   results (per-cell trace hashes are identical at any thread count).
//!
//! * [`sim::ExperimentResults`] — the labelled result table: per-cell
//!   [`sim::SimOutput`]s plus CSV/JSON export for notebooks.
//!
//! Construction is fallible end to end: every ill-formed cluster shape,
//! slowdown model, or grid axis surfaces as the single [`SimError`] enum
//! before any simulation starts. Scheduling behaviour is pluggable through
//! the [`sched::Ordering`] / [`sched::Placement`] traits — the built-in
//! [`sched::OrderPolicy`] / [`sched::MemoryPolicy`] enums are just the
//! bundled implementations (see [`sim::Simulation::with_policies`]).
//!
//! Large grids scale through two further pieces: a content-addressed
//! [`sim::ResultCache`] (attach via [`sim::ExperimentRunner::cache_dir`];
//! unchanged cells load bit-identically instead of simulating, so edited
//! specs re-execute only changed cells) and deterministic [`sim::Shard`]
//! partitioning ([`sim::ExperimentRunner::run_shard`] +
//! [`sim::ExperimentResults::merge`]) for fanning a grid out across
//! processes or CI jobs.
//!
//! Availability is a grid dimension too: a [`sim::FaultSpec`] (node
//! failures, maintenance drains, pool degradations — fixed schedules or
//! seeded generators, with resubmit or checkpoint/restart handling of
//! interrupted jobs) crosses into a grid via
//! `ExperimentSpec::builder(..).fault(..)`. Fault-free cells hash and
//! cache exactly as before, so adding the axis never invalidates results.
//!
//! Runs are *observed* through a typed event stream ([`sim::observe`]):
//! the engine emits a [`sim::observe::SimEvent`] per state change and all
//! metrics are built-in [`sim::observe::Observer`]s, with pluggable extra
//! consumers — a constant-memory JSONL [`sim::observe::TraceSink`], a
//! cadence-sampled [`sim::observe::SampledSeriesProbe`], progress
//! heartbeats — attached per run through one [`sim::ObserverSet`]
//! ([`sim::Simulation::run_with`]) or
//! per grid cell (`ExperimentRunner::observe` / `trace_dir`,
//! `repro … --trace-out`). Observers are hash-neutral: they can never
//! change a result, a trace hash, or a cache entry.
//!
//! For one-off runs without a grid, [`sim::Simulation`] is still the
//! entry point: `Simulation::new(SimConfig::new(cluster, scheduler))?`.
//!
//! See `README.md` for the architecture overview and `DESIGN.md` for the
//! system inventory and experiment index.

#![forbid(unsafe_code)]

pub use dmhpc_des as des;
pub use dmhpc_metrics as metrics;
pub use dmhpc_platform as platform;
pub use dmhpc_sched as sched;
pub use dmhpc_sim as sim;
pub use dmhpc_workload as workload;

/// The workspace's single public error enum (re-exported from
/// [`sim::SimError`]): platform spec problems, malformed experiment grids,
/// and experiment-spec parse failures.
pub use dmhpc_sim::SimError;

/// Everything a typical simulation script needs, in one import.
pub mod prelude {
    pub use dmhpc_des::queue::{BinaryHeapQueue, CalendarQueue, EventQueue};
    pub use dmhpc_des::rng::Pcg64;
    pub use dmhpc_des::stats::{CdfCollector, OnlineStats, P2Quantile, StepSeries, TimeWeighted};
    pub use dmhpc_des::time::{SimDuration, SimTime};
    pub use dmhpc_metrics::{ClassBreakdown, FaultSummary, JobClass, SimReport};
    pub use dmhpc_platform::{
        Cluster, ClusterSpec, MemoryPool, MiB, NodeSpec, NodeState, PlatformError, PoolTopology,
        SlowdownModel,
    };
    pub use dmhpc_sched::{
        AdmissionPolicy, AdmissionVerdict, BackfillPolicy, MemoryPolicy, MetaPolicy,
        MetaPolicyKind, OrderPolicy, Ordering, PassDirective, Placement, PreemptPolicy,
        RejectReason, ReleaseIndex, ReleaseView, SchedContext, SchedulerBuilder, SchedulerConfig,
        SiteSnapshot,
    };
    pub use dmhpc_sim::observe::{
        EventCounter, Observer, ObserverFactory, ProgressObserver, RunLabel, SampleRow,
        SampledSeriesProbe, SimEvent, SketchStatsObserver, TraceDir, TraceSink,
    };
    pub use dmhpc_sim::{
        CellKey, CellResult, EventQueueKind, ExperimentResults, ExperimentRunner, ExperimentSpec,
        FaultAction, FaultGenerator, FaultSpec, FleetOutput, FleetSimulation, FleetSpec,
        InterruptPolicy, ObserverSet, ObserverSpec, ResultCache, RunStats, ServiceLoad,
        ServiceSpec, Shard, SimConfig, SimError, SimOutput, Simulation, SiteSpec, WorkloadSource,
    };
    pub use dmhpc_workload::source::{ArrivalProcess, JobSource};
    pub use dmhpc_workload::{
        Job, JobId, Slo, SloModel, SyntheticSpec, SystemPreset, Workload, WorkloadBuilder,
        WorkloadError,
    };
}
