//! Availability study: what do node failures, maintenance drains, and
//! pool degradation cost a disaggregated-memory scheduler?
//!
//! Crosses one policy pair (local-only baseline vs pool best-fit) with a
//! fault axis of four scenarios:
//!
//! 1. **no-faults** — the healthy-machine reference (hashes and caches
//!    exactly like a grid without the axis);
//! 2. **failures/resubmit** — Poisson node failures, interrupted jobs
//!    restart from scratch;
//! 3. **failures/checkpoint** — the same failure process, but completed
//!    work survives at a fixed restore overhead;
//! 4. **drains+pool-degradation** — planned maintenance windows plus a
//!    periodic pool-bandwidth degradation that evicts borrowers.
//!
//! and prints, per cell: completed/failed counts, interruptions, rework
//! time, mean wait, and plain vs availability-weighted utilization (the
//! latter divides by *in-service* node-seconds, so it shows how busy the
//! surviving machine actually was).
//!
//! ```text
//! cargo run --release --example failure_study
//! ```

use dmhpc::prelude::*;

fn main() -> Result<(), SimError> {
    // Fault processes share one clock scale: mean time between node
    // failures ~4 h, repairs ~1 h, a drain window every 12 h, a pool
    // degradation to 50 % bandwidth every 16 h.
    let failures = {
        let mut g = FaultGenerator::quiet(7, 200_000);
        g.node_mtbf_s = 14_400;
        g.node_repair_s = 3_600;
        g
    };
    let maintenance = {
        let mut g = FaultGenerator::quiet(7, 200_000);
        g.drain_interval_s = 43_200;
        g.drain_duration_s = 7_200;
        g.pool_degrade_interval_s = 57_600;
        g.pool_degrade_duration_s = 14_400;
        g.pool_degrade_factor = 0.5;
        g
    };

    let spec = ExperimentSpec::builder("failure-study")
        .preset(SystemPreset::MidCluster, 1000)
        .pool(PoolTopology::PerRack {
            mib_per_rack: 512 * 1024,
        })
        .load(0.9)
        .seed(42)
        .scheduler(
            SchedulerBuilder::new()
                .memory(MemoryPolicy::LocalOnly)
                .slowdown(SlowdownModel::Saturating {
                    penalty: 1.5,
                    curvature: 3.0,
                })
                .build(),
        )
        .scheduler(
            SchedulerBuilder::new()
                .memory(MemoryPolicy::PoolBestFit)
                .slowdown(SlowdownModel::Saturating {
                    penalty: 1.5,
                    curvature: 3.0,
                })
                .build(),
        )
        .fault(FaultSpec::none())
        .fault(
            FaultSpec::none()
                .with_generator(failures)
                .with_interrupt(InterruptPolicy::Resubmit)
                .with_max_resubmits(2),
        )
        .fault(
            FaultSpec::none()
                .with_generator(failures)
                .with_interrupt(InterruptPolicy::Checkpoint { overhead_s: 300 })
                .with_max_resubmits(2),
        )
        .fault(
            FaultSpec::none()
                .with_generator(maintenance)
                .with_interrupt(InterruptPolicy::Checkpoint { overhead_s: 300 }),
        )
        .build()?;

    println!("failure study: {} cells\n", spec.cell_count());
    let results = ExperimentRunner::new().run(&spec)?;

    println!(
        "{:<38} {:<15} {:>5} {:>5} {:>6} {:>9} {:>9} {:>6} {:>6}",
        "fault scenario", "policy", "done", "fail", "intr", "rework_h", "wait_s", "util", "avutil"
    );
    for cell in results.cells() {
        let r = &cell.output.report;
        println!(
            "{:<38} {:<15} {:>5} {:>5} {:>6} {:>9.1} {:>9.0} {:>6.3} {:>6.3}",
            cell.key.fault.as_deref().unwrap_or("no-faults"),
            cell.key
                .scheduler
                .split('+')
                .nth(2)
                .unwrap_or(&cell.key.scheduler),
            r.completed,
            r.failed,
            r.interruptions,
            r.rework_s / 3600.0,
            r.mean_wait_s,
            r.node_util,
            r.avail_util,
        );
    }

    // Headline: checkpoint/restart vs resubmit-from-scratch under the
    // same failure process. Match the exact scenario labels — the
    // maintenance scenario also checkpoints, and must not be summed in.
    let rework = |label: &str| -> f64 {
        results
            .cells()
            .iter()
            .filter(|c| c.key.fault.as_deref() == Some(label))
            .map(|c| c.output.faults.rework_s)
            .sum()
    };
    let (resub, ckpt) = (
        rework("gen7-mtbf14400-resub-r2"),
        rework("gen7-mtbf14400-ckpt300-r2"),
    );
    println!(
        "\nrework under failures: resubmit {:.1} h vs checkpoint {:.1} h",
        resub / 3600.0,
        ckpt / 3600.0
    );
    Ok(())
}
