//! Trace study: observe a faulty run through the streaming observation
//! API instead of post-hoc series plumbing.
//!
//! Runs one cell (mid-size machine, pool best-fit, contention slowdown)
//! under a node-failure storm with two observers attached:
//!
//! * a [`TraceSink`] streaming every typed event to
//!   `results/trace_study.jsonl` in constant memory — the full
//!   submit/start/interrupt/finish story of every job, greppable and
//!   notebook-ready;
//! * a [`SampledSeriesProbe`] sampling system state hourly — the bounded
//!   per-phase timeline this example prints.
//!
//! Observers are hash-neutral: the run is bit-identical with or without
//! them (asserted at the end against an unobserved twin).
//!
//! ```text
//! cargo run --release --example trace_study
//! ```

use dmhpc::prelude::*;

fn main() -> Result<(), SimError> {
    // One faulty cell: Poisson node failures (~MTBF 2 h, repair 30 min)
    // with checkpoint/restart.
    let failures = {
        let mut g = FaultGenerator::quiet(11, 150_000);
        g.node_mtbf_s = 7_200;
        g.node_repair_s = 1_800;
        g
    };
    let faults = FaultSpec::none()
        .with_generator(failures)
        .with_interrupt(InterruptPolicy::Checkpoint { overhead_s: 300 })
        .with_max_resubmits(2);

    let (racks, npr, cores, mem) = SystemPreset::MidCluster.machine();
    let cluster = ClusterSpec::new(
        racks,
        npr,
        NodeSpec::new(cores, mem),
        PoolTopology::PerRack {
            mib_per_rack: 512 * 1024,
        },
    );
    let sched = SchedulerBuilder::new()
        .memory(MemoryPolicy::PoolBestFit)
        .slowdown(SlowdownModel::Contention {
            penalty: 1.5,
            gamma: 1.0,
        })
        .build();
    let workload = SystemPreset::MidCluster.synthetic_spec(800).generate(42);
    let sim = Simulation::new(SimConfig::new(cluster, sched))?.with_fault_spec(faults)?;

    // Attach the observers and run. The callers own them, so their state
    // (trace file handle, sample rows) is readable after the run.
    std::fs::create_dir_all("results").ok();
    let mut trace = TraceSink::create("results/trace_study.jsonl")?;
    let mut probe = SampledSeriesProbe::new(SimDuration::from_secs(3600));
    let mut counts = EventCounter::new();
    let out = sim.run_with(
        &workload,
        ObserverSet::new()
            .watch(&mut trace)
            .watch(&mut probe)
            .watch(&mut counts),
    );
    let events = trace.finish()?;

    // Per-phase timeline, straight from the probe — no series plumbing.
    println!("hourly timeline ({} samples):", probe.samples().len());
    println!(
        "{:>5} {:>7} {:>8} {:>7} {:>9} {:>9}",
        "hour", "queued", "running", "busy", "dram_gib", "pool_gib"
    );
    for row in probe.samples().iter().step_by(4) {
        println!(
            "{:>5.0} {:>7} {:>8} {:>7} {:>9} {:>9}",
            row.at.as_hours_f64(),
            row.queued,
            row.running,
            row.nodes_busy,
            row.dram_mib / 1024,
            row.pool_mib / 1024,
        );
    }

    println!("\nevent stream ({events} events -> results/trace_study.jsonl):");
    for (kind, n) in counts.counts() {
        println!("  {kind:<12} {n}");
    }
    println!(
        "\nrun: {} completed, {} failed, {} interruptions, rework {:.1} h, \
         avail_util {:.3} (raw {:.3})",
        out.report.completed,
        out.report.failed,
        out.faults.interruptions,
        out.faults.rework_s / 3600.0,
        out.faults.avail_util,
        out.report.node_util,
    );

    // Observers never perturb the run: an unobserved twin is bit-identical.
    let twin = Simulation::new(SimConfig::new(cluster, sched))?
        .with_fault_spec(
            FaultSpec::none()
                .with_generator(failures)
                .with_interrupt(InterruptPolicy::Checkpoint { overhead_s: 300 })
                .with_max_resubmits(2),
        )?
        .run(&workload);
    assert_eq!(
        out.trace_hash, twin.trace_hash,
        "observation is free of side effects"
    );
    println!(
        "\nobserved and unobserved runs share trace hash {:016x}",
        out.trace_hash
    );
    Ok(())
}
