//! Grid scaling: content-addressed caching, sharding, and incremental
//! re-runs.
//!
//! Runs a policy grid three ways and prints what each cost:
//!
//! 1. **Sharded cold run** — two "processes" each simulate a disjoint
//!    half of the grid into one shared cache, then a merge recombines
//!    them (zero extra simulations).
//! 2. **Warm re-run** — the unchanged spec replays entirely from cache.
//! 3. **Incremental re-run** — one extra seed is added; only the new
//!    cells simulate, everything else is a cache hit.
//!
//! ```text
//! cargo run --release --example cached_grid
//! ```

use dmhpc::prelude::*;
use dmhpc::sim::ExperimentBuilder;
use std::time::Instant;

fn main() -> Result<(), SimError> {
    let cache_dir = std::env::temp_dir().join(format!("dmhpc-cached-grid-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_dir);

    let spec = ExperimentSpec::builder("cached-grid")
        .preset(SystemPreset::MidCluster, 600)
        .pools([
            PoolTopology::None,
            PoolTopology::PerRack {
                mib_per_rack: 512 * 1024,
            },
        ])
        .load(0.9)
        .seeds([41, 42])
        .policy_suite(SlowdownModel::Saturating {
            penalty: 1.5,
            curvature: 3.0,
        })
        .build()?;
    println!(
        "grid: {} cells, cache at {}\n",
        spec.cell_count(),
        cache_dir.display()
    );

    // 1. Sharded cold run: each shard is a disjoint slice; in CI these
    //    would be separate jobs sharing the cache directory (or, without
    //    shared storage, each shard's results merge in memory).
    let mut parts = Vec::new();
    for i in 0..2 {
        let t = Instant::now();
        let runner = ExperimentRunner::new().cache_dir(&cache_dir)?;
        let part = runner.run_shard(&spec, Shard::new(i, 2)?)?;
        println!(
            "shard {i}/2: {} cells simulated in {:.2}s",
            part.stats().simulated,
            t.elapsed().as_secs_f64()
        );
        parts.push(part);
    }
    let merged = ExperimentResults::merge(&spec, parts)?;
    println!("merged:    {} cells, grid-ordered\n", merged.len());

    // 2. Warm re-run: nothing changed, nothing simulates, and the export
    //    is byte-identical to a cold run.
    let t = Instant::now();
    let warm = ExperimentRunner::new().cache_dir(&cache_dir)?.run(&spec)?;
    assert_eq!(warm.stats().simulated, 0);
    assert_eq!(warm.to_csv(), merged.to_csv());
    println!(
        "warm run:  {} cache hits, 0 simulated, {:.2}s (byte-identical export)\n",
        warm.stats().cache_hits,
        t.elapsed().as_secs_f64()
    );

    // 3. Incremental re-run: add a seed; only its cells are new content.
    let edited = ExperimentBuilder::from_spec(spec.clone())
        .seed(43)
        .build()?;
    let t = Instant::now();
    let incr = ExperimentRunner::new()
        .cache_dir(&cache_dir)?
        .run(&edited)?;
    println!(
        "edited:    {} new cells simulated, {} unchanged cells from cache, {:.2}s",
        incr.stats().simulated,
        incr.stats().cache_hits,
        t.elapsed().as_secs_f64()
    );

    // Who waits how long, from the merged table.
    println!("\n{:<44} {:>12} {:>10}", "cell", "mean_wait_s", "p95_bsld");
    for cell in warm.cells() {
        println!(
            "{:<44} {:>12.0} {:>10.2}",
            cell.key.label(),
            cell.output.report.mean_wait_s,
            cell.output.report.p95_bsld,
        );
    }

    let _ = std::fs::remove_dir_all(&cache_dir);
    Ok(())
}
