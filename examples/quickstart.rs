//! Quickstart: simulate one day of jobs on a disaggregated-memory cluster.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use dmhpc::prelude::*;

fn main() {
    // 1. A machine: 4 racks × 32 nodes (64 cores, 256 GiB DRAM each), with
    //    a 512 GiB CXL memory pool per rack.
    let cluster = ClusterSpec::new(
        4,
        32,
        NodeSpec::new(64, 256 * 1024),
        PoolTopology::PerRack {
            mib_per_rack: 512 * 1024,
        },
    );

    // 2. A workload: 500 jobs from the calibrated mid-cluster model. Most
    //    jobs use a small slice of node DRAM; a heavy tail needs more per
    //    node than the node has.
    let workload = SystemPreset::MidCluster.synthetic_spec(500).generate(7);
    println!(
        "workload: {} jobs, {:.1} h span, offered load {:.2}",
        workload.len(),
        workload.arrival_span().as_hours_f64(),
        workload.offered_load(cluster.total_nodes()),
    );

    // 3. A scheduler: FCFS order, EASY backfilling against the two-resource
    //    availability profile, and the slowdown-aware memory policy that
    //    borrows pool memory when the predicted dilation is worth the saved
    //    nodes.
    let scheduler = SchedulerBuilder::new()
        .order(OrderPolicy::Fcfs)
        .backfill(BackfillPolicy::Easy)
        .memory(MemoryPolicy::SlowdownAware { max_dilation: 1.35 })
        .slowdown(SlowdownModel::Saturating {
            penalty: 1.5,
            curvature: 3.0,
        })
        .build();

    // 4. Run.
    let sim = Simulation::new(SimConfig::new(cluster, *scheduler.config()));
    let out = sim.run(&workload);

    // 5. Read the report.
    let r = &out.report;
    println!("policy:            {}", r.label);
    println!("completed/killed:  {}/{}", r.completed, r.killed);
    println!("mean wait:         {:.0} s", r.mean_wait_s);
    println!("P95 bounded sld:   {:.2}", r.p95_bsld);
    println!("node utilization:  {:.1}%", 100.0 * r.node_util);
    println!("pool utilization:  {:.1}%", 100.0 * r.pool_util);
    println!(
        "borrowers:         {:.1}% of jobs (mean dilation {:.3})",
        100.0 * r.borrowed_fraction,
        r.mean_dilation_borrowers.max(1.0),
    );
    println!(
        "simulated {} events in {} scheduling passes",
        out.events_processed, out.passes
    );
}
