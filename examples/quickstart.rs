//! Quickstart: the minimal walkthrough of the experiment API.
//!
//! Declare a grid (machine × pools × load × seed × policies), run it, read
//! the table. Everything fallible happens before the first simulation
//! starts, as one typed [`SimError`].
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use dmhpc::prelude::*;

fn main() -> Result<(), SimError> {
    // 1. Declare the experiment: the calibrated mid-size system (256 nodes
    //    × 64 cores × 256 GiB DRAM), 500 jobs at offered load 0.9, with and
    //    without a 512 GiB CXL pool per rack, under the paper's four-way
    //    policy suite.
    let spec = ExperimentSpec::builder("quickstart")
        .preset(SystemPreset::MidCluster, 500)
        .pools([
            PoolTopology::None,
            PoolTopology::PerRack {
                mib_per_rack: 512 * 1024,
            },
        ])
        .load(0.9)
        .seed(7)
        .policy_suite(SlowdownModel::Saturating {
            penalty: 1.5,
            curvature: 3.0,
        })
        .build()?; // every grid problem surfaces here, typed

    println!(
        "experiment {:?}: {} cells (2 pools × 4 policies)\n",
        spec.name,
        spec.cell_count()
    );

    // 2. Run the whole grid in parallel. Results come back in grid order,
    //    bit-identical no matter how many threads execute them.
    let results = ExperimentRunner::new().run(&spec)?;

    // 3. Read the table.
    println!(
        "{:<12} {:<28} {:>10} {:>9} {:>9} {:>9}",
        "pool", "policy", "mean_w_s", "p95_bsld", "node_ut", "borrow%"
    );
    for cell in results.cells() {
        let r = &cell.output.report;
        println!(
            "{:<12} {:<28} {:>10.0} {:>9.2} {:>9.3} {:>8.1}%",
            cell.key.cluster,
            cell.output.report.label,
            r.mean_wait_s,
            r.p95_bsld,
            r.node_util,
            100.0 * r.borrowed_fraction,
        );
    }

    // 4. The same spec is a JSON document — check it into the repo next to
    //    the figures it reproduces, reload it with
    //    `ExperimentSpec::from_json`.
    println!("\nspec as JSON (first 5 lines):");
    for line in spec.to_json()?.lines().take(5) {
        println!("  {line}");
    }
    println!("  ...");

    // 5. Machine-readable results for notebooks: results.to_csv() /
    //    results.to_json().
    std::fs::create_dir_all("results").ok();
    std::fs::write("results/quickstart.csv", results.to_csv()).expect("write CSV");
    println!("\nwrote results/quickstart.csv");
    Ok(())
}
