//! Deadline study: does deadline-aware ordering buy SLO attainment?
//!
//! FCFS treats every queued job alike; a service operator cares which
//! jobs are about to blow their deadline. This example runs the same
//! streaming arrival process — same machine, same utilization, same
//! seeds, same per-job budget-factor deadlines (deadline = arrival +
//! factor × walltime, factor uniform in [1.5, 4)) — under four queue
//! orderings and compares what fraction of jobs met the one-hour wait
//! SLO:
//!
//! * `fcfs` — arrival order, the baseline;
//! * `edf` — earliest stamped deadline first;
//! * `llf` — least laxity first (deadline minus remaining slack, so a
//!   long job with a near deadline outranks a short one);
//! * `batch-budget` — FCFS order, but each scheduling pass holds its
//!   start decisions until a latency budget forces release.
//!
//! Only the ordering policy differs between cells, so any attainment gap
//! is the ordering's doing. Across seeds, EDF and least-laxity strictly
//! beat FCFS: pulling deadline-critical jobs forward costs the
//! deadline-rich jobs slack they can afford.
//!
//! ```text
//! cargo run --release --example deadline_study
//! ```

use dmhpc::prelude::*;

fn main() -> Result<(), SimError> {
    let seeds = [1_u64, 2, 3];
    let orders = [
        OrderPolicy::Fcfs,
        OrderPolicy::Edf,
        OrderPolicy::LeastLaxity,
        OrderPolicy::BatchBudget { hold_s: 60.0 },
    ];
    let mut builder = ExperimentSpec::builder("deadline-study")
        .preset(SystemPreset::HighThroughput, 1)
        .pool(PoolTopology::None)
        .seeds(seeds)
        .service(
            ServiceSpec::open(SystemPreset::HighThroughput)
                .with_utilization(0.9)
                .with_horizon_jobs(4_000)
                .with_warmup_secs(3_600)
                .with_slo_wait_secs(3_600.0)
                .with_slo_budget_factor(1.5, 4.0),
        );
    for &order in &orders {
        builder = builder.scheduler(
            SchedulerBuilder::new()
                .order(order)
                .slowdown(SlowdownModel::Saturating {
                    penalty: 1.5,
                    curvature: 3.0,
                })
                .build(),
        );
    }
    let spec = builder.build()?;

    println!(
        "deadline study: {} cells ({} seeds × {} orderings)\n",
        spec.cell_count(),
        seeds.len(),
        orders.len()
    );
    let results = ExperimentRunner::new().run(&spec)?;

    println!(
        "{:>6} {:>14} {:>9} {:>12} {:>10} {:>10}",
        "seed", "order", "measured", "p99_wait_s", "slo_1h", "node_util"
    );
    // (order name → attainments across seeds), in sweep order.
    let mut by_order: Vec<(&'static str, Vec<f64>)> =
        orders.iter().map(|o| (o.name(), Vec::new())).collect();
    for cell in results.cells() {
        let svc = cell
            .output
            .service
            .expect("open cells report a service summary");
        let attained = cell
            .slo_attainment()
            .expect("cells with a wait SLO report attainment");
        println!(
            "{:>6} {:>14} {:>9} {:>12.0} {:>9.1}% {:>10.3}",
            cell.key.seed.expect("preset grids carry a seed"),
            cell.config.scheduler.order.name(),
            svc.observed,
            svc.p99_wait_s,
            100.0 * attained,
            cell.output.report.node_util,
        );
        let slot = by_order
            .iter_mut()
            .find(|(name, _)| *name == cell.config.scheduler.order.name())
            .expect("every cell's ordering is in the sweep");
        slot.1.push(attained);
    }

    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let fcfs = mean(&by_order[0].1);
    println!("\nmean SLO attainment over {} seeds:", seeds.len());
    for (name, attained) in &by_order {
        let m = mean(attained);
        println!(
            "  {:>14}: {:>5.1}%  ({:+.1} pts vs fcfs)",
            name,
            100.0 * m,
            100.0 * (m - fcfs)
        );
    }

    let edf = mean(&by_order[1].1);
    let llf = mean(&by_order[2].1);
    assert!(
        edf > fcfs && llf > fcfs,
        "deadline-aware ordering should beat FCFS on SLO attainment \
         (fcfs {fcfs:.3}, edf {edf:.3}, llf {llf:.3})"
    );
    println!(
        "\ndeadline-aware ordering wins: edf {:+.1} pts, llf {:+.1} pts over fcfs \
         at identical offered load.",
        100.0 * (edf - fcfs),
        100.0 * (llf - fcfs)
    );
    Ok(())
}
