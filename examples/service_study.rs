//! Open-system service study: where is the knee of the latency curve?
//!
//! A closed batch answers "how long does this job list take"; a service
//! study answers the operator's question instead — *how hard can I drive
//! the machine before tail latency explodes?* This example sweeps the
//! target utilization of a streaming Poisson arrival process over one
//! machine and policy, measuring each operating point in steady state:
//!
//! * arrivals come from a seeded [`ServiceSpec`] stream (no job list —
//!   the engine pulls each arrival on demand, one in flight);
//! * per-job metrics fold into O(1)-memory quantile sketches, so the
//!   horizon can grow without the observer growing with it;
//! * a one-hour warmup is excluded, so the numbers describe the steady
//!   state rather than the empty-machine transient;
//! * each point reports the fraction of jobs that started within a
//!   one-hour wait SLO.
//!
//! The printout is the classic open-system latency curve: p99 wait is
//! flat at low load, then turns sharply upward at the knee — the highest
//! utilization the machine sustains before queueing becomes unbounded.
//! The knee readout picks the sweep point with the largest relative p99
//! jump.
//!
//! ```text
//! cargo run --release --example service_study
//! ```

use dmhpc::prelude::*;

fn main() -> Result<(), SimError> {
    let utils = [0.60, 0.70, 0.80, 0.85, 0.90, 0.95];
    let mut builder = ExperimentSpec::builder("service-study")
        .preset(SystemPreset::HighThroughput, 1)
        .pool(PoolTopology::PerRack {
            mib_per_rack: 384 * 1024,
        })
        .seed(42)
        .scheduler(
            SchedulerBuilder::new()
                .memory(MemoryPolicy::PoolBestFit)
                .slowdown(SlowdownModel::Saturating {
                    penalty: 1.5,
                    curvature: 3.0,
                })
                .build(),
        );
    for &util in &utils {
        builder = builder.service(
            ServiceSpec::open(SystemPreset::HighThroughput)
                .with_utilization(util)
                .with_horizon_jobs(6_000)
                .with_warmup_secs(3_600)
                .with_slo_wait_secs(3_600.0),
        );
    }
    let spec = builder.build()?;

    println!("service study: {} operating points\n", spec.cell_count());
    let results = ExperimentRunner::new().run(&spec)?;

    println!(
        "{:>6} {:>9} {:>12} {:>12} {:>10} {:>10}",
        "util", "measured", "mean_wait_s", "p99_wait_s", "slo_1h", "node_util"
    );
    let mut curve = Vec::new();
    for (cell, &util) in results.cells().iter().zip(&utils) {
        let svc = cell
            .output
            .service
            .expect("open cells report a service summary");
        println!(
            "{:>6.2} {:>9} {:>12.0} {:>12.0} {:>9.1}% {:>10.3}",
            util,
            svc.observed,
            cell.output.report.mean_wait_s,
            svc.p99_wait_s,
            100.0 * svc.slo_attained.expect("study sets a wait target"),
            cell.output.report.node_util,
        );
        curve.push((util, svc.p99_wait_s));
    }

    // Knee of the curve: the operating point with the largest relative
    // p99 jump from its predecessor — past it, waiting time grows faster
    // than the machine's remaining headroom.
    let knee = curve
        .windows(2)
        .map(|w| (w[1].0, w[1].1 / w[0].1.max(1.0)))
        .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite p99 waits"))
        .expect("at least two operating points");
    println!(
        "\nknee of the curve: p99 wait jumps {:.1}x entering util {:.2} — \
         operate below it, or buy pool capacity",
        knee.1, knee.0
    );
    Ok(())
}
