//! Capacity planning: how much pool memory per rack is enough?
//!
//! Sweeps per-rack pool capacity and prints the wait-time curve for the
//! conventional baseline and the slowdown-aware policy — the knee of the
//! curve is the capacity worth buying.
//!
//! ```text
//! cargo run --release --example capacity_planning
//! ```

use dmhpc::prelude::*;
use dmhpc::sim::scenarios::{preset_cluster, preset_workload};
use dmhpc::sim::sweep::run_parallel;

fn main() {
    let preset = SystemPreset::MidCluster;
    let workload = preset_workload(preset, 1000, 42, 0.9);

    let pool_sizes_gib = [0u64, 64, 128, 256, 512, 1024];
    let policies = [
        ("local-only", MemoryPolicy::LocalOnly),
        (
            "slowdown-aware",
            MemoryPolicy::SlowdownAware { max_dilation: 1.35 },
        ),
    ];

    // Build the full cross product, then fan out over cores.
    let mut inputs = Vec::new();
    for &(name, memory) in &policies {
        for &gib in &pool_sizes_gib {
            inputs.push((name, memory, gib));
        }
    }
    let results = run_parallel(inputs, 0, |&(name, memory, gib)| {
        let pool = if gib == 0 {
            PoolTopology::None
        } else {
            PoolTopology::PerRack {
                mib_per_rack: gib * 1024,
            }
        };
        let sched = SchedulerBuilder::new()
            .memory(memory)
            .slowdown(SlowdownModel::Saturating {
                penalty: 1.5,
                curvature: 3.0,
            })
            .build();
        let out =
            Simulation::new(SimConfig::new(preset_cluster(preset, pool), *sched.config()))
                .run(&workload);
        (name, gib, out.report)
    });

    println!(
        "{:<16} {:>9} {:>12} {:>12} {:>10} {:>10}",
        "policy", "pool_gib", "mean_wait_s", "p95_wait_s", "node_util", "pool_util"
    );
    for (name, gib, r) in &results {
        println!(
            "{:<16} {:>9} {:>12.0} {:>12.0} {:>10.3} {:>10.3}",
            name, gib, r.mean_wait_s, r.p95_wait_s, r.node_util, r.pool_util
        );
    }

    // Point out the knee: first pool size achieving ≥90% of the best
    // improvement for the aware policy.
    let aware: Vec<_> = results.iter().filter(|(n, _, _)| *n == "slowdown-aware").collect();
    let worst = aware.first().map(|(_, _, r)| r.mean_wait_s).unwrap_or(0.0);
    let best = aware
        .iter()
        .map(|(_, _, r)| r.mean_wait_s)
        .fold(f64::INFINITY, f64::min);
    if let Some((_, gib, _)) = aware
        .iter()
        .find(|(_, _, r)| worst - r.mean_wait_s >= 0.9 * (worst - best))
    {
        println!("\nknee: {gib} GiB/rack captures ≥90% of the achievable wait reduction");
    }
}
