//! Capacity planning: how much pool memory per rack is enough?
//!
//! Sweeps per-rack pool capacity and prints the wait-time curve for the
//! conventional baseline and the slowdown-aware policy — the knee of the
//! curve is the capacity worth buying.
//!
//! ```text
//! cargo run --release --example capacity_planning
//! ```

use dmhpc::prelude::*;

fn main() -> Result<(), SimError> {
    let pool_sizes_gib = [0u64, 64, 128, 256, 512, 1024];

    // The cross product is declarative: pool-capacity axis × policy axis.
    let spec = ExperimentSpec::builder("capacity-planning")
        .preset(SystemPreset::MidCluster, 1000)
        .pools(pool_sizes_gib.iter().map(|&gib| {
            if gib == 0 {
                PoolTopology::None
            } else {
                PoolTopology::PerRack {
                    mib_per_rack: gib * 1024,
                }
            }
        }))
        .load(0.9)
        .seed(42)
        .schedulers(
            [
                MemoryPolicy::LocalOnly,
                MemoryPolicy::SlowdownAware { max_dilation: 1.35 },
            ]
            .map(|memory| {
                SchedulerBuilder::new()
                    .memory(memory)
                    .slowdown(SlowdownModel::Saturating {
                        penalty: 1.5,
                        curvature: 3.0,
                    })
                    .build()
            }),
        )
        .build()?;

    let results = ExperimentRunner::new().run(&spec)?;

    println!(
        "{:<16} {:>12} {:>12} {:>12} {:>10} {:>10}",
        "policy", "pool", "mean_wait_s", "p95_wait_s", "node_util", "pool_util"
    );
    for cell in results.cells() {
        let r = &cell.output.report;
        println!(
            "{:<16} {:>12} {:>12.0} {:>12.0} {:>10.3} {:>10.3}",
            cell.output.report.label.rsplit('+').next().unwrap_or(""),
            cell.key.cluster,
            r.mean_wait_s,
            r.p95_wait_s,
            r.node_util,
            r.pool_util
        );
    }

    // Point out the knee: first pool size achieving ≥90% of the best
    // improvement for the aware policy.
    let aware = results.select(|k| k.scheduler.contains("slowdown-aware"));
    let waits: Vec<f64> = aware.iter().map(|c| c.output.report.mean_wait_s).collect();
    let worst = waits.first().copied().unwrap_or(0.0);
    let best = waits.iter().copied().fold(f64::INFINITY, f64::min);
    if let Some(cell) = aware
        .iter()
        .find(|c| worst - c.output.report.mean_wait_s >= 0.9 * (worst - best))
    {
        println!(
            "\nknee: {} captures ≥90% of the achievable wait reduction",
            cell.key.cluster
        );
    }
    Ok(())
}
