//! Trace replay: run a Standard Workload Format (SWF) trace through two
//! schedulers and compare.
//!
//! Pass a path to any SWF file (Parallel Workloads Archive format); without
//! an argument the example writes a synthetic trace to SWF first and replays
//! that, demonstrating the full round trip real deployments use. The trace
//! enters the experiment grid as a fixed workload
//! ([`dmhpc::sim::WorkloadSource::Fixed`]): the seed axis collapses, the
//! load axis still pins offered load against the target machine.
//!
//! ```text
//! cargo run --release --example trace_replay [-- /path/to/trace.swf]
//! ```

use dmhpc::prelude::*;
use dmhpc::workload::swf::{parse_reader, write_string, SwfConfig};
use dmhpc::workload::transform;
use std::io::BufReader;

fn main() -> Result<(), SimError> {
    let swf_cfg = SwfConfig {
        cores_per_node: 64,
        default_mem_per_node: 64 * 1024,
        ..SwfConfig::default()
    };

    let (trace_name, workload) = match std::env::args().nth(1) {
        Some(path) => {
            let file = std::fs::File::open(&path).expect("cannot open SWF file");
            let trace = parse_reader(BufReader::new(file), &swf_cfg).expect("SWF parse error");
            println!(
                "parsed {} jobs ({} lines skipped) from {path}",
                trace.workload.len(),
                trace.skipped
            );
            for (k, v) in trace.header.iter().take(5) {
                println!("  header {k}: {v}");
            }
            (path, trace.workload)
        }
        None => {
            // Round trip: synthesize → write SWF → parse SWF.
            let w = SystemPreset::MidCluster.synthetic_spec(800).generate(21);
            let text = write_string(&w, &swf_cfg);
            let trace = dmhpc::workload::swf::parse_str(&text, &swf_cfg).unwrap();
            println!(
                "no SWF given: synthesized {} jobs and round-tripped through SWF",
                trace.workload.len()
            );
            ("synthetic".to_string(), trace.workload)
        }
    };

    // Normalize the trace for the target machine: cap node requests and
    // shift to t=0 (the grid's load axis pins offered load per cluster).
    let cluster = ClusterSpec::try_new(
        8,
        32,
        NodeSpec::new(64, 256 * 1024),
        PoolTopology::PerRack {
            mib_per_rack: 512 * 1024,
        },
    )?;
    let workload = transform::cap_nodes(&workload, cluster.total_nodes());
    let workload = transform::shift_to_origin(&workload);

    println!(
        "replaying {trace_name}: {} jobs at load 0.90\n",
        workload.len()
    );

    let slowdown = SlowdownModel::Saturating {
        penalty: 1.5,
        curvature: 3.0,
    };
    let spec = ExperimentSpec::builder("trace-replay")
        .fixed_workload(workload)
        .cluster("replay-256", cluster)
        .load(0.9)
        .schedulers(
            [
                MemoryPolicy::LocalOnly,
                MemoryPolicy::SlowdownAware { max_dilation: 1.35 },
            ]
            .map(|memory| {
                SchedulerBuilder::new()
                    .memory(memory)
                    .slowdown(slowdown)
                    .build()
            }),
        )
        .build()?;
    let results = ExperimentRunner::new().run(&spec)?;

    for cell in results.cells() {
        let r = &cell.output.report;
        println!(
            "{:<28} wait {:>7.0} s   p95 bsld {:>6.2}   util {:>5.1}%   inflated {:>4.1}%   borrowed {:>4.1}%",
            cell.output.report.label,
            r.mean_wait_s,
            r.p95_bsld,
            100.0 * r.node_util,
            100.0 * r.inflated_fraction,
            100.0 * r.borrowed_fraction,
        );
    }
    Ok(())
}
