//! Trace replay: run a Standard Workload Format (SWF) trace through two
//! schedulers and compare.
//!
//! Pass a path to any SWF file (Parallel Workloads Archive format); without
//! an argument the example writes a synthetic trace to SWF first and replays
//! that, demonstrating the full round trip real deployments use.
//!
//! ```text
//! cargo run --release --example trace_replay [-- /path/to/trace.swf]
//! ```

use dmhpc::prelude::*;
use dmhpc::workload::swf::{parse_reader, write_string, SwfConfig};
use dmhpc::workload::transform;
use std::io::BufReader;

fn main() {
    let swf_cfg = SwfConfig {
        cores_per_node: 64,
        default_mem_per_node: 64 * 1024,
        ..SwfConfig::default()
    };

    let (trace_name, workload) = match std::env::args().nth(1) {
        Some(path) => {
            let file = std::fs::File::open(&path).expect("cannot open SWF file");
            let trace = parse_reader(BufReader::new(file), &swf_cfg).expect("SWF parse error");
            println!(
                "parsed {} jobs ({} lines skipped) from {path}",
                trace.workload.len(),
                trace.skipped
            );
            for (k, v) in trace.header.iter().take(5) {
                println!("  header {k}: {v}");
            }
            (path, trace.workload)
        }
        None => {
            // Round trip: synthesize → write SWF → parse SWF.
            let w = SystemPreset::MidCluster.synthetic_spec(800).generate(21);
            let text = write_string(&w, &swf_cfg);
            let trace = dmhpc::workload::swf::parse_str(&text, &swf_cfg).unwrap();
            println!(
                "no SWF given: synthesized {} jobs and round-tripped through SWF",
                trace.workload.len()
            );
            ("synthetic".to_string(), trace.workload)
        }
    };

    // Normalize the trace for the target machine: cap node requests, shift
    // to t=0, and pin the offered load at 0.9.
    let cluster = ClusterSpec::new(
        8,
        32,
        NodeSpec::new(64, 256 * 1024),
        PoolTopology::PerRack {
            mib_per_rack: 512 * 1024,
        },
    );
    let workload = transform::cap_nodes(&workload, cluster.total_nodes());
    let workload = transform::shift_to_origin(&workload);
    let workload = transform::rescale_load(&workload, cluster.total_nodes(), 0.9);

    println!(
        "replaying {trace_name}: {} jobs, load {:.2}\n",
        workload.len(),
        workload.offered_load(cluster.total_nodes())
    );

    let slowdown = SlowdownModel::Saturating {
        penalty: 1.5,
        curvature: 3.0,
    };
    for memory in [
        MemoryPolicy::LocalOnly,
        MemoryPolicy::SlowdownAware { max_dilation: 1.35 },
    ] {
        let sched = SchedulerBuilder::new().memory(memory).slowdown(slowdown).build();
        let out = Simulation::new(SimConfig::new(cluster, *sched.config())).run(&workload);
        let r = &out.report;
        println!(
            "{:<28} wait {:>7.0} s   p95 bsld {:>6.2}   util {:>5.1}%   inflated {:>4.1}%   borrowed {:>4.1}%",
            r.label,
            r.mean_wait_s,
            r.p95_bsld,
            100.0 * r.node_util,
            100.0 * r.inflated_fraction,
            100.0 * r.borrowed_fraction,
        );
    }
}
