//! Admission study: does the deadline stack buy SLO attainment beyond
//! EDF ordering alone?
//!
//! EDF decides *which* queued job goes first, but it still places jobs
//! greedily (cheapest dilation wins) and admits everything — including
//! jobs whose deadline is already unreachable, which then occupy nodes
//! and pool bandwidth that deadline-feasible work needed. This example
//! runs the same streaming arrival process — same pooled machine, same
//! utilization, same seeds, same per-job budget-factor deadlines
//! (deadline = arrival + factor × walltime, factor uniform in [1.5, 4))
//! — under EDF with four placement/admission stacks and compares what
//! fraction of jobs met the one-hour wait SLO:
//!
//! * `edf-alone` — slowdown-aware placement, admit everything: the
//!   baseline every other arm adds exactly one knob to;
//! * `+laxity` — laxity-aware placement: a shape whose dilated finish
//!   blows the job's own deadline is priced as infeasible even when its
//!   dilation is cheapest;
//! * `+reject` — laxity placement plus infeasibility rejection: a job
//!   that cannot meet its deadline even undilated is turned away at
//!   admission instead of occupying the queue;
//! * `+defer` — laxity placement plus deferral: the same infeasible jobs
//!   are parked and rechecked at their laxity-lapse instant, rejected
//!   only when the deadline itself lapses.
//!
//! Only the placement/admission stack differs between cells, so any
//! attainment gap is the stack's doing. Across seeds, the combined
//! stacks (+reject, +defer) beat EDF-alone by several attainment points:
//! turning away — or parking — the handful of jobs that were never going
//! to make it returns their nodes to jobs whose deadlines are still
//! live. The run also proves the whole stack deterministic: the per-cell trace hashes are byte-identical
//! whether the grid runs on one thread or several, and on the binary-heap
//! or calendar event queue.
//!
//! ```text
//! cargo run --release --example admission_study
//! ```

use dmhpc::prelude::*;

fn spec(seeds: &[u64]) -> Result<ExperimentSpec, SimError> {
    let stack = |memory: MemoryPolicy, admission: AdmissionPolicy| {
        SchedulerBuilder::new()
            .order(OrderPolicy::Edf)
            .memory(memory)
            .slowdown(SlowdownModel::Saturating {
                penalty: 1.5,
                curvature: 3.0,
            })
            .admission(admission)
            .build()
    };
    let laxity = MemoryPolicy::LaxityAware { max_dilation: 1.4 };
    ExperimentSpec::builder("admission-study")
        .preset(SystemPreset::HighThroughput, 1)
        .pool(PoolTopology::PerRack {
            mib_per_rack: 384 * 1024,
        })
        .seeds(seeds.iter().copied())
        .service(
            ServiceSpec::open(SystemPreset::HighThroughput)
                .with_utilization(0.9)
                .with_horizon_jobs(4_000)
                .with_warmup_secs(3_600)
                .with_slo_wait_secs(3_600.0)
                .with_slo_budget_factor(1.5, 4.0),
        )
        .scheduler(stack(
            MemoryPolicy::SlowdownAware { max_dilation: 1.4 },
            AdmissionPolicy::AdmitAll,
        ))
        .scheduler(stack(laxity, AdmissionPolicy::AdmitAll))
        .scheduler(stack(laxity, AdmissionPolicy::RejectInfeasible))
        .scheduler(stack(laxity, AdmissionPolicy::DeferUntilFeasible))
        .build()
}

/// Stack name for a cell: which of the four arms produced it.
fn stack_name(config: &SchedulerConfig) -> &'static str {
    match (&config.memory, &config.admission) {
        (MemoryPolicy::SlowdownAware { .. }, _) => "edf-alone",
        (_, AdmissionPolicy::AdmitAll) => "+laxity",
        (_, AdmissionPolicy::RejectInfeasible) => "+reject",
        (_, AdmissionPolicy::DeferUntilFeasible) => "+defer",
    }
}

fn main() -> Result<(), SimError> {
    let seeds = [1_u64, 2, 3];
    let spec = spec(&seeds)?;
    println!(
        "admission study: {} cells ({} seeds × 4 stacks)\n",
        spec.cell_count(),
        seeds.len()
    );
    let results = ExperimentRunner::with_threads(1).run(&spec)?;

    println!(
        "{:>6} {:>10} {:>9} {:>9} {:>12} {:>10}",
        "seed", "stack", "measured", "rejected", "p99_wait_s", "slo_1h"
    );
    const STACKS: [&str; 4] = ["edf-alone", "+laxity", "+reject", "+defer"];
    let mut by_stack: Vec<(&'static str, Vec<f64>)> =
        STACKS.iter().map(|s| (*s, Vec::new())).collect();
    for cell in results.cells() {
        let svc = cell
            .output
            .service
            .expect("open cells report a service summary");
        let attained = cell
            .slo_attainment()
            .expect("cells with a wait SLO report attainment");
        let stack = stack_name(&cell.config.scheduler);
        println!(
            "{:>6} {:>10} {:>9} {:>9} {:>12.0} {:>9.1}%",
            cell.key.seed.expect("preset grids carry a seed"),
            stack,
            svc.observed,
            cell.output.report.rejected,
            svc.p99_wait_s,
            100.0 * attained,
        );
        let slot = by_stack
            .iter_mut()
            .find(|(name, _)| *name == stack)
            .expect("every cell's stack is in the sweep");
        slot.1.push(attained);
    }

    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let edf_alone = mean(&by_stack[0].1);
    println!("\nmean SLO attainment over {} seeds:", seeds.len());
    for (name, attained) in &by_stack {
        let m = mean(attained);
        println!(
            "  {:>10}: {:>5.1}%  ({:+.2} pts vs edf-alone)",
            name,
            100.0 * m,
            100.0 * (m - edf_alone)
        );
    }

    // The headline claim: laxity-aware placement plus either admission
    // policy beats EDF ordering alone at identical offered load. Laxity
    // pricing by itself can trade attainment near saturation (it keeps
    // doomed jobs queued on their nominal shape instead of starting them
    // dilated); the admission layer is what converts that honesty into a
    // win, so the combined stacks are the asserted bar.
    let laxity = mean(&by_stack[1].1);
    let reject = mean(&by_stack[2].1);
    let defer = mean(&by_stack[3].1);
    assert!(
        reject > edf_alone && defer > edf_alone && reject > laxity && defer > laxity,
        "placement + admission should buy attainment over EDF alone \
         (edf-alone {edf_alone:.4}, +laxity {laxity:.4}, +reject {reject:.4}, \
         +defer {defer:.4})"
    );

    // Determinism: the identical grid on several threads and on the
    // calendar event queue must reproduce every cell byte-for-byte.
    let hashes = |r: &ExperimentResults| -> Vec<(String, u64)> {
        r.cells()
            .iter()
            .map(|c| (c.key.label(), c.output.trace_hash))
            .collect()
    };
    let reference = hashes(&results);
    let threaded = ExperimentRunner::with_threads(4).run(&spec)?;
    assert_eq!(
        reference,
        hashes(&threaded),
        "trace hashes must not depend on worker-thread count"
    );
    let calendar = ExperimentRunner::with_threads(1)
        .event_queue(EventQueueKind::Calendar)
        .run(&spec)?;
    assert_eq!(
        reference,
        hashes(&calendar),
        "trace hashes must not depend on the event-queue backend"
    );

    println!(
        "\ndeadline stack wins: +laxity {:+.2} pts, +reject {:+.2} pts, +defer {:+.2} pts \
         over edf-alone at identical offered load; all {} cells byte-identical across \
         1-vs-4 threads and heap-vs-calendar event queues.",
        100.0 * (laxity - edf_alone),
        100.0 * (reject - edf_alone),
        100.0 * (defer - edf_alone),
        reference.len()
    );
    Ok(())
}
