//! Contention study: what happens when the memory fabric is shared?
//!
//! Compares the static slowdown model against the contention-aware model
//! (running borrowers are re-dilated as pool pressure changes) across pool
//! sizes, showing when fabric contention erases the benefit of borrowing.
//!
//! ```text
//! cargo run --release --example contention_study
//! ```

use dmhpc::prelude::*;

fn main() -> Result<(), SimError> {
    let models: [(&str, SlowdownModel); 3] = [
        ("static-1.5x", SlowdownModel::Linear { penalty: 1.5 }),
        (
            "contention-γ1",
            SlowdownModel::Contention {
                penalty: 1.5,
                gamma: 1.0,
            },
        ),
        (
            "contention-γ3",
            SlowdownModel::Contention {
                penalty: 1.5,
                gamma: 3.0,
            },
        ),
    ];

    // Pool-size axis × slowdown-model axis (the model rides in the
    // scheduler config), all borrowing via pool first-fit.
    let spec = ExperimentSpec::builder("contention-study")
        .preset(SystemPreset::MidCluster, 1000)
        .pools([128u64, 256, 512].map(|gib| PoolTopology::PerRack {
            mib_per_rack: gib * 1024,
        }))
        .load(0.9)
        .seed(42)
        .schedulers(models.map(|(_, model)| {
            SchedulerBuilder::new()
                .memory(MemoryPolicy::PoolFirstFit)
                .slowdown(model)
                .build()
        }))
        .build()?;

    let results = ExperimentRunner::new().run(&spec)?;

    println!(
        "{:<16} {:>12} {:>12} {:>10} {:>11} {:>6}",
        "model", "pool", "mean_wait_s", "p95_bsld", "mean_dil", "kill"
    );
    // Model-major rows: each pool size contributes one cell per model, in
    // scheduler-axis order.
    for (i, (name, _)) in models.iter().enumerate() {
        for cell in results.cells().iter().skip(i).step_by(models.len()) {
            let r = &cell.output.report;
            println!(
                "{:<16} {:>12} {:>12.0} {:>10.2} {:>11.3} {:>6}",
                name,
                cell.key.cluster,
                r.mean_wait_s,
                r.p95_bsld,
                r.mean_dilation_borrowers.max(1.0),
                r.killed,
            );
        }
    }
    // Pool-pressure timeline of the smallest vs largest pool under the
    // γ=1 contention model, via the shared resampled-series helpers (no
    // hand-rolled resample/normalize plumbing).
    println!("\npool occupancy over time (contention-γ1, fraction of capacity):");
    print!("{:>6}", "hour");
    let gammas: Vec<&CellResult> = results
        .cells()
        .iter()
        .skip(1) // contention-γ1 is the second scheduler on the axis
        .step_by(models.len())
        .collect();
    for cell in &gammas {
        print!(" {:>12}", cell.key.cluster);
    }
    println!();
    let series: Vec<Vec<(f64, f64)>> = gammas
        .iter()
        .map(|c| c.output.series.pool_util_series(c.output.end_time, 9))
        .collect();
    for i in 0..series.first().map(Vec::len).unwrap_or(0) {
        print!("{:>6.1}", series[0][i].0);
        for s in &series {
            print!(" {:>12.3}", s.get(i).map(|p| p.1).unwrap_or(0.0));
        }
        println!();
    }
    println!(
        "\nreading: small pools under the contention model run hot, so borrowers\n\
         dilate harder — walltime inflation keeps them alive (kill=0), but the\n\
         effective far-memory cost rises with pressure."
    );
    Ok(())
}
