//! Contention study: what happens when the memory fabric is shared?
//!
//! Compares the static slowdown model against the contention-aware model
//! (running borrowers are re-dilated as pool pressure changes) across pool
//! sizes, showing when fabric contention erases the benefit of borrowing.
//!
//! ```text
//! cargo run --release --example contention_study
//! ```

use dmhpc::prelude::*;
use dmhpc::sim::scenarios::{preset_cluster, preset_workload};
use dmhpc::sim::sweep::run_parallel;

fn main() {
    let preset = SystemPreset::MidCluster;
    let workload = preset_workload(preset, 1000, 42, 0.9);

    let models: Vec<(&str, SlowdownModel)> = vec![
        ("static-1.5x", SlowdownModel::Linear { penalty: 1.5 }),
        (
            "contention-γ1",
            SlowdownModel::Contention {
                penalty: 1.5,
                gamma: 1.0,
            },
        ),
        (
            "contention-γ3",
            SlowdownModel::Contention {
                penalty: 1.5,
                gamma: 3.0,
            },
        ),
    ];
    let pools_gib = [128u64, 256, 512];

    let mut inputs = Vec::new();
    for &(name, model) in &models {
        for &gib in &pools_gib {
            inputs.push((name, model, gib));
        }
    }
    let rows = run_parallel(inputs, 0, |&(name, model, gib)| {
        let cluster = preset_cluster(
            preset,
            PoolTopology::PerRack {
                mib_per_rack: gib * 1024,
            },
        );
        let sched = SchedulerBuilder::new()
            .memory(MemoryPolicy::PoolFirstFit)
            .slowdown(model)
            .build();
        let out = Simulation::new(SimConfig::new(cluster, *sched.config())).run(&workload);
        (name, gib, out.report)
    });

    println!(
        "{:<16} {:>9} {:>12} {:>10} {:>11} {:>6}",
        "model", "pool_gib", "mean_wait_s", "p95_bsld", "mean_dil", "kill"
    );
    for (name, gib, r) in &rows {
        println!(
            "{:<16} {:>9} {:>12.0} {:>10.2} {:>11.3} {:>6}",
            name,
            gib,
            r.mean_wait_s,
            r.p95_bsld,
            r.mean_dilation_borrowers.max(1.0),
            r.killed,
        );
    }
    println!(
        "\nreading: small pools under the contention model run hot, so borrowers\n\
         dilate harder — walltime inflation keeps them alive (kill=0), but the\n\
         effective far-memory cost rises with pressure."
    );
}
