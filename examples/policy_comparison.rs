//! Policy comparison: the paper's four-way suite plus ordering/backfill
//! variants, on one workload.
//!
//! ```text
//! cargo run --release --example policy_comparison
//! ```

use dmhpc::metrics::export;
use dmhpc::prelude::*;
use dmhpc::sim::scenarios::{
    default_slowdown, policy_suite, preset_cluster, preset_workload, run_policies,
};

fn main() {
    let preset = SystemPreset::MidCluster;
    let workload = preset_workload(preset, 1200, 42, 0.9);
    let cluster = preset_cluster(
        preset,
        PoolTopology::PerRack {
            mib_per_rack: 512 * 1024,
        },
    );

    // The standard four-policy suite…
    let mut configs = policy_suite(default_slowdown());
    // …plus a WFP-ordered and a conservative-backfill variant of the
    // slowdown-aware policy, to show the axes compose.
    let aware = MemoryPolicy::SlowdownAware { max_dilation: 1.35 };
    configs.push(
        *SchedulerBuilder::new()
            .order(OrderPolicy::Wfp { exponent: 3.0 })
            .memory(aware)
            .slowdown(default_slowdown())
            .build()
            .config(),
    );
    configs.push(
        *SchedulerBuilder::new()
            .backfill(BackfillPolicy::Conservative)
            .memory(aware)
            .slowdown(default_slowdown())
            .build()
            .config(),
    );

    let outs = run_policies(cluster, &workload, &configs, 0);
    let reports: Vec<_> = outs.iter().map(|o| o.report.clone()).collect();

    println!(
        "{:<34} {:>10} {:>9} {:>9} {:>9} {:>9}",
        "policy", "mean_w_s", "p95_bsld", "node_ut", "borrow%", "fair"
    );
    for r in &reports {
        println!(
            "{:<34} {:>10.0} {:>9.2} {:>9.3} {:>8.1}% {:>9.3}",
            r.label,
            r.mean_wait_s,
            r.p95_bsld,
            r.node_util,
            100.0 * r.borrowed_fraction,
            r.user_fairness,
        );
    }

    // Machine-readable output for downstream analysis.
    std::fs::create_dir_all("results").ok();
    std::fs::write("results/policy_comparison.csv", export::reports_to_csv(&reports))
        .expect("write CSV");
    println!("\nwrote results/policy_comparison.csv");
}
