//! Policy comparison: the paper's four-way suite plus ordering/backfill
//! variants, on one declared grid.
//!
//! ```text
//! cargo run --release --example policy_comparison
//! ```

use dmhpc::prelude::*;
use dmhpc::sim::scenarios::default_slowdown;

fn main() -> Result<(), SimError> {
    let aware = MemoryPolicy::SlowdownAware { max_dilation: 1.35 };
    let spec = ExperimentSpec::builder("policy-comparison")
        .preset(SystemPreset::MidCluster, 1200)
        .pool(PoolTopology::PerRack {
            mib_per_rack: 512 * 1024,
        })
        .load(0.9)
        .seed(42)
        // The standard four-policy suite…
        .policy_suite(default_slowdown())
        // …plus a WFP-ordered and a conservative-backfill variant of the
        // slowdown-aware policy, to show the axes compose.
        .scheduler(
            SchedulerBuilder::new()
                .order(OrderPolicy::Wfp { exponent: 3.0 })
                .memory(aware)
                .slowdown(default_slowdown())
                .build(),
        )
        .scheduler(
            SchedulerBuilder::new()
                .backfill(BackfillPolicy::Conservative)
                .memory(aware)
                .slowdown(default_slowdown())
                .build(),
        )
        .build()?;

    let results = ExperimentRunner::new().run(&spec)?;

    println!(
        "{:<34} {:>10} {:>9} {:>9} {:>9} {:>9}",
        "policy", "mean_w_s", "p95_bsld", "node_ut", "borrow%", "fair"
    );
    for cell in results.cells() {
        let r = &cell.output.report;
        println!(
            "{:<34} {:>10.0} {:>9.2} {:>9.3} {:>8.1}% {:>9.3}",
            cell.output.report.label,
            r.mean_wait_s,
            r.p95_bsld,
            r.node_util,
            100.0 * r.borrowed_fraction,
            r.user_fairness,
        );
    }

    // Machine-readable output for downstream analysis, grid axes included.
    std::fs::create_dir_all("results").ok();
    std::fs::write("results/policy_comparison.csv", results.to_csv()).expect("write CSV");
    println!("\nwrote results/policy_comparison.csv");
    Ok(())
}
