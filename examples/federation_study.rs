//! Federation study: does state-aware meta-scheduling tame bursts?
//!
//! A single cluster answers "how do I schedule my machine"; a federated
//! fleet asks the level above — *which machine should each job go to?*
//! This example drives a heterogeneous 4-site fleet (two full-size
//! sites, two quarter-size) with a bursty MMPP arrival stream and
//! compares two meta-scheduling policies at identical offered load:
//!
//! * **round-robin** — deal jobs to sites in fixed rotation, blind to
//!   state. Quarter-size sites receive the same share as full-size
//!   ones, so their queues grow without bound while the big sites
//!   coast half-idle;
//! * **least-pressure** — route each job to the site with the lowest
//!   committed-memory fraction, read from the epoch-barrier snapshots
//!   the conservative lockstep publishes. State-aware routing sheds
//!   burst overflow toward whichever site has headroom *now*.
//!
//! Both runs use the same [`FleetSimulation`] engine, the same 300 s
//! routing epochs, and byte-identical workloads, so the p99-wait gap at
//! the end is purely the routing policy. The example asserts the gap:
//! least-pressure must beat round-robin on p99 wait.
//!
//! ```text
//! cargo run --release --example federation_study
//! ```

use dmhpc::prelude::*;

/// p99 job wait (seconds) over every started job in a run.
fn p99_wait_s(out: &SimOutput) -> f64 {
    let mut waits: Vec<f64> = out
        .records
        .iter()
        .filter_map(|r| {
            r.start
                .map(|s| s.saturating_since(r.job.arrival).as_secs_f64())
        })
        .collect();
    assert!(!waits.is_empty(), "runs must start jobs");
    waits.sort_by(|a, b| a.partial_cmp(b).expect("finite waits"));
    waits[(waits.len() - 1) * 99 / 100]
}

fn main() -> Result<(), SimError> {
    // The fleet: two full-size HighThroughput sites (inherited from the
    // base config) and two quarter-size sites (pinned), all per-rack
    // pooled — skewed enough that a blind 25% share per site overloads
    // the small machines (10% of fleet capacity each) outright.
    let (racks, npr, cores, node_mib) = SystemPreset::HighThroughput.machine();
    let pool = PoolTopology::PerRack {
        mib_per_rack: 384 * 1024,
    };
    let big = ClusterSpec::new(racks, npr, NodeSpec::new(cores, node_mib), pool);
    let small = ClusterSpec::new(racks / 4, npr, NodeSpec::new(cores, node_mib), pool);
    let scheduler = SchedulerBuilder::new()
        .memory(MemoryPolicy::PoolBestFit)
        .slowdown(SlowdownModel::Saturating {
            penalty: 1.5,
            curvature: 3.0,
        })
        .build();
    let base = SimConfig::new(big, scheduler);
    let fleet_with = |policy: MetaPolicyKind| {
        FleetSpec::symmetric(2, 300.0, policy)
            .with_site("small0", Some(small), None)
            .with_site("small1", Some(small), None)
    };

    // The burst stream: an interrupted-Poisson MMPP (4× the mean rate
    // while bursting, ~30 min dwells) sized for the *fleet's* combined
    // capacity, materialized once so both policies route byte-identical
    // arrivals.
    let fleet_nodes = fleet_with(MetaPolicyKind::RoundRobin).total_nodes(&base.cluster);
    let rate_racks = fleet_nodes / npr;
    let rate_cluster = ClusterSpec::new(rate_racks, npr, NodeSpec::new(cores, node_mib), pool);
    let stream = ServiceSpec::open(SystemPreset::HighThroughput)
        .with_utilization(0.6)
        .with_horizon_jobs(6_000)
        .with_seed(7)
        .with_process(ArrivalProcess::Mmpp {
            burst_ratio: 4.0,
            mean_dwell_secs: 1_800.0,
        });
    let mut source = stream.open_source(&rate_cluster)?;
    let workload = Workload::from_jobs(std::iter::from_fn(|| source.next_job()).collect());
    println!(
        "federation study: {} MMPP jobs over {} sites ({} nodes), 300 s epochs\n",
        workload.len(),
        4,
        fleet_nodes
    );

    println!(
        "{:<16} {:>12} {:>12} {:>10}  routed per site",
        "meta-policy", "mean_wait_s", "p99_wait_s", "node_util"
    );
    let mut p99 = Vec::new();
    for policy in [
        MetaPolicyKind::RoundRobin,
        MetaPolicyKind::LeastMemoryPressure,
    ] {
        let out = FleetSimulation::new(&fleet_with(policy), base)?.run(&workload);
        let p = p99_wait_s(&out.aggregate);
        println!(
            "{:<16} {:>12.0} {:>12.0} {:>10.3}  {:?}",
            policy.name(),
            out.aggregate.report.mean_wait_s,
            p,
            out.aggregate.report.node_util,
            out.routed_jobs,
        );
        p99.push(p);
    }

    // The point of state-aware routing: under bursts on a heterogeneous
    // fleet, reading the snapshots must beat dealing cards.
    let (rr, lp) = (p99[0], p99[1]);
    assert!(
        lp < rr,
        "least-pressure p99 wait ({lp:.0}s) must beat round-robin ({rr:.0}s)"
    );
    println!(
        "\nleast-pressure cuts p99 wait {:.1}x vs round-robin at identical \
         offered load — burst overflow drains to whichever site has headroom",
        rr / lp
    );
    Ok(())
}
