//! Cross-crate integration tests: full simulations through the public API.

use dmhpc::prelude::*;
use dmhpc::sim::scenarios::{default_slowdown, policy_suite, preset_cluster, preset_workload};
use dmhpc::workload::swf::{parse_str, write_string, SwfConfig};
use dmhpc::workload::transform;
use dmhpc_metrics::JobOutcome;

fn per_rack(gib: u64) -> PoolTopology {
    PoolTopology::PerRack {
        mib_per_rack: gib * 1024,
    }
}

/// Every job is accounted for exactly once under every policy, and the
/// books balance: Σ per-job node·residence equals the busy-nodes integral.
#[test]
fn conservation_across_policy_suite() {
    let preset = SystemPreset::MidCluster;
    let w = preset_workload(preset, 400, 1, 0.85);
    let cluster = preset_cluster(preset, per_rack(512));
    for sched in policy_suite(default_slowdown()) {
        let sim = Simulation::new(SimConfig::new(cluster, sched).checked()).unwrap();
        let out = sim.run(&w);
        assert_eq!(
            out.report.completed + out.report.killed + out.report.rejected,
            w.len(),
            "{}",
            sched.label()
        );
        // Node-second books.
        let per_job: f64 = out
            .records
            .iter()
            .filter_map(|r| {
                r.residence()
                    .map(|res| res.as_secs_f64() * r.nodes_allocated as f64)
            })
            .sum();
        let integral = out.series.nodes_busy.stats().integral_until(out.end_time);
        let rel = (per_job - integral).abs() / integral.max(1.0);
        assert!(
            rel < 1e-6,
            "{}: node-second books differ by {rel}",
            sched.label()
        );
    }
}

/// Causality: no job starts before arrival or finishes before start; a
/// completed job's residence is exactly its dilated runtime.
#[test]
fn causality_and_exact_residence() {
    let preset = SystemPreset::HighThroughput;
    let w = preset_workload(preset, 300, 2, 0.9);
    let cluster = preset_cluster(preset, per_rack(384));
    let sched = SchedulerBuilder::new()
        .memory(MemoryPolicy::PoolFirstFit)
        .slowdown(SlowdownModel::Linear { penalty: 1.4 })
        .build();
    let out = Simulation::new(SimConfig::new(cluster, sched).checked())
        .unwrap()
        .run(&w);
    for r in &out.records {
        let (Some(start), Some(finish)) = (r.start, r.finish) else {
            continue;
        };
        assert!(start >= r.job.arrival, "{}", r.job.id);
        assert!(finish > start, "{}", r.job.id);
        if r.outcome == JobOutcome::Completed {
            // Static model ⇒ residence = runtime × dilation exactly (±1 µs
            // rounding).
            let expect = r.job.runtime.scale(r.dilation_planned);
            let got = finish - start;
            assert!(
                got.as_micros().abs_diff(expect.as_micros()) <= 1,
                "{}: residence {} vs dilated runtime {}",
                r.job.id,
                got,
                expect
            );
        }
    }
}

/// EASY backfilling can only help mean wait relative to no backfilling
/// under FCFS (same workload, same machine).
#[test]
fn easy_no_worse_than_no_backfill() {
    let preset = SystemPreset::MidCluster;
    let w = preset_workload(preset, 500, 3, 0.95);
    let cluster = preset_cluster(preset, per_rack(512));
    let mut waits = Vec::new();
    for backfill in [BackfillPolicy::None, BackfillPolicy::Easy] {
        let sched = SchedulerBuilder::new()
            .backfill(backfill)
            .memory(MemoryPolicy::PoolBestFit)
            .slowdown(default_slowdown())
            .build();
        let out = Simulation::new(SimConfig::new(cluster, sched))
            .unwrap()
            .run(&w);
        waits.push(out.report.mean_wait_s);
    }
    assert!(
        waits[1] <= waits[0] * 1.02,
        "EASY ({}) must not be materially worse than none ({})",
        waits[1],
        waits[0]
    );
}

/// The headline claim, end to end: on a memory-stranded workload the
/// disaggregation-aware policy beats the local-only baseline on mean wait,
/// and the baseline inflates jobs while the aware policy borrows instead.
/// Runs as a declared experiment grid through the public API.
#[test]
fn disaggregation_beats_inflation_on_stranded_workload() {
    let spec = ExperimentSpec::builder("headline")
        .preset(SystemPreset::MidCluster, 800)
        .pool(per_rack(512))
        .load(0.9)
        .seed(42)
        .policy_suite(default_slowdown())
        .build()
        .unwrap();
    let results = ExperimentRunner::new().run(&spec).unwrap();
    let local = &results.cells()[0].output.report;
    let aware = &results.cells()[3].output.report;
    assert!(local.inflated_fraction > 0.03, "baseline must inflate");
    assert_eq!(local.borrowed_fraction, 0.0);
    assert!(aware.borrowed_fraction > 0.03, "aware must borrow");
    assert!(
        aware.mean_wait_s < local.mean_wait_s,
        "aware {} must beat local {}",
        aware.mean_wait_s,
        local.mean_wait_s
    );
    assert!(
        aware.inflated_fraction < local.inflated_fraction,
        "borrowing displaces inflation"
    );
}

/// SWF round trip through the full simulator: synthesize → write → parse →
/// simulate gives identical results to simulating the original (fields SWF
/// carries are second-resolution, so the generator's whole-second times
/// survive exactly; intensity differs, so compare under an
/// intensity-insensitive model).
#[test]
fn swf_roundtrip_preserves_simulation() {
    let spec = SystemPreset::MidCluster.synthetic_spec(200);
    let mut w = spec.generate(5);
    // SWF stores whole seconds: truncate generator times first.
    let jobs: Vec<_> = w
        .iter()
        .map(|j| {
            let mut j = j.clone();
            j.arrival = dmhpc::des::SimTime::from_secs(j.arrival.as_secs());
            j.runtime = dmhpc::des::SimDuration::from_secs(j.runtime.as_secs().max(1));
            j.walltime = dmhpc::des::SimDuration::from_secs(j.walltime.as_secs().max(1));
            j
        })
        .collect();
    w = dmhpc::workload::Workload::from_jobs(jobs);

    let cfg = SwfConfig {
        cores_per_node: 64,
        ..SwfConfig::default()
    };
    let text = write_string(&w, &cfg);
    let back = parse_str(&text, &cfg).unwrap().workload;
    assert_eq!(back.len(), w.len());

    let cluster = preset_cluster(SystemPreset::MidCluster, per_rack(512));
    // SlowdownModel::None makes results independent of the intensity
    // column SWF cannot carry.
    let sched = SchedulerBuilder::new()
        .memory(MemoryPolicy::PoolBestFit)
        .slowdown(SlowdownModel::None)
        .build();
    let sim = Simulation::new(SimConfig::new(cluster, sched)).unwrap();
    let a = sim.run(&w);
    let b = sim.run(&back);
    assert_eq!(a.report.completed, b.report.completed);
    assert_eq!(a.report.mean_wait_s, b.report.mean_wait_s);
    assert_eq!(a.trace_hash, b.trace_hash);
}

/// Load rescaling drives waits monotonically (higher offered load ⇒ no less
/// waiting) on a fixed machine and policy.
#[test]
fn wait_grows_with_load() {
    let preset = SystemPreset::MidCluster;
    let cluster = preset_cluster(preset, per_rack(512));
    let sched = SchedulerBuilder::new()
        .memory(MemoryPolicy::PoolBestFit)
        .slowdown(default_slowdown())
        .build();
    let mut prev = 0.0;
    for load in [0.5, 0.8, 1.1] {
        let w = preset_workload(preset, 600, 7, load);
        let out = Simulation::new(SimConfig::new(cluster, sched))
            .unwrap()
            .run(&w);
        assert!(
            out.report.mean_wait_s >= prev * 0.8,
            "load {load}: wait {} collapsed below previous {prev}",
            out.report.mean_wait_s
        );
        prev = out.report.mean_wait_s;
    }
    assert!(prev > 0.0, "high load must produce queueing");
}

/// Underestimating users get their jobs killed; kills are bounded by the
/// configured underestimate fraction.
#[test]
fn underestimates_cause_kills() {
    let mut spec = SystemPreset::HighThroughput.synthetic_spec(400);
    spec.walltime.underestimate_fraction = 0.2;
    let w = spec.generate(9);
    let w = transform::rescale_load(&w, 128, 0.7);
    let cluster = preset_cluster(SystemPreset::HighThroughput, per_rack(384));
    let sched = SchedulerBuilder::new()
        .memory(MemoryPolicy::PoolFirstFit)
        .slowdown(default_slowdown())
        .build();
    let out = Simulation::new(SimConfig::new(cluster, sched))
        .unwrap()
        .run(&w);
    let kill_frac = out.report.killed as f64 / 400.0;
    assert!(
        kill_frac > 0.1 && kill_frac < 0.3,
        "kill fraction {kill_frac} should track the 20% underestimate rate"
    );
    // Killed jobs end exactly at their planned walltime.
    for r in out
        .records
        .iter()
        .filter(|r| r.outcome == JobOutcome::Killed)
    {
        let residence = r.residence().unwrap();
        assert!(
            residence
                <= r.job.walltime.scale(default_slowdown().worst_case())
                    + dmhpc::des::SimDuration::from_secs(1)
        );
    }
}

/// All three presets simulate cleanly under all four policies (matrix smoke
/// test with invariant checking on).
#[test]
fn preset_policy_matrix() {
    for preset in SystemPreset::ALL {
        let w = preset_workload(preset, 150, 11, 0.8);
        let cluster = preset_cluster(preset, per_rack(512));
        for sched in policy_suite(default_slowdown()) {
            let out = Simulation::new(SimConfig::new(cluster, sched).checked())
                .unwrap()
                .run(&w);
            assert_eq!(
                out.report.completed + out.report.killed + out.report.rejected,
                150,
                "{} × {}",
                preset.name(),
                sched.label()
            );
        }
    }
}

/// Rejections only ever happen for jobs that genuinely cannot fit the
/// machine under the policy's nominal shape.
#[test]
fn rejections_are_justified() {
    let preset = SystemPreset::MidCluster;
    let w = preset_workload(preset, 600, 13, 0.9);
    let cluster = preset_cluster(preset, per_rack(256));
    let sched = SchedulerBuilder::new()
        .memory(MemoryPolicy::LocalOnly)
        .slowdown(SlowdownModel::None)
        .build();
    let out = Simulation::new(SimConfig::new(cluster, sched))
        .unwrap()
        .run(&w);
    let node_mem = cluster.node.local_mem;
    for r in &out.records {
        if r.outcome == JobOutcome::Rejected {
            let inflated = r.job.total_mem().div_ceil(node_mem).max(r.job.nodes as u64);
            assert!(
                inflated > cluster.total_nodes() as u64,
                "{} rejected but inflated size {} fits {} nodes",
                r.job.id,
                inflated,
                cluster.total_nodes()
            );
        }
    }
}

// ------------------------------------------------------ experiment API

/// The declarative grid produces identical per-cell trace hashes whether
/// the runner uses one thread or many (ISSUE acceptance: 1 vs N).
#[test]
fn experiment_runner_thread_count_invariant() {
    let spec = ExperimentSpec::builder("determinism")
        .preset(SystemPreset::HighThroughput, 120)
        .pools([PoolTopology::None, per_rack(384)])
        .loads([0.8, 1.0])
        .seeds([1, 2])
        .policy_suite(default_slowdown())
        .build()
        .unwrap();
    assert_eq!(spec.cell_count(), 2 * 2 * 2 * 4);
    let serial = ExperimentRunner::with_threads(1).run(&spec).unwrap();
    let parallel = ExperimentRunner::with_threads(8).run(&spec).unwrap();
    assert_eq!(serial.len(), spec.cell_count());
    for (a, b) in serial.cells().iter().zip(parallel.cells()) {
        assert_eq!(a.key, b.key, "grid order must not depend on threads");
        assert_eq!(
            a.output.trace_hash,
            b.output.trace_hash,
            "{}",
            a.key.label()
        );
        assert_eq!(a.output.events_processed, b.output.events_processed);
    }
}

/// Specs round-trip through JSON via the facade, and the reloaded spec
/// reproduces the same simulation results hash-for-hash.
#[test]
fn experiment_spec_json_round_trip_reproduces_runs() {
    let spec = ExperimentSpec::builder("roundtrip")
        .preset(SystemPreset::HighThroughput, 80)
        .pool(per_rack(384))
        .load(0.9)
        .seed(5)
        .policy_suite(default_slowdown())
        .build()
        .unwrap();
    let json = spec.to_json().unwrap();
    let reloaded = ExperimentSpec::from_json(&json).unwrap();
    let a = ExperimentRunner::with_threads(2).run(&spec).unwrap();
    let b = ExperimentRunner::with_threads(2).run(&reloaded).unwrap();
    for (x, y) in a.cells().iter().zip(b.cells()) {
        assert_eq!(x.key, y.key);
        assert_eq!(x.output.trace_hash, y.output.trace_hash);
    }
}

/// Construction is fallible end to end: bad grids and bad configs come
/// back as the facade's single typed error, not as panics.
#[test]
fn invalid_configuration_is_a_typed_error() {
    // Bad slowdown model through Simulation::new.
    let sched = SchedulerBuilder::new()
        .slowdown(SlowdownModel::Linear { penalty: 0.0 })
        .build();
    let cluster = preset_cluster(SystemPreset::HighThroughput, PoolTopology::None);
    let err = Simulation::new(SimConfig::new(cluster, sched)).unwrap_err();
    assert!(
        matches!(err, SimError::Platform(PlatformError::InvalidSpec { .. })),
        "{err}"
    );

    // Zero-sized machine through the typed spec constructor.
    assert!(ClusterSpec::try_new(0, 4, NodeSpec::new(4, 1024), PoolTopology::None).is_err());

    // Empty scheduler axis through the grid builder.
    let err = ExperimentSpec::builder("empty")
        .preset(SystemPreset::MidCluster, 10)
        .pool(PoolTopology::None)
        .build()
        .unwrap_err();
    assert!(matches!(err, SimError::Spec { .. }), "{err}");
}

/// Custom scheduling policies plug in through the `Ordering`/`Placement`
/// traits without forking the built-in enums: a LIFO ordering visibly
/// changes who runs first, and the run stays deterministic.
#[test]
fn custom_ordering_plugs_into_simulation() {
    #[derive(Debug)]
    struct Lifo;
    impl Ordering for Lifo {
        fn name(&self) -> &str {
            "lifo"
        }
        fn order(
            &self,
            entries: &mut [dmhpc::sched::QueuedJob],
            _ctx: &dmhpc::sched::SchedContext<'_>,
        ) {
            // Latest arrival first; ties by id to stay total.
            entries.sort_by_key(|e| {
                (
                    std::cmp::Reverse(e.job.arrival),
                    std::cmp::Reverse(e.job.id),
                )
            });
        }
    }

    let cluster = ClusterSpec::new(1, 2, NodeSpec::new(8, 64 * 1024), PoolTopology::None);
    let mk = |id: u64, arr: u64| {
        dmhpc::workload::JobBuilder::new(id)
            .arrival_secs(arr)
            .nodes(2)
            .runtime_secs(100, 200)
            .mem_per_node(1024)
            .build()
    };
    // Three full-machine jobs queued while the first runs: FCFS starts
    // 2 before 3; LIFO must start 3 (the newest) first.
    let w = Workload::from_jobs(vec![mk(1, 0), mk(2, 10), mk(3, 20)]);
    let cfg = SimConfig::new(cluster, SchedulerBuilder::new().build());

    let fcfs = Simulation::new(cfg).unwrap().run(&w);
    let start = |out: &SimOutput, id: u64| {
        out.records
            .iter()
            .find(|r| r.job.id.0 == id)
            .unwrap()
            .start
            .unwrap()
            .as_secs()
    };
    assert!(start(&fcfs, 2) < start(&fcfs, 3));

    let lifo =
        Simulation::with_policies(cfg, Box::new(Lifo), Box::new(MemoryPolicy::LocalOnly)).unwrap();
    let out = lifo.run(&w);
    assert!(
        start(&out, 3) < start(&out, 2),
        "LIFO runs the newest first"
    );
    assert!(
        out.report.label.starts_with("lifo+"),
        "{}",
        out.report.label
    );
    // Determinism holds for custom policies too.
    let again = Simulation::with_policies(cfg, Box::new(Lifo), Box::new(MemoryPolicy::LocalOnly))
        .unwrap()
        .run(&w);
    assert_eq!(out.trace_hash, again.trace_hash);
}

// ------------------------------------------------- grid-scaling layer

/// The full scaling story through the facade: shard processes populate a
/// shared content-addressed cache, the merge rebuilds the grid purely
/// from cache with byte-identical exports, and an edited spec re-runs
/// only its changed cells.
#[test]
fn cache_shard_merge_end_to_end() {
    let dir = std::env::temp_dir().join(format!("dmhpc-e2e-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let spec = ExperimentSpec::builder("e2e")
        .preset(SystemPreset::HighThroughput, 100)
        .pools([PoolTopology::None, per_rack(384)])
        .load(0.85)
        .seeds([1, 2])
        .policy_suite(default_slowdown())
        .build()
        .unwrap();

    // Reference: plain cold run, no cache.
    let reference = ExperimentRunner::with_threads(2).run(&spec).unwrap();

    // Three "processes" each run a disjoint shard into one cache.
    let mut parts = Vec::new();
    for i in 0..3 {
        let runner = ExperimentRunner::with_threads(2).cache_dir(&dir).unwrap();
        let part = runner.run_shard(&spec, Shard::new(i, 3).unwrap()).unwrap();
        assert_eq!(part.stats().cache_hits, 0, "disjoint shards share no cells");
        parts.push(part);
    }

    // In-memory merge matches the reference exactly.
    let merged = ExperimentResults::merge(&spec, parts).unwrap();
    assert_eq!(merged.to_csv(), reference.to_csv());
    assert_eq!(merged.to_json(), reference.to_json());

    // A warm full run over the same cache simulates nothing and exports
    // the same bytes.
    let warm = ExperimentRunner::with_threads(2)
        .cache_dir(&dir)
        .unwrap()
        .run(&spec)
        .unwrap();
    assert_eq!(warm.stats().simulated, 0);
    assert_eq!(warm.stats().cache_hits, spec.cell_count());
    assert_eq!(warm.to_csv(), reference.to_csv());
    assert_eq!(warm.to_json(), reference.to_json());

    // Incremental re-run: add one seed; only the new cells simulate.
    let edited = dmhpc::sim::ExperimentBuilder::from_spec(spec.clone())
        .seed(3)
        .build()
        .unwrap();
    let incremental = ExperimentRunner::with_threads(2)
        .cache_dir(&dir)
        .unwrap()
        .run(&edited)
        .unwrap();
    let new_cells = edited.cell_count() - spec.cell_count();
    assert_eq!(incremental.stats().cache_hits, spec.cell_count());
    assert_eq!(incremental.stats().simulated, new_cells);

    let _ = std::fs::remove_dir_all(&dir);
}

/// Cell content hashes are a function of the parsed spec, not its JSON
/// text: reordering fields (and whole axis entries' keys) in the spec
/// document changes nothing, while editing a value moves exactly the
/// affected cells.
#[test]
fn cell_hashes_stable_across_json_field_reordering() {
    let original = r#"{
        "name": "reorder",
        "workload": {"preset": {"system": "htc-128", "jobs": 50}},
        "clusters": [{
            "label": "c0", "racks": 2, "nodes_per_rack": 8,
            "cores": 16, "node_mem_mib": 131072, "pool": "none"
        }],
        "loads": [0.9],
        "seeds": [7],
        "schedulers": [{
            "order": "fcfs", "backfill": "easy", "memory": "local-only",
            "slowdown": {"saturating": {"penalty": 1.5, "curvature": 3.0}},
            "inflate_walltime": true
        }],
        "enforce_walltime": true,
        "check_invariants": false
    }"#;
    // Same document, keys shuffled at every level.
    let reordered = r#"{
        "check_invariants": false,
        "enforce_walltime": true,
        "schedulers": [{
            "inflate_walltime": true,
            "slowdown": {"saturating": {"curvature": 3.0, "penalty": 1.5}},
            "memory": "local-only", "backfill": "easy", "order": "fcfs"
        }],
        "seeds": [7],
        "loads": [0.9],
        "clusters": [{
            "pool": "none", "node_mem_mib": 131072, "cores": 16,
            "nodes_per_rack": 8, "racks": 2, "label": "c0"
        }],
        "workload": {"preset": {"jobs": 50, "system": "htc-128"}},
        "name": "reorder"
    }"#;
    let a = ExperimentSpec::from_json(original).unwrap();
    let b = ExperimentSpec::from_json(reordered).unwrap();
    assert_eq!(a.cell_hashes().unwrap(), b.cell_hashes().unwrap());

    // Relabelling is presentation-only: hashes unchanged.
    let relabelled = ExperimentSpec::from_json(&original.replace("\"c0\"", "\"renamed\"")).unwrap();
    let hashes = |s: &ExperimentSpec| -> Vec<u64> {
        s.cell_hashes()
            .unwrap()
            .into_iter()
            .map(|(_, h)| h)
            .collect()
    };
    assert_eq!(hashes(&a), hashes(&relabelled));

    // A real edit is not.
    let edited =
        ExperimentSpec::from_json(&original.replace("\"jobs\": 50", "\"jobs\": 51")).unwrap();
    assert_ne!(hashes(&a), hashes(&edited));
}

// ------------------------------------------------- incremental kernel parity

/// The CI smoke grid, rebuilt through the public API (the `repro` binary
/// owns the canonical copy; trace hashes do not depend on labels).
fn smoke_grid() -> ExperimentSpec {
    let saturating = SlowdownModel::Saturating {
        penalty: 1.5,
        curvature: 3.0,
    };
    let sched = |memory| {
        SchedulerBuilder::new()
            .memory(memory)
            .slowdown(saturating)
            .build()
    };
    ExperimentSpec::builder("smoke")
        .preset(SystemPreset::HighThroughput, 80)
        .pools([PoolTopology::None, per_rack(384)])
        .load(0.8)
        .seeds([1, 2])
        .scheduler(sched(MemoryPolicy::LocalOnly))
        .scheduler(sched(MemoryPolicy::PoolFirstFit))
        .build()
        .unwrap()
}

/// Golden trace hashes of the smoke grid, captured from the pre-incremental
/// engine (PR 2, commit 3d49f30) in grid order. The incremental kernel must
/// reproduce every run event-for-event: these values pin that down and
/// also guarantee PR-2 result caches replay without invalidation.
const SMOKE_GOLDEN_HASHES: [u64; 8] = [
    0xf3b04e54bf756065, // no-pool   seed1 local-only
    0xf3b04e54bf756065, // no-pool   seed1 pool-ff
    0x7eec0cf3808dc8d9, // no-pool   seed2 local-only
    0x7eec0cf3808dc8d9, // no-pool   seed2 pool-ff
    0xf3b04e54bf756065, // rack pool seed1 local-only
    0x4fff90df5dce1ecc, // rack pool seed1 pool-ff
    0x7eec0cf3808dc8d9, // rack pool seed2 local-only
    0xe5feb24d0cd6286a, // rack pool seed2 pool-ff
];

#[test]
fn smoke_grid_matches_pre_refactor_golden_hashes() {
    let spec = smoke_grid();
    for kind in [EventQueueKind::BinaryHeap, EventQueueKind::Calendar] {
        let results = ExperimentRunner::with_threads(1)
            .event_queue(kind)
            .run(&spec)
            .unwrap();
        assert_eq!(results.len(), SMOKE_GOLDEN_HASHES.len());
        for (cell, &golden) in results.cells().iter().zip(&SMOKE_GOLDEN_HASHES) {
            assert_eq!(
                cell.output.trace_hash,
                golden,
                "{} on {:?} diverged from the pre-refactor engine",
                cell.key.label(),
                kind
            );
        }
    }
}

/// The same golden table with an *explicit* `FaultSpec::none()` axis, on
/// both event-queue backends: the fault subsystem's identity scenario
/// must be bit-identical to the PR-3 engine — same traces, same pass
/// counts, and `avail_util == node_util` by the very same expression.
#[test]
fn smoke_grid_with_none_fault_spec_matches_golden_hashes() {
    let spec = dmhpc::sim::ExperimentBuilder::from_spec(smoke_grid())
        .fault(FaultSpec::none())
        .build()
        .unwrap();
    assert_eq!(spec.cell_count(), SMOKE_GOLDEN_HASHES.len());
    for kind in [EventQueueKind::BinaryHeap, EventQueueKind::Calendar] {
        let results = ExperimentRunner::with_threads(1)
            .event_queue(kind)
            .run(&spec)
            .unwrap();
        for (cell, &golden) in results.cells().iter().zip(&SMOKE_GOLDEN_HASHES) {
            assert_eq!(
                cell.output.trace_hash,
                golden,
                "{} on {:?}: FaultSpec::none() diverged from the fault-free engine",
                cell.key.label(),
                kind
            );
            assert_eq!(cell.key.fault, None, "identity scenario is unlabeled");
            assert_eq!(cell.output.faults.interruptions, 0);
            assert_eq!(
                cell.output.report.avail_util, cell.output.report.node_util,
                "no downtime ⇒ identical utilization expressions"
            );
        }
    }
}

/// The golden table once more with the full observer stack attached —
/// a per-cell streaming `TraceSink`, riding the new observation API.
/// Observers are hash-neutral by construction (they consume the event
/// stream, never feed back), so the observed grid must reproduce the
/// pre-refactor golden hashes exactly: PR-2/3/4 result caches replay
/// untouched no matter what is watching.
#[test]
fn smoke_grid_with_observers_matches_golden_hashes() {
    let dir = std::env::temp_dir().join(format!("dmhpc-observe-golden-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let spec = smoke_grid();
    for kind in [EventQueueKind::BinaryHeap, EventQueueKind::Calendar] {
        let results = ExperimentRunner::with_threads(2)
            .event_queue(kind)
            .trace_dir(&dir)
            .unwrap()
            .run(&spec)
            .unwrap();
        assert_eq!(results.len(), SMOKE_GOLDEN_HASHES.len());
        for (cell, &golden) in results.cells().iter().zip(&SMOKE_GOLDEN_HASHES) {
            assert_eq!(
                cell.output.trace_hash,
                golden,
                "{} on {:?}: attached observers changed the trace",
                cell.key.label(),
                kind
            );
        }
    }
    // Every simulated cell streamed a parseable, non-empty trace.
    let traces: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "jsonl"))
        .collect();
    assert_eq!(
        traces.len(),
        SMOKE_GOLDEN_HASHES.len(),
        "one trace per cell"
    );
    for path in &traces {
        let text = std::fs::read_to_string(path).unwrap();
        assert!(!text.trim().is_empty(), "{} is empty", path.display());
        for line in text.lines() {
            dmhpc::sim::observe::parse_trace_line(line)
                .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Golden hashes for two contention-model runs (dynamic re-dilation is the
/// path the pool-scoped borrower index rewrote): HighThroughput preset,
/// 400 jobs, seed 11, on 4×32 nodes of 32 cores / 192 GiB with 384 GiB
/// rack pools. Captured from the pre-incremental engine (PR 2).
#[test]
fn contention_runs_match_pre_refactor_golden_hashes() {
    let w = SystemPreset::HighThroughput
        .synthetic_spec(400)
        .generate(11);
    let cluster = ClusterSpec::new(4, 32, NodeSpec::new(32, 192 * 1024), per_rack(384));
    let cases = [
        (
            MemoryPolicy::PoolBestFit,
            SlowdownModel::Contention {
                penalty: 1.5,
                gamma: 1.0,
            },
            0x75eeea250dd55c3au64,
        ),
        (
            MemoryPolicy::SlowdownAware { max_dilation: 1.4 },
            SlowdownModel::Contention {
                penalty: 1.6,
                gamma: 2.0,
            },
            0xc150f12475f21123u64,
        ),
    ];
    for (memory, slowdown, golden) in cases {
        let sched = SchedulerBuilder::new()
            .memory(memory)
            .slowdown(slowdown)
            .build();
        let cfg = SimConfig::new(cluster, sched);
        for kind in [EventQueueKind::BinaryHeap, EventQueueKind::Calendar] {
            let out = Simulation::new(cfg.with_event_queue(kind)).unwrap().run(&w);
            assert_eq!(
                out.trace_hash,
                golden,
                "{}+{slowdown:?} on {kind:?} diverged from the pre-refactor engine",
                memory.name()
            );
            assert!(out.passes <= out.events_processed);
        }
    }
}

/// The event-driven kernel schedules strictly fewer passes than events on
/// every smoke cell (the pre-refactor engine ran exactly one per event
/// batch — 160 of each on these cells), while reproducing its traces.
#[test]
fn kernel_passes_are_sparse_on_the_smoke_grid() {
    let results = ExperimentRunner::with_threads(1)
        .run(&smoke_grid())
        .unwrap();
    for cell in results.cells() {
        assert!(
            cell.output.passes < cell.output.events_processed,
            "{}: {} passes for {} events — pass gating not engaged",
            cell.key.label(),
            cell.output.passes,
            cell.output.events_processed
        );
        assert!(cell.output.passes > 0);
    }
}

// ------------------------------------------------- fault & availability

/// A representative active fault scenario for grid-level tests: node
/// failures + drains + pool degradations, checkpoint/restart handling.
fn stormy_faults() -> FaultSpec {
    let mut gen = FaultGenerator::quiet(21, 40_000);
    gen.node_mtbf_s = 900;
    gen.node_repair_s = 1_800;
    gen.drain_interval_s = 3_000;
    gen.drain_duration_s = 1_200;
    gen.pool_degrade_interval_s = 5_000;
    gen.pool_degrade_duration_s = 2_500;
    gen.pool_degrade_factor = 0.4;
    FaultSpec::none()
        .with_generator(gen)
        .with_interrupt(InterruptPolicy::Checkpoint { overhead_s: 120 })
        .with_max_resubmits(2)
}

/// Determinism under an active `FaultSpec`: identical per-cell traces for
/// 1 vs N runner threads and for heap vs calendar event queues, with the
/// fault counters agreeing too.
#[test]
fn fault_grids_are_deterministic_across_threads_and_backends() {
    let spec = dmhpc::sim::ExperimentBuilder::from_spec(smoke_grid())
        .name("smoke-faults-det")
        .fault(FaultSpec::none())
        .fault(stormy_faults())
        .build()
        .unwrap();
    assert_eq!(spec.cell_count(), 2 * 8);
    let serial = ExperimentRunner::with_threads(1).run(&spec).unwrap();
    let parallel = ExperimentRunner::with_threads(8).run(&spec).unwrap();
    let calendar = ExperimentRunner::with_threads(4)
        .event_queue(EventQueueKind::Calendar)
        .run(&spec)
        .unwrap();
    let mut faulty_cells_bitten = 0;
    for ((a, b), c) in serial
        .cells()
        .iter()
        .zip(parallel.cells())
        .zip(calendar.cells())
    {
        assert_eq!(a.key, b.key, "grid order independent of threads");
        assert_eq!(a.key, c.key, "grid order independent of backend");
        assert_eq!(
            a.output.trace_hash,
            b.output.trace_hash,
            "{}",
            a.key.label()
        );
        assert_eq!(
            a.output.trace_hash,
            c.output.trace_hash,
            "{}",
            a.key.label()
        );
        assert_eq!(a.output.faults, b.output.faults);
        assert_eq!(a.output.faults, c.output.faults);
        assert_eq!(a.output.passes, c.output.passes);
        if a.key.fault.is_some() && a.output.faults.interruptions > 0 {
            faulty_cells_bitten += 1;
        }
    }
    assert!(
        faulty_cells_bitten > 0,
        "the stormy scenario must actually interrupt something"
    );
    // And the fault axis changes results: a faulty cell's trace differs
    // from its fault-free twin.
    let twin = |fault: Option<&str>| {
        serial
            .cells()
            .iter()
            .find(|c| c.key.fault.as_deref() == fault)
            .unwrap()
    };
    assert_ne!(
        twin(None).output.trace_hash,
        twin(Some(&stormy_faults().label())).output.trace_hash
    );
}

/// Cache correctness (ISSUE satellite): changing any `FaultSpec` field
/// moves the cell hash (cold re-run), while attaching `FaultSpec::none()`
/// leaves hashes — and therefore existing PR-2/PR-3 caches — untouched.
#[test]
fn fault_spec_fields_move_cell_hashes_but_none_is_hash_neutral() {
    let base = smoke_grid();
    let hashes = |spec: &ExperimentSpec| -> Vec<u64> {
        spec.cell_hashes()
            .unwrap()
            .into_iter()
            .map(|(_, h)| h)
            .collect()
    };
    let base_hashes = hashes(&base);

    // Attaching the identity scenario: bit-identical hashes.
    let with_none = dmhpc::sim::ExperimentBuilder::from_spec(base.clone())
        .fault(FaultSpec::none())
        .build()
        .unwrap();
    assert_eq!(hashes(&with_none), base_hashes);

    // Every field of an active scenario is hash-relevant.
    let stormy = stormy_faults();
    let spec_with = |f: FaultSpec| {
        dmhpc::sim::ExperimentBuilder::from_spec(base.clone())
            .fault(f)
            .build()
            .unwrap()
    };
    let reference = hashes(&spec_with(stormy.clone()));
    assert_ne!(reference, base_hashes, "active scenario re-keys cells");

    let mut variants: Vec<FaultSpec> = vec![
        stormy.clone().with_max_resubmits(3),
        stormy.clone().with_interrupt(InterruptPolicy::Resubmit),
        stormy
            .clone()
            .with_interrupt(InterruptPolicy::Checkpoint { overhead_s: 121 }),
        stormy.clone().with_action(
            dmhpc::des::SimTime::from_secs(50),
            dmhpc::sim::FaultAction::NodeFail(dmhpc::platform::NodeId(0)),
        ),
    ];
    type GeneratorEdit<'a> = (&'a str, Box<dyn Fn(&mut FaultGenerator)>);
    let generator_edits: Vec<GeneratorEdit> = vec![
        ("seed", Box::new(|g| g.seed += 1)),
        ("horizon_s", Box::new(|g| g.horizon_s += 1)),
        ("node_mtbf_s", Box::new(|g| g.node_mtbf_s += 1)),
        ("node_repair_s", Box::new(|g| g.node_repair_s += 1)),
        ("drain_interval_s", Box::new(|g| g.drain_interval_s += 1)),
        ("drain_duration_s", Box::new(|g| g.drain_duration_s += 1)),
        (
            "pool_degrade_interval_s",
            Box::new(|g| g.pool_degrade_interval_s += 1),
        ),
        (
            "pool_degrade_duration_s",
            Box::new(|g| g.pool_degrade_duration_s += 1),
        ),
        (
            "pool_degrade_factor",
            Box::new(|g| g.pool_degrade_factor = 0.6),
        ),
    ];
    for (field, mutate) in &generator_edits {
        let mut g = stormy.generator.unwrap();
        mutate(&mut g);
        let variant = stormy.clone().with_generator(g);
        assert_ne!(
            hashes(&spec_with(variant.clone())),
            reference,
            "generator field {field} must be hash-relevant"
        );
        variants.push(variant);
    }
    for variant in variants {
        assert_ne!(
            hashes(&spec_with(variant)),
            reference,
            "every FaultSpec edit re-keys cells"
        );
    }
}

// ------------------------------------------------- open-system service mode

/// A representative open-system scenario for grid-level tests: Poisson
/// stream of the HTC job mix, utilization-targeted load, short horizon.
fn open_scenario() -> ServiceSpec {
    ServiceSpec::open(SystemPreset::HighThroughput)
        .with_utilization(0.85)
        .with_horizon_jobs(400)
        .with_warmup_secs(3_600)
        .with_slo_wait_secs(3_600.0)
}

/// The golden table with an *explicit* `ServiceSpec::none()` axis, on
/// both event-queue backends: the service subsystem's identity scenario
/// must be bit-identical to the pre-service engine — same traces, same
/// pass counts, no service summary — so PR-2/3/4 result caches replay
/// untouched.
#[test]
fn smoke_grid_with_none_service_spec_matches_golden_hashes() {
    let spec = dmhpc::sim::ExperimentBuilder::from_spec(smoke_grid())
        .service(ServiceSpec::none())
        .build()
        .unwrap();
    assert_eq!(spec.cell_count(), SMOKE_GOLDEN_HASHES.len());
    for kind in [EventQueueKind::BinaryHeap, EventQueueKind::Calendar] {
        let results = ExperimentRunner::with_threads(1)
            .event_queue(kind)
            .run(&spec)
            .unwrap();
        for (cell, &golden) in results.cells().iter().zip(&SMOKE_GOLDEN_HASHES) {
            assert_eq!(
                cell.output.trace_hash,
                golden,
                "{} on {:?}: ServiceSpec::none() diverged from the closed-batch engine",
                cell.key.label(),
                kind
            );
            assert_eq!(cell.key.service, None, "identity scenario is unlabeled");
            assert!(
                cell.output.service.is_none(),
                "closed cells carry no service summary"
            );
        }
    }
}

/// Cache correctness (ISSUE satellite): changing any `ServiceSpec` field
/// moves the cell hash (cold re-run), while attaching
/// `ServiceSpec::none()` leaves hashes — and therefore existing caches —
/// untouched.
#[test]
fn service_spec_fields_move_cell_hashes_but_none_is_hash_neutral() {
    let base = smoke_grid();
    let hashes = |spec: &ExperimentSpec| -> Vec<u64> {
        spec.cell_hashes()
            .unwrap()
            .into_iter()
            .map(|(_, h)| h)
            .collect()
    };
    let base_hashes = hashes(&base);

    // Attaching the identity scenario: bit-identical hashes.
    let with_none = dmhpc::sim::ExperimentBuilder::from_spec(base.clone())
        .service(ServiceSpec::none())
        .build()
        .unwrap();
    assert_eq!(hashes(&with_none), base_hashes);

    // Every field of an open scenario is hash-relevant.
    let open = open_scenario();
    let spec_with = |s: ServiceSpec| {
        dmhpc::sim::ExperimentBuilder::from_spec(base.clone())
            .service(s)
            .build()
            .unwrap()
    };
    let reference = hashes(&spec_with(open.clone()));
    assert_ne!(reference, base_hashes, "open scenario re-keys cells");

    let variants: Vec<ServiceSpec> = vec![
        ServiceSpec::open(SystemPreset::MidCluster)
            .with_utilization(0.85)
            .with_horizon_jobs(400)
            .with_warmup_secs(3_600)
            .with_slo_wait_secs(3_600.0),
        open.clone()
            .with_process(dmhpc::workload::source::ArrivalProcess::Daily {
                peak_to_trough: 3.0,
            }),
        open.clone()
            .with_process(dmhpc::workload::source::ArrivalProcess::Mmpp {
                burst_ratio: 1.8,
                mean_dwell_secs: 1_800.0,
            }),
        open.clone().with_rate(45.0),
        open.clone().with_utilization(0.9),
        open.clone().with_horizon_jobs(401),
        open.clone().with_horizon_secs(86_400),
        open.clone().with_warmup_secs(7_200),
        open.clone().with_slo_wait_secs(1_800.0),
        open.clone().with_seed(9),
    ];
    for variant in variants {
        assert_ne!(
            hashes(&spec_with(variant.clone())),
            reference,
            "ServiceSpec edit must re-key cells: {}",
            variant.label()
        );
    }
}

/// Determinism for open-system cells: identical per-cell traces and
/// service summaries for 1 vs N runner threads and for heap vs calendar
/// event queues, with closed baseline cells riding the same grid.
#[test]
fn service_grids_are_deterministic_across_threads_and_backends() {
    let spec = dmhpc::sim::ExperimentBuilder::from_spec(smoke_grid())
        .name("smoke-service-det")
        .service(ServiceSpec::none())
        .service(open_scenario())
        .build()
        .unwrap();
    assert_eq!(spec.cell_count(), 2 * 8);
    let serial = ExperimentRunner::with_threads(1).run(&spec).unwrap();
    let parallel = ExperimentRunner::with_threads(8).run(&spec).unwrap();
    let calendar = ExperimentRunner::with_threads(4)
        .event_queue(EventQueueKind::Calendar)
        .run(&spec)
        .unwrap();
    let mut open_cells = 0;
    for ((a, b), c) in serial
        .cells()
        .iter()
        .zip(parallel.cells())
        .zip(calendar.cells())
    {
        assert_eq!(a.key, b.key, "grid order independent of threads");
        assert_eq!(a.key, c.key, "grid order independent of backend");
        assert_eq!(
            a.output.trace_hash,
            b.output.trace_hash,
            "{}",
            a.key.label()
        );
        assert_eq!(
            a.output.trace_hash,
            c.output.trace_hash,
            "{}",
            a.key.label()
        );
        assert_eq!(a.output.service, b.output.service);
        assert_eq!(a.output.service, c.output.service);
        if a.key.service.is_some() {
            open_cells += 1;
            let svc = a.output.service.expect("open cells report a summary");
            assert!(svc.observed > 0, "{}", a.key.label());
            assert!(a.output.records.is_empty(), "sketch path keeps no records");
        }
    }
    assert_eq!(open_cells, 8, "half the grid streams");
    // The service axis changes results: an open cell's trace differs from
    // its closed twin's.
    let twin = |service: Option<&str>| {
        serial
            .cells()
            .iter()
            .find(|c| c.key.service.as_deref() == service)
            .unwrap()
    };
    assert_ne!(
        twin(None).output.trace_hash,
        twin(Some(&open_scenario().label())).output.trace_hash
    );
}

/// Pull-based admission is trace-identical to pre-loading the same
/// stream as a closed batch: materialize the open source into a
/// `Workload`, run it closed, and compare hashes with the open run.
#[test]
fn open_admission_matches_materialized_closed_batch() {
    use dmhpc::workload::source::JobSource as _;
    let cluster = preset_cluster(SystemPreset::HighThroughput, per_rack(384));
    let scenario = open_scenario().with_seed(17);
    let mut src = scenario.open_source(&cluster).unwrap();
    let workload = Workload::from_jobs(std::iter::from_fn(|| src.next_job()).collect());
    assert_eq!(workload.len(), 400, "whole horizon materialized");
    let sched = SchedulerBuilder::new()
        .memory(MemoryPolicy::PoolFirstFit)
        .slowdown(default_slowdown())
        .build();
    let cfg = SimConfig::new(cluster, sched);
    let closed = Simulation::new(cfg).unwrap().run(&workload);
    let open = Simulation::new(cfg)
        .unwrap()
        .with_service_spec(scenario)
        .unwrap()
        .run(&Workload::from_jobs(Vec::new()));
    assert_eq!(
        open.trace_hash, closed.trace_hash,
        "open admission replays the materialized stream bit-identically"
    );
    assert_eq!(open.events_processed, closed.events_processed);
    assert_eq!(open.passes, closed.passes);
}

/// Service cells participate in the content-addressed cache end to end:
/// an open grid populates it cold, replays warm with byte-identical
/// exports (service summary included), and the closed baseline cells
/// collide with — i.e. are served by — a cache populated by the plain
/// grid.
#[test]
fn service_cells_cache_and_replay_byte_identically() {
    let dir = std::env::temp_dir().join(format!("dmhpc-service-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let spec = dmhpc::sim::ExperimentBuilder::from_spec(smoke_grid())
        .name("smoke-service-cache")
        .service(ServiceSpec::none())
        .service(open_scenario())
        .build()
        .unwrap();
    // Pre-populate with the plain (service-free) grid: its cells must
    // serve the closed half of the service grid.
    let plain = ExperimentRunner::with_threads(2)
        .cache_dir(&dir)
        .unwrap()
        .run(&smoke_grid())
        .unwrap();
    assert_eq!(plain.stats().simulated, smoke_grid().cell_count());
    let cold = ExperimentRunner::with_threads(2)
        .cache_dir(&dir)
        .unwrap()
        .run(&spec)
        .unwrap();
    assert_eq!(
        cold.stats().cache_hits,
        smoke_grid().cell_count(),
        "closed baseline cells replay from the pre-service cache"
    );
    assert_eq!(cold.stats().simulated, spec.cell_count() / 2);
    let warm = ExperimentRunner::with_threads(2)
        .cache_dir(&dir)
        .unwrap()
        .run(&spec)
        .unwrap();
    assert_eq!(warm.stats().simulated, 0, "all cells replay from cache");
    assert_eq!(warm.to_csv(), cold.to_csv());
    assert_eq!(warm.to_json(), cold.to_json());
    for (a, b) in warm.cells().iter().zip(cold.cells()) {
        assert_eq!(a.output.service, b.output.service, "summary round-trips");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Fault cells participate in the content-addressed cache end to end: a
/// faulty grid populates it cold, replays warm with byte-identical
/// exports, and never collides with the fault-free twin cells.
#[test]
fn fault_cells_cache_and_replay_byte_identically() {
    let dir = std::env::temp_dir().join(format!("dmhpc-fault-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let spec = dmhpc::sim::ExperimentBuilder::from_spec(smoke_grid())
        .name("smoke-faults-cache")
        .fault(FaultSpec::none())
        .fault(stormy_faults())
        .build()
        .unwrap();
    let cold = ExperimentRunner::with_threads(2)
        .cache_dir(&dir)
        .unwrap()
        .run(&spec)
        .unwrap();
    assert_eq!(cold.stats().simulated, spec.cell_count());
    let warm = ExperimentRunner::with_threads(2)
        .cache_dir(&dir)
        .unwrap()
        .run(&spec)
        .unwrap();
    assert_eq!(warm.stats().simulated, 0, "all cells replay from cache");
    assert_eq!(warm.to_csv(), cold.to_csv());
    assert_eq!(warm.to_json(), cold.to_json());
    for (a, b) in warm.cells().iter().zip(cold.cells()) {
        assert_eq!(a.output.faults, b.output.faults, "summary round-trips");
    }
    let _ = std::fs::remove_dir_all(&dir);
}
