//! Workspace enforcement of `dmhpc-lint`: plain `cargo test` fails on
//! any determinism, hash-discipline, panic-discipline, or suppression
//! finding — the same check `cargo run -p dmhpc-lint` and CI run.
//!
//! The second test is the rule proving its own worth: edit the cell
//! hash in memory, delete one digest fold, and watch the lint catch
//! the exact field at a file:line.

use dmhpc_lint::{collect_sources, lint, Config, Rule, SourceFile};
use std::path::Path;

fn workspace_sources() -> Vec<SourceFile> {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    collect_sources(root, &Config::workspace()).expect("workspace sources readable")
}

#[test]
fn workspace_is_lint_clean() {
    let files = workspace_sources();
    assert!(files.len() > 50, "scanned only {} files", files.len());
    let findings = lint(&files, &Config::workspace());
    assert!(
        findings.is_empty(),
        "dmhpc-lint found {} problem(s):\n{}",
        findings.len(),
        findings
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

/// Deleting the `warmup_s` fold from the cell hash must fail the
/// hash-field rule with a diagnostic at the field's declaration — this
/// is the acceptance test for the whole hash-discipline check.
#[test]
fn deleting_a_digest_fold_is_caught() {
    let mut files = workspace_sources();
    let cache = files
        .iter_mut()
        .find(|f| f.path == "crates/sim/src/experiment/cache.rs")
        .expect("cell-hash module present");
    let fold = "h.write_u64(cell.service.warmup_s);";
    assert!(
        cache.text.contains(fold),
        "cache.rs no longer folds warmup_s the way this test expects — \
         update the probe string"
    );
    cache.text = cache.text.replacen(fold, "", 1);

    let findings = lint(&files, &Config::workspace());
    let hit = findings
        .iter()
        .find(|f| f.rule == Rule::HashField && f.message.contains("`warmup_s`"))
        .unwrap_or_else(|| {
            panic!("dropping the warmup_s fold went undetected; findings: {findings:?}")
        });
    assert_eq!(hit.path, "crates/sim/src/service.rs");
    assert!(hit.line > 0, "diagnostic should point at the declaration");
}
