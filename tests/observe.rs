//! The streaming observation API, end to end: observer determinism
//! (byte-identical traces across thread counts and event-queue backends),
//! hash-neutrality against the result cache, and the bounded-memory
//! guarantee of the JSONL trace sink.

use dmhpc::prelude::*;
use dmhpc::sim::observe::parse_trace_line;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("dmhpc-observe-{}-{name}", std::process::id()))
}

fn per_rack(gib: u64) -> PoolTopology {
    PoolTopology::PerRack {
        mib_per_rack: gib * 1024,
    }
}

fn small_grid(name: &str) -> ExperimentSpec {
    ExperimentSpec::builder(name)
        .preset(SystemPreset::HighThroughput, 60)
        .pools([PoolTopology::None, per_rack(384)])
        .load(0.8)
        .seeds([1, 2])
        .scheduler(
            SchedulerBuilder::new()
                .memory(MemoryPolicy::PoolBestFit)
                .slowdown(SlowdownModel::Linear { penalty: 1.5 })
                .build(),
        )
        .build()
        .unwrap()
}

fn read_traces(dir: &Path) -> BTreeMap<String, String> {
    std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "jsonl"))
        .map(|p| {
            (
                p.file_name().unwrap().to_string_lossy().into_owned(),
                std::fs::read_to_string(&p).unwrap(),
            )
        })
        .collect()
}

/// 1-thread and N-thread grid runs stream byte-identical per-cell traces:
/// the event stream is a pure function of the cell, not of scheduling.
#[test]
fn traces_are_byte_identical_across_thread_counts() {
    let spec = small_grid("observe-threads");
    let (dir1, dir4) = (tmp("threads-1"), tmp("threads-4"));
    for (dir, threads) in [(&dir1, 1), (&dir4, 4)] {
        let _ = std::fs::remove_dir_all(dir);
        ExperimentRunner::with_threads(threads)
            .trace_dir(dir)
            .unwrap()
            .run(&spec)
            .unwrap();
    }
    let (a, b) = (read_traces(&dir1), read_traces(&dir4));
    assert_eq!(a.len(), spec.cell_count());
    assert_eq!(
        a.keys().collect::<Vec<_>>(),
        b.keys().collect::<Vec<_>>(),
        "same cells traced"
    );
    for (name, text) in &a {
        assert_eq!(text, &b[name], "{name} differs between 1 and 4 threads");
        assert!(!text.trim().is_empty());
    }
    let _ = std::fs::remove_dir_all(&dir1);
    let _ = std::fs::remove_dir_all(&dir4);
}

/// Heap and calendar event queues stream byte-identical traces — under an
/// active fault scenario too (the strongest event-ordering stressor).
#[test]
fn traces_are_byte_identical_across_queue_backends() {
    let w = SystemPreset::HighThroughput.synthetic_spec(250).generate(3);
    let cluster = ClusterSpec::new(2, 16, NodeSpec::new(32, 192 * 1024), per_rack(384));
    let mut gen = FaultGenerator::quiet(11, 400_000);
    gen.node_mtbf_s = 40_000;
    gen.node_repair_s = 10_000;
    gen.drain_interval_s = 150_000;
    gen.drain_duration_s = 20_000;
    let faults = FaultSpec::none()
        .with_generator(gen)
        .with_interrupt(InterruptPolicy::Checkpoint { overhead_s: 60 })
        .with_max_resubmits(2);
    let sched = SchedulerBuilder::new()
        .memory(MemoryPolicy::PoolBestFit)
        .slowdown(SlowdownModel::Contention {
            penalty: 1.5,
            gamma: 1.0,
        })
        .build();
    let mut texts = Vec::new();
    for kind in [EventQueueKind::BinaryHeap, EventQueueKind::Calendar] {
        let path = tmp(&format!("backend-{}.jsonl", kind.name()));
        let cfg = SimConfig::new(cluster, sched).with_event_queue(kind);
        let sim = Simulation::new(cfg)
            .unwrap()
            .with_fault_spec(faults.clone())
            .unwrap();
        let mut sink = TraceSink::create(&path).unwrap();
        let out = sim.run_with(&w, ObserverSet::new().watch(&mut sink));
        assert!(out.faults.interruptions > 0, "scenario actually bites");
        sink.finish().unwrap();
        texts.push(std::fs::read_to_string(&path).unwrap());
        let _ = std::fs::remove_file(&path);
    }
    assert_eq!(texts[0], texts[1], "backends must stream identical traces");
}

/// The bounded-memory guarantee: a large run through a sink whose buffer
/// is tiny still lands every event on disk — memory is O(buffer), the
/// trace is O(events), and the two are decoupled.
#[test]
fn trace_sink_streams_full_event_count_through_small_buffer() {
    let w = SystemPreset::HighThroughput
        .synthetic_spec(2_000)
        .generate(9);
    let cluster = ClusterSpec::new(4, 32, NodeSpec::new(32, 192 * 1024), per_rack(512));
    let sched = SchedulerBuilder::new()
        .memory(MemoryPolicy::PoolBestFit)
        .slowdown(SlowdownModel::Saturating {
            penalty: 1.5,
            curvature: 3.0,
        })
        .build();
    let sim = Simulation::new(SimConfig::new(cluster, sched)).unwrap();
    let path = tmp("bounded.jsonl");
    // 256 bytes: smaller than a single line, so the sink must stream.
    let mut sink = TraceSink::with_buffer(&path, 256).unwrap();
    let out = sim.run_with(&w, ObserverSet::new().watch(&mut sink));
    let written = sink.finish().unwrap();

    let text = std::fs::read_to_string(&path).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(
        lines.len() as u64,
        written + 2,
        "every event on disk, plus header and footer"
    );
    // Event volume scales with the workload (≥ submit+start+grab+release+
    // finish per completed job), far beyond any buffer.
    assert!(
        written >= 5 * out.report.completed as u64,
        "{written} events for {} completed jobs",
        out.report.completed
    );
    // Spot-parse head, middle, and tail; footer carries the trace hash.
    for &i in &[0usize, lines.len() / 2, lines.len() - 1] {
        parse_trace_line(lines[i]).unwrap();
    }
    assert!(lines[lines.len() - 1].contains(&format!("{:016x}", out.trace_hash)));
    let _ = std::fs::remove_file(&path);
}

/// Observers compose with the result cache without perturbing it: a cold
/// observed run stores the same cells a plain run would, and the warm
/// replay exports byte-identical CSV/JSON while writing no traces (cached
/// cells are never re-simulated).
#[test]
fn warm_cache_replay_under_observation_is_byte_identical() {
    let spec = small_grid("observe-cache");
    let cache = tmp("cache");
    let traces_cold = tmp("cache-traces-cold");
    let traces_warm = tmp("cache-traces-warm");
    for d in [&cache, &traces_cold, &traces_warm] {
        let _ = std::fs::remove_dir_all(d);
    }

    let plain = ExperimentRunner::with_threads(2).run(&spec).unwrap();
    let cold = ExperimentRunner::with_threads(2)
        .cache_dir(&cache)
        .unwrap()
        .trace_dir(&traces_cold)
        .unwrap()
        .run(&spec)
        .unwrap();
    assert_eq!(cold.stats().simulated, spec.cell_count());
    assert_eq!(read_traces(&traces_cold).len(), spec.cell_count());

    let warm = ExperimentRunner::with_threads(2)
        .cache_dir(&cache)
        .unwrap()
        .trace_dir(&traces_warm)
        .unwrap()
        .run(&spec)
        .unwrap();
    assert_eq!(warm.stats().cache_hits, spec.cell_count());
    assert_eq!(warm.stats().simulated, 0);
    assert!(
        read_traces(&traces_warm).is_empty(),
        "cache hits are not re-simulated, so they emit no trace"
    );
    // Observation changed nothing: plain, cold-observed, and warm replay
    // all export the same bytes.
    assert_eq!(plain.to_csv(), cold.to_csv());
    assert_eq!(plain.to_csv(), warm.to_csv());
    assert_eq!(plain.to_json(), warm.to_json());
    for (p, w) in plain.cells().iter().zip(warm.cells()) {
        assert_eq!(p.output.trace_hash, w.output.trace_hash);
    }
    for d in [&cache, &traces_cold, &traces_warm] {
        let _ = std::fs::remove_dir_all(d);
    }
}

/// The sampled probe's output is bounded by the cadence, not the event
/// count, and its final sample shows the drained machine.
#[test]
fn sampled_probe_output_is_cadence_bounded() {
    let w = SystemPreset::HighThroughput
        .synthetic_spec(1_000)
        .generate(4);
    let cluster = ClusterSpec::new(4, 32, NodeSpec::new(32, 192 * 1024), per_rack(512));
    let sched = SchedulerBuilder::new()
        .memory(MemoryPolicy::PoolFirstFit)
        .slowdown(SlowdownModel::Linear { penalty: 1.5 })
        .build();
    let sim = Simulation::new(SimConfig::new(cluster, sched)).unwrap();
    let mut probe = SampledSeriesProbe::new(SimDuration::from_secs(6 * 3600));
    let out = sim.run_with(&w, ObserverSet::new().watch(&mut probe));
    let span_h = out.end_time.as_hours_f64();
    let expected = (span_h / 6.0).floor() as usize + 2; // cadence points + closing sample
    assert!(
        probe.samples().len() <= expected,
        "{} samples for a {span_h:.1}h run at 6h cadence",
        probe.samples().len()
    );
    assert!(probe.samples().len() >= 3, "probe actually sampled");
    let last = probe.samples().last().unwrap();
    assert_eq!(last.running, 0);
    assert_eq!(last.nodes_busy, 0);
}
