//! Randomized invariant tests (DESIGN.md §7), driven by the workspace's own
//! deterministic PCG64 streams instead of an external property-testing
//! framework: each test fuzzes a fixed number of seeded cases, so failures
//! reproduce exactly by seed.

use dmhpc::des::{BinaryHeapQueue, CalendarQueue, EventQueue, Pcg64, SimDuration, SimTime};
use dmhpc::platform::{Cluster, ClusterSpec, MemoryAssignment, NodeSpec, PoolTopology};
use dmhpc::prelude::*;
use dmhpc::sim::scenarios::preset_cluster;
use dmhpc_metrics::JobOutcome;
use dmhpc_workload::{Job, JobId, Workload};

// ------------------------------------------------------------------ queues

/// Invariant 1: both pending-event sets are stable min-queues and agree
/// with each other on arbitrary interleavings of schedules and pops.
#[test]
fn heap_and_calendar_agree() {
    for case in 0..128u64 {
        let mut rng = Pcg64::new_stream(0xCAFE, case);
        let mut heap: BinaryHeapQueue<usize> = BinaryHeapQueue::new();
        let mut cal: CalendarQueue<usize> = CalendarQueue::new();
        let ops = 1 + rng.index(400);
        for i in 0..ops {
            if rng.chance(0.6) {
                let at = SimTime::from_micros(rng.bounded_u64(10_000));
                heap.schedule(at, i);
                cal.schedule(at, i);
            } else {
                // Dequeue times need not be monotone across interleaved
                // inserts of earlier events — only implementation agreement
                // is the invariant here.
                let a = heap.pop();
                let b = cal.pop();
                assert_eq!(a, b, "implementations diverged (case {case})");
            }
            assert_eq!(heap.len(), cal.len());
        }
        // Drain: both empty in the same order.
        loop {
            let a = heap.pop();
            let b = cal.pop();
            assert_eq!(a, b, "case {case}");
            if a.is_none() {
                break;
            }
        }
    }
}

/// Dequeue order is (time, insertion) — stability over random inputs.
#[test]
fn queue_drain_is_stable_sorted() {
    for case in 0..128u64 {
        let mut rng = Pcg64::new_stream(0xBEEF, case);
        let n = 1 + rng.index(300);
        let times: Vec<u64> = (0..n).map(|_| rng.bounded_u64(1_000)).collect();
        let mut q: BinaryHeapQueue<usize> = BinaryHeapQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_micros(t), i);
        }
        let mut out = Vec::new();
        while let Some((t, i)) = q.pop() {
            out.push((t.as_micros(), i));
        }
        let mut expect: Vec<(u64, usize)> =
            times.iter().enumerate().map(|(i, &t)| (t, i)).collect();
        expect.sort();
        assert_eq!(out, expect, "case {case}");
    }
}

// ----------------------------------------------------------------- cluster

/// Invariant 2: arbitrary allocate/release sequences never corrupt the
/// ledger, and at the end everything is released.
#[test]
fn cluster_ledger_survives_random_churn() {
    for case in 0..64u64 {
        let mut rng = Pcg64::new_stream(0xD00D, case);
        let mut cluster = Cluster::new(ClusterSpec::new(
            3,
            8,
            NodeSpec::new(16, 128),
            PoolTopology::PerRack { mib_per_rack: 256 },
        ));
        let mut active: Vec<u64> = Vec::new();
        let ops = 1 + rng.index(120);
        for _ in 0..ops {
            let lease = rng.bounded_u64(24);
            let nodes = 1 + rng.index(5);
            let remote = rng.bounded_u64(96);
            if active.contains(&lease) {
                cluster.release(lease).unwrap();
                active.retain(|&l| l != lease);
            } else if let Some(ids) = cluster.first_fit_nodes(nodes) {
                let a = MemoryAssignment::hybrid(ids, 64, remote);
                if cluster.can_allocate(&a).is_ok() {
                    cluster.allocate(lease, a).unwrap();
                    active.push(lease);
                }
            }
            assert!(cluster.verify_invariants().is_ok(), "case {case}");
        }
        for lease in active {
            cluster.release(lease).unwrap();
        }
        assert_eq!(cluster.lease_count(), 0);
        assert_eq!(cluster.free_nodes(), 24);
        assert_eq!(cluster.total_pool_used(), 0);
    }
}

/// Availability invariant 2b: arbitrary interleavings of allocation churn
/// and node state transitions never desynchronize the free-capacity
/// indexes, and out-of-service nodes never reenter them early.
#[test]
fn cluster_state_machine_survives_random_transitions() {
    use dmhpc::platform::{NodeId, NodeState};
    for case in 0..64u64 {
        let mut rng = Pcg64::new_stream(0xFA11, case);
        let mut cluster = Cluster::new(ClusterSpec::new(
            2,
            8,
            NodeSpec::new(16, 128),
            PoolTopology::PerRack { mib_per_rack: 256 },
        ));
        let mut active: Vec<u64> = Vec::new();
        let ops = 1 + rng.index(200);
        for _ in 0..ops {
            match rng.index(6) {
                0 => {
                    let lease = rng.bounded_u64(24);
                    if !active.contains(&lease) {
                        if let Some(ids) = cluster.first_fit_nodes(1 + rng.index(3)) {
                            let a = MemoryAssignment::hybrid(ids, 32, rng.bounded_u64(64));
                            if cluster.can_allocate(&a).is_ok() {
                                cluster.allocate(lease, a).unwrap();
                                active.push(lease);
                            }
                        }
                    }
                }
                1 => {
                    if let Some(&lease) = active.first() {
                        cluster.release(lease).unwrap();
                        active.retain(|&l| l != lease);
                    }
                }
                2 => {
                    let node = NodeId(rng.index(16) as u32);
                    cluster.fail_node(node).unwrap();
                    // The engine contract: interrupt (release) any lease
                    // holding a node that leaves service.
                    if let Some(lease) = cluster.holder(node) {
                        cluster.release(lease).unwrap();
                        active.retain(|&l| l != lease);
                    }
                }
                3 => {
                    let node = NodeId(rng.index(16) as u32);
                    cluster.repair_node(node).unwrap();
                }
                4 => {
                    let node = NodeId(rng.index(16) as u32);
                    cluster.drain_node(node).unwrap();
                    if let Some(lease) = cluster.holder(node) {
                        cluster.release(lease).unwrap();
                        active.retain(|&l| l != lease);
                    }
                }
                _ => {
                    let node = NodeId(rng.index(16) as u32);
                    cluster.undrain_node(node).unwrap();
                }
            }
            cluster.verify_invariants().unwrap_or_else(|e| {
                panic!("case {case}: {e}");
            });
            // Free nodes are exactly the allocatable ones.
            for n in 0..16u32 {
                let node = NodeId(n);
                let expect =
                    cluster.holder(node).is_none() && cluster.node_state(node) == NodeState::Up;
                assert_eq!(cluster.is_free(node), expect, "case {case} node {n}");
            }
        }
        // Repair everything, release everything: machine whole again.
        for lease in active {
            cluster.release(lease).unwrap();
        }
        for n in 0..16u32 {
            cluster.undrain_node(NodeId(n)).unwrap();
            cluster.repair_node(NodeId(n)).unwrap();
        }
        assert_eq!(cluster.free_nodes(), 16);
        assert_eq!(cluster.available_nodes(), 16);
        cluster.verify_invariants().unwrap();
    }
}

// ------------------------------------------------------------------ engine

/// One random job: arrival, nodes, runtime, walltime multiple, per-node
/// memory, intensity.
fn random_job(rng: &mut Pcg64, id: u64, max_nodes: u32) -> Job {
    let runtime = 60 + rng.bounded_u64(20_000 - 60);
    Job {
        id: JobId(id),
        user: (id % 7) as u32,
        arrival: SimTime::from_secs(rng.bounded_u64(50_000)),
        nodes: 1 + rng.index(max_nodes as usize) as u32,
        walltime: SimDuration::from_secs(runtime * (1 + rng.bounded_u64(3))),
        runtime: SimDuration::from_secs(runtime),
        mem_per_node: 256 + rng.bounded_u64(400_000 - 256),
        intensity: rng.next_f64(),
        slo: None,
    }
}

fn random_workload(rng: &mut Pcg64, max_jobs: usize, max_nodes: u32) -> Workload {
    let n = 1 + rng.index(max_jobs);
    let jobs: Vec<Job> = (0..n)
        .map(|i| random_job(rng, i as u64, max_nodes))
        .collect();
    Workload::from_jobs(jobs)
}

/// Invariants 3 & 6 end to end on random workloads: causality holds, every
/// job is accounted for, completed jobs consume exactly their work, and the
/// cluster ends empty (checked mode panics otherwise).
#[test]
fn engine_invariants_on_random_workloads() {
    for case in 0..48u64 {
        let mut rng = Pcg64::new_stream(0xE4617E, case);
        let w = random_workload(&mut rng, 60, 32);
        let cluster = preset_cluster(
            SystemPreset::HighThroughput,
            PoolTopology::PerRack {
                mib_per_rack: 512 * 1024,
            },
        );
        let memory = [
            MemoryPolicy::LocalOnly,
            MemoryPolicy::PoolFirstFit,
            MemoryPolicy::PoolBestFit,
            MemoryPolicy::SlowdownAware { max_dilation: 1.4 },
        ][rng.index(4)];
        let sched = SchedulerBuilder::new()
            .memory(memory)
            .slowdown(SlowdownModel::Saturating {
                penalty: 1.5,
                curvature: 3.0,
            })
            .build();
        let out = Simulation::new(SimConfig::new(cluster, sched).checked())
            .unwrap()
            .run(&w);
        assert_eq!(out.records.len(), w.len(), "case {case}");
        for r in &out.records {
            match r.outcome {
                JobOutcome::Rejected => assert!(r.start.is_none()),
                JobOutcome::Completed => {
                    let res = r.residence().unwrap();
                    let expect = r.job.runtime.scale(r.dilation_actual);
                    assert!(
                        res.as_micros().abs_diff(expect.as_micros()) <= 2,
                        "case {case}: work conservation: {res} vs {expect}"
                    );
                }
                JobOutcome::Killed => {
                    assert!(r.residence().unwrap() <= r.job.walltime.scale(2.0));
                }
                JobOutcome::Failed => {
                    panic!("case {case}: fault-free run produced a Failed job")
                }
            }
            if let Some(s) = r.start {
                assert!(s >= r.job.arrival);
            }
        }
        assert!(out.report.node_util <= 1.0 + 1e-9);
    }
}

/// Determinism (invariant 7): identical inputs give identical traces.
#[test]
fn engine_is_deterministic() {
    for case in 0..24u64 {
        let mut rng = Pcg64::new_stream(0xDE7E12, case);
        let w = random_workload(&mut rng, 40, 16);
        let cluster = preset_cluster(
            SystemPreset::HighThroughput,
            PoolTopology::Global { mib: 1024 * 1024 },
        );
        let sched = SchedulerBuilder::new()
            .memory(MemoryPolicy::PoolBestFit)
            .slowdown(SlowdownModel::Contention {
                penalty: 1.5,
                gamma: 1.0,
            })
            .build();
        let sim = Simulation::new(SimConfig::new(cluster, sched)).unwrap();
        let a = sim.run(&w);
        let b = sim.run(&w);
        assert_eq!(a.trace_hash, b.trace_hash, "case {case}");
        assert_eq!(a.passes, b.passes);
    }
}

/// A random fault scenario: some mix of failures, drains, and pool
/// degradations with a random interrupt policy and budget.
fn random_faults(rng: &mut Pcg64) -> dmhpc::sim::FaultSpec {
    use dmhpc::sim::{FaultGenerator, FaultSpec, InterruptPolicy};
    let mut gen =
        FaultGenerator::quiet(rng.bounded_u64(1 << 20), 50_000 + rng.bounded_u64(150_000));
    if rng.chance(0.8) {
        gen.node_mtbf_s = 5_000 + rng.bounded_u64(40_000);
        gen.node_repair_s = 500 + rng.bounded_u64(20_000);
    }
    if rng.chance(0.5) {
        gen.drain_interval_s = 20_000 + rng.bounded_u64(80_000);
        gen.drain_duration_s = 1_000 + rng.bounded_u64(30_000);
    }
    if rng.chance(0.5) {
        gen.pool_degrade_interval_s = 20_000 + rng.bounded_u64(100_000);
        gen.pool_degrade_duration_s = 1_000 + rng.bounded_u64(40_000);
        gen.pool_degrade_factor = rng.range_f64(0.2, 0.9);
    }
    let interrupt = if rng.chance(0.5) {
        InterruptPolicy::Resubmit
    } else {
        InterruptPolicy::Checkpoint {
            overhead_s: rng.bounded_u64(600),
        }
    };
    FaultSpec::none()
        .with_generator(gen)
        .with_interrupt(interrupt)
        .with_max_resubmits(rng.index(4) as u32)
}

/// Fault-scenario invariants end to end on random workloads × random
/// scenarios, with per-batch checks on (checked mode asserts that no job
/// occupies a Down/Draining node and no pool exceeds its degraded
/// capacity after every event batch):
///
/// * every job is accounted for exactly once
///   (completed + killed + rejected + failed == submitted);
/// * every interruption ends in exactly one of {resubmission, terminal
///   failure}: `interruptions == resubmissions + failed-while-running`;
/// * resubmissions never exceed the per-job budget;
/// * identical inputs reproduce identical traces and fault counters.
#[test]
fn engine_fault_invariants_on_random_scenarios() {
    for case in 0..32u64 {
        let mut rng = Pcg64::new_stream(0xFA117E57, case);
        let w = random_workload(&mut rng, 50, 24);
        let faults = random_faults(&mut rng);
        let cluster = preset_cluster(
            SystemPreset::HighThroughput,
            PoolTopology::PerRack {
                mib_per_rack: 512 * 1024,
            },
        );
        let memory = [
            MemoryPolicy::LocalOnly,
            MemoryPolicy::PoolFirstFit,
            MemoryPolicy::PoolBestFit,
            MemoryPolicy::SlowdownAware { max_dilation: 1.4 },
        ][rng.index(4)];
        let sched = SchedulerBuilder::new()
            .memory(memory)
            .slowdown(SlowdownModel::Contention {
                penalty: 1.5,
                gamma: 1.0,
            })
            .build();
        let sim = Simulation::new(SimConfig::new(cluster, sched).checked())
            .unwrap()
            .with_fault_spec(faults.clone())
            .unwrap();
        let out = sim.run(&w);

        assert_eq!(out.records.len(), w.len(), "case {case}");
        let r = &out.report;
        assert_eq!(
            r.completed + r.killed + r.rejected + r.failed,
            w.len(),
            "case {case}: every job accounted for exactly once"
        );
        let failed_running = out
            .records
            .iter()
            .filter(|rec| rec.outcome == JobOutcome::Failed && rec.start.is_some())
            .count() as u64;
        assert_eq!(
            out.faults.interruptions,
            out.faults.resubmissions + failed_running,
            "case {case}: each interruption → one resubmission xor one terminal failure"
        );
        assert!(
            out.faults.resubmissions <= out.faults.interruptions,
            "case {case}"
        );
        if out.faults.interruptions > 0 {
            assert!(out.faults.rework_s >= 0.0);
        }
        assert!(out.report.avail_util <= 1.0 + 1e-9, "case {case}");

        // Determinism under faults (trace + counters).
        let again = sim.run(&w);
        assert_eq!(out.trace_hash, again.trace_hash, "case {case}");
        assert_eq!(out.faults, again.faults, "case {case}");
        assert_eq!(out.passes, again.passes, "case {case}");
    }
}

// ---------------------------------------------------------------- workload

/// rescale_load hits its target for arbitrary workloads (within the
/// rounding of integer microsecond arrivals).
#[test]
fn rescale_load_is_exact() {
    let mut tested = 0u32;
    for case in 0..96u64 {
        let mut rng = Pcg64::new_stream(0x10AD, case);
        let n = 3 + rng.index(47);
        let jobs: Vec<Job> = (0..n).map(|i| random_job(&mut rng, i as u64, 8)).collect();
        let w = Workload::from_jobs(jobs);
        let target = rng.range_f64(0.2, 1.5);
        if w.arrival_span() <= SimDuration::from_secs(10) {
            continue;
        }
        tested += 1;
        let scaled = dmhpc::workload::transform::rescale_load(&w, 64, target);
        let achieved = scaled.offered_load(64);
        assert!(
            (achieved - target).abs() / target < 0.01,
            "case {case}: target {target} achieved {achieved}"
        );
    }
    assert!(
        tested >= 32,
        "most random workloads must exercise the check"
    );
}

/// Memory-preserving node capping (invariant 5 precondition).
#[test]
fn cap_nodes_preserves_footprint() {
    for case in 0..64u64 {
        let mut rng = Pcg64::new_stream(0xCA9, case);
        let w = random_workload(&mut rng, 40, 64);
        let cap = 1 + rng.index(31) as u32;
        let capped = dmhpc::workload::transform::cap_nodes(&w, cap);
        for (a, b) in w.iter().zip(capped.iter()) {
            assert!(b.nodes <= cap.max(a.nodes.min(cap)), "case {case}");
            // ceil rounding may only grow the total, never shrink it.
            assert!(b.total_mem() >= a.total_mem());
            assert!(b.total_mem() < a.total_mem() + b.nodes as u64);
        }
    }
}
