//! Property-based tests (proptest) for the core invariants in DESIGN.md §7.

use dmhpc::des::{BinaryHeapQueue, CalendarQueue, EventQueue, SimDuration, SimTime};
use dmhpc::platform::{Cluster, ClusterSpec, MemoryAssignment, NodeSpec, PoolTopology};
use dmhpc::prelude::*;
use dmhpc::sim::scenarios::preset_cluster;
use dmhpc_metrics::JobOutcome;
use dmhpc_workload::{Job, JobId, Workload};
use proptest::prelude::*;

// ------------------------------------------------------------------ queues

/// Invariant 1: both pending-event sets are stable min-queues and agree
/// with each other on arbitrary interleavings of schedules and pops.
fn queue_ops() -> impl Strategy<Value = Vec<Option<u64>>> {
    // Some(t) = schedule at time t; None = pop.
    prop::collection::vec(prop::option::weighted(0.6, 0u64..10_000), 1..400)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn heap_and_calendar_agree(ops in queue_ops()) {
        let mut heap: BinaryHeapQueue<usize> = BinaryHeapQueue::new();
        let mut cal: CalendarQueue<usize> = CalendarQueue::new();
        for (i, op) in ops.into_iter().enumerate() {
            match op {
                Some(t) => {
                    let at = SimTime::from_micros(t);
                    heap.schedule(at, i);
                    cal.schedule(at, i);
                }
                None => {
                    // Note: dequeue times need not be monotone across
                    // interleaved inserts of earlier events — only
                    // implementation agreement is the invariant here.
                    let a = heap.pop();
                    let b = cal.pop();
                    prop_assert_eq!(&a, &b, "implementations diverged");
                }
            }
            prop_assert_eq!(heap.len(), cal.len());
        }
        // Drain: both empty in the same order.
        loop {
            let a = heap.pop();
            let b = cal.pop();
            prop_assert_eq!(&a, &b);
            if a.is_none() {
                break;
            }
        }
    }

    /// Dequeue order is (time, insertion) — stability over random inputs.
    #[test]
    fn queue_drain_is_stable_sorted(times in prop::collection::vec(0u64..1_000, 1..300)) {
        let mut q: BinaryHeapQueue<usize> = BinaryHeapQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_micros(t), i);
        }
        let mut out = Vec::new();
        while let Some((t, i)) = q.pop() {
            out.push((t.as_micros(), i));
        }
        let mut expect: Vec<(u64, usize)> =
            times.iter().enumerate().map(|(i, &t)| (t, i)).collect();
        expect.sort();
        prop_assert_eq!(out, expect);
    }
}

// ----------------------------------------------------------------- cluster

// Invariant 2: arbitrary allocate/release sequences never corrupt the
// ledger, and at the end everything is released.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cluster_ledger_survives_random_churn(
        ops in prop::collection::vec((0u64..24, 1u32..6, 0u64..96), 1..120)
    ) {
        let mut cluster = Cluster::new(ClusterSpec::new(
            3,
            8,
            NodeSpec::new(16, 128),
            PoolTopology::PerRack { mib_per_rack: 256 },
        ));
        let mut active: Vec<u64> = Vec::new();
        for (lease, nodes, remote) in ops {
            if active.contains(&lease) {
                cluster.release(lease).unwrap();
                active.retain(|&l| l != lease);
            } else {
                let nodes = cluster.first_fit_nodes(nodes as usize);
                if let Some(ids) = nodes {
                    let a = MemoryAssignment::hybrid(ids, 64, remote);
                    if cluster.can_allocate(&a).is_ok() {
                        cluster.allocate(lease, a).unwrap();
                        active.push(lease);
                    }
                }
            }
            prop_assert!(cluster.verify_invariants().is_ok());
        }
        for lease in active {
            cluster.release(lease).unwrap();
        }
        prop_assert_eq!(cluster.lease_count(), 0);
        prop_assert_eq!(cluster.free_nodes(), 24);
        prop_assert_eq!(cluster.total_pool_used(), 0);
    }
}

// ------------------------------------------------------------------ engine

fn arb_job(max_nodes: u32) -> impl Strategy<Value = (u64, u32, u64, u64, u64, f64)> {
    (
        0u64..50_000,      // arrival s
        1u32..=max_nodes,  // nodes
        60u64..20_000,     // runtime s
        1u64..4,           // walltime multiplier
        256u64..400_000,   // mem per node MiB (node = 196608 MiB)
        0.0f64..1.0,       // intensity
    )
}

fn build_workload(raw: Vec<(u64, u32, u64, u64, u64, f64)>) -> Workload {
    let jobs: Vec<Job> = raw
        .into_iter()
        .enumerate()
        .map(|(i, (arr, nodes, run, wmul, mem, intensity))| Job {
            id: JobId(i as u64),
            user: (i % 7) as u32,
            arrival: SimTime::from_secs(arr),
            nodes,
            walltime: SimDuration::from_secs(run * wmul),
            runtime: SimDuration::from_secs(run),
            mem_per_node: mem,
            intensity,
        })
        .collect();
    Workload::from_jobs(jobs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Invariants 3 & 6 end to end on random workloads: causality holds,
    /// every job is accounted for, completed jobs consume exactly their
    /// work, and the cluster ends empty (checked mode panics otherwise).
    #[test]
    fn engine_invariants_on_random_workloads(
        raw in prop::collection::vec(arb_job(32), 1..60),
        policy_idx in 0usize..4,
    ) {
        let w = build_workload(raw);
        let cluster = preset_cluster(
            SystemPreset::HighThroughput,
            PoolTopology::PerRack { mib_per_rack: 512 * 1024 },
        );
        let memory = [
            MemoryPolicy::LocalOnly,
            MemoryPolicy::PoolFirstFit,
            MemoryPolicy::PoolBestFit,
            MemoryPolicy::SlowdownAware { max_dilation: 1.4 },
        ][policy_idx];
        let sched = SchedulerBuilder::new()
            .memory(memory)
            .slowdown(SlowdownModel::Saturating { penalty: 1.5, curvature: 3.0 })
            .build();
        let out = Simulation::new(SimConfig::new(cluster, *sched.config()).checked()).run(&w);
        prop_assert_eq!(out.records.len(), w.len());
        for r in &out.records {
            match r.outcome {
                JobOutcome::Rejected => prop_assert!(r.start.is_none()),
                JobOutcome::Completed => {
                    let res = r.residence().unwrap();
                    let expect = r.job.runtime.scale(r.dilation_actual);
                    prop_assert!(
                        res.as_micros().abs_diff(expect.as_micros()) <= 2,
                        "work conservation: {} vs {}", res, expect
                    );
                }
                JobOutcome::Killed => {
                    prop_assert!(r.residence().unwrap() <= r.job.walltime.scale(2.0));
                }
            }
            if let Some(s) = r.start {
                prop_assert!(s >= r.job.arrival);
            }
        }
        prop_assert!(out.report.node_util <= 1.0 + 1e-9);
    }

    /// Determinism (invariant 7): identical inputs give identical traces.
    #[test]
    fn engine_is_deterministic(
        raw in prop::collection::vec(arb_job(16), 1..40),
    ) {
        let w = build_workload(raw);
        let cluster = preset_cluster(
            SystemPreset::HighThroughput,
            PoolTopology::Global { mib: 1024 * 1024 },
        );
        let sched = SchedulerBuilder::new()
            .memory(MemoryPolicy::PoolBestFit)
            .slowdown(SlowdownModel::Contention { penalty: 1.5, gamma: 1.0 })
            .build();
        let sim = Simulation::new(SimConfig::new(cluster, *sched.config()));
        let a = sim.run(&w);
        let b = sim.run(&w);
        prop_assert_eq!(a.trace_hash, b.trace_hash);
        prop_assert_eq!(a.passes, b.passes);
    }
}

// ---------------------------------------------------------------- workload

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// rescale_load hits its target for arbitrary workloads (within the
    /// rounding of integer microsecond arrivals).
    #[test]
    fn rescale_load_is_exact(
        raw in prop::collection::vec(arb_job(8), 3..50),
        target in 0.2f64..1.5,
    ) {
        let w = build_workload(raw);
        prop_assume!(w.arrival_span() > SimDuration::from_secs(10));
        let scaled = dmhpc::workload::transform::rescale_load(&w, 64, target);
        let achieved = scaled.offered_load(64);
        prop_assert!((achieved - target).abs() / target < 0.01,
            "target {} achieved {}", target, achieved);
    }

    /// Memory-preserving node capping (invariant 5 precondition).
    #[test]
    fn cap_nodes_preserves_footprint(
        raw in prop::collection::vec(arb_job(64), 1..40),
        cap in 1u32..32,
    ) {
        let w = build_workload(raw);
        let capped = dmhpc::workload::transform::cap_nodes(&w, cap);
        for (a, b) in w.iter().zip(capped.iter()) {
            prop_assert!(b.nodes <= cap.max(a.nodes.min(cap)));
            // ceil rounding may only grow the total, never shrink it.
            prop_assert!(b.total_mem() >= a.total_mem());
            prop_assert!(b.total_mem() < a.total_mem() + b.nodes as u64);
        }
    }
}
