//! Compute-node specification and availability state.

use crate::units::{fmt_mib, MiB};
use std::fmt;

/// Availability state of one compute node — the node half of the
/// fault/availability state machine (the pool half is
/// [`crate::MemoryPool`]'s health factor).
///
/// Transitions (enforced by [`crate::Cluster`]):
///
/// * `Up → Down` (failure) and `Draining → Down` — the node is lost; any
///   job holding it is interrupted by the engine.
/// * `Down → Up` (repair) — the node returns to service and, if
///   unallocated, to the free-capacity indexes.
/// * `Up → Draining` (maintenance drain start) — the node leaves the
///   schedulable set; running work is interrupted (hard drain) so the
///   node is free for maintenance immediately.
/// * `Draining → Up` (drain end) — maintenance finished.
///
/// Only `Up` nodes are schedulable: the cluster's free-node indexes
/// contain exactly the unallocated `Up` nodes, so placement policies are
/// availability-aware without any extra checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NodeState {
    /// In service and schedulable.
    #[default]
    Up,
    /// Out of the schedulable set for maintenance; returns via drain-end.
    Draining,
    /// Failed; returns via repair.
    Down,
}

impl NodeState {
    /// Stable name for reports and errors.
    pub fn name(&self) -> &'static str {
        match self {
            NodeState::Up => "up",
            NodeState::Draining => "draining",
            NodeState::Down => "down",
        }
    }
}

/// Static description of one compute node. Clusters here are homogeneous —
/// the norm for the capability systems this study targets — so one spec
/// describes every node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeSpec {
    /// CPU cores per node (informational: jobs allocate whole nodes, but
    /// core counts drive the core-hour accounting in metrics).
    pub cores: u32,
    /// Node-local DRAM in MiB.
    pub local_mem: MiB,
}

impl NodeSpec {
    /// A node with `cores` cores and `local_mem_mib` MiB of DRAM.
    ///
    /// Panicking shorthand for [`NodeSpec::try_new`], for specs written as
    /// literals. Fallible paths (config files, experiment grids) should use
    /// `try_new`.
    pub fn new(cores: u32, local_mem_mib: MiB) -> Self {
        // lint: allow(panic) — documented panicking shorthand; try_new is the fallible form
        Self::try_new(cores, local_mem_mib).expect("invalid NodeSpec")
    }

    /// A node with `cores` cores and `local_mem_mib` MiB of DRAM, rejecting
    /// zero-sized hardware with a typed error.
    pub fn try_new(cores: u32, local_mem_mib: MiB) -> Result<Self, crate::PlatformError> {
        let spec = NodeSpec {
            cores,
            local_mem: local_mem_mib,
        };
        spec.validate()?;
        Ok(spec)
    }

    /// Check the spec for zero-sized hardware.
    pub fn validate(&self) -> Result<(), crate::PlatformError> {
        if self.cores == 0 {
            return Err(crate::PlatformError::InvalidSpec {
                reason: "a node needs at least one core".into(),
            });
        }
        if self.local_mem == 0 {
            return Err(crate::PlatformError::InvalidSpec {
                reason: "a node needs some local memory".into(),
            });
        }
        Ok(())
    }
}

impl fmt::Display for NodeSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}c/{}", self.cores, fmt_mib(self.local_mem))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::gib;

    #[test]
    fn construction() {
        let n = NodeSpec::new(64, gib(256));
        assert_eq!(n.cores, 64);
        assert_eq!(n.local_mem, 262_144);
        assert_eq!(n.to_string(), "64c/256 GiB");
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_rejected() {
        NodeSpec::new(0, 1024);
    }

    #[test]
    #[should_panic(expected = "some local memory")]
    fn zero_memory_rejected() {
        NodeSpec::new(4, 0);
    }
}
