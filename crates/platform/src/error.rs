//! Typed platform errors.

use crate::units::{MiB, NodeId, PoolId};
use std::fmt;

/// Everything that can go wrong when mutating cluster state. Allocation
/// errors indicate scheduler bugs (policies must check feasibility before
/// committing), so the simulator treats them as fatal; they are typed so
/// tests can assert on the precise failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlatformError {
    /// The node is already held by another lease.
    NodeBusy {
        /// Node that was requested.
        node: NodeId,
        /// Lease currently holding it.
        held_by: u64,
    },
    /// The node index does not exist in this cluster.
    NoSuchNode {
        /// Offending index.
        node: NodeId,
    },
    /// Requested local memory exceeds the node's DRAM.
    LocalMemoryExceeded {
        /// Node that was requested.
        node: NodeId,
        /// Requested local MiB.
        requested: MiB,
        /// The node's DRAM capacity.
        capacity: MiB,
    },
    /// A pool lacks free capacity for the requested remote memory.
    PoolExhausted {
        /// Pool that was charged.
        pool: PoolId,
        /// Remote MiB requested from it (total across nodes).
        requested: MiB,
        /// MiB actually free.
        free: MiB,
    },
    /// Remote memory was requested but no pool covers the node.
    NoPoolForNode {
        /// Node without a pool domain.
        node: NodeId,
    },
    /// The lease id is already active.
    DuplicateLease {
        /// Offending lease.
        lease: u64,
    },
    /// The lease id is not active.
    NoSuchLease {
        /// Offending lease.
        lease: u64,
    },
    /// An assignment listed the same node twice.
    DuplicateNode {
        /// Offending node.
        node: NodeId,
    },
    /// An assignment requested zero nodes.
    EmptyAssignment,
    /// The node exists but is not in service (`Draining` or `Down`), so it
    /// cannot be allocated.
    NodeUnavailable {
        /// Offending node.
        node: NodeId,
        /// Its current availability state name (`draining`/`down`).
        state: &'static str,
    },
    /// A static description (cluster shape, node spec, slowdown model) is
    /// ill-formed. Produced by the fallible `try_new`/`validate`
    /// constructors.
    InvalidSpec {
        /// What was wrong, human-readable.
        reason: String,
    },
}

impl fmt::Display for PlatformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlatformError::NodeBusy { node, held_by } => {
                write!(f, "node {node} is held by lease {held_by}")
            }
            PlatformError::NoSuchNode { node } => write!(f, "node {node} does not exist"),
            PlatformError::LocalMemoryExceeded {
                node,
                requested,
                capacity,
            } => write!(
                f,
                "node {node}: requested {requested} MiB local > capacity {capacity} MiB"
            ),
            PlatformError::PoolExhausted {
                pool,
                requested,
                free,
            } => write!(
                f,
                "pool {pool}: requested {requested} MiB > free {free} MiB"
            ),
            PlatformError::NoPoolForNode { node } => {
                write!(f, "node {node} has no memory pool but remote MiB requested")
            }
            PlatformError::DuplicateLease { lease } => write!(f, "lease {lease} already active"),
            PlatformError::NoSuchLease { lease } => write!(f, "lease {lease} not active"),
            PlatformError::DuplicateNode { node } => {
                write!(f, "node {node} listed twice in assignment")
            }
            PlatformError::EmptyAssignment => write!(f, "assignment contains no nodes"),
            PlatformError::NodeUnavailable { node, state } => {
                write!(f, "node {node} is {state}, not in service")
            }
            PlatformError::InvalidSpec { reason } => write!(f, "invalid spec: {reason}"),
        }
    }
}

impl std::error::Error for PlatformError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = PlatformError::PoolExhausted {
            pool: PoolId(2),
            requested: 100,
            free: 50,
        };
        assert_eq!(e.to_string(), "pool p2: requested 100 MiB > free 50 MiB");
        let e = PlatformError::NodeBusy {
            node: NodeId(7),
            held_by: 99,
        };
        assert!(e.to_string().contains("n7"));
        assert!(e.to_string().contains("99"));
    }
}
