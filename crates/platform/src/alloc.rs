//! Memory assignments: how a lease's footprint is composed.

use crate::units::{MiB, NodeId};

/// A concrete placement decision for one job: which nodes it gets and how
/// each node's share of the memory footprint splits between node-local DRAM
/// and the node's pool domain.
///
/// The split is uniform across nodes — matching how MPI jobs are launched
/// (one rank layout everywhere) and how the paper's policies reason.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemoryAssignment {
    /// Nodes granted to the lease (whole-node allocation).
    pub nodes: Vec<NodeId>,
    /// Local DRAM used on each node, MiB.
    pub local_per_node: MiB,
    /// Pool memory charged to each node's domain, MiB.
    pub remote_per_node: MiB,
}

impl MemoryAssignment {
    /// An assignment served purely from node-local DRAM.
    pub fn local(nodes: Vec<NodeId>, local_per_node: MiB) -> Self {
        MemoryAssignment {
            nodes,
            local_per_node,
            remote_per_node: 0,
        }
    }

    /// An assignment borrowing `remote_per_node` MiB per node from pools.
    pub fn hybrid(nodes: Vec<NodeId>, local_per_node: MiB, remote_per_node: MiB) -> Self {
        MemoryAssignment {
            nodes,
            local_per_node,
            remote_per_node,
        }
    }

    /// Number of nodes in the assignment.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Total memory per node, MiB.
    pub fn mem_per_node(&self) -> MiB {
        self.local_per_node + self.remote_per_node
    }

    /// Total memory across all nodes, MiB.
    pub fn total_mem(&self) -> MiB {
        self.mem_per_node() * self.nodes.len() as u64
    }

    /// Total pool memory across all nodes, MiB.
    pub fn total_remote(&self) -> MiB {
        self.remote_per_node * self.nodes.len() as u64
    }

    /// Fraction of the footprint served from pools (0 when footprint is 0).
    pub fn far_fraction(&self) -> f64 {
        let total = self.mem_per_node();
        if total == 0 {
            0.0
        } else {
            self.remote_per_node as f64 / total as f64
        }
    }

    /// True if any pool memory is involved.
    pub fn uses_pool(&self) -> bool {
        self.remote_per_node > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nodes(n: u32) -> Vec<NodeId> {
        (0..n).map(NodeId).collect()
    }

    #[test]
    fn local_assignment() {
        let a = MemoryAssignment::local(nodes(4), 1000);
        assert_eq!(a.node_count(), 4);
        assert_eq!(a.mem_per_node(), 1000);
        assert_eq!(a.total_mem(), 4000);
        assert_eq!(a.total_remote(), 0);
        assert_eq!(a.far_fraction(), 0.0);
        assert!(!a.uses_pool());
    }

    #[test]
    fn hybrid_assignment() {
        let a = MemoryAssignment::hybrid(nodes(2), 600, 400);
        assert_eq!(a.mem_per_node(), 1000);
        assert_eq!(a.total_mem(), 2000);
        assert_eq!(a.total_remote(), 800);
        assert!((a.far_fraction() - 0.4).abs() < 1e-12);
        assert!(a.uses_pool());
    }

    #[test]
    fn zero_footprint() {
        let a = MemoryAssignment::local(nodes(1), 0);
        assert_eq!(a.far_fraction(), 0.0);
    }
}
