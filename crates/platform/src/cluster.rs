//! Cluster runtime state: nodes, racks, pools, and the allocation ledger.
//!
//! Besides the ledger itself, the cluster maintains two **free-capacity
//! indexes** that scheduling policies query on their hot path:
//!
//! * a sorted set of free node ids — first-fit node picks and per-rack
//!   free-node iteration cost O(picked) instead of O(total nodes);
//! * a pool ordering keyed by `(free space, pool id)` — best-fit pool
//!   selection reads the tightest sufficient pool without re-sorting on
//!   every planning call.
//!
//! Both are updated in [`allocate`](Cluster::allocate)/
//! [`release`](Cluster::release) and cross-checked by
//! [`verify_invariants`](Cluster::verify_invariants).
//!
//! **Availability.** Every node carries a [`NodeState`]
//! (`Up`/`Draining`/`Down`); the free-node indexes contain exactly the
//! *unallocated `Up`* nodes, so the state machine and the indexes stay
//! coherent on every transition ([`fail_node`](Cluster::fail_node),
//! [`repair_node`](Cluster::repair_node),
//! [`drain_node`](Cluster::drain_node),
//! [`undrain_node`](Cluster::undrain_node)) and scheduling policies never
//! see out-of-service capacity. Pools analogously carry a health factor
//! ([`set_pool_health`](Cluster::set_pool_health)) that shrinks their
//! effective capacity in the best-fit ordering.

use crate::alloc::MemoryAssignment;
use crate::error::PlatformError;
use crate::node::{NodeSpec, NodeState};
use crate::pool::MemoryPool;
use crate::topology::PoolTopology;
use crate::units::{MiB, NodeId, PoolId, RackId};
use std::collections::{BTreeMap, BTreeSet};

/// Static description of a whole machine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterSpec {
    /// Number of racks.
    pub racks: u32,
    /// Compute nodes per rack.
    pub nodes_per_rack: u32,
    /// Per-node hardware.
    pub node: NodeSpec,
    /// Disaggregated-memory layout.
    pub pool: PoolTopology,
}

impl ClusterSpec {
    /// A spec with the given shape; panics on a zero-sized machine.
    ///
    /// Panicking shorthand for [`ClusterSpec::try_new`], for specs written
    /// as literals. Fallible paths (config files, experiment grids) should
    /// use `try_new`.
    pub fn new(racks: u32, nodes_per_rack: u32, node: NodeSpec, pool: PoolTopology) -> Self {
        // lint: allow(panic) — documented panicking shorthand; try_new is the fallible form
        Self::try_new(racks, nodes_per_rack, node, pool).expect("invalid ClusterSpec")
    }

    /// A spec with the given shape, rejecting zero-sized machines with a
    /// typed error.
    pub fn try_new(
        racks: u32,
        nodes_per_rack: u32,
        node: NodeSpec,
        pool: PoolTopology,
    ) -> Result<Self, PlatformError> {
        let spec = ClusterSpec {
            racks,
            nodes_per_rack,
            node,
            pool,
        };
        spec.validate()?;
        Ok(spec)
    }

    /// Check the machine shape (used by `try_new` and by simulator
    /// constructors that accept a spec built by hand).
    pub fn validate(&self) -> Result<(), PlatformError> {
        if self.racks == 0 {
            return Err(PlatformError::InvalidSpec {
                reason: "cluster needs at least one rack".into(),
            });
        }
        if self.nodes_per_rack == 0 {
            return Err(PlatformError::InvalidSpec {
                reason: "racks need at least one node".into(),
            });
        }
        self.node.validate()
    }

    /// Total compute nodes.
    pub fn total_nodes(&self) -> u32 {
        self.racks * self.nodes_per_rack
    }

    /// Total CPU cores.
    pub fn total_cores(&self) -> u64 {
        self.total_nodes() as u64 * self.node.cores as u64
    }

    /// Total node-local DRAM, MiB.
    pub fn total_local_mem(&self) -> MiB {
        self.total_nodes() as u64 * self.node.local_mem
    }

    /// Total disaggregated memory, MiB.
    pub fn total_pool_mem(&self) -> MiB {
        self.pool.total_capacity(self.racks)
    }

    /// Total memory of any kind, MiB.
    pub fn total_mem(&self) -> MiB {
        self.total_local_mem() + self.total_pool_mem()
    }
}

/// Live cluster state. All mutation goes through [`allocate`](Cluster::allocate)
/// and [`release`](Cluster::release), which either fully succeed or leave the
/// state untouched (check-then-commit), so a failed scheduling attempt can
/// never corrupt the ledger.
#[derive(Debug, Clone)]
pub struct Cluster {
    spec: ClusterSpec,
    /// `holders[node] = Some(lease)` when the node is allocated.
    holders: Vec<Option<u64>>,
    /// Availability state per node; only `Up` nodes are schedulable.
    states: Vec<NodeState>,
    /// Number of allocated nodes (independent of availability states).
    busy_count: usize,
    /// Number of `Up` nodes.
    up_count: usize,
    /// Free-node count per rack (unallocated **and** `Up`), kept in sync
    /// with `holders` and `states`.
    rack_free: Vec<u32>,
    /// Unallocated `Up` node ids, sorted. Node ids within a rack are
    /// contiguous, so a rack's free nodes are a range query on this set.
    free_set: BTreeSet<u32>,
    pools: Vec<MemoryPool>,
    /// Pools ordered by `(free MiB, pool id)`: ascending iteration is
    /// exactly best-fit ("tightest sufficient pool first") order.
    pool_order: BTreeSet<(MiB, u32)>,
    /// Active leases in insertion-independent (sorted) order.
    leases: BTreeMap<u64, MemoryAssignment>,
}

impl Cluster {
    /// An idle cluster matching `spec`.
    pub fn new(spec: ClusterSpec) -> Self {
        let n = spec.total_nodes() as usize;
        let pools = match spec.pool {
            PoolTopology::None => Vec::new(),
            PoolTopology::PerRack { mib_per_rack } => (0..spec.racks)
                .map(|r| MemoryPool::new(PoolId(r), mib_per_rack))
                .collect(),
            PoolTopology::Global { mib } => vec![MemoryPool::new(PoolId(0), mib)],
        };
        let pool_order = pools.iter().map(|p| (p.free(), p.id().0)).collect();
        Cluster {
            spec,
            holders: vec![None; n],
            states: vec![NodeState::Up; n],
            busy_count: 0,
            up_count: n,
            rack_free: vec![spec.nodes_per_rack; spec.racks as usize],
            free_set: (0..n as u32).collect(),
            pools,
            pool_order,
            leases: BTreeMap::new(),
        }
    }

    /// The machine description.
    pub fn spec(&self) -> &ClusterSpec {
        &self.spec
    }

    /// Total compute nodes.
    pub fn total_nodes(&self) -> u32 {
        self.spec.total_nodes()
    }

    /// Rack containing `node`.
    pub fn rack_of(&self, node: NodeId) -> RackId {
        RackId(node.0 / self.spec.nodes_per_rack)
    }

    /// Pool domain covering `node`, if any.
    pub fn pool_of(&self, node: NodeId) -> Option<PoolId> {
        match self.spec.pool {
            PoolTopology::None => None,
            PoolTopology::PerRack { .. } => Some(PoolId(self.rack_of(node).0)),
            PoolTopology::Global { .. } => Some(PoolId(0)),
        }
    }

    /// Number of free nodes (unallocated and `Up`).
    pub fn free_nodes(&self) -> usize {
        self.free_set.len()
    }

    /// Number of allocated nodes.
    pub fn used_nodes(&self) -> usize {
        self.busy_count
    }

    /// Number of in-service (`Up`) nodes — the availability-weighted
    /// capacity denominator.
    pub fn available_nodes(&self) -> usize {
        self.up_count
    }

    /// Free nodes in one rack.
    pub fn free_nodes_in_rack(&self, rack: RackId) -> u32 {
        self.rack_free[rack.0 as usize]
    }

    /// True if `node` is allocatable right now (unallocated and `Up`).
    pub fn is_free(&self, node: NodeId) -> bool {
        self.free_set.contains(&node.0)
    }

    /// The lease holding `node`, if any.
    pub fn holder(&self, node: NodeId) -> Option<u64> {
        self.holders.get(node.0 as usize).copied().flatten()
    }

    /// Availability state of `node`.
    ///
    /// # Panics
    /// Panics on an out-of-range node id — state queries come from the
    /// engine's fault handling, which validates nodes up front.
    pub fn node_state(&self, node: NodeId) -> NodeState {
        self.states[node.0 as usize]
    }

    /// Take `node` out of the free indexes if it is currently free.
    fn unindex_if_free(&mut self, node: NodeId) {
        let rack = self.rack_of(node).0 as usize;
        if self.free_set.remove(&node.0) {
            self.rack_free[rack] -= 1;
        }
    }

    /// Put `node` into the free indexes if it is unallocated and `Up`.
    fn index_if_free(&mut self, node: NodeId) {
        let idx = node.0 as usize;
        let rack = self.rack_of(node).0 as usize;
        if self.holders[idx].is_none()
            && self.states[idx] == NodeState::Up
            && self.free_set.insert(node.0)
        {
            self.rack_free[rack] += 1;
        }
    }

    /// Move `node` to `Down` (failure). Legal from any state; returns
    /// whether the state actually changed. The node leaves the free
    /// indexes immediately; a lease holding it is **not** released —
    /// interrupting that job is the engine's responsibility (check
    /// [`holder`](Cluster::holder) before or after the transition).
    pub fn fail_node(&mut self, node: NodeId) -> Result<bool, PlatformError> {
        self.check_node(node)?;
        let idx = node.0 as usize;
        if self.states[idx] == NodeState::Down {
            return Ok(false);
        }
        if self.states[idx] == NodeState::Up {
            self.up_count -= 1;
        }
        self.states[idx] = NodeState::Down;
        self.unindex_if_free(node);
        Ok(true)
    }

    /// Return a `Down` node to service (`Down → Up`); no-op from other
    /// states. Returns whether the state changed. An unallocated repaired
    /// node rejoins the free indexes.
    pub fn repair_node(&mut self, node: NodeId) -> Result<bool, PlatformError> {
        self.check_node(node)?;
        let idx = node.0 as usize;
        if self.states[idx] != NodeState::Down {
            return Ok(false);
        }
        self.states[idx] = NodeState::Up;
        self.up_count += 1;
        self.index_if_free(node);
        Ok(true)
    }

    /// Start a maintenance drain (`Up → Draining`); no-op from other
    /// states. Returns whether the state changed. Like
    /// [`fail_node`](Cluster::fail_node), a lease holding the node stays
    /// allocated until the engine interrupts it.
    pub fn drain_node(&mut self, node: NodeId) -> Result<bool, PlatformError> {
        self.check_node(node)?;
        let idx = node.0 as usize;
        if self.states[idx] != NodeState::Up {
            return Ok(false);
        }
        self.states[idx] = NodeState::Draining;
        self.up_count -= 1;
        self.unindex_if_free(node);
        Ok(true)
    }

    /// End a maintenance drain (`Draining → Up`); no-op from other states
    /// (in particular a node that failed mid-drain stays `Down` until
    /// repaired). Returns whether the state changed.
    pub fn undrain_node(&mut self, node: NodeId) -> Result<bool, PlatformError> {
        self.check_node(node)?;
        let idx = node.0 as usize;
        if self.states[idx] != NodeState::Draining {
            return Ok(false);
        }
        self.states[idx] = NodeState::Up;
        self.up_count += 1;
        self.index_if_free(node);
        Ok(true)
    }

    /// Set a pool's health factor (degradation: `factor < 1`, repair:
    /// `factor = 1`), keeping the best-fit pool ordering coherent. Rejects
    /// factors outside `(0, 1]` and unknown pools.
    pub fn set_pool_health(&mut self, pool: PoolId, factor: f64) -> Result<(), PlatformError> {
        if !(factor > 0.0 && factor <= 1.0) {
            return Err(PlatformError::InvalidSpec {
                reason: format!("pool health factor must be in (0, 1], got {factor}"),
            });
        }
        let Some(p) = self.pools.get_mut(pool.0 as usize) else {
            return Err(PlatformError::InvalidSpec {
                reason: format!("no such pool {pool}"),
            });
        };
        let before = p.free();
        p.set_health(factor);
        self.pool_order.remove(&(before, pool.0));
        self.pool_order.insert((p.free(), pool.0));
        Ok(())
    }

    fn check_node(&self, node: NodeId) -> Result<(), PlatformError> {
        if (node.0 as usize) < self.holders.len() {
            Ok(())
        } else {
            Err(PlatformError::NoSuchNode { node })
        }
    }

    /// Iterator over free node ids in ascending order. Backed by the free
    /// index: taking the first `k` nodes costs O(k), not O(total nodes).
    pub fn free_node_iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.free_set.iter().map(|&i| NodeId(i))
    }

    /// Iterator over the free node ids of one rack, ascending. A range
    /// query on the free index (node ids within a rack are contiguous).
    pub fn free_nodes_in_rack_iter(&self, rack: RackId) -> impl Iterator<Item = NodeId> + '_ {
        let lo = rack.0 * self.spec.nodes_per_rack;
        let hi = lo + self.spec.nodes_per_rack;
        self.free_set.range(lo..hi).map(|&i| NodeId(i))
    }

    /// The lowest-indexed `n` free nodes, or `None` if fewer are free.
    pub fn first_fit_nodes(&self, n: usize) -> Option<Vec<NodeId>> {
        if self.free_set.len() < n {
            return None;
        }
        Some(self.free_node_iter().take(n).collect())
    }

    /// All pools (empty when the topology has none).
    pub fn pools(&self) -> &[MemoryPool] {
        &self.pools
    }

    /// One pool by id.
    ///
    /// # Panics
    /// Panics on an out-of-range id — pool ids come from
    /// [`pool_of`](Cluster::pool_of), so this is a caller bug.
    pub fn pool(&self, id: PoolId) -> &MemoryPool {
        &self.pools[id.0 as usize]
    }

    /// Free MiB in a pool.
    pub fn pool_free(&self, id: PoolId) -> MiB {
        self.pools[id.0 as usize].free()
    }

    /// Pool ids ordered by ascending `(free MiB, pool id)` — best-fit
    /// ("tightest pool first") order, maintained incrementally so callers
    /// never re-sort. Ties break on pool id, which keeps the order fully
    /// deterministic.
    pub fn pools_by_free(&self) -> impl Iterator<Item = PoolId> + '_ {
        self.pool_order.iter().map(|&(_, id)| PoolId(id))
    }

    /// Total pool MiB in use across the system.
    pub fn total_pool_used(&self) -> MiB {
        self.pools.iter().map(|p| p.used()).sum()
    }

    /// Total pool capacity across the system.
    pub fn total_pool_capacity(&self) -> MiB {
        self.pools.iter().map(|p| p.capacity()).sum()
    }

    /// Total node-local MiB currently pinned by leases.
    pub fn total_local_used(&self) -> MiB {
        self.leases
            .values()
            .map(|a| a.local_per_node * a.nodes.len() as u64)
            .sum()
    }

    /// Number of active leases.
    pub fn lease_count(&self) -> usize {
        self.leases.len()
    }

    /// The assignment held by `lease`, if active.
    pub fn lease_assignment(&self, lease: u64) -> Option<&MemoryAssignment> {
        self.leases.get(&lease)
    }

    /// Iterator over `(lease, assignment)` in lease-id order.
    pub fn active_leases(&self) -> impl Iterator<Item = (u64, &MemoryAssignment)> {
        self.leases.iter().map(|(&l, a)| (l, a))
    }

    /// Group an assignment's remote demand by pool domain. Errors if any
    /// node with remote demand lacks a pool.
    fn remote_by_pool(&self, a: &MemoryAssignment) -> Result<Vec<(PoolId, MiB)>, PlatformError> {
        let mut by_pool: Vec<(PoolId, MiB)> = Vec::new();
        if a.remote_per_node == 0 {
            return Ok(by_pool);
        }
        for &node in &a.nodes {
            let pool = self
                .pool_of(node)
                .ok_or(PlatformError::NoPoolForNode { node })?;
            match by_pool.iter_mut().find(|(p, _)| *p == pool) {
                Some((_, amt)) => *amt += a.remote_per_node,
                None => by_pool.push((pool, a.remote_per_node)),
            }
        }
        Ok(by_pool)
    }

    /// Check whether `assignment` could be granted right now, without
    /// mutating anything. Scheduling policies use this as their feasibility
    /// oracle.
    pub fn can_allocate(&self, assignment: &MemoryAssignment) -> Result<(), PlatformError> {
        if assignment.nodes.is_empty() {
            return Err(PlatformError::EmptyAssignment);
        }
        for (i, &node) in assignment.nodes.iter().enumerate() {
            let idx = node.0 as usize;
            if idx >= self.holders.len() {
                return Err(PlatformError::NoSuchNode { node });
            }
            // Duplicate check against the prefix: assignments are small next
            // to the machine, so this beats the O(total nodes) scratch
            // bitmap it replaces and allocates nothing.
            if assignment.nodes[..i].contains(&node) {
                return Err(PlatformError::DuplicateNode { node });
            }
            if let Some(held_by) = self.holders[idx] {
                return Err(PlatformError::NodeBusy { node, held_by });
            }
            if self.states[idx] != NodeState::Up {
                return Err(PlatformError::NodeUnavailable {
                    node,
                    state: self.states[idx].name(),
                });
            }
            if assignment.local_per_node > self.spec.node.local_mem {
                return Err(PlatformError::LocalMemoryExceeded {
                    node,
                    requested: assignment.local_per_node,
                    capacity: self.spec.node.local_mem,
                });
            }
        }
        for (pool, amount) in self.remote_by_pool(assignment)? {
            let free = self.pool_free(pool);
            if amount > free {
                return Err(PlatformError::PoolExhausted {
                    pool,
                    requested: amount,
                    free,
                });
            }
        }
        Ok(())
    }

    /// Grant `assignment` to `lease`. Atomic: on error nothing changed.
    pub fn allocate(
        &mut self,
        lease: u64,
        assignment: MemoryAssignment,
    ) -> Result<(), PlatformError> {
        if self.leases.contains_key(&lease) {
            return Err(PlatformError::DuplicateLease { lease });
        }
        self.can_allocate(&assignment)?;
        // Commit: can_allocate proved every step below succeeds (every
        // node free and Up, so each is present in the free indexes).
        for &node in &assignment.nodes {
            let rack = self.rack_of(node).0 as usize;
            self.holders[node.0 as usize] = Some(lease);
            self.rack_free[rack] -= 1;
            self.free_set.remove(&node.0);
        }
        self.busy_count += assignment.nodes.len();
        for (pool, amount) in self
            .remote_by_pool(&assignment)
            // lint: allow(panic) — can_allocate approved this exact assignment under the same state
            .expect("validated by can_allocate")
        {
            let p = &mut self.pools[pool.0 as usize];
            self.pool_order.remove(&(p.free(), pool.0));
            // lint: allow(panic) — can_allocate approved this exact assignment under the same state
            p.grab(lease, amount).expect("validated by can_allocate");
            self.pool_order.insert((p.free(), pool.0));
        }
        self.leases.insert(lease, assignment);
        Ok(())
    }

    /// Return everything `lease` holds; yields the released assignment.
    pub fn release(&mut self, lease: u64) -> Result<MemoryAssignment, PlatformError> {
        let assignment = self
            .leases
            .remove(&lease)
            .ok_or(PlatformError::NoSuchLease { lease })?;
        for &node in &assignment.nodes {
            debug_assert_eq!(self.holders[node.0 as usize], Some(lease));
            self.holders[node.0 as usize] = None;
            // Only Up nodes return to the free indexes: a node that failed
            // or started draining while allocated stays out of service.
            self.index_if_free(node);
        }
        self.busy_count -= assignment.nodes.len();
        // Touch only the pools this lease charged (computed from the
        // assignment, as allocate did) — not every pool on the machine.
        for (pool, _) in self
            .remote_by_pool(&assignment)
            // lint: allow(panic) — releasing what allocate granted; disagreement is a lease-bookkeeping bug
            .expect("released assignment was allocatable")
        {
            let p = &mut self.pools[pool.0 as usize];
            let before = p.free();
            if p.release(lease) > 0 {
                self.pool_order.remove(&(before, pool.0));
                self.pool_order.insert((p.free(), pool.0));
            }
        }
        Ok(assignment)
    }

    /// Full-state consistency check: holder counts, availability states,
    /// rack counters, pool ledgers, and lease↔node cross-references all
    /// agree. O(nodes+leases); meant for tests and debug builds, not the
    /// hot path.
    pub fn verify_invariants(&self) -> Result<(), String> {
        let busy = self.holders.iter().filter(|h| h.is_some()).count();
        if busy != self.busy_count {
            return Err(format!("busy_count {} != actual {}", self.busy_count, busy));
        }
        let up = self.states.iter().filter(|&&s| s == NodeState::Up).count();
        if up != self.up_count {
            return Err(format!("up_count {} != actual {}", self.up_count, up));
        }
        let expect_free: BTreeSet<u32> = self
            .holders
            .iter()
            .zip(&self.states)
            .enumerate()
            .filter(|(_, (h, s))| h.is_none() && **s == NodeState::Up)
            .map(|(i, _)| i as u32)
            .collect();
        if expect_free != self.free_set {
            return Err("free-node index out of sync with holders/states".into());
        }
        let expect_order: BTreeSet<(MiB, u32)> =
            self.pools.iter().map(|p| (p.free(), p.id().0)).collect();
        if expect_order != self.pool_order {
            return Err("pool free-space ordering out of sync with pools".into());
        }
        for p in &self.pools {
            if p.used() > p.effective_capacity() {
                return Err(format!(
                    "pool {} over-committed: {} MiB used > {} MiB effective",
                    p.id(),
                    p.used(),
                    p.effective_capacity()
                ));
            }
        }
        for (r, &rf) in self.rack_free.iter().enumerate() {
            let actual = self
                .free_set
                .iter()
                .filter(|&&i| i / self.spec.nodes_per_rack == r as u32)
                .count() as u32;
            if rf != actual {
                return Err(format!("rack {r}: rack_free {rf} != actual {actual}"));
            }
        }
        for (lease, a) in &self.leases {
            for &node in &a.nodes {
                if self.holders[node.0 as usize] != Some(*lease) {
                    return Err(format!("lease {lease}: node {node} not held by it"));
                }
            }
        }
        // Note: a lease *may* hold a non-Up node transiently — between a
        // fail/drain transition and the engine interrupting the job — so
        // lease-on-Up-nodes is checked by the engine (which knows when the
        // transition settles), not here.
        for (i, h) in self.holders.iter().enumerate() {
            if let Some(lease) = h {
                let a = self
                    .leases
                    .get(lease)
                    .ok_or_else(|| format!("node n{i} held by unknown lease {lease}"))?;
                if !a.nodes.contains(&NodeId(i as u32)) {
                    return Err(format!("node n{i} not in lease {lease}'s assignment"));
                }
            }
        }
        for p in &self.pools {
            if !p.verify() {
                return Err(format!("pool {} ledger inconsistent", p.id()));
            }
        }
        // Pool ledgers must exactly reflect lease assignments.
        for (lease, a) in &self.leases {
            let mut expected: BTreeMap<PoolId, MiB> = BTreeMap::new();
            if a.remote_per_node > 0 {
                for &node in &a.nodes {
                    let pool = self
                        .pool_of(node)
                        .ok_or_else(|| format!("lease {lease}: node {node} lacks a pool"))?;
                    *expected.entry(pool).or_insert(0) += a.remote_per_node;
                }
            }
            for p in &self.pools {
                let want = expected.get(&p.id()).copied().unwrap_or(0);
                if p.held_by(*lease) != want {
                    return Err(format!(
                        "lease {lease}: pool {} holds {} MiB, expected {want}",
                        p.id(),
                        p.held_by(*lease)
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::gib;

    fn small_cluster(pool: PoolTopology) -> Cluster {
        // 2 racks × 4 nodes, 64 cores, 256 GiB DRAM each.
        Cluster::new(ClusterSpec::new(2, 4, NodeSpec::new(64, gib(256)), pool))
    }

    fn ids(v: &[u32]) -> Vec<NodeId> {
        v.iter().map(|&i| NodeId(i)).collect()
    }

    #[test]
    fn spec_totals() {
        let s = ClusterSpec::new(
            4,
            16,
            NodeSpec::new(64, gib(256)),
            PoolTopology::PerRack {
                mib_per_rack: gib(512),
            },
        );
        assert_eq!(s.total_nodes(), 64);
        assert_eq!(s.total_cores(), 4096);
        assert_eq!(s.total_local_mem(), 64 * gib(256));
        assert_eq!(s.total_pool_mem(), gib(2048));
        assert_eq!(s.total_mem(), 64 * gib(256) + gib(2048));
    }

    #[test]
    fn rack_and_pool_mapping() {
        let c = small_cluster(PoolTopology::PerRack {
            mib_per_rack: gib(512),
        });
        assert_eq!(c.rack_of(NodeId(0)), RackId(0));
        assert_eq!(c.rack_of(NodeId(3)), RackId(0));
        assert_eq!(c.rack_of(NodeId(4)), RackId(1));
        assert_eq!(c.pool_of(NodeId(0)), Some(PoolId(0)));
        assert_eq!(c.pool_of(NodeId(7)), Some(PoolId(1)));

        let g = small_cluster(PoolTopology::Global { mib: gib(512) });
        assert_eq!(g.pool_of(NodeId(7)), Some(PoolId(0)));
        let n = small_cluster(PoolTopology::None);
        assert_eq!(n.pool_of(NodeId(0)), None);
    }

    #[test]
    fn allocate_local_roundtrip() {
        let mut c = small_cluster(PoolTopology::None);
        let a = MemoryAssignment::local(ids(&[0, 1, 5]), gib(100));
        c.allocate(42, a.clone()).unwrap();
        assert_eq!(c.free_nodes(), 5);
        assert_eq!(c.used_nodes(), 3);
        assert!(!c.is_free(NodeId(0)));
        assert_eq!(c.holder(NodeId(5)), Some(42));
        assert_eq!(c.free_nodes_in_rack(RackId(0)), 2);
        assert_eq!(c.free_nodes_in_rack(RackId(1)), 3);
        assert_eq!(c.total_local_used(), 3 * gib(100));
        c.verify_invariants().unwrap();

        let released = c.release(42).unwrap();
        assert_eq!(released, a);
        assert_eq!(c.free_nodes(), 8);
        assert_eq!(c.total_local_used(), 0);
        c.verify_invariants().unwrap();
    }

    #[test]
    fn allocate_with_pool_memory() {
        let mut c = small_cluster(PoolTopology::PerRack {
            mib_per_rack: gib(512),
        });
        // 2 nodes in rack 0, 1 in rack 1; 100 GiB remote each.
        let a = MemoryAssignment::hybrid(ids(&[0, 1, 4]), gib(256), gib(100));
        c.allocate(1, a).unwrap();
        assert_eq!(c.pool(PoolId(0)).used(), gib(200));
        assert_eq!(c.pool(PoolId(1)).used(), gib(100));
        assert_eq!(c.total_pool_used(), gib(300));
        c.verify_invariants().unwrap();

        c.release(1).unwrap();
        assert_eq!(c.total_pool_used(), 0);
        c.verify_invariants().unwrap();
    }

    #[test]
    fn atomic_failure_on_pool_exhaustion() {
        let mut c = small_cluster(PoolTopology::PerRack {
            mib_per_rack: gib(150),
        });
        // Rack-0 pool is 150 GiB; two nodes × 100 GiB = 200 GiB > 150.
        let a = MemoryAssignment::hybrid(ids(&[0, 1]), gib(256), gib(100));
        let err = c.allocate(1, a).unwrap_err();
        assert!(matches!(err, PlatformError::PoolExhausted { .. }));
        // Nothing leaked.
        assert_eq!(c.free_nodes(), 8);
        assert_eq!(c.total_pool_used(), 0);
        assert_eq!(c.lease_count(), 0);
        c.verify_invariants().unwrap();
    }

    #[test]
    fn rejects_busy_and_unknown_nodes() {
        let mut c = small_cluster(PoolTopology::None);
        c.allocate(1, MemoryAssignment::local(ids(&[2]), 1))
            .unwrap();
        let err = c
            .allocate(2, MemoryAssignment::local(ids(&[2]), 1))
            .unwrap_err();
        assert_eq!(
            err,
            PlatformError::NodeBusy {
                node: NodeId(2),
                held_by: 1
            }
        );
        let err = c
            .allocate(3, MemoryAssignment::local(ids(&[99]), 1))
            .unwrap_err();
        assert_eq!(err, PlatformError::NoSuchNode { node: NodeId(99) });
    }

    #[test]
    fn rejects_duplicates_and_empties() {
        let mut c = small_cluster(PoolTopology::None);
        let err = c
            .allocate(1, MemoryAssignment::local(ids(&[3, 3]), 1))
            .unwrap_err();
        assert_eq!(err, PlatformError::DuplicateNode { node: NodeId(3) });
        let err = c
            .allocate(1, MemoryAssignment::local(vec![], 1))
            .unwrap_err();
        assert_eq!(err, PlatformError::EmptyAssignment);
        c.allocate(1, MemoryAssignment::local(ids(&[0]), 1))
            .unwrap();
        let err = c
            .allocate(1, MemoryAssignment::local(ids(&[1]), 1))
            .unwrap_err();
        assert_eq!(err, PlatformError::DuplicateLease { lease: 1 });
    }

    #[test]
    fn rejects_oversized_local_memory() {
        let mut c = small_cluster(PoolTopology::None);
        let err = c
            .allocate(1, MemoryAssignment::local(ids(&[0]), gib(257)))
            .unwrap_err();
        assert!(matches!(err, PlatformError::LocalMemoryExceeded { .. }));
    }

    #[test]
    fn remote_without_pool_is_an_error() {
        let mut c = small_cluster(PoolTopology::None);
        let err = c
            .allocate(1, MemoryAssignment::hybrid(ids(&[0]), gib(256), gib(1)))
            .unwrap_err();
        assert_eq!(err, PlatformError::NoPoolForNode { node: NodeId(0) });
    }

    #[test]
    fn release_unknown_lease() {
        let mut c = small_cluster(PoolTopology::None);
        assert_eq!(
            c.release(9).unwrap_err(),
            PlatformError::NoSuchLease { lease: 9 }
        );
    }

    #[test]
    fn first_fit_selection() {
        let mut c = small_cluster(PoolTopology::None);
        c.allocate(1, MemoryAssignment::local(ids(&[0, 2]), 1))
            .unwrap();
        assert_eq!(c.first_fit_nodes(3), Some(ids(&[1, 3, 4])));
        assert_eq!(c.first_fit_nodes(7), None);
        assert_eq!(c.free_node_iter().count(), 6);
    }

    #[test]
    fn rack_free_iter_is_a_range_query() {
        let mut c = small_cluster(PoolTopology::None);
        c.allocate(1, MemoryAssignment::local(ids(&[0, 2, 5]), 1))
            .unwrap();
        let rack0: Vec<NodeId> = c.free_nodes_in_rack_iter(RackId(0)).collect();
        assert_eq!(rack0, ids(&[1, 3]));
        let rack1: Vec<NodeId> = c.free_nodes_in_rack_iter(RackId(1)).collect();
        assert_eq!(rack1, ids(&[4, 6, 7]));
        c.release(1).unwrap();
        assert_eq!(c.free_nodes_in_rack_iter(RackId(0)).count(), 4);
    }

    #[test]
    fn pool_order_tracks_best_fit() {
        let mut c = small_cluster(PoolTopology::PerRack {
            mib_per_rack: gib(512),
        });
        let order: Vec<PoolId> = c.pools_by_free().collect();
        assert_eq!(order, vec![PoolId(0), PoolId(1)], "equal free: id order");
        // Drain rack-1's pool harder than rack-0's.
        c.allocate(1, MemoryAssignment::hybrid(ids(&[4]), gib(256), gib(300)))
            .unwrap();
        c.allocate(2, MemoryAssignment::hybrid(ids(&[0]), gib(256), gib(100)))
            .unwrap();
        let order: Vec<PoolId> = c.pools_by_free().collect();
        assert_eq!(order, vec![PoolId(1), PoolId(0)], "tightest pool first");
        c.verify_invariants().unwrap();
        c.release(1).unwrap();
        let order: Vec<PoolId> = c.pools_by_free().collect();
        assert_eq!(order, vec![PoolId(0), PoolId(1)]);
        c.verify_invariants().unwrap();
    }

    #[test]
    fn global_pool_spans_racks() {
        let mut c = small_cluster(PoolTopology::Global { mib: gib(300) });
        let a = MemoryAssignment::hybrid(ids(&[0, 4]), gib(256), gib(150));
        c.allocate(1, a).unwrap();
        assert_eq!(c.pool(PoolId(0)).used(), gib(300));
        assert_eq!(c.pool_free(PoolId(0)), 0);
        c.verify_invariants().unwrap();
    }

    #[test]
    fn fail_and_repair_keep_indexes_coherent() {
        let mut c = small_cluster(PoolTopology::None);
        assert_eq!(c.available_nodes(), 8);
        assert!(c.fail_node(NodeId(2)).unwrap());
        assert!(!c.fail_node(NodeId(2)).unwrap(), "double fail is a no-op");
        assert_eq!(c.node_state(NodeId(2)), NodeState::Down);
        assert_eq!(c.free_nodes(), 7);
        assert_eq!(c.available_nodes(), 7);
        assert_eq!(c.free_nodes_in_rack(RackId(0)), 3);
        assert!(!c.is_free(NodeId(2)));
        c.verify_invariants().unwrap();

        // A Down node cannot be allocated; first-fit skips it.
        let err = c
            .allocate(1, MemoryAssignment::local(ids(&[2]), 1))
            .unwrap_err();
        assert!(matches!(err, PlatformError::NodeUnavailable { .. }));
        assert_eq!(c.first_fit_nodes(3), Some(ids(&[0, 1, 3])));

        assert!(c.repair_node(NodeId(2)).unwrap());
        assert!(
            !c.repair_node(NodeId(2)).unwrap(),
            "repairing Up is a no-op"
        );
        assert_eq!(c.free_nodes(), 8);
        assert_eq!(c.available_nodes(), 8);
        c.verify_invariants().unwrap();
    }

    #[test]
    fn drain_state_machine() {
        let mut c = small_cluster(PoolTopology::None);
        assert!(c.drain_node(NodeId(5)).unwrap());
        assert_eq!(c.node_state(NodeId(5)), NodeState::Draining);
        assert_eq!(c.free_nodes(), 7);
        assert!(!c.drain_node(NodeId(5)).unwrap(), "double drain no-op");
        c.verify_invariants().unwrap();
        // Fail during drain: node goes Down; drain-end then does nothing.
        assert!(c.fail_node(NodeId(5)).unwrap());
        assert!(!c.undrain_node(NodeId(5)).unwrap());
        assert_eq!(c.node_state(NodeId(5)), NodeState::Down);
        assert!(c.repair_node(NodeId(5)).unwrap());
        assert_eq!(c.free_nodes(), 8);
        c.verify_invariants().unwrap();
        // Unknown node is a typed error.
        assert!(matches!(
            c.fail_node(NodeId(99)).unwrap_err(),
            PlatformError::NoSuchNode { .. }
        ));
    }

    #[test]
    fn failed_busy_node_stays_out_of_service_after_release() {
        let mut c = small_cluster(PoolTopology::None);
        c.allocate(7, MemoryAssignment::local(ids(&[0, 1]), 1))
            .unwrap();
        assert!(c.fail_node(NodeId(0)).unwrap());
        // Lease stays; the holder is still recorded (engine interrupts it).
        assert_eq!(c.holder(NodeId(0)), Some(7));
        assert_eq!(c.used_nodes(), 2);
        // Release returns only the Up node to the free set.
        c.release(7).unwrap();
        assert_eq!(c.free_nodes(), 7);
        assert!(!c.is_free(NodeId(0)));
        assert!(c.is_free(NodeId(1)));
        c.verify_invariants().unwrap();
        c.repair_node(NodeId(0)).unwrap();
        assert_eq!(c.free_nodes(), 8);
        c.verify_invariants().unwrap();
    }

    #[test]
    fn pool_degradation_feeds_best_fit_order() {
        let mut c = small_cluster(PoolTopology::PerRack {
            mib_per_rack: gib(512),
        });
        c.set_pool_health(PoolId(0), 0.25).unwrap();
        assert_eq!(c.pool_free(PoolId(0)), gib(128));
        let order: Vec<PoolId> = c.pools_by_free().collect();
        assert_eq!(order, vec![PoolId(0), PoolId(1)], "degraded pool first");
        c.verify_invariants().unwrap();
        // Allocation is bounded by the degraded capacity.
        let err = c
            .allocate(1, MemoryAssignment::hybrid(ids(&[0]), gib(256), gib(200)))
            .unwrap_err();
        assert!(matches!(err, PlatformError::PoolExhausted { .. }));
        c.allocate(1, MemoryAssignment::hybrid(ids(&[0]), gib(256), gib(100)))
            .unwrap();
        c.verify_invariants().unwrap();
        // Restore health: full capacity returns to the ordering.
        c.set_pool_health(PoolId(0), 1.0).unwrap();
        assert_eq!(c.pool_free(PoolId(0)), gib(412));
        c.verify_invariants().unwrap();
        // Bad factors and unknown pools are typed errors.
        assert!(c.set_pool_health(PoolId(0), 0.0).is_err());
        assert!(c.set_pool_health(PoolId(0), 1.5).is_err());
        assert!(c.set_pool_health(PoolId(9), 0.5).is_err());
    }

    #[test]
    fn many_leases_stress_invariants() {
        let mut c = Cluster::new(ClusterSpec::new(
            4,
            8,
            NodeSpec::new(32, gib(128)),
            PoolTopology::PerRack {
                mib_per_rack: gib(256),
            },
        ));
        // Allocate 16 single-node leases with varying remote shares, then
        // free the even ones, then reallocate.
        for i in 0..16u64 {
            let a = MemoryAssignment::hybrid(ids(&[i as u32]), gib(64), gib((i % 4) * 16));
            c.allocate(i, a).unwrap();
        }
        c.verify_invariants().unwrap();
        for i in (0..16u64).step_by(2) {
            c.release(i).unwrap();
        }
        c.verify_invariants().unwrap();
        assert_eq!(c.lease_count(), 8);
        for i in 16..24u64 {
            let nodes = c.first_fit_nodes(1).unwrap();
            c.allocate(i, MemoryAssignment::local(nodes, gib(10)))
                .unwrap();
        }
        c.verify_invariants().unwrap();
        assert_eq!(c.lease_count(), 16);
    }
}
