//! Capacity units and entity identifiers.

use std::fmt;

/// Memory capacity in mebibytes. All platform accounting is integral MiB;
/// that granularity is far below anything a batch scheduler allocates and
/// keeps conservation checks exact.
pub type MiB = u64;

/// One gibibyte in MiB.
pub const GIB: MiB = 1024;

/// Convert GiB to MiB.
#[inline]
pub const fn gib(n: u64) -> MiB {
    n * GIB
}

/// Render a MiB quantity human-readably (MiB/GiB/TiB).
pub fn fmt_mib(m: MiB) -> String {
    if m >= 1024 * 1024 && m.is_multiple_of(1024 * 1024) {
        format!("{} TiB", m / (1024 * 1024))
    } else if m >= 1024 && m.is_multiple_of(1024) {
        format!("{} GiB", m / 1024)
    } else {
        format!("{m} MiB")
    }
}

/// Index of a compute node within a cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

/// Index of a rack within a cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RackId(pub u32);

/// Index of a memory pool within a cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PoolId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for RackId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl fmt::Display for PoolId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gib_conversion() {
        assert_eq!(gib(2), 2048);
        assert_eq!(GIB, 1024);
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt_mib(512), "512 MiB");
        assert_eq!(fmt_mib(2048), "2 GiB");
        assert_eq!(fmt_mib(3 * 1024 * 1024), "3 TiB");
        assert_eq!(fmt_mib(1536), "1536 MiB");
        assert_eq!(NodeId(3).to_string(), "n3");
        assert_eq!(RackId(1).to_string(), "r1");
        assert_eq!(PoolId(0).to_string(), "p0");
    }
}
