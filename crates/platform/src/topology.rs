//! Where disaggregated memory lives.

use crate::units::MiB;

/// Placement of disaggregated memory in the system.
///
/// The paper's central comparison is between a conventional cluster
/// (`None`), rack-scale pooling (`PerRack` — the realistic near-term CXL
/// deployment: a memory shelf per rack, reachable at rack-local latency),
/// and an idealized system-wide pool (`Global` — an upper bound that removes
/// placement constraints entirely).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolTopology {
    /// No disaggregated memory: jobs live on node DRAM alone.
    None,
    /// One pool per rack; a node may only borrow from its own rack's pool.
    PerRack {
        /// Capacity of each rack's pool in MiB.
        mib_per_rack: MiB,
    },
    /// One pool shared by every node.
    Global {
        /// Total pool capacity in MiB.
        mib: MiB,
    },
}

impl PoolTopology {
    /// Total pool capacity across the system for a given rack count.
    pub fn total_capacity(&self, racks: u32) -> MiB {
        match *self {
            PoolTopology::None => 0,
            PoolTopology::PerRack { mib_per_rack } => mib_per_rack * racks as u64,
            PoolTopology::Global { mib } => mib,
        }
    }

    /// Number of distinct pools for a given rack count.
    pub fn pool_count(&self, racks: u32) -> u32 {
        match *self {
            PoolTopology::None => 0,
            PoolTopology::PerRack { .. } => racks,
            PoolTopology::Global { .. } => 1,
        }
    }

    /// True if any pool capacity exists.
    pub fn has_pools(&self) -> bool {
        match *self {
            PoolTopology::None => false,
            PoolTopology::PerRack { mib_per_rack } => mib_per_rack > 0,
            PoolTopology::Global { mib } => mib > 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::gib;

    #[test]
    fn capacities() {
        assert_eq!(PoolTopology::None.total_capacity(10), 0);
        assert_eq!(
            PoolTopology::PerRack {
                mib_per_rack: gib(512)
            }
            .total_capacity(4),
            gib(2048)
        );
        assert_eq!(
            PoolTopology::Global { mib: gib(1024) }.total_capacity(4),
            gib(1024)
        );
    }

    #[test]
    fn pool_counts() {
        assert_eq!(PoolTopology::None.pool_count(8), 0);
        assert_eq!(PoolTopology::PerRack { mib_per_rack: 1 }.pool_count(8), 8);
        assert_eq!(PoolTopology::Global { mib: 1 }.pool_count(8), 1);
    }

    #[test]
    fn has_pools_zero_capacity() {
        assert!(!PoolTopology::None.has_pools());
        assert!(!PoolTopology::PerRack { mib_per_rack: 0 }.has_pools());
        assert!(!PoolTopology::Global { mib: 0 }.has_pools());
        assert!(PoolTopology::Global { mib: 1 }.has_pools());
    }
}
