//! Far-memory slowdown models.
//!
//! Borrowed pool memory is slower than node DRAM. The *dilation factor* is
//! the multiplier on a job's runtime: 1.0 means unaffected, 1.5 means the
//! job takes 50% longer. Dilation depends on
//!
//! * **far fraction** — what share of the job's footprint is remote,
//! * **memory intensity** — how bound the job is on memory traffic
//!   (a per-job workload attribute in `[0, 1]`; a compute-bound job barely
//!   notices far memory, a stream-like job feels all of it),
//! * **pool pressure** (contention model only) — instantaneous fraction of
//!   the pool in use, a proxy for fabric bandwidth contention.
//!
//! The models are deliberately parametric: the reproduction sweeps the
//! worst-case penalty (F6/A3) rather than claiming one hardware truth.

/// Inputs to a dilation computation, bundled so signatures survive model
/// extensions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DilationInputs {
    /// Share of the job's memory served from pools, `[0, 1]`.
    pub far_fraction: f64,
    /// The job's sensitivity to memory latency/bandwidth, `[0, 1]`.
    pub intensity: f64,
    /// Fraction of the charged pool's capacity currently in use, `[0, 1]`.
    /// Only the contention model reads this.
    pub pool_pressure: f64,
}

/// How far-memory use dilates runtime.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SlowdownModel {
    /// Far memory is free (idealized upper bound for disaggregation).
    None,
    /// Dilation grows linearly in the far fraction:
    /// `1 + (penalty-1) · far · intensity`. `penalty` is the worst case —
    /// a fully-remote, fully-memory-bound job.
    Linear {
        /// Worst-case dilation factor (≥ 1), e.g. 1.5 for "+50%".
        penalty: f64,
    },
    /// Concave ("saturating") dilation: the first borrowed bytes are cheap
    /// because smart tiering sends cold pages far; the curve is
    /// `1 + (penalty-1) · intensity · (1 - e^(-k·far)) / (1 - e^(-k))`.
    Saturating {
        /// Worst-case dilation factor (≥ 1).
        penalty: f64,
        /// Curvature `k > 0`; larger = earlier saturation. 3 is a good
        /// default for tiered allocators.
        curvature: f64,
    },
    /// Linear dilation amplified by pool pressure (fabric contention):
    /// `1 + (penalty-1) · far · intensity · (1 + gamma · pressure)`.
    /// Under this model the simulator re-dilates running jobs whenever a
    /// pool's pressure changes.
    Contention {
        /// Uncontended worst-case dilation factor (≥ 1).
        penalty: f64,
        /// Pressure amplification `gamma ≥ 0`: extra dilation at a full
        /// pool, as a multiple of the uncontended excess.
        gamma: f64,
    },
}

impl SlowdownModel {
    /// The dilation factor (≥ 1) for the given inputs.
    pub fn dilation(&self, inp: DilationInputs) -> f64 {
        let far = inp.far_fraction.clamp(0.0, 1.0);
        let intensity = inp.intensity.clamp(0.0, 1.0);
        let pressure = inp.pool_pressure.clamp(0.0, 1.0);
        let d = match *self {
            SlowdownModel::None => 1.0,
            SlowdownModel::Linear { penalty } => 1.0 + (penalty - 1.0) * far * intensity,
            SlowdownModel::Saturating { penalty, curvature } => {
                let denom = 1.0 - (-curvature).exp();
                let shape = (1.0 - (-curvature * far).exp()) / denom;
                1.0 + (penalty - 1.0) * intensity * shape
            }
            SlowdownModel::Contention { penalty, gamma } => {
                1.0 + (penalty - 1.0) * far * intensity * (1.0 + gamma * pressure)
            }
        };
        debug_assert!(d >= 1.0, "dilation {d} < 1");
        d
    }

    /// Whether dilation depends on pool pressure, i.e. whether the engine
    /// must re-dilate running jobs when pool occupancy changes.
    pub fn is_dynamic(&self) -> bool {
        matches!(self, SlowdownModel::Contention { .. })
    }

    /// The worst dilation this model can produce (used by slowdown-aware
    /// policies to budget walltime inflation).
    pub fn worst_case(&self) -> f64 {
        match *self {
            SlowdownModel::None => 1.0,
            SlowdownModel::Linear { penalty } | SlowdownModel::Saturating { penalty, .. } => {
                penalty
            }
            SlowdownModel::Contention { penalty, gamma } => 1.0 + (penalty - 1.0) * (1.0 + gamma),
        }
    }

    /// Validate parameters; called by cluster/simulation constructors.
    pub fn validate(&self) -> Result<(), crate::PlatformError> {
        let invalid = |reason: String| crate::PlatformError::InvalidSpec { reason };
        match *self {
            SlowdownModel::None => Ok(()),
            SlowdownModel::Linear { penalty } => {
                if penalty >= 1.0 && penalty.is_finite() {
                    Ok(())
                } else {
                    Err(invalid(format!(
                        "Linear penalty must be >= 1, got {penalty}"
                    )))
                }
            }
            SlowdownModel::Saturating { penalty, curvature } => {
                if !(penalty >= 1.0 && penalty.is_finite()) {
                    Err(invalid(format!(
                        "Saturating penalty must be >= 1, got {penalty}"
                    )))
                } else if !(curvature > 0.0 && curvature.is_finite()) {
                    Err(invalid(format!(
                        "Saturating curvature must be > 0, got {curvature}"
                    )))
                } else {
                    Ok(())
                }
            }
            SlowdownModel::Contention { penalty, gamma } => {
                if !(penalty >= 1.0 && penalty.is_finite()) {
                    Err(invalid(format!(
                        "Contention penalty must be >= 1, got {penalty}"
                    )))
                } else if !(gamma >= 0.0 && gamma.is_finite()) {
                    Err(invalid(format!(
                        "Contention gamma must be >= 0, got {gamma}"
                    )))
                } else {
                    Ok(())
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inp(far: f64, intensity: f64, pressure: f64) -> DilationInputs {
        DilationInputs {
            far_fraction: far,
            intensity,
            pool_pressure: pressure,
        }
    }

    #[test]
    fn none_is_identity() {
        assert_eq!(SlowdownModel::None.dilation(inp(1.0, 1.0, 1.0)), 1.0);
        assert_eq!(SlowdownModel::None.worst_case(), 1.0);
        assert!(!SlowdownModel::None.is_dynamic());
    }

    #[test]
    fn linear_endpoints() {
        let m = SlowdownModel::Linear { penalty: 1.5 };
        assert_eq!(m.dilation(inp(0.0, 1.0, 0.0)), 1.0);
        assert_eq!(m.dilation(inp(1.0, 1.0, 0.0)), 1.5);
        assert_eq!(m.dilation(inp(1.0, 0.0, 0.0)), 1.0);
        assert!((m.dilation(inp(0.5, 0.5, 0.0)) - 1.125).abs() < 1e-12);
        assert_eq!(m.worst_case(), 1.5);
    }

    #[test]
    fn saturating_is_concave_and_bounded() {
        let m = SlowdownModel::Saturating {
            penalty: 2.0,
            curvature: 3.0,
        };
        assert_eq!(m.dilation(inp(0.0, 1.0, 0.0)), 1.0);
        assert!((m.dilation(inp(1.0, 1.0, 0.0)) - 2.0).abs() < 1e-12);
        // Concavity: the half-way dilation exceeds the linear midpoint.
        let half = m.dilation(inp(0.5, 1.0, 0.0));
        assert!(
            half > 1.5,
            "saturating at 0.5 should exceed linear (got {half})"
        );
        assert!(half < 2.0);
        // Monotone in far fraction.
        let mut prev = 1.0;
        for i in 0..=10 {
            let d = m.dilation(inp(i as f64 / 10.0, 1.0, 0.0));
            assert!(d >= prev);
            prev = d;
        }
    }

    #[test]
    fn contention_amplifies_with_pressure() {
        let m = SlowdownModel::Contention {
            penalty: 1.4,
            gamma: 1.0,
        };
        assert!(m.is_dynamic());
        let idle = m.dilation(inp(1.0, 1.0, 0.0));
        let full = m.dilation(inp(1.0, 1.0, 1.0));
        assert!((idle - 1.4).abs() < 1e-12);
        assert!((full - 1.8).abs() < 1e-12);
        assert!((m.worst_case() - 1.8).abs() < 1e-12);
    }

    #[test]
    fn inputs_clamped() {
        let m = SlowdownModel::Linear { penalty: 2.0 };
        assert_eq!(m.dilation(inp(7.0, 3.0, 0.0)), 2.0);
        assert_eq!(m.dilation(inp(-1.0, 1.0, 0.0)), 1.0);
    }

    #[test]
    fn validation() {
        assert!(SlowdownModel::Linear { penalty: 0.5 }.validate().is_err());
        assert!(SlowdownModel::Linear { penalty: 1.0 }.validate().is_ok());
        assert!(SlowdownModel::Saturating {
            penalty: 1.5,
            curvature: 0.0
        }
        .validate()
        .is_err());
        assert!(SlowdownModel::Contention {
            penalty: 1.5,
            gamma: -0.1
        }
        .validate()
        .is_err());
        assert!(SlowdownModel::None.validate().is_ok());
    }
}
