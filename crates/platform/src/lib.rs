//! # dmhpc-platform — cluster model with disaggregated memory
//!
//! The hardware substrate the scheduler allocates against:
//!
//! * [`NodeSpec`]/[`ClusterSpec`] — homogeneous compute nodes (cores + local
//!   DRAM) grouped into racks.
//! * [`PoolTopology`] — where disaggregated memory lives: nowhere
//!   (conventional cluster), one pool per rack, or one system-global pool.
//! * [`Cluster`] — runtime state: which node belongs to which lease, how
//!   much local and pool memory each lease holds, with conservation checked
//!   on every transition ([`Cluster::verify_invariants`] is cheap enough to
//!   run in tests after every step).
//! * [`SlowdownModel`] — the cost of far memory: how much a job's runtime
//!   dilates as a function of its far-memory fraction, its memory-access
//!   intensity, and (for the contention model) instantaneous pool pressure.
//! * [`NodeState`] + pool health — the availability state machine: node
//!   failures, maintenance drains, and pool bandwidth degradation, with
//!   the cluster's free-capacity indexes kept coherent on every
//!   transition so schedulers never place on out-of-service capacity.
//!
//! The crate is deliberately ignorant of jobs and schedulers: allocations
//! are held by opaque `u64` lease ids, so the platform can be reused under
//! any scheduling layer.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod alloc;
mod cluster;
mod error;
mod node;
mod pool;
mod slowdown;
mod topology;
pub mod units;

pub use alloc::MemoryAssignment;
pub use cluster::{Cluster, ClusterSpec};
pub use error::PlatformError;
pub use node::{NodeSpec, NodeState};
pub use pool::MemoryPool;
pub use slowdown::{DilationInputs, SlowdownModel};
pub use topology::PoolTopology;
pub use units::{MiB, NodeId, PoolId, RackId, GIB};
