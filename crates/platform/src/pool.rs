//! A disaggregated memory pool with a per-lease ledger.

use crate::error::PlatformError;
use crate::units::{MiB, PoolId};
use std::collections::BTreeMap;

/// One fabric-attached memory pool. Tracks capacity, current usage, a
/// high-water mark, and exactly which lease holds how much — the ledger is
/// what makes end-of-simulation conservation checks possible.
///
/// A pool also carries a **health factor** in `(0, 1]`: the fraction of
/// nominal capacity (and fabric bandwidth) currently available. Degrading
/// a pool shrinks its [`effective_capacity`](MemoryPool::effective_capacity)
/// — which both [`free`](MemoryPool::free) and
/// [`pressure`](MemoryPool::pressure) are computed against — so placement
/// stops counting the lost capacity and the contention slowdown model sees
/// the elevated pressure. Degradation can leave `used` above the effective
/// capacity momentarily; whoever degrades must evict borrowers (the
/// engine interrupts them within the same event) **before** the next
/// [`crate::Cluster::verify_invariants`] call, which treats an
/// over-committed pool as an error — the check runs at settled points
/// (batch ends), never mid-transition.
#[derive(Debug, Clone)]
pub struct MemoryPool {
    id: PoolId,
    capacity: MiB,
    used: MiB,
    peak: MiB,
    /// Availability factor in `(0, 1]`; 1 = fully healthy.
    health: f64,
    /// Lease → MiB held. BTreeMap for deterministic iteration order.
    ledger: BTreeMap<u64, MiB>,
}

impl MemoryPool {
    /// An empty pool with the given capacity (may be zero: a "no pool here"
    /// placeholder that rejects every grab).
    pub fn new(id: PoolId, capacity: MiB) -> Self {
        MemoryPool {
            id,
            capacity,
            used: 0,
            peak: 0,
            health: 1.0,
            ledger: BTreeMap::new(),
        }
    }

    /// This pool's identifier.
    pub fn id(&self) -> PoolId {
        self.id
    }

    /// Nominal (healthy) capacity in MiB.
    pub fn capacity(&self) -> MiB {
        self.capacity
    }

    /// Current health factor in `(0, 1]`.
    pub fn health(&self) -> f64 {
        self.health
    }

    /// Capacity actually available at the current health:
    /// `floor(capacity × health)`.
    pub fn effective_capacity(&self) -> MiB {
        if self.health >= 1.0 {
            self.capacity
        } else {
            (self.capacity as f64 * self.health).floor() as MiB
        }
    }

    /// Set the health factor. Callers must keep it in `(0, 1]`; the
    /// cluster-level transition API validates. Does **not** evict
    /// borrowers — `used` may exceed the new effective capacity until the
    /// engine interrupts enough of them.
    pub fn set_health(&mut self, health: f64) {
        self.health = health;
    }

    /// Currently allocated MiB.
    pub fn used(&self) -> MiB {
        self.used
    }

    /// Free MiB at the current health (0 while over-committed after a
    /// degradation).
    pub fn free(&self) -> MiB {
        self.effective_capacity().saturating_sub(self.used)
    }

    /// High-water mark of `used` over the pool's lifetime.
    pub fn peak(&self) -> MiB {
        self.peak
    }

    /// Fraction of the **effective** capacity in use (0 for a
    /// zero-capacity pool). Degrading a pool therefore raises the pressure
    /// its borrowers feed into the contention slowdown model — the
    /// bandwidth-degradation effect. May exceed 1 transiently while the
    /// engine evicts borrowers after a degradation.
    pub fn pressure(&self) -> f64 {
        let effective = self.effective_capacity();
        if effective == 0 {
            0.0
        } else {
            self.used as f64 / effective as f64
        }
    }

    /// MiB held by `lease` (0 if none).
    pub fn held_by(&self, lease: u64) -> MiB {
        self.ledger.get(&lease).copied().unwrap_or(0)
    }

    /// Number of leases currently holding pool memory.
    pub fn lease_count(&self) -> usize {
        self.ledger.len()
    }

    /// `(lease, MiB held)` pairs in ascending lease order — the
    /// deterministic order the engine evicts borrowers in when a
    /// degradation leaves the pool over-committed.
    pub fn holders(&self) -> impl Iterator<Item = (u64, MiB)> + '_ {
        self.ledger.iter().map(|(&l, &m)| (l, m))
    }

    /// Reserve `amount` MiB for `lease` (additive if the lease already holds
    /// some). Zero-amount grabs are no-ops.
    pub fn grab(&mut self, lease: u64, amount: MiB) -> Result<(), PlatformError> {
        if amount == 0 {
            return Ok(());
        }
        if amount > self.free() {
            return Err(PlatformError::PoolExhausted {
                pool: self.id,
                requested: amount,
                free: self.free(),
            });
        }
        self.used += amount;
        self.peak = self.peak.max(self.used);
        *self.ledger.entry(lease).or_insert(0) += amount;
        Ok(())
    }

    /// Release everything `lease` holds; returns the amount released.
    pub fn release(&mut self, lease: u64) -> MiB {
        let amount = self.ledger.remove(&lease).unwrap_or(0);
        debug_assert!(self.used >= amount, "pool ledger out of sync");
        self.used -= amount;
        amount
    }

    /// Ledger consistency: `used` equals the ledger sum and never exceeds
    /// capacity.
    pub fn verify(&self) -> bool {
        let sum: MiB = self.ledger.values().sum();
        sum == self.used && self.used <= self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(cap: MiB) -> MemoryPool {
        MemoryPool::new(PoolId(0), cap)
    }

    #[test]
    fn grab_and_release_roundtrip() {
        let mut p = pool(1000);
        p.grab(1, 300).unwrap();
        p.grab(2, 500).unwrap();
        assert_eq!(p.used(), 800);
        assert_eq!(p.free(), 200);
        assert_eq!(p.held_by(1), 300);
        assert_eq!(p.lease_count(), 2);
        assert!(p.verify());

        assert_eq!(p.release(1), 300);
        assert_eq!(p.used(), 500);
        assert_eq!(p.release(1), 0, "double release is a no-op");
        assert_eq!(p.release(2), 500);
        assert_eq!(p.used(), 0);
        assert!(p.verify());
    }

    #[test]
    fn exhaustion_is_typed() {
        let mut p = pool(100);
        p.grab(1, 60).unwrap();
        let err = p.grab(2, 50).unwrap_err();
        assert_eq!(
            err,
            PlatformError::PoolExhausted {
                pool: PoolId(0),
                requested: 50,
                free: 40
            }
        );
        // Failed grab must not mutate state.
        assert_eq!(p.used(), 60);
        assert_eq!(p.held_by(2), 0);
        assert!(p.verify());
    }

    #[test]
    fn additive_grabs() {
        let mut p = pool(100);
        p.grab(7, 10).unwrap();
        p.grab(7, 20).unwrap();
        assert_eq!(p.held_by(7), 30);
        assert_eq!(p.release(7), 30);
    }

    #[test]
    fn peak_tracks_high_water() {
        let mut p = pool(100);
        p.grab(1, 80).unwrap();
        p.release(1);
        p.grab(2, 30).unwrap();
        assert_eq!(p.peak(), 80);
        assert_eq!(p.used(), 30);
    }

    #[test]
    fn zero_capacity_rejects_everything() {
        let mut p = pool(0);
        assert_eq!(p.pressure(), 0.0);
        assert!(p.grab(1, 1).is_err());
        p.grab(1, 0).unwrap(); // zero grab is fine
        assert_eq!(p.lease_count(), 0);
    }

    #[test]
    fn pressure_fraction() {
        let mut p = pool(200);
        p.grab(1, 50).unwrap();
        assert!((p.pressure() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn degradation_shrinks_effective_capacity_and_raises_pressure() {
        let mut p = pool(1000);
        p.grab(1, 400).unwrap();
        assert_eq!(p.free(), 600);
        p.set_health(0.5);
        assert_eq!(p.effective_capacity(), 500);
        assert_eq!(p.free(), 100);
        assert!((p.pressure() - 0.8).abs() < 1e-12, "pressure vs effective");
        // Grabs are bounded by the degraded capacity.
        assert!(p.grab(2, 200).is_err());
        p.grab(2, 100).unwrap();
        assert_eq!(p.free(), 0);
        // Restore: full capacity returns.
        p.set_health(1.0);
        assert_eq!(p.free(), 500);
        assert!(p.verify());
    }

    #[test]
    fn degradation_below_usage_reports_zero_free_not_underflow() {
        let mut p = pool(1000);
        p.grab(1, 800).unwrap();
        p.set_health(0.5);
        assert_eq!(p.free(), 0, "over-committed pool has nothing free");
        assert!(p.pressure() > 1.0, "transiently over unit pressure");
        assert!(p.verify(), "ledger itself stays consistent");
        let holders: Vec<_> = p.holders().collect();
        assert_eq!(holders, vec![(1, 800)]);
    }
}
