//! A disaggregated memory pool with a per-lease ledger.

use crate::error::PlatformError;
use crate::units::{MiB, PoolId};
use std::collections::BTreeMap;

/// One fabric-attached memory pool. Tracks capacity, current usage, a
/// high-water mark, and exactly which lease holds how much — the ledger is
/// what makes end-of-simulation conservation checks possible.
#[derive(Debug, Clone)]
pub struct MemoryPool {
    id: PoolId,
    capacity: MiB,
    used: MiB,
    peak: MiB,
    /// Lease → MiB held. BTreeMap for deterministic iteration order.
    ledger: BTreeMap<u64, MiB>,
}

impl MemoryPool {
    /// An empty pool with the given capacity (may be zero: a "no pool here"
    /// placeholder that rejects every grab).
    pub fn new(id: PoolId, capacity: MiB) -> Self {
        MemoryPool {
            id,
            capacity,
            used: 0,
            peak: 0,
            ledger: BTreeMap::new(),
        }
    }

    /// This pool's identifier.
    pub fn id(&self) -> PoolId {
        self.id
    }

    /// Total capacity in MiB.
    pub fn capacity(&self) -> MiB {
        self.capacity
    }

    /// Currently allocated MiB.
    pub fn used(&self) -> MiB {
        self.used
    }

    /// Free MiB.
    pub fn free(&self) -> MiB {
        self.capacity - self.used
    }

    /// High-water mark of `used` over the pool's lifetime.
    pub fn peak(&self) -> MiB {
        self.peak
    }

    /// Fraction of capacity in use (0 for a zero-capacity pool).
    pub fn pressure(&self) -> f64 {
        if self.capacity == 0 {
            0.0
        } else {
            self.used as f64 / self.capacity as f64
        }
    }

    /// MiB held by `lease` (0 if none).
    pub fn held_by(&self, lease: u64) -> MiB {
        self.ledger.get(&lease).copied().unwrap_or(0)
    }

    /// Number of leases currently holding pool memory.
    pub fn lease_count(&self) -> usize {
        self.ledger.len()
    }

    /// Reserve `amount` MiB for `lease` (additive if the lease already holds
    /// some). Zero-amount grabs are no-ops.
    pub fn grab(&mut self, lease: u64, amount: MiB) -> Result<(), PlatformError> {
        if amount == 0 {
            return Ok(());
        }
        if amount > self.free() {
            return Err(PlatformError::PoolExhausted {
                pool: self.id,
                requested: amount,
                free: self.free(),
            });
        }
        self.used += amount;
        self.peak = self.peak.max(self.used);
        *self.ledger.entry(lease).or_insert(0) += amount;
        Ok(())
    }

    /// Release everything `lease` holds; returns the amount released.
    pub fn release(&mut self, lease: u64) -> MiB {
        let amount = self.ledger.remove(&lease).unwrap_or(0);
        debug_assert!(self.used >= amount, "pool ledger out of sync");
        self.used -= amount;
        amount
    }

    /// Ledger consistency: `used` equals the ledger sum and never exceeds
    /// capacity.
    pub fn verify(&self) -> bool {
        let sum: MiB = self.ledger.values().sum();
        sum == self.used && self.used <= self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(cap: MiB) -> MemoryPool {
        MemoryPool::new(PoolId(0), cap)
    }

    #[test]
    fn grab_and_release_roundtrip() {
        let mut p = pool(1000);
        p.grab(1, 300).unwrap();
        p.grab(2, 500).unwrap();
        assert_eq!(p.used(), 800);
        assert_eq!(p.free(), 200);
        assert_eq!(p.held_by(1), 300);
        assert_eq!(p.lease_count(), 2);
        assert!(p.verify());

        assert_eq!(p.release(1), 300);
        assert_eq!(p.used(), 500);
        assert_eq!(p.release(1), 0, "double release is a no-op");
        assert_eq!(p.release(2), 500);
        assert_eq!(p.used(), 0);
        assert!(p.verify());
    }

    #[test]
    fn exhaustion_is_typed() {
        let mut p = pool(100);
        p.grab(1, 60).unwrap();
        let err = p.grab(2, 50).unwrap_err();
        assert_eq!(
            err,
            PlatformError::PoolExhausted {
                pool: PoolId(0),
                requested: 50,
                free: 40
            }
        );
        // Failed grab must not mutate state.
        assert_eq!(p.used(), 60);
        assert_eq!(p.held_by(2), 0);
        assert!(p.verify());
    }

    #[test]
    fn additive_grabs() {
        let mut p = pool(100);
        p.grab(7, 10).unwrap();
        p.grab(7, 20).unwrap();
        assert_eq!(p.held_by(7), 30);
        assert_eq!(p.release(7), 30);
    }

    #[test]
    fn peak_tracks_high_water() {
        let mut p = pool(100);
        p.grab(1, 80).unwrap();
        p.release(1);
        p.grab(2, 30).unwrap();
        assert_eq!(p.peak(), 80);
        assert_eq!(p.used(), 30);
    }

    #[test]
    fn zero_capacity_rejects_everything() {
        let mut p = pool(0);
        assert_eq!(p.pressure(), 0.0);
        assert!(p.grab(1, 1).is_err());
        p.grab(1, 0).unwrap(); // zero grab is fine
        assert_eq!(p.lease_count(), 0);
    }

    #[test]
    fn pressure_fraction() {
        let mut p = pool(200);
        p.grab(1, 50).unwrap();
        assert!((p.pressure() - 0.25).abs() < 1e-12);
    }
}
