//! The incremental scheduling kernel.
//!
//! Event loop over a stable pending-event set (binary heap by default,
//! calendar queue opt-in via [`crate::EventQueueKind`]). Two event kinds:
//! job arrival and job finish. Work done per event batch is proportional
//! to **what changed**, not to cluster size:
//!
//! ## How the kernel schedules
//!
//! * **Event-driven passes.** A scheduling pass runs only when it can
//!   matter: after a batch in which a job arrived or capacity was released
//!   *and* the wait queue is non-empty. A finish that drains into an empty
//!   queue settles re-dilation and moves on — no pass, no release-list
//!   work. `SimOutput::passes` therefore counts at most one pass per
//!   batch, strictly fewer than events under idle stretches.
//! * **Persistent release index.** The planned releases backfilling
//!   forecasts against live in a [`ReleaseIndex`] sorted by planned end,
//!   updated when a job starts or finishes (planned ends are walltime-based
//!   and fixed at start, so re-dilation never moves them). Each pass
//!   receives a read-only [`dmhpc_sched::ReleaseView`] instead of a list
//!   rebuilt from the running set — the pass's fixed cost no longer scales
//!   with how much is running.
//! * **Pool-scoped re-dilation.** Under the contention slowdown model the
//!   engine keeps a per-pool borrower index plus a dirty-pool set (marked
//!   when an allocation or release changes a pool's occupancy). Re-dilation
//!   visits only borrowers charged to pools whose pressure actually
//!   changed; everyone else's dilation inputs are unchanged by
//!   construction, so skipping them is trace-exact. Re-stamped finishes
//!   supersede the old event via a generation stamp.
//!
//! Determinism is unchanged: dirty-pool iteration and the borrower sets
//! are ordered (`BTreeSet`), so the kernel reproduces the pre-incremental
//! engine's trace hashes bit-for-bit on either queue backend (tested
//! against golden hashes in `tests/integration.rs`). Work accounting is
//! exact: a completed job's consumed work equals its base runtime by
//! construction.
//!
//! ## Observation
//!
//! The engine never touches metric state directly: every state change is
//! emitted as a typed [`SimEvent`] (see [`crate::observe`]) and consumed
//! by observers. The built-in metric observers (series, job records,
//! fault counters) are statically dispatched and always attached —
//! [`SimOutput`] is assembled from their final state, performing exactly
//! the operations the pre-observer engine performed, in the same order
//! (golden-hash pinned). User observers ride the same stream through
//! [`Simulation::run_with`] and an [`ObserverSet`]; they are
//! strictly read-only, so attaching any number of them is trace-exact.
//!
//! ## Fault events
//!
//! A run may carry a [`FaultSpec`]: node failures/repairs, maintenance
//! drain windows, and pool degradations arrive as a third event kind.
//! Displaced jobs are interrupted *within* the event that displaced them
//! (released, then resubmitted or checkpoint-restarted per
//! [`InterruptPolicy`], or terminally failed once their resubmission
//! budget is spent), so by every batch end no job occupies a non-`Up`
//! node and no pool is over its degraded capacity — both checked in
//! `check_invariants` mode. Restarted jobs resume at a generation above
//! every earlier attempt's, so stale finish events stay stale. With
//! [`FaultSpec::none`] (the default) no fault event exists and every
//! fault branch is dead: traces are bit-identical to the pre-fault
//! engine (golden-hash tested).

use crate::collector::SeriesBundle;
use crate::config::{EventQueueKind, SimConfig};
use crate::error::SimError;
use crate::faults::{FaultAction, FaultSpec, InterruptPolicy};
use crate::observe::{
    FaultObserver, JobStatsObserver, Observer, ObserverFactory, ProgressObserver, RunContext,
    RunEnd, RunLabel, SeriesObserver, SimEvent, SketchStatsObserver,
};
use crate::service::ServiceSpec;
use dmhpc_des::queue::{BinaryHeapQueue, CalendarQueue, EventQueue};
use dmhpc_des::time::{SimDuration, SimTime};
use dmhpc_metrics::{
    ClassThresholds, FaultSummary, JobOutcome, JobRecord, RunData, ServiceSummary, SimReport,
};
use dmhpc_platform::{Cluster, DilationInputs, MemoryAssignment, NodeState};
use dmhpc_sched::{
    PreemptPolicy, ReleaseIndex, RunningRelease, SchedContext, Scheduler, SiteSnapshot, StartedJob,
    WaitQueue,
};
use dmhpc_workload::{Job, JobId, JobSource, Workload};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::Arc;

/// One simulation event.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Event {
    /// Index into the workload's job list.
    Arrival(usize),
    /// A running job reached its (possibly superseded) end time.
    Finish { job: JobId, generation: u32 },
    /// A machine perturbation from the run's [`FaultSpec`] (never
    /// scheduled on fault-free runs, which keep the exact pre-fault code
    /// path).
    Fault(FaultAction),
    /// The next arrival of an open-system stream (service runs only).
    /// Exactly one is in flight: processing it submits the pre-pulled
    /// pending job, pulls the next from the [`JobSource`], and reschedules
    /// — pull-based admission, O(1) pending arrivals.
    OpenArrival,
    /// Re-pass after a held batch's latency budget expires (scheduled only
    /// when an ordering returns [`dmhpc_sched::PassDirective::Hold`];
    /// never on runs without batch-forming policies). Hash-neutral: the
    /// wake itself writes nothing into the trace hash — only the starts it
    /// triggers do.
    Wake,
}

/// Per-job fault bookkeeping, kept only for jobs that were interrupted.
#[derive(Debug, Clone, Copy, Default)]
struct FaultMeta {
    /// Resubmissions consumed so far.
    resubmits: u32,
    /// Generation the job's *next* start begins at — strictly above every
    /// generation of earlier attempts, so stale finish events from an
    /// interrupted attempt can never match a later one.
    next_gen: u32,
}

/// Execution state of a running job.
#[derive(Debug, Clone)]
struct RunningJob {
    job: Job,
    start: SimTime,
    assignment: MemoryAssignment,
    kill_time: SimTime,
    dilation_planned: f64,
    /// Current dilation factor (changes only under the contention model).
    dilation: f64,
    /// Undilated work left, exact as of `last_update`.
    work_remaining: SimDuration,
    last_update: SimTime,
    /// Valid finish-event stamp; older events are stale.
    generation: u32,
    /// Whether the currently-scheduled finish is a walltime kill.
    ends_by_kill: bool,
}

/// Everything a run produces.
#[derive(Debug, Clone)]
pub struct SimOutput {
    /// Headline metrics (T2 row).
    pub report: SimReport,
    /// Per-job outcomes, in completion order (rejected jobs at rejection
    /// time).
    pub records: Vec<JobRecord>,
    /// System time series.
    pub series: SeriesBundle,
    /// Events processed (arrivals + non-stale finishes).
    pub events_processed: u64,
    /// Scheduling passes executed.
    pub passes: u64,
    /// FNV-1a hash of the event trace; equal hashes ⇒ identical runs.
    pub trace_hash: u64,
    /// Time of the last processed event.
    pub end_time: SimTime,
    /// Fault/availability counters (all-default for fault-free runs,
    /// where `faults.avail_util == report.node_util` exactly).
    pub faults: FaultSummary,
    /// Jobs checkpoint-preempted to make room for deadline-critical
    /// arrivals (always 0 unless a [`dmhpc_sched::PreemptPolicy`] is
    /// active).
    pub preemptions: u64,
    /// Open-system headline metrics; `None` for closed batch runs. On
    /// service runs `records` is empty and `series` is the empty origin
    /// bundle — per-job and per-event state is folded into O(1) sketches
    /// instead (see [`crate::observe::SketchStatsObserver`]).
    pub service: Option<ServiceSummary>,
}

/// Everything one run should watch, gathered into a single value for
/// [`Simulation::run_with`].
///
/// The observer-attachment surface historically grew one entry point at a
/// time — a ref-slice (`run_observed`), a box-slice (`run_boxed`),
/// persistent factories (`with_observer`), and a declarative heartbeat
/// (`SimConfig::with_progress_every`). This builder is the one coherent
/// replacement; the old names survive as thin deprecated shims over it.
/// Observation is always hash-neutral: attaching any combination below
/// leaves the run's trace hash and output bit-identical.
///
/// ```
/// use dmhpc_sim::ObserverSet;
/// # use dmhpc_sim::observe::EventCounter;
/// let mut counter = EventCounter::new();
/// let set = ObserverSet::new().watch(&mut counter).progress_every(10_000);
/// // sim.run_with(&workload, set); counter is inspectable afterwards.
/// ```
#[derive(Default)]
pub struct ObserverSet<'a> {
    /// Caller-owned observers: inspectable after the run; the caller is
    /// responsible for checking [`Observer::failure`].
    borrowed: Vec<&'a mut dyn Observer>,
    /// Per-run factories: one fresh observer is built per run; creation
    /// or deferred sink failures panic (the observer dies with the run,
    /// so there is nowhere else to report them).
    factories: Vec<Arc<dyn ObserverFactory>>,
    /// Emit a progress heartbeat to stderr every N observed events.
    progress_every: Option<u64>,
}

impl<'a> ObserverSet<'a> {
    /// An empty set (the built-in metric observers always run).
    pub fn new() -> Self {
        ObserverSet::default()
    }

    /// Watch with a caller-owned observer. The caller keeps the borrow
    /// after the run, so sink state (samples, counters, trace buffers)
    /// stays inspectable — and failures are the caller's to check.
    pub fn watch(mut self, observer: &'a mut dyn Observer) -> Self {
        self.borrowed.push(observer);
        self
    }

    /// Watch with every observer in a caller-owned box slice (the
    /// experiment runner's calling convention).
    pub fn watch_boxed(mut self, observers: &'a mut [Box<dyn Observer>]) -> Self {
        for b in observers.iter_mut() {
            self.borrowed.push(&mut **b);
        }
        self
    }

    /// Build one fresh observer from this factory when the run starts.
    /// Factory errors and end-of-run sink failures panic; use
    /// [`ObserverSet::watch`] where errors must be handled instead.
    pub fn factory(mut self, factory: Arc<dyn ObserverFactory>) -> Self {
        self.factories.push(factory);
        self
    }

    /// Emit a progress heartbeat to stderr every `every` observed events.
    pub fn progress_every(mut self, every: u64) -> Self {
        self.progress_every = Some(every);
        self
    }

    /// Number of attachments (borrowed + factories + heartbeat).
    pub fn len(&self) -> usize {
        self.borrowed.len() + self.factories.len() + usize::from(self.progress_every.is_some())
    }

    /// Whether nothing beyond the built-ins is attached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl std::fmt::Debug for ObserverSet<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObserverSet")
            .field("borrowed", &self.borrowed.len())
            .field("factories", &self.factories.len())
            .field("progress_every", &self.progress_every)
            .finish()
    }
}

/// A configured simulator. `run` is a pure function of the workload (and
/// the attached [`FaultSpec`], itself pure data) — attached observers
/// consume the run's event stream but can never change it.
pub struct Simulation {
    cfg: SimConfig,
    scheduler: Scheduler,
    faults: FaultSpec,
    service: ServiceSpec,
    observers: Vec<Arc<dyn ObserverFactory>>,
}

impl fmt::Debug for Simulation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Simulation")
            .field("cfg", &self.cfg)
            .field("scheduler", &self.scheduler)
            .field("faults", &self.faults)
            .field("service", &self.service)
            .field("observers", &self.observers.len())
            .finish()
    }
}

impl Simulation {
    /// Build a simulator from a configuration, using the built-in policy
    /// enums. Validates the cluster shape and the slowdown model; every
    /// problem surfaces here as a typed [`SimError`], so `run` itself
    /// cannot fail.
    pub fn new(cfg: SimConfig) -> Result<Self, SimError> {
        cfg.cluster.validate()?;
        let scheduler = Scheduler::new(cfg.scheduler)?;
        Ok(Simulation {
            cfg,
            scheduler,
            faults: FaultSpec::none(),
            service: ServiceSpec::none(),
            observers: Vec::new(),
        })
    }

    /// Build a simulator with custom [`dmhpc_sched::Ordering`] /
    /// [`dmhpc_sched::Placement`] implementations instead of the config's
    /// policy enums. Custom policies must be deterministic or runs stop
    /// being reproducible.
    pub fn with_policies(
        cfg: SimConfig,
        order: Box<dyn dmhpc_sched::Ordering>,
        placement: Box<dyn dmhpc_sched::Placement>,
    ) -> Result<Self, SimError> {
        cfg.cluster.validate()?;
        let scheduler = Scheduler::with_policies(cfg.scheduler, order, placement)?;
        Ok(Simulation {
            cfg,
            scheduler,
            faults: FaultSpec::none(),
            service: ServiceSpec::none(),
            observers: Vec::new(),
        })
    }

    /// Attach a fault/availability scenario, validating its parameters and
    /// that every fixed action targets a node/pool this machine has.
    /// [`FaultSpec::none`] (the default) reproduces fault-free behaviour
    /// bit-for-bit.
    pub fn with_fault_spec(mut self, faults: FaultSpec) -> Result<Self, SimError> {
        faults.validate_for(&self.cfg.cluster)?;
        if !faults.is_none() && !self.service.is_none() {
            return Err(SimError::spec(
                "fault scenarios do not combine with open-system service runs",
            ));
        }
        self.faults = faults;
        Ok(self)
    }

    /// Attach an open-system service scenario: the run streams arrivals
    /// from the scenario's [`JobSource`] instead of a pre-materialized
    /// workload (the workload argument of `run` is ignored and typically
    /// empty), and per-job metrics are folded into O(1) sketches.
    /// [`ServiceSpec::none`] (the default) reproduces closed-batch
    /// behaviour bit-for-bit.
    pub fn with_service_spec(mut self, service: ServiceSpec) -> Result<Self, SimError> {
        service.validate_for(&self.cfg.cluster)?;
        if !service.is_none() && !self.faults.is_none() {
            return Err(SimError::spec(
                "open-system service runs do not combine with fault scenarios",
            ));
        }
        // The run's wait objective becomes the fallback deadline policies
        // see through `SchedContext::slo_wait_s` (a no-op for orderings
        // that ignore deadlines).
        self.scheduler.set_slo_target(service.slo_wait_s);
        self.service = service;
        Ok(self)
    }

    /// This simulator's configuration.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// The attached fault scenario ([`FaultSpec::none`] by default).
    pub fn fault_spec(&self) -> &FaultSpec {
        &self.faults
    }

    /// The attached service scenario ([`ServiceSpec::none`] by default).
    pub fn service_spec(&self) -> &ServiceSpec {
        &self.service
    }

    /// The label reports carry: the active policy triple (reflects custom
    /// policies when present).
    pub fn label(&self) -> String {
        self.scheduler.label()
    }

    /// Attach an observer factory: every subsequent run creates one fresh
    /// observer from it and feeds it the run's event stream. Observers are
    /// hash-neutral — they cannot change results, only watch them.
    ///
    /// Failures of factory-made observers panic: at creation (e.g. a
    /// trace file that cannot be created) and at end of run (a deferred
    /// sink I/O error would otherwise vanish with the observer — `run`
    /// returns a plain [`SimOutput`] and has nowhere to report it). Use
    /// caller-owned observers ([`ObserverSet::watch`]) where errors must
    /// be handled instead.
    #[deprecated(note = "attach per run: `run_with(workload, ObserverSet::new().factory(f))`")]
    pub fn with_observer(mut self, factory: Arc<dyn ObserverFactory>) -> Self {
        self.observers.push(factory);
        self
    }

    /// Simulate the workload to completion with the default observer set
    /// (the built-in metric observers that assemble [`SimOutput`]).
    pub fn run(&self, workload: &Workload) -> SimOutput {
        self.run_with(workload, ObserverSet::new())
    }

    /// Simulate the workload with everything in `observers` watching, on
    /// top of the built-in metric observers that assemble [`SimOutput`].
    ///
    /// This is the single observed-run entry point: borrowed observers,
    /// boxed observer slices, per-run factories, and the progress
    /// heartbeat all attach through one [`ObserverSet`] (the historical
    /// `run_observed` / `run_boxed` / `with_observer` /
    /// `SimConfig::with_progress_every` surfaces survive as thin
    /// deprecated shims over it). Observation is hash-neutral: the output
    /// is bit-identical to an unobserved run.
    ///
    /// Caller-owned observers ([`ObserverSet::watch`] /
    /// [`ObserverSet::watch_boxed`]) stay inspectable after the run and
    /// report their own failures through [`Observer::failure`];
    /// factory-made observers die here, so their creation or deferred
    /// sink failures panic — there is nowhere left to report them.
    /// [`Simulation::try_run_with`] is the non-panicking form.
    pub fn run_with(&self, workload: &Workload, observers: ObserverSet<'_>) -> SimOutput {
        self.try_run_with(workload, observers)
            // lint: allow(panic) — documented contract of the infallible
            // surface: observation errors have nowhere else to go here.
            .unwrap_or_else(|e| panic!("observed run failed: {e}"))
    }

    /// [`Simulation::run_with`], but observation failures — a factory
    /// that cannot open its sink, or a factory-made observer whose
    /// deferred sink write failed — come back as `Err` instead of
    /// panicking. The simulation itself is still infallible by
    /// construction; only attached observation can fail.
    pub fn try_run_with(
        &self,
        workload: &Workload,
        observers: ObserverSet<'_>,
    ) -> Result<SimOutput, SimError> {
        let ObserverSet {
            mut borrowed,
            factories,
            progress_every,
        } = observers;
        let label = RunLabel::new(self.scheduler.label());
        let mut made: Vec<Box<dyn Observer>> = self
            .observers
            .iter()
            .chain(factories.iter())
            .map(|f| f.make(&label))
            .collect::<Result<_, _>>()?;
        if let Some(every) = progress_every {
            made.push(Box::new(ProgressObserver::every(every)));
        }
        let mut extras: Vec<&mut dyn Observer> = Vec::with_capacity(borrowed.len() + made.len());
        for o in borrowed.iter_mut() {
            extras.push(&mut **o);
        }
        for b in made.iter_mut() {
            extras.push(b.as_mut());
        }
        // Expanding the scenario is a pure function of (spec, machine);
        // FaultSpec::none() yields an empty list and the pre-fault path.
        let fault_events = self.faults.materialize(&self.cfg.cluster);
        // Likewise pure: a service scenario opens its seeded job stream
        // fresh per run, so repeated runs replay identically.
        let source: Option<Box<dyn JobSource>> = if self.service.is_none() {
            None
        } else {
            let src = self.service.open_source(&self.cfg.cluster)?;
            Some(Box::new(src))
        };
        let output = match self.cfg.event_queue {
            EventQueueKind::BinaryHeap => self.run_on(
                BinaryHeapQueue::with_capacity(workload.len() * 2),
                workload,
                &fault_events,
                source,
                &mut extras,
            ),
            EventQueueKind::Calendar => self.run_on(
                CalendarQueue::new(),
                workload,
                &fault_events,
                source,
                &mut extras,
            ),
        };
        drop(extras);
        // Factory-made observers die with this call, so a deferred sink
        // failure (e.g. trace disk full) would be silently lost — the
        // caller keeps their own observers and can check those, but these
        // are ours to account for.
        if let Some(e) = made.iter().find_map(|o| o.failure()) {
            return Err(e);
        }
        Ok(output)
    }

    /// Simulate with additional borrowed [`Observer`]s attached.
    #[deprecated(note = "use `run_with` with `ObserverSet::new().watch(...)`")]
    pub fn run_observed(
        &self,
        workload: &Workload,
        observers: &mut [&mut dyn Observer],
    ) -> SimOutput {
        let mut set = ObserverSet::new();
        for o in observers.iter_mut() {
            set = set.watch(&mut **o);
        }
        self.run_with(workload, set)
    }

    /// Simulate with observers owned as boxes.
    #[deprecated(note = "use `run_with` with `ObserverSet::new().watch_boxed(observers)`")]
    pub fn run_boxed(&self, workload: &Workload, observers: &mut [Box<dyn Observer>]) -> SimOutput {
        self.run_with(workload, ObserverSet::new().watch_boxed(observers))
    }

    /// Drive the monomorphized engine on one event-queue backend.
    fn run_on<Q: EventQueue<Event>>(
        &self,
        events: Q,
        workload: &Workload,
        fault_events: &[(SimTime, FaultAction)],
        source: Option<Box<dyn JobSource>>,
        extras: &mut [&mut dyn Observer],
    ) -> SimOutput {
        let mut engine = Engine::new(
            &self.cfg,
            &self.scheduler,
            &self.faults,
            &self.service,
            events,
            workload,
            fault_events,
            source,
            extras,
            None,
        );
        engine.drive(workload);
        engine.finalize()
    }
}

/// The always-attached metric observers [`SimOutput`] is assembled from.
/// Statically dispatched: the fast path pays no virtual calls for its own
/// metrics, only user-attached extras go through `dyn Observer`.
///
/// Closed batch runs attach `series` + `stats` (exact, O(events) /
/// O(jobs)); open service runs attach `sketch` instead (O(1) in both) —
/// never both, so a run's memory profile matches its mode.
struct Builtins {
    series: Option<SeriesObserver>,
    stats: Option<JobStatsObserver>,
    sketch: Option<SketchStatsObserver>,
    faults: FaultObserver,
}

pub(crate) struct Engine<'a, 'o, Q: EventQueue<Event>> {
    cfg: &'a SimConfig,
    scheduler: &'a Scheduler,
    faults: &'a FaultSpec,
    /// Open-system job stream; `None` on closed batch runs, which keep
    /// the exact pre-service code path.
    source: Option<Box<dyn JobSource>>,
    /// The next arrival pulled but not yet submitted (its
    /// [`Event::OpenArrival`] is in the queue). Pull-based admission keeps
    /// exactly one arrival materialized at a time.
    pending: Option<Job>,
    /// Whether this run has any fault events at all: false keeps every
    /// fault-handling branch dead, preserving bit-identical fault-free
    /// traces.
    faults_active: bool,
    cluster: Cluster,
    queue: WaitQueue,
    events: Q,
    running: BTreeMap<JobId, RunningJob>,
    /// Planned releases of running jobs, sorted by planned end — handed to
    /// every pass as a view instead of being rebuilt per pass.
    releases: ReleaseIndex,
    /// Per-pool-domain borrower sets (job ids charged to the pool).
    /// Maintained only under dynamic slowdown models; empty otherwise.
    borrowers: Vec<BTreeSet<JobId>>,
    /// Pools whose occupancy changed since the last re-dilation.
    dirty_pools: Vec<bool>,
    any_dirty: bool,
    /// Cached `slowdown.is_dynamic()`: whether re-dilation applies at all.
    dynamic: bool,
    /// Built-in metric observers (series, job records, fault counters) —
    /// every state change reaches them as a [`SimEvent`].
    obs: Builtins,
    /// User-attached observers; an empty slice on plain runs, so the
    /// dispatch loop is free then.
    extras: &'a mut [&'o mut dyn Observer],
    /// Config-declared progress heartbeat, if any.
    progress: Option<ProgressObserver>,
    now: SimTime,
    start_time: SimTime,
    events_processed: u64,
    passes: u64,
    trace_hash: u64,
    /// Fault bookkeeping for interrupted jobs (empty on fault-free runs).
    fault_meta: BTreeMap<JobId, FaultMeta>,
    /// Time of the last job-affecting event (arrival, finish, interrupt,
    /// start, rejection). Fault runs clamp every time-based metric to
    /// this instant: repair/drain-end events trailing the last job must
    /// not stretch makespan and dilute the utilizations.
    last_job_time: SimTime,
    /// The pending [`Event::Wake`] target, if one is scheduled — dedupes
    /// the wake a held pass asks for (every pass while held recomputes the
    /// same release instant).
    next_wake: Option<SimTime>,
    /// Jobs checkpoint-preempted for deadline-critical arrivals.
    preemptions: u64,
    /// Jobs currently deferred by `DeferUntilFeasible` admission — the
    /// set makes the `JobDeferred` observation fire once per job, not
    /// once per pass.
    deferred: BTreeSet<JobId>,
    /// Jobs handed to this engine mid-run by a federation meta-scheduler,
    /// in arrival order. Kept outside the event queue so an injected
    /// arrival wins a same-instant tie against any already-scheduled
    /// event — exactly the order a plain run produces, where every
    /// arrival enters the queue before the run starts. Always empty on
    /// plain runs.
    injections: std::collections::VecDeque<Job>,
}

pub(crate) const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
pub(crate) const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl<'a, 'o, Q: EventQueue<Event>> Engine<'a, 'o, Q> {
    #[allow(clippy::too_many_arguments)]
    fn new(
        cfg: &'a SimConfig,
        scheduler: &'a Scheduler,
        faults: &'a FaultSpec,
        service: &ServiceSpec,
        mut events: Q,
        workload: &Workload,
        fault_events: &[(SimTime, FaultAction)],
        mut source: Option<Box<dyn JobSource>>,
        extras: &'a mut [&'o mut dyn Observer],
        origin: Option<SimTime>,
    ) -> Self {
        let cluster = Cluster::new(cfg.cluster);
        let open = source.is_some();
        // Open runs pull their first arrival up front: it pins the time
        // origin exactly like a materialized workload's first arrival.
        let pending = source.as_mut().and_then(|s| s.next_job());
        let mut start_time = if let Some(origin) = origin {
            // Federated site engines start empty and receive jobs by
            // injection; all sites share the fleet's time origin so their
            // clocks (and series origins) agree at every epoch barrier.
            origin
        } else if open {
            pending.as_ref().map(|j| j.arrival).unwrap_or(SimTime::ZERO)
        } else {
            workload.first_arrival().unwrap_or(SimTime::ZERO)
        };
        if let Some(&(first_fault, _)) = fault_events.first() {
            // Faults may precede the first arrival; the clock (and the
            // series origin) must not jump backwards onto them.
            start_time = start_time.min_of(first_fault);
        }
        let jobs_hint = if open {
            source
                .as_ref()
                .and_then(|s| s.size_hint())
                .map(|rest| rest as usize + usize::from(pending.is_some()))
                .unwrap_or(0)
        } else {
            workload.len()
        };
        if open {
            if let Some(j) = &pending {
                events.schedule(j.arrival, Event::OpenArrival);
            }
        } else {
            for (i, job) in workload.iter().enumerate() {
                events.schedule(job.arrival, Event::Arrival(i));
            }
        }
        // After arrivals, so a same-instant arrival processes before the
        // fault that might take its capacity (both backends are stable).
        for &(at, action) in fault_events {
            events.schedule(at, Event::Fault(action));
        }
        let domains = cluster.pools().len();
        let in_service = cluster.available_nodes();
        let mut engine = Engine {
            faults_active: !fault_events.is_empty(),
            queue: WaitQueue::new(),
            events,
            running: BTreeMap::new(),
            releases: ReleaseIndex::new(),
            borrowers: vec![BTreeSet::new(); domains],
            dirty_pools: vec![false; domains],
            any_dirty: false,
            dynamic: cfg.scheduler.slowdown.is_dynamic(),
            obs: Builtins {
                series: (!open).then(|| SeriesObserver::new(start_time, &cfg.cluster)),
                stats: (!open).then(|| JobStatsObserver::with_capacity(workload.len())),
                sketch: open.then(|| {
                    SketchStatsObserver::new(
                        start_time,
                        &cfg.cluster,
                        service.warmup_s,
                        service.slo_wait_s,
                    )
                }),
                faults: FaultObserver::new(start_time, in_service),
            },
            source,
            pending,
            extras,
            progress: cfg.observers.progress_every.map(ProgressObserver::every),
            now: start_time,
            start_time,
            events_processed: 0,
            passes: 0,
            trace_hash: FNV_OFFSET,
            fault_meta: BTreeMap::new(),
            last_job_time: start_time,
            next_wake: None,
            preemptions: 0,
            deferred: BTreeSet::new(),
            injections: std::collections::VecDeque::new(),
            cfg,
            scheduler,
            faults,
            cluster,
        };
        let ctx = RunContext {
            start: start_time,
            cluster: engine.cfg.cluster,
            jobs: jobs_hint,
            in_service_nodes: in_service,
            label: engine.scheduler.label(),
        };
        if let Some(p) = &mut engine.progress {
            p.on_run_start(&ctx);
        }
        for o in engine.extras.iter_mut() {
            o.on_run_start(&ctx);
        }
        engine
    }

    /// Fan one observation out to the built-ins and every extra observer.
    fn emit(&mut self, ev: SimEvent) {
        if let Some(s) = &mut self.obs.series {
            s.on_event(&ev);
        }
        if let Some(s) = &mut self.obs.stats {
            s.on_event(&ev);
        }
        if let Some(s) = &mut self.obs.sketch {
            s.on_event(&ev);
        }
        self.obs.faults.on_event(&ev);
        if let Some(p) = &mut self.progress {
            p.on_event(&ev);
        }
        for o in self.extras.iter_mut() {
            o.on_event(&ev);
        }
    }

    fn hash_mix(&mut self, vals: [u64; 3]) {
        for v in vals {
            for byte in v.to_le_bytes() {
                self.trace_hash ^= byte as u64;
                self.trace_hash = self.trace_hash.wrapping_mul(FNV_PRIME);
            }
        }
    }

    fn drive(&mut self, workload: &Workload) {
        self.drive_bounded(workload, None);
        assert!(self.running.is_empty(), "jobs still running at drain");
        assert_eq!(self.cluster.lease_count(), 0, "leaked leases");
    }

    /// Process events strictly before `limit`, or every event when
    /// `limit` is `None`.
    ///
    /// A bounded call is the federation epoch step: the site advances to
    /// the barrier and returns with events at or past it still queued.
    /// While bounded, a drained event queue simply returns — more
    /// injections arrive at later barriers, so an idle queue is not the
    /// wedge it would be on a terminal drain.
    fn drive_bounded(&mut self, workload: &Workload, limit: Option<SimTime>) {
        loop {
            // Two event sources: the queue proper, and pending federation
            // injections. An injected arrival wins a same-instant tie
            // against any queued event, reproducing plain-run order (where
            // every arrival is scheduled before anything else exists).
            let queued = self.events.peek_time();
            let injected = self.injections.front().map(|j| j.arrival);
            let next = match (queued, injected) {
                (Some(q), Some(i)) => Some(q.min_of(i)),
                (q, i) => q.or(i),
            };
            let t = match next {
                Some(t) if limit.is_none_or(|lim| t < lim) => t,
                Some(_) => return,
                None => {
                    if limit.is_some() {
                        // Mid-run idle: later barriers bring more work.
                        return;
                    }
                    if self.queue.is_empty() {
                        break;
                    }
                    // Events drained but jobs still queued: they must start
                    // on the (partially) empty machine now.
                    let before = self.queue.len();
                    let started = self.pass();
                    if started == 0 && self.queue.len() == before {
                        if self.events.peek_time().is_some() {
                            // The pass held its batch and scheduled a
                            // wake-up; the loop continues on that event.
                            continue;
                        }
                        if self.faults_active {
                            // Permanent capacity loss (failed nodes with no
                            // pending repair) can leave a job unservable
                            // even though it fit the healthy machine. No
                            // event can change anything anymore, so it
                            // fails terminally instead of wedging the
                            // drain.
                            let entry = self.queue.pop_front();
                            self.hash_mix([13, self.now.as_micros(), entry.job.id.0]);
                            self.emit(SimEvent::JobFailed {
                                at: self.now,
                                record: JobRecord::failed_unstarted(entry.job),
                            });
                            self.last_job_time = self.now;
                            continue;
                        }
                        // lint: allow(panic) — a live simulation always has a next event; a wedged scheduler is an engine bug worth dying loudly for
                        panic!(
                            "scheduler wedged: {} queued jobs, {} running, no events",
                            self.queue.len(),
                            self.running.len()
                        );
                    }
                    continue;
                }
            };
            debug_assert!(t >= self.now, "event time went backwards");
            self.now = t;
            let mut changed = false;
            while self
                .injections
                .front()
                .is_some_and(|j| j.arrival == self.now)
            {
                // lint: allow(panic) — the surrounding branch peeked this injection
                let job = self.injections.pop_front().expect("checked front");
                self.admit(job);
                changed = true;
            }
            while self.events.peek_time() == Some(self.now) {
                // lint: allow(panic) — the surrounding branch peeked this event
                let (_, ev) = self.events.pop().expect("peeked");
                changed |= self.process(ev, workload);
            }
            if changed {
                self.batch_end();
            }
        }
    }

    /// Admit a job into this site engine at its true arrival time
    /// (federation routing). The coordinator routes each epoch's arrivals
    /// at the epoch barrier — before any site simulates past it — and in
    /// arrival order, so injections form a sorted pending-arrival list.
    fn inject(&mut self, job: Job) {
        debug_assert!(job.arrival >= self.now, "injected job arrives in the past");
        debug_assert!(
            self.injections
                .back()
                .is_none_or(|b| b.arrival <= job.arrival),
            "injections must be issued in arrival order"
        );
        self.injections.push_back(job);
    }

    /// The arrival path shared by workload arrivals, open-stream
    /// arrivals, and federation injections: same hash tag, same emitted
    /// event, same counters — which is what makes a one-site fleet run
    /// bit-identical to the plain run of the same workload.
    fn admit(&mut self, job: Job) {
        self.hash_mix([1, self.now.as_micros(), job.id.0]);
        self.emit(SimEvent::JobSubmitted {
            at: self.now,
            job: job.clone(),
            resubmit: false,
        });
        self.queue.push(job, self.now);
        self.events_processed += 1;
        self.last_job_time = self.now;
    }

    /// Process one event; returns whether system state changed.
    fn process(&mut self, ev: Event, workload: &Workload) -> bool {
        match ev {
            Event::Arrival(idx) => {
                self.admit(workload.jobs()[idx].clone());
                true
            }
            Event::Finish { job, generation } => {
                let stale = self
                    .running
                    .get(&job)
                    .map(|r| r.generation != generation)
                    .unwrap_or(true);
                if stale {
                    return false;
                }
                self.finish_job(job);
                self.events_processed += 1;
                true
            }
            Event::Fault(action) => {
                self.events_processed += 1;
                self.apply_fault(action);
                true
            }
            Event::OpenArrival => {
                // The exact arrival path (same hash tag, same event, same
                // counters), fed from the stream instead of the workload.
                let job = self
                    .pending
                    .take()
                    // lint: allow(panic) — open-system arrivals stage the job before the event fires
                    .expect("open arrival without pending job");
                self.admit(job);
                // Refill: materialize the next arrival on demand, keeping
                // exactly one in flight until the source's horizon.
                if let Some(src) = self.source.as_mut() {
                    if let Some(next) = src.next_job() {
                        self.events.schedule(next.arrival, Event::OpenArrival);
                        self.pending = Some(next);
                    }
                }
                true
            }
            Event::Wake => {
                // A held batch's budget expired: nothing to apply, but the
                // state "changed" so batch_end runs a pass.
                self.next_wake = None;
                self.events_processed += 1;
                true
            }
        }
    }

    /// Apply one machine perturbation: drive the node/pool state machine,
    /// interrupt displaced jobs, and keep the dilation bookkeeping dirty
    /// where pressure changed.
    fn apply_fault(&mut self, action: FaultAction) {
        match action {
            FaultAction::NodeFail(node) => {
                self.hash_mix([5, self.now.as_micros(), node.0 as u64]);
                // lint: allow(panic) — FaultSpec validation pinned every target node to the cluster
                if self.cluster.fail_node(node).expect("validated fault node") {
                    self.emit_fault(action, true);
                    if let Some(lease) = self.cluster.holder(node) {
                        self.interrupt_job(JobId(lease));
                    }
                }
            }
            FaultAction::NodeRepair(node) => {
                self.hash_mix([6, self.now.as_micros(), node.0 as u64]);
                if self
                    .cluster
                    .repair_node(node)
                    // lint: allow(panic) — FaultSpec validation pinned every target node to the cluster
                    .expect("validated fault node")
                {
                    self.emit_fault(action, false);
                }
            }
            FaultAction::DrainStart(node) => {
                self.hash_mix([7, self.now.as_micros(), node.0 as u64]);
                // lint: allow(panic) — FaultSpec validation pinned every target node to the cluster
                if self.cluster.drain_node(node).expect("validated fault node") {
                    self.emit_fault(action, true);
                    // Hard drain: running work is checkpointed/resubmitted
                    // so the node frees for maintenance immediately.
                    if let Some(lease) = self.cluster.holder(node) {
                        self.interrupt_job(JobId(lease));
                    }
                }
            }
            FaultAction::DrainEnd(node) => {
                self.hash_mix([8, self.now.as_micros(), node.0 as u64]);
                if self
                    .cluster
                    .undrain_node(node)
                    // lint: allow(panic) — FaultSpec validation pinned every target node to the cluster
                    .expect("validated fault node")
                {
                    self.emit_fault(action, false);
                }
            }
            FaultAction::PoolDegrade { pool, factor } => {
                self.hash_mix([9, self.now.as_micros(), pool.0 as u64]);
                self.cluster
                    .set_pool_health(pool, factor)
                    // lint: allow(panic) — FaultSpec validation pinned the pool id and factor range
                    .expect("validated pool and factor");
                self.emit_fault(action, true);
                // Evict borrowers — lowest lease id first, deterministic —
                // until the remaining holdings fit the degraded capacity.
                loop {
                    let p = self.cluster.pool(pool);
                    if p.used() <= p.effective_capacity() {
                        break;
                    }
                    // lint: allow(panic) — a pool over its shrunk capacity necessarily has at least one holder
                    let (lease, _) = p.holders().next().expect("over-committed pool has holders");
                    self.interrupt_job(JobId(lease));
                }
                self.mark_pool_dirty(pool);
            }
            FaultAction::PoolRepair(pool) => {
                self.hash_mix([10, self.now.as_micros(), pool.0 as u64]);
                self.cluster
                    .set_pool_health(pool, 1.0)
                    // lint: allow(panic) — FaultSpec validation pinned the pool id
                    .expect("validated pool");
                self.emit_fault(action, false);
                self.mark_pool_dirty(pool);
            }
        }
    }

    /// Emit the observation for a fault transition that took hold,
    /// carrying the post-transition in-service node count (the fault
    /// observer keeps the availability integral from exactly these).
    /// Emitted *before* the interruptions the fault causes, so traces
    /// read cause-then-effect; node availability is unaffected by the
    /// interruptions themselves.
    fn emit_fault(&mut self, action: FaultAction, applied: bool) {
        let nodes_in_service = self.cluster.available_nodes();
        let ev = if applied {
            SimEvent::FaultApplied {
                at: self.now,
                action,
                nodes_in_service,
            }
        } else {
            SimEvent::FaultCleared {
                at: self.now,
                action,
                nodes_in_service,
            }
        };
        self.emit(ev);
    }

    /// Mark a pool's pressure as changed (degradation moves pressure even
    /// when occupancy is untouched), so re-dilation revisits its borrowers.
    fn mark_pool_dirty(&mut self, pool: dmhpc_platform::PoolId) {
        if self.dynamic {
            self.dirty_pools[pool.0 as usize] = true;
            self.any_dirty = true;
        }
    }

    /// Interrupt a running job (fault displaced its capacity): release
    /// everything it holds, then resubmit it per the scenario's
    /// [`InterruptPolicy`] — or fail it terminally once its resubmission
    /// budget is spent.
    fn interrupt_job(&mut self, id: JobId) {
        self.last_job_time = self.now;
        // lint: allow(panic) — interrupts are generated from the running set itself
        let mut r = self.running.remove(&id).expect("interrupt of unknown job");
        // Settle work consumed at the current rate up to the interruption.
        let elapsed = self.now - r.last_update;
        let consumed_now = elapsed.scale(1.0 / r.dilation);
        r.work_remaining = r.work_remaining.saturating_sub(consumed_now);

        self.cluster
            .release(id.as_u64())
            // lint: allow(panic) — every started job allocated a lease; missing one is an engine bug
            .expect("running job holds a lease");
        let release = self
            .releases
            .remove(id.as_u64())
            // lint: allow(panic) — every started job is registered in the release index
            .expect("running job is release-indexed");
        self.note_pool_change(id, &release.pool_per_domain, false);
        self.emit(SimEvent::AllocationReleased {
            at: self.now,
            job: id,
            nodes: r.assignment.node_count() as u32,
            local_mib: r.assignment.local_per_node * r.assignment.node_count() as u64,
            remote_mib: r.assignment.total_remote(),
        });
        self.hash_mix([11, self.now.as_micros(), id.0]);

        let meta = self.fault_meta.entry(id).or_default();
        meta.next_gen = r.generation + 1;
        let attempt_wall = self.now - r.start;

        if meta.resubmits >= self.faults.max_resubmits {
            // Terminal failure: record the final attempt. The aborted
            // attempt's wall clock is rework.
            self.emit(SimEvent::JobInterrupted {
                at: self.now,
                job: id,
                rework_s: attempt_wall.as_secs_f64(),
                resubmitted: false,
            });
            self.hash_mix([12, self.now.as_micros(), id.0]);
            let consumed_total = r.job.runtime.saturating_sub(r.work_remaining);
            let dilation_actual = if consumed_total.is_zero() {
                r.dilation
            } else {
                attempt_wall.ratio(consumed_total)
            };
            self.emit(SimEvent::JobFailed {
                at: self.now,
                record: JobRecord {
                    nodes_allocated: r.assignment.node_count() as u32,
                    remote_per_node: r.assignment.remote_per_node,
                    job: r.job,
                    outcome: JobOutcome::Failed,
                    start: Some(r.start),
                    finish: Some(self.now),
                    dilation_planned: r.dilation_planned,
                    dilation_actual,
                },
            });
            return;
        }
        meta.resubmits += 1;
        let (job, rework_s) = match self.faults.interrupt {
            InterruptPolicy::Resubmit => {
                // From scratch: the whole aborted attempt is rework.
                (r.job, attempt_wall.as_secs_f64())
            }
            InterruptPolicy::Checkpoint { overhead_s } => {
                // Completed work survives; only the restore overhead is
                // redone. The resubmitted job carries its remaining work.
                let overhead = SimDuration::from_secs(overhead_s);
                let mut job = r.job;
                job.runtime = r.work_remaining + overhead;
                (job, overhead.as_secs_f64())
            }
        };
        self.emit(SimEvent::JobInterrupted {
            at: self.now,
            job: id,
            rework_s,
            resubmitted: true,
        });
        self.hash_mix([14, self.now.as_micros(), job.id.0]);
        self.emit(SimEvent::JobSubmitted {
            at: self.now,
            job: job.clone(),
            resubmit: true,
        });
        self.queue.push(job, self.now);
    }

    /// The policy context the engine itself prices feasibility with —
    /// the same bundle `Scheduler::schedule` hands to policies.
    fn sched_ctx(&self) -> SchedContext<'_> {
        SchedContext::new(
            self.now,
            &self.cluster,
            &self.scheduler.config().slowdown,
            self.releases.view(),
            self.scheduler.slo_target(),
        )
    }

    /// The front-most queued job that justifies preemption: stamped with
    /// a still-feasible deadline (laxity prices its best up-capacity
    /// shape) that would be lost by waiting for the earliest planned
    /// release. Returns its id, laxity, and nominal node demand.
    fn preempt_candidate(&self) -> Option<(JobId, f64, usize)> {
        let first_release = self.releases.view().iter().next()?.planned_end;
        let ctx = self.sched_ctx();
        let placement = self.scheduler.placement();
        for entry in self.queue.iter() {
            let job = &entry.job;
            let Some(deadline) = ctx.deadline(job) else {
                continue;
            };
            let Some(laxity) = ctx.laxity_s(job) else {
                continue;
            };
            if laxity < 0.0 {
                continue; // deadline already lost: preemption cannot help
            }
            let Some((demand, _)) = placement.nominal_shape(job, &ctx) else {
                continue;
            };
            let Some(best) = placement.best_dilation(job, &ctx) else {
                continue;
            };
            let wall = job.walltime.as_secs_f64();
            if wall * (best - 1.0) > laxity {
                continue; // cannot meet even if started this instant
            }
            if first_release.as_secs_f64() + wall * best <= deadline.as_secs_f64() {
                continue; // waiting for the next natural release still meets
            }
            return Some((job.id, laxity, demand.nodes as usize));
        }
        None
    }

    /// Deadline-priced preemption (opt-in via [`PreemptPolicy`]): when a
    /// queued stamped job could still meet its deadline by starting now
    /// but not by waiting for the next natural release, checkpoint the
    /// laxity-richest running jobs until its nominal shape has the nodes,
    /// re-pass, and resubmit the checkpointed work only after that pass —
    /// the critical job must win the freed capacity, not its evictees.
    fn maybe_preempt(&mut self) {
        let PreemptPolicy::LaxityCheckpoint { overhead_s } = self.scheduler.config().preempt else {
            return;
        };
        if self.queue.is_empty() || self.running.is_empty() {
            return;
        }
        let Some((for_job, cand_laxity, needed_nodes)) = self.preempt_candidate() else {
            return;
        };
        // Victims in descending laxity (deadline-free jobs, laxity ∞,
        // first), ties by ascending id — and never a job as critical as
        // the one being rescued.
        let mut victims: Vec<(f64, JobId)> = {
            let ctx = self.sched_ctx();
            self.running
                .values()
                .filter_map(|r| {
                    let laxity = ctx.laxity_s(&r.job).unwrap_or(f64::INFINITY);
                    (laxity > cand_laxity).then_some((laxity, r.job.id))
                })
                .collect()
        };
        victims.sort_by(|a, b| {
            b.0.partial_cmp(&a.0)
                // lint: allow(panic) — laxities are finite arithmetic on validated deadlines; NaN is an engine bug
                .expect("laxities are comparable")
                .then(a.1.cmp(&b.1))
        });
        let mut free = self.cluster.free_nodes();
        let mut resubmits = Vec::new();
        for (_, victim) in victims {
            if free >= needed_nodes {
                break;
            }
            free += self.running[&victim].assignment.node_count();
            resubmits.push(self.preempt_release(victim, for_job, overhead_s));
        }
        if resubmits.is_empty() {
            return;
        }
        self.re_dilate();
        let mut started = self.pass();
        for job in resubmits {
            self.hash_mix([16, self.now.as_micros(), job.id.0]);
            self.emit(SimEvent::JobSubmitted {
                at: self.now,
                job: job.clone(),
                resubmit: true,
            });
            self.queue.push(job, self.now);
        }
        // One more pass so leftover capacity (and anything the evictions
        // freed beyond the critical job's shape) is claimed at this
        // instant — preemption must stay work-conserving.
        started += self.pass();
        if started > 0 {
            self.re_dilate();
        }
    }

    /// Checkpoint-release one running job to free capacity for `for_job`:
    /// the capacity-release half of [`Engine::interrupt_job`], but never
    /// terminal — preemption is a scheduling decision, not a fault, so it
    /// neither consumes the fault model's resubmission budget nor can it
    /// fail a job. Returns the checkpointed job; the caller resubmits it
    /// after the rescue pass.
    fn preempt_release(&mut self, id: JobId, for_job: JobId, overhead_s: u64) -> Job {
        self.last_job_time = self.now;
        // lint: allow(panic) — preemption victims are chosen from the running set itself
        let mut r = self.running.remove(&id).expect("preempt of unknown job");
        // Settle work consumed at the current rate up to the preemption.
        let elapsed = self.now - r.last_update;
        let consumed_now = elapsed.scale(1.0 / r.dilation);
        r.work_remaining = r.work_remaining.saturating_sub(consumed_now);

        self.cluster
            .release(id.as_u64())
            // lint: allow(panic) — every started job allocated a lease; missing one is an engine bug
            .expect("running job holds a lease");
        let release = self
            .releases
            .remove(id.as_u64())
            // lint: allow(panic) — every started job is registered in the release index
            .expect("running job is release-indexed");
        self.note_pool_change(id, &release.pool_per_domain, false);
        self.emit(SimEvent::AllocationReleased {
            at: self.now,
            job: id,
            nodes: r.assignment.node_count() as u32,
            local_mib: r.assignment.local_per_node * r.assignment.node_count() as u64,
            remote_mib: r.assignment.total_remote(),
        });
        self.hash_mix([15, self.now.as_micros(), id.0]);
        // Restart generations guard against the aborted attempt's
        // in-flight finish event, exactly as fault interruptions do.
        self.fault_meta.entry(id).or_default().next_gen = r.generation + 1;
        // Checkpointed: completed work survives; the restore overhead is
        // the only rework.
        let overhead = SimDuration::from_secs(overhead_s);
        let mut job = r.job;
        job.runtime = r.work_remaining + overhead;
        self.emit(SimEvent::JobPreempted {
            at: self.now,
            job: id,
            for_job,
        });
        self.preemptions += 1;
        job
    }

    fn finish_job(&mut self, id: JobId) {
        self.last_job_time = self.now;
        // lint: allow(panic) — finish events are scheduled only for running jobs
        let mut r = self.running.remove(&id).expect("finish of unknown job");
        // Convert elapsed wall time into consumed work.
        let elapsed = self.now - r.last_update;
        let consumed_now = elapsed.scale(1.0 / r.dilation);
        r.work_remaining = r.work_remaining.saturating_sub(consumed_now);

        let (outcome, consumed_total) = if r.ends_by_kill {
            (
                JobOutcome::Killed,
                r.job.runtime.saturating_sub(r.work_remaining),
            )
        } else {
            // Natural completion: work is consumed exactly.
            (JobOutcome::Completed, r.job.runtime)
        };
        let residence = self.now - r.start;
        let dilation_actual = if consumed_total.is_zero() {
            r.dilation
        } else {
            residence.ratio(consumed_total)
        };

        self.cluster
            .release(id.as_u64())
            // lint: allow(panic) — every started job allocated a lease; missing one is an engine bug
            .expect("running job holds a lease");
        let release = self
            .releases
            .remove(id.as_u64())
            // lint: allow(panic) — every started job is registered in the release index
            .expect("running job is release-indexed");
        self.note_pool_change(id, &release.pool_per_domain, false);
        self.emit(SimEvent::AllocationReleased {
            at: self.now,
            job: id,
            nodes: r.assignment.node_count() as u32,
            local_mib: r.assignment.local_per_node * r.assignment.node_count() as u64,
            remote_mib: r.assignment.total_remote(),
        });
        self.hash_mix([2, self.now.as_micros(), id.0]);
        self.emit(SimEvent::JobFinished {
            at: self.now,
            record: JobRecord {
                nodes_allocated: r.assignment.node_count() as u32,
                remote_per_node: r.assignment.remote_per_node,
                job: r.job,
                outcome,
                start: Some(r.start),
                finish: Some(self.now),
                dilation_planned: r.dilation_planned,
                dilation_actual,
            },
        });
    }

    /// Pressure input for a running job: the highest pressure among the pool
    /// domains its nodes charge.
    fn job_pressure(&self, assignment: &MemoryAssignment) -> f64 {
        if assignment.remote_per_node == 0 {
            return 0.0;
        }
        let mut max_p = 0.0f64;
        for &node in &assignment.nodes {
            if let Some(pool) = self.cluster.pool_of(node) {
                max_p = max_p.max(self.cluster.pool(pool).pressure());
            }
        }
        max_p
    }

    /// Record a pool-occupancy change for `job` under the dynamic model:
    /// maintain the borrower index and mark the touched pools dirty.
    /// `pool_per_domain` is the job's release record — exactly the pools
    /// its nodes charge.
    fn note_pool_change(&mut self, job: JobId, pool_per_domain: &[u64], starting: bool) {
        if !self.dynamic {
            return;
        }
        for (p, &amount) in pool_per_domain.iter().enumerate() {
            if amount == 0 {
                continue;
            }
            if starting {
                self.borrowers[p].insert(job);
            } else {
                self.borrowers[p].remove(&job);
            }
            self.dirty_pools[p] = true;
            self.any_dirty = true;
        }
    }

    /// Recompute dilation of running borrowers under the contention model;
    /// reschedule finishes whose dilation changed. Pool-scoped: only jobs
    /// charged to pools whose occupancy changed since the last call are
    /// visited — everyone else's dilation inputs are unchanged, so the old
    /// whole-set sweep would have recomputed their dilation to the same
    /// value and skipped them anyway.
    fn re_dilate(&mut self) {
        if !self.dynamic || !self.any_dirty {
            return;
        }
        // Union of the dirty pools' borrowers, in ascending job-id order —
        // the same deterministic order the full sweep used.
        let mut ids: BTreeSet<JobId> = BTreeSet::new();
        for (p, dirty) in self.dirty_pools.iter_mut().enumerate() {
            if *dirty {
                ids.extend(self.borrowers[p].iter().copied());
                *dirty = false;
            }
        }
        self.any_dirty = false;
        for id in ids {
            let pressure = {
                let r = &self.running[&id];
                self.job_pressure(&r.assignment)
            };
            // lint: allow(panic) — the id came from iterating this same map moments ago
            let r = self.running.get_mut(&id).expect("listed above");
            let new_dilation = self.cfg.scheduler.slowdown.dilation(DilationInputs {
                far_fraction: r.assignment.far_fraction(),
                intensity: r.job.intensity,
                pool_pressure: pressure,
            });
            if (new_dilation - r.dilation).abs() < 1e-9 {
                continue;
            }
            // Settle work at the old rate, then switch rates.
            let elapsed = self.now - r.last_update;
            let consumed = elapsed.scale(1.0 / r.dilation);
            r.work_remaining = r.work_remaining.saturating_sub(consumed);
            r.last_update = self.now;
            r.dilation = new_dilation;
            r.generation += 1;
            let natural = self.now + r.work_remaining.scale(new_dilation);
            let effective = natural.min_of(r.kill_time);
            r.ends_by_kill = r.kill_time < natural;
            let generation = r.generation;
            self.events.schedule(
                effective,
                Event::Finish {
                    job: id,
                    generation,
                },
            );
        }
    }

    /// One scheduling pass; returns how many jobs started. The release
    /// list is not rebuilt here — the pass reads the persistent index.
    fn pass(&mut self) -> usize {
        let result = self.scheduler.schedule(
            self.now,
            &mut self.queue,
            &mut self.cluster,
            self.releases.view(),
        );
        self.passes += 1;
        if let Some(until) = result.hold_until {
            // Batch held: make sure a wake-up exists at the release
            // instant (deduped — holds recompute the same target until
            // the batch goes out).
            if self.next_wake != Some(until) {
                self.events.schedule(until, Event::Wake);
                self.next_wake = Some(until);
            }
        }
        let rejected = result.rejected.len();
        for (job, _reason) in result.rejected {
            self.hash_mix([3, self.now.as_micros(), job.id.0]);
            self.emit(SimEvent::JobRejected {
                at: self.now,
                record: JobRecord::rejected(job),
            });
        }
        for (id, recheck_at) in result.deferred {
            // Deferred jobs stay queued; the observation fires once per
            // job. Nothing here under `AdmitAll`, which never defers.
            if self.deferred.insert(id) {
                self.hash_mix([17, self.now.as_micros(), id.0]);
                self.emit(SimEvent::JobDeferred {
                    at: self.now,
                    job: id,
                    recheck_at,
                });
            }
        }
        if let Some(recheck) = result.recheck_at {
            // Make sure admission re-assesses at the earliest feasibility
            // lapse even if no natural event intervenes (same deduped
            // wake-up the batch hold uses).
            if recheck > self.now && self.next_wake != Some(recheck) {
                self.events.schedule(recheck, Event::Wake);
                self.next_wake = Some(recheck);
            }
        }
        let n = result.started.len();
        if n > 0 || rejected > 0 {
            self.last_job_time = self.now;
        }
        for started in result.started {
            self.start_job(started);
        }
        self.emit(SimEvent::PassCompleted {
            at: self.now,
            started: n,
            rejected,
            queued: self.queue.len(),
        });
        n
    }

    fn start_job(&mut self, s: StartedJob) {
        let StartedJob {
            job,
            assignment,
            dilation,
            planned_walltime,
        } = s;
        self.emit(SimEvent::JobStarted {
            at: self.now,
            job: job.id,
            nodes: assignment.node_count() as u32,
            dilation,
        });
        self.emit(SimEvent::AllocationGrabbed {
            at: self.now,
            job: job.id,
            nodes: assignment.node_count() as u32,
            local_mib: assignment.local_per_node * assignment.node_count() as u64,
            remote_mib: assignment.total_remote(),
        });
        self.hash_mix([4, self.now.as_micros(), job.id.0]);
        // Index the planned release now; it never changes while running
        // (planned ends are walltime-based, so re-dilation cannot move
        // them) and is removed at finish.
        let planned_end = self.now + planned_walltime;
        let release = release_info(&self.cluster, &assignment, planned_end);
        self.note_pool_change(job.id, &release.pool_per_domain, true);
        self.releases.insert(job.id.as_u64(), release);
        let kill_time = if self.cfg.enforce_walltime {
            self.now + planned_walltime
        } else {
            SimTime::MAX
        };
        let natural = self.now + job.runtime.scale(dilation);
        let effective = natural.min_of(kill_time);
        // Restarted-after-interruption jobs begin above every generation of
        // their earlier attempts, so an aborted attempt's in-flight finish
        // event can never be mistaken for this one's. Fault-free runs have
        // an empty meta map and start at 0, as before.
        let generation = self
            .fault_meta
            .get(&job.id)
            .map(|m| m.next_gen)
            .unwrap_or(0);
        let running = RunningJob {
            work_remaining: job.runtime,
            job,
            start: self.now,
            assignment,
            kill_time,
            dilation_planned: dilation,
            dilation,
            last_update: self.now,
            generation,
            ends_by_kill: kill_time < natural,
        };
        let id = running.job.id;
        self.events.schedule(
            effective,
            Event::Finish {
                job: id,
                generation,
            },
        );
        self.running.insert(id, running);
    }

    fn batch_end(&mut self) {
        // Pressure may have dropped (finishes): settle borrowers first so
        // the pass plans against up-to-date state.
        self.re_dilate();
        // Event-driven gating: with nothing queued, a pass cannot start or
        // reject anything — skip it (and its release-view plumbing)
        // entirely. This is what makes passes ≤ events, strictly fewer
        // whenever finishes drain into an empty queue.
        if !self.queue.is_empty() {
            let started = self.pass();
            if started > 0 {
                // New borrowers raise pressure for everyone already running.
                self.re_dilate();
            }
            self.maybe_preempt();
        }
        if self.cfg.check_invariants {
            self.cluster
                .verify_invariants()
                // lint: allow(panic) — repair restores exactly what the failure removed
                .expect("cluster invariants violated");
            let busy = self.cluster.used_nodes() as f64;
            if let Some(series) = &self.obs.series {
                assert_eq!(
                    series.bundle().nodes_busy.stats().current(),
                    busy,
                    "series out of sync with cluster"
                );
            }
            // Availability invariant: by the end of every batch, no job
            // occupies a Down/Draining node (faults interrupt displaced
            // jobs within the event that displaced them).
            for r in self.running.values() {
                for &node in &r.assignment.nodes {
                    assert_eq!(
                        self.cluster.node_state(node),
                        NodeState::Up,
                        "job {} occupies out-of-service node {node}",
                        r.job.id
                    );
                }
            }
        }
    }

    fn finalize(self) -> SimOutput {
        debug_assert!(self.releases.is_empty(), "release index drained");
        debug_assert!(
            self.borrowers.iter().all(BTreeSet::is_empty),
            "borrower index drained"
        );
        let Engine {
            cfg,
            scheduler,
            faults_active,
            obs,
            extras,
            mut progress,
            now,
            start_time,
            events_processed,
            passes,
            trace_hash,
            last_job_time,
            preemptions,
            ..
        } = self;
        // Fault runs clamp the metrics window to the last job-affecting
        // event: repair/drain-end events trailing the last finish (the
        // generator's horizon routinely outlives short workloads) would
        // otherwise stretch makespan and dilute every time-weighted
        // metric with idle tail. Fault-free runs keep `now` — their
        // metrics are pinned by the golden-parity tests.
        let end = if faults_active {
            last_job_time.max_of(start_time)
        } else {
            now
        };
        let makespan = end.saturating_since(start_time);
        let run_end = RunEnd {
            at: now,
            end,
            events_processed,
            passes,
            trace_hash,
        };
        if let Some(p) = &mut progress {
            p.on_run_end(&run_end);
        }
        for o in extras.iter_mut() {
            o.on_run_end(&run_end);
        }
        let thresholds = ClassThresholds::standard(cfg.cluster.node.local_mem);
        if let Some(sketch) = obs.sketch {
            // Service run: the report is synthesized from the O(1)
            // sketches; no records, an empty origin series. Service runs
            // carry no fault scenario (rejected at attach), so the fault
            // summary is the default with avail_util == node_util.
            let (report, summary) = sketch.finalize(&scheduler.label(), end, None, &thresholds);
            let faults = FaultSummary {
                avail_util: report.node_util,
                ..FaultSummary::default()
            };
            return SimOutput {
                report,
                records: Vec::new(),
                series: SeriesBundle::new(start_time, &cfg.cluster),
                events_processed,
                passes,
                trace_hash,
                end_time: now,
                faults,
                preemptions,
                service: Some(summary),
            };
        }
        // SimOutput is assembled from the built-in observers' final state:
        // the series bundle, the record list, and the fault summary
        // (whose availability-weighted metrics derive over [start, end] —
        // without downtime inside the window, avail_util is the *same
        // expression* as node_util, bit-equal, so fault-free outputs are
        // unchanged).
        let series = obs
            .series
            // lint: allow(panic) — close() sealed the series before output assembly
            .expect("closed runs carry a series")
            .into_bundle();
        let records = obs
            .stats
            // lint: allow(panic) — close() sealed the job stats before output assembly
            .expect("closed runs carry job stats")
            .into_records();
        let node_util = series.node_util(end);
        let summary = obs.faults.finalize(
            end,
            makespan,
            cfg.cluster.total_nodes() as f64,
            node_util,
            &series,
        );
        let data = RunData {
            label: scheduler.label(),
            records: records.clone(),
            makespan_s: makespan.as_secs_f64(),
            node_util,
            pool_util: series.pool_util(end),
            dram_util: series.dram_util(end),
            queue_depth_mean: series.queue_depth_mean(end),
            queue_depth_max: series.queue_depth_max(),
            faults: summary,
        };
        SimOutput {
            report: SimReport::compute(&data, &thresholds),
            records,
            series,
            events_processed,
            passes,
            trace_hash,
            end_time: now,
            faults: summary,
            preemptions,
            service: None,
        }
    }
}

/// Build the scheduler-visible release record for an assignment.
fn release_info(
    cluster: &Cluster,
    assignment: &MemoryAssignment,
    planned_end: SimTime,
) -> RunningRelease {
    let racks = cluster.spec().racks as usize;
    let domains = cluster.pools().len();
    let mut nodes_per_rack = vec![0u32; racks];
    let mut pool_per_domain = vec![0u64; domains];
    for &node in &assignment.nodes {
        nodes_per_rack[cluster.rack_of(node).0 as usize] += 1;
        if assignment.remote_per_node > 0 {
            // lint: allow(panic) — jobs borrow remote memory only from pool-backed nodes
            let pool = cluster.pool_of(node).expect("borrower has a pool");
            pool_per_domain[pool.0 as usize] += assignment.remote_per_node;
        }
    }
    RunningRelease {
        planned_end,
        nodes_per_rack,
        pool_per_domain,
    }
}

/// One federated site's engine with the event-queue backend erased, so
/// the federation coordinator can hold a homogeneous site list.
///
/// Site engines start with an empty workload and a caller-pinned time
/// origin; jobs enter via [`SiteEngine::inject`] as the meta-scheduler
/// routes them at epoch barriers. They never carry faults, services, or
/// extra observers — those attach at the fleet level (or not at all)
/// so site traces stay bit-identical to standalone runs.
pub(crate) enum SiteEngine<'a> {
    /// Binary-heap event queue backend.
    Heap(Box<Engine<'a, 'static, BinaryHeapQueue<Event>>>),
    /// Calendar event queue backend.
    Calendar(Box<Engine<'a, 'static, CalendarQueue<Event>>>),
}

impl<'a> SiteEngine<'a> {
    /// Build a site engine on `cfg.event_queue`'s backend, clock pinned
    /// to the fleet `origin`. `faults` and `service` must be the none
    /// specs (sites borrow them from the caller so the engine's borrowed
    /// fields have somewhere to point).
    pub(crate) fn new(
        cfg: &'a SimConfig,
        scheduler: &'a Scheduler,
        faults: &'a FaultSpec,
        service: &ServiceSpec,
        empty: &Workload,
        origin: SimTime,
    ) -> Self {
        debug_assert!(faults.is_none() && service.is_none());
        match cfg.event_queue {
            EventQueueKind::BinaryHeap => SiteEngine::Heap(Box::new(Engine::new(
                cfg,
                scheduler,
                faults,
                service,
                BinaryHeapQueue::with_capacity(64),
                empty,
                &[],
                None,
                &mut [],
                Some(origin),
            ))),
            EventQueueKind::Calendar => SiteEngine::Calendar(Box::new(Engine::new(
                cfg,
                scheduler,
                faults,
                service,
                CalendarQueue::new(),
                empty,
                &[],
                None,
                &mut [],
                Some(origin),
            ))),
        }
    }

    /// Admit a routed job at its true arrival time.
    pub(crate) fn inject(&mut self, job: Job) {
        match self {
            SiteEngine::Heap(e) => e.inject(job),
            SiteEngine::Calendar(e) => e.inject(job),
        }
    }

    /// Simulate every event strictly before `limit` (the epoch barrier).
    pub(crate) fn advance_until(&mut self, empty: &Workload, limit: SimTime) {
        match self {
            SiteEngine::Heap(e) => e.drive_bounded(empty, Some(limit)),
            SiteEngine::Calendar(e) => e.drive_bounded(empty, Some(limit)),
        }
    }

    /// Observe the site for the meta-scheduler, tagged with its fleet
    /// index. Pure data — snapshots cross the worker channel by value.
    pub(crate) fn snapshot(&self, site: usize) -> SiteSnapshot {
        let (cfg, cluster, queue) = match self {
            SiteEngine::Heap(e) => (e.cfg, &e.cluster, &e.queue),
            SiteEngine::Calendar(e) => (e.cfg, &e.cluster, &e.queue),
        };
        let mem_capacity = cfg.cluster.total_local_mem() + cfg.cluster.total_pool_mem();
        let total_mem = mem_capacity as f64;
        let used = (cluster.total_local_used() + cluster.total_pool_used()) as f64;
        SiteSnapshot {
            site,
            queue_depth: queue.len(),
            queued_nodes: queue.total_requested_nodes(),
            free_nodes: cluster.free_nodes(),
            total_nodes: cfg.cluster.total_nodes(),
            mem_pressure: if total_mem > 0.0 {
                used / total_mem
            } else {
                0.0
            },
            mem_capacity,
        }
    }

    /// Drain every remaining event and assemble the site's [`SimOutput`].
    pub(crate) fn finish(self, empty: &Workload) -> SimOutput {
        match self {
            SiteEngine::Heap(mut e) => {
                e.drive(empty);
                e.finalize()
            }
            SiteEngine::Calendar(mut e) => {
                e.drive(empty);
                e.finalize()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmhpc_platform::{ClusterSpec, NodeSpec, PoolTopology, SlowdownModel};
    use dmhpc_sched::{MemoryPolicy, SchedulerBuilder};
    use dmhpc_workload::JobBuilder;

    const GIB: u64 = 1024;

    fn machine(pool: PoolTopology) -> ClusterSpec {
        ClusterSpec::new(1, 4, NodeSpec::new(64, 256 * GIB), pool)
    }

    fn sim(pool: PoolTopology, memory: MemoryPolicy, slowdown: SlowdownModel) -> Simulation {
        let sched = SchedulerBuilder::new()
            .memory(memory)
            .slowdown(slowdown)
            .build();
        Simulation::new(SimConfig::new(machine(pool), sched).checked()).unwrap()
    }

    fn local_sim() -> Simulation {
        sim(
            PoolTopology::None,
            MemoryPolicy::LocalOnly,
            SlowdownModel::None,
        )
    }

    #[test]
    fn single_job_lifecycle() {
        let w = Workload::from_jobs(vec![JobBuilder::new(1)
            .arrival_secs(10)
            .nodes(2)
            .runtime_secs(100, 200)
            .mem_per_node(GIB)
            .build()]);
        let out = local_sim().run(&w);
        assert_eq!(out.records.len(), 1);
        let r = &out.records[0];
        assert_eq!(r.outcome, JobOutcome::Completed);
        assert_eq!(r.start.unwrap().as_secs(), 10, "starts immediately");
        assert_eq!(r.finish.unwrap().as_secs(), 110);
        assert_eq!(r.wait().unwrap().as_secs(), 0);
        assert_eq!(out.report.completed, 1);
        // 2 of 4 nodes busy for the full 100 s makespan.
        assert!((out.report.node_util - 0.5).abs() < 1e-9);
        assert_eq!(out.end_time.as_secs(), 110);
    }

    #[test]
    fn fcfs_serializes_full_machine_jobs() {
        let mk = |id: u64, arr: u64| {
            JobBuilder::new(id)
                .arrival_secs(arr)
                .nodes(4)
                .runtime_secs(100, 150)
                .mem_per_node(GIB)
                .build()
        };
        let w = Workload::from_jobs(vec![mk(1, 0), mk(2, 0), mk(3, 0)]);
        let out = local_sim().run(&w);
        let waits: Vec<u64> = out
            .records
            .iter()
            .map(|r| r.wait().unwrap().as_secs())
            .collect();
        assert_eq!(waits, vec![0, 100, 200]);
        assert_eq!(out.report.completed, 3);
        assert!((out.report.node_util - 1.0).abs() < 1e-9);
    }

    #[test]
    fn easy_backfill_improves_small_job_wait() {
        // Head needs 4 nodes blocked behind a 2-node job; a 1-node short
        // job backfills.
        let w = Workload::from_jobs(vec![
            JobBuilder::new(1)
                .arrival_secs(0)
                .nodes(2)
                .runtime_secs(1000, 1200)
                .mem_per_node(GIB)
                .build(),
            JobBuilder::new(2)
                .arrival_secs(10)
                .nodes(4)
                .runtime_secs(500, 600)
                .mem_per_node(GIB)
                .build(),
            JobBuilder::new(3)
                .arrival_secs(20)
                .nodes(1)
                .runtime_secs(100, 200)
                .mem_per_node(GIB)
                .build(),
        ]);
        let out = local_sim().run(&w);
        let by_id = |id: u64| out.records.iter().find(|r| r.job.id.0 == id).unwrap();
        assert_eq!(
            by_id(3).start.unwrap().as_secs(),
            20,
            "backfilled at arrival"
        );
        assert_eq!(by_id(2).start.unwrap().as_secs(), 1000, "head at release");
    }

    #[test]
    fn walltime_kill() {
        // Runtime 500 but walltime 100: killed at 100.
        let mut job = JobBuilder::new(1)
            .nodes(1)
            .runtime_secs(500, 3600)
            .mem_per_node(GIB)
            .build();
        job.walltime = SimDuration::from_secs(100);
        let w = Workload::from_jobs(vec![job]);
        let out = local_sim().run(&w);
        let r = &out.records[0];
        assert_eq!(r.outcome, JobOutcome::Killed);
        assert_eq!(r.finish.unwrap().as_secs(), 100);
        assert_eq!(out.report.killed, 1);
    }

    #[test]
    fn no_enforcement_lets_jobs_finish() {
        let mut job = JobBuilder::new(1)
            .nodes(1)
            .runtime_secs(500, 3600)
            .mem_per_node(GIB)
            .build();
        job.walltime = SimDuration::from_secs(100);
        let w = Workload::from_jobs(vec![job]);
        let sched = SchedulerBuilder::new().build();
        let mut cfg = SimConfig::new(machine(PoolTopology::None), sched).checked();
        cfg.enforce_walltime = false;
        let out = Simulation::new(cfg).unwrap().run(&w);
        assert_eq!(out.records[0].outcome, JobOutcome::Completed);
        assert_eq!(out.records[0].finish.unwrap().as_secs(), 500);
    }

    #[test]
    fn static_dilation_stretches_runtime() {
        // Borrower: 384 GiB/node on a 256 GiB node → far = 1/3. With
        // penalty 1.6 and intensity 0.75: dilation = 1 + 0.6·(1/3)·0.75 = 1.15.
        let job = JobBuilder::new(1)
            .nodes(1)
            .runtime_secs(1000, 4000)
            .mem_per_node(384 * GIB)
            .intensity(0.75)
            .build();
        let w = Workload::from_jobs(vec![job]);
        let out = sim(
            PoolTopology::PerRack {
                mib_per_rack: 512 * GIB,
            },
            MemoryPolicy::PoolFirstFit,
            SlowdownModel::Linear { penalty: 1.6 },
        )
        .run(&w);
        let r = &out.records[0];
        assert_eq!(r.outcome, JobOutcome::Completed);
        assert_eq!(r.residence().unwrap().as_secs(), 1150);
        assert!((r.dilation_actual - 1.15).abs() < 1e-6);
        assert!((r.dilation_planned - 1.15).abs() < 1e-6);
        assert!(r.borrowed_pool());
    }

    #[test]
    fn walltime_inflation_saves_dilated_jobs() {
        // Runtime 1000, walltime 1100, dilation 1.15 → natural 1150 > 1100.
        // With inflation the kill limit stretches to 1100×1.15 = 1265 → OK.
        let job = JobBuilder::new(1)
            .nodes(1)
            .runtime_secs(1000, 1100)
            .mem_per_node(384 * GIB)
            .intensity(0.75)
            .build();
        let w = Workload::from_jobs(vec![job.clone()]);
        let pool = PoolTopology::PerRack {
            mib_per_rack: 512 * GIB,
        };
        let model = SlowdownModel::Linear { penalty: 1.6 };

        let with = sim(pool, MemoryPolicy::PoolFirstFit, model).run(&w);
        assert_eq!(with.records[0].outcome, JobOutcome::Completed);

        let sched = SchedulerBuilder::new()
            .memory(MemoryPolicy::PoolFirstFit)
            .slowdown(model)
            .inflate_walltime(false)
            .build();
        let without = Simulation::new(SimConfig::new(machine(pool), sched).checked())
            .unwrap()
            .run(&w);
        assert_eq!(
            without.records[0].outcome,
            JobOutcome::Killed,
            "ablation A1: without inflation the dilated job dies"
        );
        assert_eq!(without.records[0].finish.unwrap().as_secs(), 1100);
    }

    #[test]
    fn contention_redilation_slows_first_borrower() {
        let pool = PoolTopology::PerRack {
            mib_per_rack: 512 * GIB,
        };
        let model = SlowdownModel::Contention {
            penalty: 1.5,
            gamma: 1.0,
        };
        let a = JobBuilder::new(1)
            .arrival_secs(0)
            .nodes(1)
            .runtime_secs(1000, 4000)
            .mem_per_node(384 * GIB)
            .intensity(1.0)
            .build();
        let b = JobBuilder::new(2)
            .arrival_secs(200)
            .nodes(1)
            .runtime_secs(1000, 4000)
            .mem_per_node(384 * GIB)
            .intensity(1.0)
            .build();

        let solo =
            sim(pool, MemoryPolicy::PoolFirstFit, model).run(&Workload::from_jobs(vec![a.clone()]));
        let duo =
            sim(pool, MemoryPolicy::PoolFirstFit, model).run(&Workload::from_jobs(vec![a, b]));
        let solo_res = solo.records[0].residence().unwrap();
        let duo_a = duo
            .records
            .iter()
            .find(|r| r.job.id.0 == 1)
            .unwrap()
            .residence()
            .unwrap();
        assert!(
            duo_a > solo_res,
            "contention from job 2 must slow job 1 ({duo_a} vs {solo_res})"
        );
        // And consumed work stayed conserved: both completed.
        assert!(duo
            .records
            .iter()
            .all(|r| r.outcome == JobOutcome::Completed));
        // Dilation bounded by the model's worst case.
        let worst = model.worst_case();
        for r in &duo.records {
            assert!(r.dilation_actual <= worst + 1e-6);
            assert!(r.dilation_actual >= 1.0 - 1e-9);
        }
    }

    #[test]
    fn rejected_job_recorded() {
        let w = Workload::from_jobs(vec![
            JobBuilder::new(1).nodes(99).runtime_secs(10, 20).build(),
            JobBuilder::new(2)
                .nodes(1)
                .runtime_secs(10, 20)
                .mem_per_node(GIB)
                .build(),
        ]);
        let out = local_sim().run(&w);
        assert_eq!(out.report.rejected, 1);
        assert_eq!(out.report.completed, 1);
    }

    #[test]
    fn deterministic_trace_hash() {
        let spec = dmhpc_workload::SystemPreset::HighThroughput.synthetic_spec(300);
        let w = spec.generate(42);
        let cluster = ClusterSpec::new(
            4,
            32,
            NodeSpec::new(32, 192 * GIB),
            PoolTopology::PerRack {
                mib_per_rack: 512 * GIB,
            },
        );
        let sched = SchedulerBuilder::new()
            .memory(MemoryPolicy::PoolBestFit)
            .slowdown(SlowdownModel::Saturating {
                penalty: 1.5,
                curvature: 3.0,
            })
            .build();
        let cfg = SimConfig::new(cluster, sched);
        let a = Simulation::new(cfg).unwrap().run(&w);
        let b = Simulation::new(cfg).unwrap().run(&w);
        assert_eq!(a.trace_hash, b.trace_hash);
        assert_eq!(a.report.mean_wait_s, b.report.mean_wait_s);
        assert_eq!(a.events_processed, b.events_processed);
        assert!(a.events_processed >= 600, "arrivals + finishes");
    }

    #[test]
    fn end_to_end_synthetic_with_invariants() {
        let spec = dmhpc_workload::SystemPreset::HighThroughput.synthetic_spec(200);
        let w = spec.generate(7);
        let cluster = ClusterSpec::new(
            4,
            32,
            NodeSpec::new(32, 192 * GIB),
            PoolTopology::PerRack {
                mib_per_rack: 384 * GIB,
            },
        );
        for memory in [
            MemoryPolicy::LocalOnly,
            MemoryPolicy::PoolFirstFit,
            MemoryPolicy::PoolBestFit,
            MemoryPolicy::SlowdownAware { max_dilation: 1.3 },
        ] {
            let sched = SchedulerBuilder::new()
                .memory(memory)
                .slowdown(SlowdownModel::Linear { penalty: 1.5 })
                .build();
            let cfg = SimConfig::new(cluster, sched).checked();
            let out = Simulation::new(cfg).unwrap().run(&w);
            assert_eq!(
                out.report.completed + out.report.killed + out.report.rejected,
                200,
                "{}: every job accounted for",
                memory.name()
            );
            assert!(out.report.node_util > 0.0 && out.report.node_util <= 1.0);
            // All waits non-negative and starts after arrivals by contract.
            for r in &out.records {
                if let Some(s) = r.start {
                    assert!(s >= r.job.arrival);
                }
            }
        }
    }

    #[test]
    fn empty_workload() {
        let out = local_sim().run(&Workload::new());
        assert_eq!(out.records.len(), 0);
        assert_eq!(out.report.completed, 0);
        assert_eq!(out.events_processed, 0);
    }

    #[test]
    fn passes_are_event_driven() {
        // One isolated job: its arrival needs a pass, its finish drains
        // into an empty queue and must NOT trigger one.
        let w = Workload::from_jobs(vec![JobBuilder::new(1)
            .nodes(1)
            .runtime_secs(100, 200)
            .mem_per_node(GIB)
            .build()]);
        let out = local_sim().run(&w);
        assert_eq!(out.events_processed, 2, "arrival + finish");
        assert_eq!(out.passes, 1, "only the arrival schedules");

        // Widely spaced jobs (idle stretches): one pass per arrival, none
        // per finish → passes == jobs, events == 2×jobs.
        let spaced: Vec<_> = (0..20)
            .map(|i| {
                JobBuilder::new(i + 1)
                    .arrival_secs(i * 10_000)
                    .nodes(1)
                    .runtime_secs(100, 200)
                    .mem_per_node(GIB)
                    .build()
            })
            .collect();
        let out = local_sim().run(&Workload::from_jobs(spaced));
        assert_eq!(out.events_processed, 40);
        assert_eq!(out.passes, 20, "finishes into an empty queue skip");
        assert!(out.passes < out.events_processed);
    }

    // ------------------------------------------------------------ faults

    use crate::faults::{FaultAction, FaultGenerator, InterruptPolicy};
    use dmhpc_platform::{NodeId, PoolId};

    fn one_node_job(runtime_s: u64, wall_s: u64) -> Job {
        JobBuilder::new(1)
            .nodes(1)
            .runtime_secs(runtime_s, wall_s)
            .mem_per_node(GIB)
            .build()
    }

    fn faulty_sim(faults: crate::FaultSpec) -> Simulation {
        let sched = SchedulerBuilder::new().build();
        Simulation::new(SimConfig::new(machine(PoolTopology::None), sched).checked())
            .unwrap()
            .with_fault_spec(faults)
            .unwrap()
    }

    #[test]
    fn node_failure_interrupts_and_resubmits_from_scratch() {
        // Job on node 0 (first-fit), failed at t=300, repaired at t=800.
        // Resubmit-from-scratch restarts immediately on node 1 at t=300.
        let faults = crate::FaultSpec::none()
            .with_action(SimTime::from_secs(300), FaultAction::NodeFail(NodeId(0)))
            .with_action(SimTime::from_secs(800), FaultAction::NodeRepair(NodeId(0)));
        let w = Workload::from_jobs(vec![one_node_job(1000, 2000)]);
        let out = faulty_sim(faults).run(&w);
        assert_eq!(out.records.len(), 1);
        let r = &out.records[0];
        assert_eq!(r.outcome, JobOutcome::Completed);
        assert_eq!(r.start.unwrap().as_secs(), 300, "final attempt's start");
        assert_eq!(r.finish.unwrap().as_secs(), 1300, "full runtime redone");
        assert_eq!(out.faults.interruptions, 1);
        assert_eq!(out.faults.resubmissions, 1);
        assert!(
            (out.faults.rework_s - 300.0).abs() < 1e-9,
            "aborted attempt"
        );
        assert!(out.faults.downtime_node_s > 0.0);
        assert_eq!(out.report.interruptions, 1);
        assert_eq!(out.report.completed, 1);
    }

    #[test]
    fn checkpoint_restart_preserves_completed_work() {
        let faults = crate::FaultSpec::none()
            .with_action(SimTime::from_secs(300), FaultAction::NodeFail(NodeId(0)))
            .with_interrupt(InterruptPolicy::Checkpoint { overhead_s: 100 });
        let w = Workload::from_jobs(vec![one_node_job(1000, 2000)]);
        let out = faulty_sim(faults).run(&w);
        let r = &out.records[0];
        assert_eq!(r.outcome, JobOutcome::Completed);
        // 300 s done, 700 s remain + 100 s restore → finishes at 1100.
        assert_eq!(r.finish.unwrap().as_secs(), 1100);
        assert!((out.faults.rework_s - 100.0).abs() < 1e-9, "only overhead");
    }

    #[test]
    fn exhausted_resubmission_budget_fails_terminally() {
        // First failure consumes the (default 1) resubmission; the second
        // interruption is terminal.
        let faults = crate::FaultSpec::none()
            .with_action(SimTime::from_secs(300), FaultAction::NodeFail(NodeId(0)))
            .with_action(SimTime::from_secs(600), FaultAction::NodeFail(NodeId(1)));
        let w = Workload::from_jobs(vec![one_node_job(1000, 2000)]);
        let out = faulty_sim(faults).run(&w);
        let r = &out.records[0];
        assert_eq!(r.outcome, JobOutcome::Failed);
        assert_eq!(r.start.unwrap().as_secs(), 300);
        assert_eq!(r.finish.unwrap().as_secs(), 600);
        assert_eq!(out.faults.interruptions, 2);
        assert_eq!(out.faults.resubmissions, 1);
        assert_eq!(out.report.failed, 1);
        assert_eq!(out.report.completed, 0);
    }

    #[test]
    fn drain_window_interrupts_then_returns_capacity() {
        // All four nodes busy; draining node 2 interrupts its job, which
        // must wait (queue) until... node 2 is still draining, but another
        // job finishes first — capacity returns via normal finishes.
        let mk = |id: u64| {
            JobBuilder::new(id)
                .nodes(1)
                .runtime_secs(1000, 2000)
                .mem_per_node(GIB)
                .build()
        };
        let faults = crate::FaultSpec::none()
            .with_action(SimTime::from_secs(100), FaultAction::DrainStart(NodeId(2)))
            .with_action(SimTime::from_secs(5000), FaultAction::DrainEnd(NodeId(2)));
        let w = Workload::from_jobs(vec![mk(1), mk(2), mk(3), mk(4)]);
        let sched = SchedulerBuilder::new().build();
        let out = Simulation::new(SimConfig::new(machine(PoolTopology::None), sched).checked())
            .unwrap()
            .with_fault_spec(faults)
            .unwrap()
            .run(&w);
        assert_eq!(out.report.completed, 4, "drained job reruns elsewhere");
        assert_eq!(out.faults.interruptions, 1);
        // Availability-weighted utilization exceeds the raw one: the
        // denominator excludes the drained node-seconds.
        assert!(out.faults.avail_util > out.report.node_util);
        assert_eq!(out.report.avail_util, out.faults.avail_util);
    }

    #[test]
    fn pool_degradation_evicts_borrowers_deterministically() {
        // Borrower holds 300 GiB of a 512 GiB pool; degrading to 0.5
        // leaves 256 GiB effective < 300 held → the borrower is evicted.
        let pool = PoolTopology::PerRack {
            mib_per_rack: 512 * GIB,
        };
        let job = JobBuilder::new(1)
            .nodes(1)
            .runtime_secs(1000, 4000)
            .mem_per_node(556 * GIB) // 256 local + 300 remote
            .intensity(0.5)
            .build();
        let faults = crate::FaultSpec::none()
            .with_action(
                SimTime::from_secs(200),
                FaultAction::PoolDegrade {
                    pool: PoolId(0),
                    factor: 0.5,
                },
            )
            .with_action(SimTime::from_secs(900), FaultAction::PoolRepair(PoolId(0)));
        let sched = SchedulerBuilder::new()
            .memory(MemoryPolicy::PoolFirstFit)
            .slowdown(SlowdownModel::Linear { penalty: 1.5 })
            .build();
        let out = Simulation::new(SimConfig::new(machine(pool), sched).checked())
            .unwrap()
            .with_fault_spec(faults)
            .unwrap()
            .run(&w_of(job));
        assert_eq!(out.faults.interruptions, 1, "borrower evicted");
        assert_eq!(out.report.completed, 1, "restarts (inflated or later)");
    }

    fn w_of(job: Job) -> Workload {
        Workload::from_jobs(vec![job])
    }

    #[test]
    fn permanently_lost_capacity_fails_queued_jobs_instead_of_wedging() {
        // 4-node machine, job needs all 4, node 0 fails for good before
        // it can start; backfill=None has no rejection path, so the
        // fault-aware drain handling must fail it terminally.
        let faults = crate::FaultSpec::none()
            .with_action(SimTime::from_secs(5), FaultAction::NodeFail(NodeId(0)));
        let job = JobBuilder::new(1)
            .arrival_secs(10)
            .nodes(4)
            .runtime_secs(100, 200)
            .mem_per_node(GIB)
            .build();
        let sched = SchedulerBuilder::new()
            .backfill(dmhpc_sched::BackfillPolicy::None)
            .build();
        let out = Simulation::new(SimConfig::new(machine(PoolTopology::None), sched).checked())
            .unwrap()
            .with_fault_spec(faults)
            .unwrap()
            .run(&w_of(job));
        let r = &out.records[0];
        assert_eq!(r.outcome, JobOutcome::Failed);
        assert!(r.start.is_none(), "never ran");
        assert_eq!(out.report.failed, 1);
    }

    #[test]
    fn trailing_fault_events_do_not_stretch_the_metrics_window() {
        // A repair scheduled long after the only job finishes must not
        // inflate makespan or dilute utilization: metrics clamp to the
        // last job-affecting event.
        let w = Workload::from_jobs(vec![one_node_job(1000, 2000)]);
        let clean = faulty_sim(crate::FaultSpec::none()).run(&w);
        let faults = crate::FaultSpec::none()
            .with_action(SimTime::from_secs(300), FaultAction::NodeFail(NodeId(3)))
            .with_action(
                SimTime::from_secs(50_000),
                FaultAction::NodeRepair(NodeId(3)),
            );
        let out = faulty_sim(faults).run(&w);
        // Node 3 is idle; the job (on node 0) is untouched.
        assert_eq!(out.faults.interruptions, 0);
        assert_eq!(out.report.completed, 1);
        assert_eq!(
            out.report.makespan_h, clean.report.makespan_h,
            "trailing repair must not stretch makespan"
        );
        assert_eq!(out.report.node_util, clean.report.node_util);
        // The outage (t=300..1000 within the window) shrinks the
        // availability denominator: avail_util strictly above node_util.
        assert!(out.report.avail_util > out.report.node_util);
        // end_time still reports the true last event, for event-level
        // accounting.
        assert_eq!(out.end_time.as_secs(), 50_000);
    }

    #[test]
    fn generated_outage_windows_never_overlap_per_target() {
        let mut gen = FaultGenerator::quiet(5, 200_000);
        gen.node_mtbf_s = 300; // brutal: many failures per node
        gen.node_repair_s = 5_000;
        let spec = crate::FaultSpec::none().with_generator(gen);
        let cluster = machine(PoolTopology::None);
        let events = spec.materialize(&cluster);
        let mut down_until = std::collections::BTreeMap::new();
        for (t, action) in &events {
            match action {
                FaultAction::NodeFail(n) => {
                    let until = down_until.get(n).copied().unwrap_or(SimTime::ZERO);
                    assert!(*t >= until, "failure of {n} inside its down window");
                    down_until.insert(*n, *t + SimDuration::from_secs(5_000));
                }
                FaultAction::NodeRepair(_) => {}
                other => panic!("unexpected {other:?}"),
            }
        }
        assert!(!down_until.is_empty(), "storm generated failures");
    }

    #[test]
    fn transient_outage_delays_full_machine_jobs_instead_of_rejecting() {
        // Node 0 drains at t=5 and returns at t=5000; a 4-node job
        // arrives at t=10. The availability profile cannot see the
        // pending drain-end, so pre-fix EASY rejected the job as "never
        // fits"; it must instead wait and start once capacity returns.
        let faults = crate::FaultSpec::none()
            .with_action(SimTime::from_secs(5), FaultAction::DrainStart(NodeId(0)))
            .with_action(SimTime::from_secs(5000), FaultAction::DrainEnd(NodeId(0)));
        let job = JobBuilder::new(1)
            .arrival_secs(10)
            .nodes(4)
            .runtime_secs(100, 200)
            .mem_per_node(GIB)
            .build();
        let out = faulty_sim(faults).run(&w_of(job));
        let r = &out.records[0];
        assert_eq!(r.outcome, JobOutcome::Completed, "waits, not rejected");
        assert_eq!(r.start.unwrap().as_secs(), 5000, "starts at drain end");
        assert_eq!(out.report.rejected, 0);
        assert_eq!(out.report.failed, 0);

        // Permanent loss (no drain-end) still fails it terminally via the
        // drained-events branch — under EASY too, not just backfill=None.
        let permanent = crate::FaultSpec::none()
            .with_action(SimTime::from_secs(5), FaultAction::DrainStart(NodeId(0)));
        let job = JobBuilder::new(1)
            .arrival_secs(10)
            .nodes(4)
            .runtime_secs(100, 200)
            .mem_per_node(GIB)
            .build();
        let out = faulty_sim(permanent).run(&w_of(job));
        assert_eq!(out.records[0].outcome, JobOutcome::Failed);
        assert!(out.records[0].start.is_none());
    }

    #[test]
    fn explicit_none_fault_spec_is_bit_identical() {
        let spec = dmhpc_workload::SystemPreset::HighThroughput.synthetic_spec(200);
        let w = spec.generate(13);
        let cluster = ClusterSpec::new(
            2,
            16,
            NodeSpec::new(32, 192 * GIB),
            PoolTopology::PerRack {
                mib_per_rack: 384 * GIB,
            },
        );
        let sched = SchedulerBuilder::new()
            .memory(MemoryPolicy::PoolBestFit)
            .slowdown(SlowdownModel::Contention {
                penalty: 1.5,
                gamma: 1.0,
            })
            .build();
        let cfg = SimConfig::new(cluster, sched);
        let plain = Simulation::new(cfg).unwrap().run(&w);
        let with_none = Simulation::new(cfg)
            .unwrap()
            .with_fault_spec(crate::FaultSpec::none())
            .unwrap()
            .run(&w);
        // A quiet generator is also "none".
        let with_quiet = Simulation::new(cfg)
            .unwrap()
            .with_fault_spec(
                crate::FaultSpec::none().with_generator(FaultGenerator::quiet(7, 100_000)),
            )
            .unwrap()
            .run(&w);
        for other in [&with_none, &with_quiet] {
            assert_eq!(plain.trace_hash, other.trace_hash);
            assert_eq!(plain.passes, other.passes);
            assert_eq!(plain.events_processed, other.events_processed);
            assert_eq!(plain.report.mean_wait_s, other.report.mean_wait_s);
            assert_eq!(plain.report.avail_util, other.report.avail_util);
        }
        let expected = FaultSummary {
            avail_util: plain.report.node_util,
            ..Default::default()
        };
        assert_eq!(plain.faults, expected);
        assert_eq!(
            plain.report.avail_util, plain.report.node_util,
            "no downtime ⇒ identical expression"
        );
    }

    #[test]
    fn fault_scenarios_are_deterministic_across_backends() {
        let spec = dmhpc_workload::SystemPreset::HighThroughput.synthetic_spec(250);
        let w = spec.generate(3);
        let cluster = ClusterSpec::new(
            2,
            16,
            NodeSpec::new(32, 192 * GIB),
            PoolTopology::PerRack {
                mib_per_rack: 384 * GIB,
            },
        );
        let mut gen = FaultGenerator::quiet(11, 400_000);
        gen.node_mtbf_s = 40_000;
        gen.node_repair_s = 10_000;
        gen.drain_interval_s = 150_000;
        gen.drain_duration_s = 20_000;
        gen.pool_degrade_interval_s = 200_000;
        gen.pool_degrade_factor = 0.5;
        let faults = crate::FaultSpec::none()
            .with_generator(gen)
            .with_interrupt(InterruptPolicy::Checkpoint { overhead_s: 60 })
            .with_max_resubmits(2);
        let sched = SchedulerBuilder::new()
            .memory(MemoryPolicy::PoolBestFit)
            .slowdown(SlowdownModel::Contention {
                penalty: 1.5,
                gamma: 1.0,
            })
            .build();
        let cfg = SimConfig::new(cluster, sched).checked();
        let run = |kind: EventQueueKind| {
            Simulation::new(cfg.with_event_queue(kind))
                .unwrap()
                .with_fault_spec(faults.clone())
                .unwrap()
                .run(&w)
        };
        let heap_a = run(EventQueueKind::BinaryHeap);
        let heap_b = run(EventQueueKind::BinaryHeap);
        let cal = run(EventQueueKind::Calendar);
        assert_eq!(heap_a.trace_hash, heap_b.trace_hash, "repeatable");
        assert_eq!(heap_a.trace_hash, cal.trace_hash, "backend-independent");
        assert_eq!(heap_a.faults, cal.faults);
        assert_eq!(heap_a.passes, cal.passes);
        assert!(heap_a.faults.interruptions > 0, "scenario actually bites");
    }

    #[test]
    fn calendar_backend_reproduces_heap_traces() {
        let spec = dmhpc_workload::SystemPreset::HighThroughput.synthetic_spec(300);
        let w = spec.generate(42);
        let cluster = ClusterSpec::new(
            4,
            32,
            NodeSpec::new(32, 192 * GIB),
            PoolTopology::PerRack {
                mib_per_rack: 512 * GIB,
            },
        );
        // Cover both a static and the dynamic (re-dilating) model.
        for slowdown in [
            SlowdownModel::Saturating {
                penalty: 1.5,
                curvature: 3.0,
            },
            SlowdownModel::Contention {
                penalty: 1.5,
                gamma: 1.0,
            },
        ] {
            let sched = SchedulerBuilder::new()
                .memory(MemoryPolicy::PoolBestFit)
                .slowdown(slowdown)
                .build();
            let cfg = SimConfig::new(cluster, sched);
            let heap = Simulation::new(cfg).unwrap().run(&w);
            let cal = Simulation::new(cfg.with_event_queue(crate::EventQueueKind::Calendar))
                .unwrap()
                .run(&w);
            assert_eq!(heap.trace_hash, cal.trace_hash, "{slowdown:?}");
            assert_eq!(heap.passes, cal.passes);
            assert_eq!(heap.events_processed, cal.events_processed);
            assert_eq!(heap.report.mean_wait_s, cal.report.mean_wait_s);
        }
    }

    #[test]
    fn observers_are_trace_neutral_and_see_every_event() {
        use crate::observe::EventCounter;
        let spec = dmhpc_workload::SystemPreset::HighThroughput.synthetic_spec(200);
        let w = spec.generate(5);
        let cluster = ClusterSpec::new(
            2,
            16,
            NodeSpec::new(32, 192 * GIB),
            PoolTopology::PerRack {
                mib_per_rack: 384 * GIB,
            },
        );
        let sched = SchedulerBuilder::new()
            .memory(MemoryPolicy::PoolBestFit)
            .slowdown(SlowdownModel::Linear { penalty: 1.5 })
            .build();
        let cfg = SimConfig::new(cluster, sched);
        let plain = Simulation::new(cfg).unwrap().run(&w);
        let mut counter = EventCounter::new();
        let mut probe = crate::observe::SampledSeriesProbe::new(SimDuration::from_secs(3600));
        let observed = Simulation::new(cfg)
            .unwrap()
            .run_with(&w, ObserverSet::new().watch(&mut counter).watch(&mut probe));
        assert_eq!(
            plain.trace_hash, observed.trace_hash,
            "observers are neutral"
        );
        assert_eq!(plain.report.mean_wait_s, observed.report.mean_wait_s);
        assert_eq!(plain.passes, observed.passes);
        // Every job submits once; every submit eventually starts, rejects,
        // or fails; every start grabs and releases exactly once.
        assert_eq!(counter.count("submit"), 200);
        assert_eq!(counter.count("grab"), counter.count("start"));
        assert_eq!(counter.count("release"), counter.count("grab"));
        assert_eq!(
            counter.count("submit"),
            counter.count("start") + counter.count("reject") + counter.count("fail")
        );
        assert_eq!(counter.count("pass"), plain.passes);
        assert!(!probe.samples().is_empty(), "probe sampled the run");
        let last = probe.samples().last().unwrap();
        assert_eq!(last.running, 0, "machine drained by the window end");
        assert_eq!(last.queued, 0);
    }

    #[test]
    fn with_observer_factory_builds_one_per_run() {
        use crate::observe::{Observer, RunLabel};
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;
        struct Count(Arc<AtomicU64>);
        impl Observer for Count {
            fn on_event(&mut self, _: &crate::observe::SimEvent) {
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }
        let seen = Arc::new(AtomicU64::new(0));
        let factory = {
            let seen = Arc::clone(&seen);
            move |_: &RunLabel| -> Result<Box<dyn Observer>, crate::SimError> {
                Ok(Box::new(Count(Arc::clone(&seen))))
            }
        };
        let w = Workload::from_jobs(vec![JobBuilder::new(1)
            .nodes(1)
            .runtime_secs(100, 200)
            .mem_per_node(GIB)
            .build()]);
        let factory: Arc<dyn crate::observe::ObserverFactory> = Arc::new(factory);
        let sim = local_sim();
        let a = sim.run_with(&w, ObserverSet::new().factory(Arc::clone(&factory)));
        let b = sim.run_with(&w, ObserverSet::new().factory(Arc::clone(&factory)));
        assert_eq!(a.trace_hash, b.trace_hash);
        // submit + start + grab + pass + release + finish, twice.
        assert_eq!(seen.load(Ordering::Relaxed), 12);
        // The deprecated persistent-attachment shim builds one fresh
        // observer per run through the same path.
        #[allow(deprecated)]
        let sim = local_sim().with_observer(factory);
        let c = sim.run(&w);
        assert_eq!(a.trace_hash, c.trace_hash);
        assert_eq!(seen.load(Ordering::Relaxed), 18);
    }

    #[test]
    fn deprecated_run_shims_delegate_to_run_with() {
        use crate::observe::EventCounter;
        let w = Workload::from_jobs(vec![JobBuilder::new(1)
            .nodes(1)
            .runtime_secs(100, 200)
            .mem_per_node(GIB)
            .build()]);
        let sim = local_sim();
        let plain = sim.run(&w);
        let mut counter = EventCounter::new();
        #[allow(deprecated)]
        let observed = sim.run_observed(&w, &mut [&mut counter]);
        assert_eq!(plain.trace_hash, observed.trace_hash);
        assert_eq!(counter.count("submit"), 1);
        let mut boxed: Vec<Box<dyn Observer>> = vec![Box::new(EventCounter::new())];
        #[allow(deprecated)]
        let observed = sim.run_boxed(&w, &mut boxed);
        assert_eq!(plain.trace_hash, observed.trace_hash);
    }

    #[test]
    fn config_progress_observer_is_trace_neutral() {
        let w = Workload::from_jobs(vec![JobBuilder::new(1)
            .nodes(1)
            .runtime_secs(100, 200)
            .mem_per_node(GIB)
            .build()]);
        let quiet = local_sim().run(&w);
        // Per-run attachment is the front door…
        let noisy = local_sim().run_with(&w, ObserverSet::new().progress_every(1_000_000));
        assert_eq!(quiet.trace_hash, noisy.trace_hash);
        assert_eq!(quiet.report.mean_wait_s, noisy.report.mean_wait_s);
        // …and the deprecated config knob still works through the shim.
        let sched = SchedulerBuilder::new().build();
        #[allow(deprecated)]
        let cfg = SimConfig::new(machine(PoolTopology::None), sched)
            .checked()
            .with_progress_every(1_000_000); // too sparse to print
        let noisy = Simulation::new(cfg).unwrap().run(&w);
        assert_eq!(quiet.trace_hash, noisy.trace_hash);
        assert_eq!(quiet.report.mean_wait_s, noisy.report.mean_wait_s);
    }

    #[test]
    fn contention_redilation_is_pool_scoped() {
        // Two racks with separate pools. Job 9 fills rack 0 and borrows
        // from its pool; jobs 1-4 churn rack 1's pool. Pool domains are
        // independent, so rack-1 churn must not perturb job 9's trajectory:
        // its record is identical whether or not the churn jobs exist.
        let pool = PoolTopology::PerRack {
            mib_per_rack: 512 * GIB,
        };
        let cluster = ClusterSpec::new(2, 4, NodeSpec::new(64, 256 * GIB), pool);
        let model = SlowdownModel::Contention {
            penalty: 1.5,
            gamma: 1.0,
        };
        let sched = SchedulerBuilder::new()
            .memory(MemoryPolicy::PoolBestFit)
            .slowdown(model)
            .build();
        let anchor = JobBuilder::new(9)
            .arrival_secs(0)
            .nodes(4)
            .runtime_secs(3000, 9000)
            .mem_per_node(300 * GIB)
            .intensity(1.0)
            .build();
        let churn: Vec<Job> = (1..=4)
            .map(|id| {
                JobBuilder::new(id)
                    .arrival_secs(id * 50)
                    .nodes(1)
                    .runtime_secs(500, 2000)
                    .mem_per_node(300 * GIB)
                    .intensity(1.0)
                    .build()
            })
            .collect();

        let sim = |jobs: Vec<Job>| {
            Simulation::new(SimConfig::new(cluster, sched).checked())
                .unwrap()
                .run(&Workload::from_jobs(jobs))
        };
        let alone = sim(vec![anchor.clone()]);
        let mut with_churn_jobs = vec![anchor];
        with_churn_jobs.extend(churn);
        let with_churn = sim(with_churn_jobs);

        assert_eq!(with_churn.report.completed, 5);
        let solo = |out: &SimOutput| {
            out.records
                .iter()
                .find(|r| r.job.id.0 == 9)
                .cloned()
                .unwrap()
        };
        let (a, b) = (solo(&alone), solo(&with_churn));
        assert_eq!(a.finish, b.finish, "rack-1 churn leaked into rack 0");
        assert_eq!(a.dilation_actual, b.dilation_actual);
        // The rack-1 borrowers do contend with each other.
        let churned = with_churn
            .records
            .iter()
            .filter(|r| r.job.id.0 <= 4)
            .any(|r| (r.dilation_actual - r.dilation_planned).abs() > 1e-9);
        assert!(churned, "co-located borrowers should re-dilate");
    }

    // ------------------------------------------------- open-system service

    fn preset_machine() -> ClusterSpec {
        let (racks, npr, cores, mem) = dmhpc_workload::SystemPreset::HighThroughput.machine();
        ClusterSpec::new(racks, npr, NodeSpec::new(cores, mem), PoolTopology::None)
    }

    fn service_sim(svc: ServiceSpec) -> Simulation {
        let cfg = SimConfig::new(preset_machine(), SchedulerBuilder::new().build());
        Simulation::new(cfg)
            .unwrap()
            .with_service_spec(svc)
            .unwrap()
    }

    fn no_jobs() -> Workload {
        Workload::from_jobs(Vec::new())
    }

    #[test]
    fn open_system_run_streams_jobs_and_reports_the_service_summary() {
        let svc = ServiceSpec::open(dmhpc_workload::SystemPreset::HighThroughput)
            .with_utilization(0.7)
            .with_horizon_jobs(2000)
            .with_warmup_secs(3600)
            .with_slo_wait_secs(3600.0);
        let out = service_sim(svc).run(&no_jobs());
        let svc_out = out.service.expect("open runs carry a service summary");
        assert_eq!(svc_out.observed + svc_out.warmup_skipped, 2000);
        assert!(svc_out.observed > 0, "measurement window saw jobs");
        assert!(out.records.is_empty(), "no per-job records in service mode");
        assert_eq!(
            (out.report.completed + out.report.killed + out.report.rejected + out.report.failed)
                as u64,
            svc_out.observed,
            "every in-window job lands in exactly one outcome bucket"
        );
        assert_eq!(svc_out.slo_wait_s, Some(3600.0));
        assert!((0.0..=1.0).contains(&svc_out.slo_attained.expect("target configured")));
        assert!(out.report.node_util > 0.0 && out.report.node_util <= 1.0);
        assert!(out.report.makespan_h > 0.0);
    }

    #[test]
    fn open_system_runs_replay_identically_on_both_queue_backends() {
        let svc = ServiceSpec::open(dmhpc_workload::SystemPreset::HighThroughput)
            .with_utilization(0.8)
            .with_horizon_jobs(800)
            .with_seed(13);
        let a = service_sim(svc.clone()).run(&no_jobs());
        let b = service_sim(svc.clone()).run(&no_jobs());
        assert_eq!(a.trace_hash, b.trace_hash, "pure function of the spec");
        let cfg = SimConfig::new(preset_machine(), SchedulerBuilder::new().build())
            .with_event_queue(crate::EventQueueKind::Calendar);
        let c = Simulation::new(cfg)
            .unwrap()
            .with_service_spec(svc)
            .unwrap()
            .run(&no_jobs());
        assert_eq!(a.trace_hash, c.trace_hash, "backend is invisible");
        assert_eq!(a.events_processed, c.events_processed);
        assert_eq!(a.service, c.service);
    }

    #[test]
    fn service_and_fault_scenarios_do_not_combine() {
        let svc = ServiceSpec::open(dmhpc_workload::SystemPreset::HighThroughput)
            .with_utilization(0.8)
            .with_horizon_jobs(100);
        let mut gen = crate::faults::FaultGenerator::quiet(5, 40_000);
        gen.node_mtbf_s = 8_000;
        let faults = crate::faults::FaultSpec::none().with_generator(gen);
        let cfg = SimConfig::new(preset_machine(), SchedulerBuilder::new().build());
        let err = Simulation::new(cfg)
            .unwrap()
            .with_fault_spec(faults.clone())
            .unwrap()
            .with_service_spec(svc.clone())
            .unwrap_err();
        assert!(err.to_string().contains("do not combine"), "{err}");
        let err = Simulation::new(cfg)
            .unwrap()
            .with_service_spec(svc)
            .unwrap()
            .with_fault_spec(faults)
            .unwrap_err();
        assert!(err.to_string().contains("do not combine"), "{err}");
    }

    /// Mirrors the sketch's wait inputs exactly: every record that ran
    /// (finished, killed, or failed-after-start) contributes its wait.
    struct WaitCapture {
        waits: Vec<f64>,
    }

    impl crate::observe::Observer for WaitCapture {
        fn on_event(&mut self, ev: &SimEvent) {
            let record = match ev {
                SimEvent::JobFinished { record, .. } => record,
                SimEvent::JobFailed { record, .. } => record,
                _ => return,
            };
            if let Some(w) = record.wait() {
                self.waits.push(w.as_secs_f64());
            }
        }
    }

    #[test]
    fn sketch_quantiles_track_exact_wait_quantiles() {
        // A heavily loaded open system builds a real wait distribution;
        // the streaming P² estimates must track the exact sorted
        // quantiles within the documented bounds: ≤10% at p50, ≤5% at
        // p95, ≤10% at p99 (queue waits are strongly autocorrelated, and
        // an online estimator lags a drifting median more than the
        // tails — observed errors here are 2.4% / 0.5% / 0.3%).
        let svc = ServiceSpec::open(dmhpc_workload::SystemPreset::HighThroughput)
            .with_utilization(0.9)
            .with_horizon_jobs(8000);
        let mut cap = WaitCapture { waits: Vec::new() };
        let out = service_sim(svc).run_with(&no_jobs(), ObserverSet::new().watch(&mut cap));
        assert!(cap.waits.len() > 1000, "saturation produced waits");
        cap.waits.sort_by(f64::total_cmp);
        let exact = |q: f64| cap.waits[((cap.waits.len() - 1) as f64 * q).round() as usize];
        let close = |got: f64, want: f64, tol: f64| (got - want).abs() <= tol * want.abs().max(1.0);
        let p99 = out.service.unwrap().p99_wait_s;
        assert!(
            close(out.report.p50_wait_s, exact(0.50), 0.10),
            "p50 {} vs exact {}",
            out.report.p50_wait_s,
            exact(0.50)
        );
        assert!(
            close(out.report.p95_wait_s, exact(0.95), 0.05),
            "p95 {} vs exact {}",
            out.report.p95_wait_s,
            exact(0.95)
        );
        assert!(
            close(p99, exact(0.99), 0.10),
            "p99 {} vs exact {}",
            p99,
            exact(0.99)
        );
    }

    /// The acceptance-scale run: ten million jobs streamed through the
    /// engine with O(1)-memory metrics. No record vector, no series
    /// points — the only job-count-proportional state anywhere is the
    /// queue of currently waiting jobs. Run with `--ignored` (takes a few
    /// minutes).
    #[test]
    #[ignore = "acceptance-scale run, minutes of wall clock"]
    fn ten_million_job_open_run_completes_with_bounded_memory() {
        let svc = ServiceSpec::open(dmhpc_workload::SystemPreset::HighThroughput)
            .with_utilization(0.7)
            .with_horizon_jobs(10_000_000)
            .with_warmup_secs(24 * 3600);
        let out = service_sim(svc).run(&no_jobs());
        let svc_out = out.service.unwrap();
        assert_eq!(svc_out.observed + svc_out.warmup_skipped, 10_000_000);
        assert!(out.records.is_empty());
        // The series bundle is the origin placeholder: one initial zero
        // point per series (recorded at construction), no per-event
        // breakpoints from ten million jobs.
        assert_eq!(out.series.nodes_busy.points().len(), 1);
        assert_eq!(out.series.queue_depth.points().len(), 1);
    }

    /// Records `(kind, at_secs)` for defer/preempt/reject events so tests
    /// can pin not just that an admission decision happened, but *when*.
    struct AdmissionCapture {
        seen: Vec<(&'static str, u64)>,
    }

    impl Observer for AdmissionCapture {
        fn on_event(&mut self, ev: &SimEvent) {
            match ev {
                SimEvent::JobDeferred { .. }
                | SimEvent::JobPreempted { .. }
                | SimEvent::JobRejected { .. } => {
                    self.seen.push((ev.kind(), ev.at().as_secs()));
                }
                _ => {}
            }
        }
    }

    #[test]
    fn defer_keeps_transiently_infeasible_job_alive() {
        // The job needs a pool borrow in *both* racks (total memory
        // exceeds any all-local spread, and one rack's pool cannot carry
        // two borrows), and one pool is degraded at arrival: under
        // `DeferUntilFeasible` it must defer — not terminally fail — and
        // start once the pool repairs, well inside its deadline.
        let spec = ClusterSpec::new(
            2,
            2,
            NodeSpec::new(64, 256 * GIB),
            PoolTopology::PerRack {
                mib_per_rack: 512 * GIB,
            },
        );
        let sched = SchedulerBuilder::new()
            .memory(MemoryPolicy::PoolFirstFit)
            .slowdown(SlowdownModel::Linear { penalty: 1.6 })
            .admission(dmhpc_sched::AdmissionPolicy::DeferUntilFeasible)
            .build();
        let sim = Simulation::new(SimConfig::new(spec, sched).checked())
            .unwrap()
            .with_fault_spec(
                FaultSpec::none()
                    .with_action(
                        SimTime::from_secs(5),
                        FaultAction::PoolDegrade {
                            pool: dmhpc_platform::PoolId(0),
                            factor: 0.01,
                        },
                    )
                    .with_action(
                        SimTime::from_secs(500),
                        FaultAction::PoolRepair(dmhpc_platform::PoolId(0)),
                    ),
            )
            .unwrap();
        // 2×600 GiB = 1200 GiB total: more than the 1024 GiB of machine
        // DRAM (no all-local spread exists, inflated or not) and more
        // remote than one 512 GiB rack pool serves — the only healthy
        // shape borrows 344 GiB in each rack, so degrading one pool
        // leaves the job transiently unservable.
        let w = Workload::from_jobs(vec![JobBuilder::new(1)
            .arrival_secs(10)
            .nodes(2)
            .runtime_secs(100, 200)
            .mem_per_node(600 * GIB)
            .slo(dmhpc_workload::Slo::Deadline { deadline_s: 2000.0 })
            .build()]);
        let mut cap = AdmissionCapture { seen: Vec::new() };
        let out = sim.run_with(&w, ObserverSet::new().watch(&mut cap));
        assert_eq!(cap.seen, vec![("defer", 10)], "one deferral, no reject");
        let r = &out.records[0];
        assert_eq!(r.outcome, JobOutcome::Completed, "never terminally failed");
        assert_eq!(r.start.unwrap().as_secs(), 500, "starts at pool repair");
    }

    #[test]
    fn defer_rejects_at_the_deadline_wake() {
        // The machine is held by an unstamped job past the stamped job's
        // deadline. Deferral schedules a wake-up at the feasibility lapse,
        // so the rejection lands *at* the deadline — not whenever the next
        // natural event happens to run a pass (t = 1000 here).
        let sched = SchedulerBuilder::new()
            .admission(dmhpc_sched::AdmissionPolicy::DeferUntilFeasible)
            .build();
        let sim =
            Simulation::new(SimConfig::new(machine(PoolTopology::None), sched).checked()).unwrap();
        let w = Workload::from_jobs(vec![
            JobBuilder::new(1)
                .arrival_secs(0)
                .nodes(4)
                .runtime_secs(1000, 1200)
                .mem_per_node(GIB)
                .build(),
            JobBuilder::new(2)
                .arrival_secs(10)
                .nodes(1)
                .runtime_secs(50, 100)
                .mem_per_node(GIB)
                .slo(dmhpc_workload::Slo::Deadline { deadline_s: 100.0 })
                .build(),
        ]);
        let mut cap = AdmissionCapture { seen: Vec::new() };
        let out = sim.run_with(&w, ObserverSet::new().watch(&mut cap));
        assert_eq!(cap.seen, vec![("defer", 10), ("reject", 110)]);
        let by_id = |id: u64| out.records.iter().find(|r| r.job.id.0 == id).unwrap();
        assert_eq!(by_id(2).outcome, JobOutcome::Rejected);
        assert_eq!(by_id(1).outcome, JobOutcome::Completed);
    }

    #[test]
    fn laxity_preemption_rescues_deadline_critical_job() {
        // A deadline-free job holds the whole machine until t = 1000; a
        // stamped job arriving at t = 10 must start by t = 190 to meet its
        // deadline at 310. Without preemption it misses; with
        // `LaxityCheckpoint` the holder is checkpointed, the stamped job
        // starts immediately, and the holder resumes with only the
        // restore overhead as rework.
        let mk_workload = || {
            Workload::from_jobs(vec![
                JobBuilder::new(1)
                    .arrival_secs(0)
                    .nodes(4)
                    .runtime_secs(1000, 1200)
                    .mem_per_node(GIB)
                    .build(),
                JobBuilder::new(2)
                    .arrival_secs(10)
                    .nodes(2)
                    .runtime_secs(100, 120)
                    .mem_per_node(GIB)
                    .slo(dmhpc_workload::Slo::Deadline { deadline_s: 300.0 })
                    .build(),
            ])
        };
        let run = |queue: EventQueueKind| {
            let sched = SchedulerBuilder::new()
                .preempt(dmhpc_sched::PreemptPolicy::LaxityCheckpoint { overhead_s: 50 })
                .build();
            let cfg = SimConfig::new(machine(PoolTopology::None), sched)
                .checked()
                .with_event_queue(queue);
            let mut cap = AdmissionCapture { seen: Vec::new() };
            let out = Simulation::new(cfg)
                .unwrap()
                .run_with(&mk_workload(), ObserverSet::new().watch(&mut cap));
            (out, cap.seen)
        };
        let (out, seen) = run(EventQueueKind::BinaryHeap);
        assert_eq!(seen, vec![("preempt", 10)]);
        assert_eq!(out.preemptions, 1);
        let by_id = |id: u64| out.records.iter().find(|r| r.job.id.0 == id).unwrap();
        let rescued = by_id(2);
        assert_eq!(rescued.start.unwrap().as_secs(), 10, "starts on eviction");
        assert_eq!(rescued.finish.unwrap().as_secs(), 110, "meets deadline 310");
        // The victim resumes once capacity frees: 990 s of surviving work
        // plus the 50 s restore overhead, restarted at t = 110.
        let victim = by_id(1);
        assert_eq!(victim.outcome, JobOutcome::Completed, "never failed");
        assert_eq!(victim.finish.unwrap().as_secs(), 110 + 990 + 50);

        // Identical on both event-queue backends.
        let (cal, cal_seen) = run(EventQueueKind::Calendar);
        assert_eq!(cal.trace_hash, out.trace_hash);
        assert_eq!(cal_seen, seen);

        // Ablation: without preemption the stamped job waits for the
        // natural release at t = 1000 and misses its deadline.
        let plain = local_sim().run(&mk_workload());
        let waited = plain.records.iter().find(|r| r.job.id.0 == 2).unwrap();
        assert_eq!(waited.start.unwrap().as_secs(), 1000, "deadline missed");
    }

    #[test]
    fn admission_and_preempt_are_inert_on_unstamped_workloads() {
        // Admission control and preemption are deadline mechanisms: on a
        // workload without SLO stamps (and no run-wide target), enabling
        // them must leave the run bit-identical to the default config.
        let w = Workload::from_jobs(vec![
            JobBuilder::new(1)
                .arrival_secs(0)
                .nodes(4)
                .runtime_secs(300, 400)
                .mem_per_node(GIB)
                .build(),
            JobBuilder::new(2)
                .arrival_secs(10)
                .nodes(2)
                .runtime_secs(100, 150)
                .mem_per_node(GIB)
                .build(),
            JobBuilder::new(3)
                .arrival_secs(20)
                .nodes(1)
                .runtime_secs(50, 80)
                .mem_per_node(GIB)
                .build(),
        ]);
        let base = local_sim().run(&w);
        let armed = SchedulerBuilder::new()
            .admission(dmhpc_sched::AdmissionPolicy::DeferUntilFeasible)
            .preempt(dmhpc_sched::PreemptPolicy::LaxityCheckpoint { overhead_s: 60 })
            .build();
        let out = Simulation::new(SimConfig::new(machine(PoolTopology::None), armed).checked())
            .unwrap()
            .run(&w);
        assert_eq!(out.trace_hash, base.trace_hash);
        assert_eq!(out.preemptions, 0);
    }
}
