//! Open-system (service-mode) scenarios as first-class, deterministic
//! inputs.
//!
//! A [`ServiceSpec`] switches a run from the closed batch model — a fully
//! materialized [`dmhpc_workload::Workload`] replayed to completion — to an
//! **open system**: arrivals stream lazily from a seeded
//! [`dmhpc_workload::JobSource`] until a [`Horizon`] is reached, and
//! per-job metrics are folded into O(1)-memory sketches instead of a
//! record vector (see [`crate::observe::SketchStatsObserver`]). That is
//! what queueing studies need: offered load becomes a *control parameter*
//! (a target arrival rate, or a target utilization derived from the
//! machine's capacity), run length is a horizon rather than a job list,
//! and steady-state statistics exclude a configurable warmup window.
//!
//! [`ServiceSpec::none`] is the identity scenario: the engine takes the
//! exact closed-batch code path, producing bit-identical traces, and the
//! experiment layer hashes nothing for it — existing result caches stay
//! warm (tested in `tests/integration.rs`).
//!
//! Like [`crate::faults::FaultSpec`], everything here is pure data:
//! a service run is a pure function of `(SimConfig, ServiceSpec)`, with
//! the job stream itself a pure function of
//! `(preset, process, load, horizon, seed)`.

use crate::error::SimError;
use dmhpc_platform::ClusterSpec;
use dmhpc_workload::source::{ArrivalProcess, Horizon, LoadControl, StreamingSynthetic};
use dmhpc_workload::{Slo, SloModel, SystemPreset};

/// How the offered load of an open stream is set. The cluster-independent
/// half of [`dmhpc_workload::LoadControl`]: a utilization target binds to
/// the machine shape only when the source is opened.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ServiceLoad {
    /// Fixed mean inter-arrival time, seconds.
    Rate {
        /// Mean seconds between submissions.
        mean_interarrival_secs: f64,
    },
    /// Target long-run node utilization (offered load) of the run's
    /// cluster, in `(0, 2]`. The arrival rate is derived from the job
    /// size/runtime models and the machine's node count when the source is
    /// opened.
    Utilization {
        /// Target offered load.
        target: f64,
    },
}

impl ServiceLoad {
    /// Bind to a machine: the workload-crate [`LoadControl`] this resolves
    /// to for `total_nodes` nodes.
    fn bind(&self, total_nodes: u32) -> LoadControl {
        match *self {
            ServiceLoad::Rate {
                mean_interarrival_secs,
            } => LoadControl::Rate {
                mean_interarrival_secs,
            },
            ServiceLoad::Utilization { target } => LoadControl::Utilization {
                target,
                total_nodes,
            },
        }
    }
}

/// A complete open-system scenario for one run. See the module docs;
/// build with [`ServiceSpec::open`] and the `with_*` methods.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceSpec {
    /// Which preset's job-mix models (sizes, runtimes, memory, users) the
    /// stream draws from. `None` is the identity scenario: a closed batch
    /// run.
    pub preset: Option<SystemPreset>,
    /// Inter-arrival process shape.
    pub process: ArrivalProcess,
    /// How the mean arrival rate is set.
    pub load: ServiceLoad,
    /// When the stream stops emitting arrivals. Required for open runs —
    /// an open system without a horizon never terminates.
    pub horizon: Option<Horizon>,
    /// Warmup cutoff, seconds from the run origin: jobs that finish (or
    /// are rejected) before it are excluded from the measured statistics,
    /// so reported numbers describe the steady state rather than the
    /// empty-system transient.
    pub warmup_s: u64,
    /// Optional wait-time SLO target, seconds; when set, the run reports
    /// the fraction of measured jobs whose wait met it, and — unless
    /// [`ServiceSpec::slo_budget_factor`] overrides it — every streamed
    /// job is stamped with a fixed [`Slo::Deadline`] at this budget, so
    /// deadline-aware orderings see the run's objective on the jobs
    /// themselves.
    pub slo_wait_s: Option<f64>,
    /// Optional per-job budget-factor stamping range `(min, max)`: each
    /// streamed job draws a seeded [`Slo::BudgetFactor`] uniformly inside
    /// it (deadline ∝ its own walltime). Takes precedence over the fixed
    /// [`ServiceSpec::slo_wait_s`] stamp; drawn from its own RNG stream,
    /// so arrivals and job bodies are unchanged by stamping.
    pub slo_budget_factor: Option<(f64, f64)>,
    /// Stream seed. `None` defers to the context: the experiment layer
    /// fills in the cell's seed-axis value, stand-alone runs default to
    /// [`ServiceSpec::DEFAULT_SEED`].
    pub seed: Option<u64>,
}

impl Default for ServiceSpec {
    fn default() -> Self {
        ServiceSpec::none()
    }
}

impl ServiceSpec {
    /// Stream seed used by stand-alone runs when none is set (the same
    /// default the experiment seed axis uses).
    pub const DEFAULT_SEED: u64 = 42;

    /// The identity scenario: a closed batch run, bit-identical engine
    /// behaviour, and hash-neutral in the experiment cache.
    pub fn none() -> Self {
        ServiceSpec {
            preset: None,
            process: ArrivalProcess::Poisson,
            load: ServiceLoad::Utilization { target: 0.8 },
            horizon: None,
            warmup_s: 0,
            slo_wait_s: None,
            slo_budget_factor: None,
            seed: None,
        }
    }

    /// An open-system scenario streaming `preset`'s job mix (Poisson
    /// arrivals at 0.8 target utilization until a horizon is set — set one
    /// with [`ServiceSpec::with_horizon_jobs`] /
    /// [`ServiceSpec::with_horizon_secs`]; validation rejects horizonless
    /// open scenarios).
    pub fn open(preset: SystemPreset) -> Self {
        ServiceSpec {
            preset: Some(preset),
            ..ServiceSpec::none()
        }
    }

    /// True when this scenario is the closed-batch identity.
    pub fn is_none(&self) -> bool {
        self.preset.is_none()
    }

    /// Set the inter-arrival process shape.
    pub fn with_process(mut self, process: ArrivalProcess) -> Self {
        self.process = process;
        self
    }

    /// Target a fixed mean inter-arrival time, seconds.
    pub fn with_rate(mut self, mean_interarrival_secs: f64) -> Self {
        self.load = ServiceLoad::Rate {
            mean_interarrival_secs,
        };
        self
    }

    /// Target a long-run node utilization of the run's cluster.
    pub fn with_utilization(mut self, target: f64) -> Self {
        self.load = ServiceLoad::Utilization { target };
        self
    }

    /// Stop after exactly `jobs` arrivals.
    pub fn with_horizon_jobs(mut self, jobs: u64) -> Self {
        self.horizon = Some(Horizon::Jobs(jobs));
        self
    }

    /// Stop at the first arrival past `secs` from the origin.
    pub fn with_horizon_secs(mut self, secs: u64) -> Self {
        self.horizon = Some(Horizon::Duration(dmhpc_des::time::SimDuration::from_secs(
            secs,
        )));
        self
    }

    /// Exclude jobs finishing in the first `secs` from measured stats.
    pub fn with_warmup_secs(mut self, secs: u64) -> Self {
        self.warmup_s = secs;
        self
    }

    /// Report SLO attainment against a wait-time target, seconds.
    pub fn with_slo_wait_secs(mut self, secs: f64) -> Self {
        self.slo_wait_s = Some(secs);
        self
    }

    /// Stamp every streamed job with a seeded per-job
    /// [`Slo::BudgetFactor`] drawn uniformly from `[factor_min,
    /// factor_max]` (wait budget ∝ the job's walltime). Overrides the
    /// fixed [`ServiceSpec::with_slo_wait_secs`] stamp.
    pub fn with_slo_budget_factor(mut self, factor_min: f64, factor_max: f64) -> Self {
        self.slo_budget_factor = Some((factor_min, factor_max));
        self
    }

    /// Pin the stream seed (otherwise the experiment seed axis, or
    /// [`ServiceSpec::DEFAULT_SEED`] stand-alone, supplies it).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Check the scenario for ill-formed parameters. The identity
    /// scenario always validates; open scenarios must carry a horizon
    /// (an open system without one never terminates) and well-formed
    /// process/load/SLO parameters.
    pub fn validate(&self) -> Result<(), SimError> {
        if self.is_none() {
            return Ok(());
        }
        self.process.validate()?;
        match self.horizon {
            None => {
                return Err(SimError::spec(
                    "open-system service runs need a horizon (job count or duration) — \
                     a horizonless open run never terminates",
                ))
            }
            Some(h) => h.validate()?,
        }
        if let ServiceLoad::Rate {
            mean_interarrival_secs,
        } = self.load
        {
            if !(mean_interarrival_secs > 0.0 && mean_interarrival_secs.is_finite()) {
                return Err(SimError::spec(format!(
                    "service mean inter-arrival must be positive and finite, \
                     got {mean_interarrival_secs}"
                )));
            }
        }
        if let ServiceLoad::Utilization { target } = self.load {
            if !(target > 0.0 && target <= 2.0 && target.is_finite()) {
                return Err(SimError::spec(format!(
                    "service utilization target must be in (0, 2], got {target}"
                )));
            }
        }
        if let Some(slo) = self.slo_wait_s {
            // 0 is legal: "starts instantly" is a measurable target now
            // that the metrics encode absence as None, not 0.0.
            if !(slo >= 0.0 && slo.is_finite()) {
                return Err(SimError::spec(format!(
                    "service SLO wait target must be non-negative and finite, got {slo}"
                )));
            }
        }
        if let Some((factor_min, factor_max)) = self.slo_budget_factor {
            SloModel {
                factor_min,
                factor_max,
            }
            .validate()
            .map_err(|e| SimError::spec(format!("service SLO stamping: {e}")))?;
        }
        Ok(())
    }

    /// [`validate`](ServiceSpec::validate) plus machine-shape checks: the
    /// load control must bind to this cluster (a utilization target needs
    /// nodes to load), proven by constructing the stream once.
    pub fn validate_for(&self, cluster: &ClusterSpec) -> Result<(), SimError> {
        self.validate()?;
        if !self.is_none() {
            // Surfaces every construction-time error (including ones the
            // workload models raise) before any run starts.
            self.open_source(cluster)?;
        }
        Ok(())
    }

    /// Open the job stream against a machine. Identity scenarios have no
    /// stream ([`SimError::Spec`]); validated open scenarios cannot fail.
    pub fn open_source(&self, cluster: &ClusterSpec) -> Result<StreamingSynthetic, SimError> {
        let Some(preset) = self.preset else {
            return Err(SimError::spec(
                "ServiceSpec::none() has no job stream to open",
            ));
        };
        let horizon = self.horizon.ok_or_else(|| {
            SimError::spec("open-system service runs need a horizon (job count or duration)")
        })?;
        let mut spec = preset.synthetic_spec(1);
        if let Some((factor_min, factor_max)) = self.slo_budget_factor {
            spec.slo = Some(SloModel {
                factor_min,
                factor_max,
            });
        }
        let mut source = StreamingSynthetic::new(
            spec,
            self.process,
            self.load.bind(cluster.total_nodes()),
            horizon,
            self.seed.unwrap_or(Self::DEFAULT_SEED),
        )?;
        // The run-wide wait target doubles as the default per-job stamp
        // (fixed, consumes no randomness) when no stamping model is set.
        if self.slo_budget_factor.is_none() {
            if let Some(deadline_s) = self.slo_wait_s {
                source = source.with_default_slo(Slo::Deadline { deadline_s })?;
            }
        }
        Ok(source)
    }

    /// Short, distinguishing label for grid axes (e.g.
    /// `svc-htc-128-poisson-u0.85-j5000-w3600`). Axis validation rejects
    /// colliding labels, so scenarios differing only in sub-label
    /// precision must nudge a parameter.
    pub fn label(&self) -> String {
        let Some(preset) = self.preset else {
            return "no-service".into();
        };
        let mut parts: Vec<String> = vec!["svc".into(), preset.name().into()];
        parts.push(match self.process {
            ArrivalProcess::Poisson => "poisson".into(),
            ArrivalProcess::Daily { peak_to_trough } => format!("daily{peak_to_trough}"),
            ArrivalProcess::Mmpp {
                burst_ratio,
                mean_dwell_secs,
            } => format!("mmpp{burst_ratio}d{mean_dwell_secs:.0}"),
        });
        parts.push(match self.load {
            ServiceLoad::Rate {
                mean_interarrival_secs,
            } => format!("ia{mean_interarrival_secs:.0}"),
            ServiceLoad::Utilization { target } => format!("u{target:.2}"),
        });
        parts.push(match self.horizon {
            Some(Horizon::Jobs(n)) => format!("j{n}"),
            Some(Horizon::Duration(d)) => format!("t{}", d.as_secs()),
            None => "nohorizon".into(),
        });
        if self.warmup_s > 0 {
            parts.push(format!("w{}", self.warmup_s));
        }
        if let Some(slo) = self.slo_wait_s {
            parts.push(format!("slo{slo:.0}"));
        }
        if let Some((lo, hi)) = self.slo_budget_factor {
            parts.push(format!("bf{lo}-{hi}"));
        }
        if let Some(seed) = self.seed {
            parts.push(format!("s{seed}"));
        }
        parts.join("-")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmhpc_workload::JobSource;

    fn machine() -> ClusterSpec {
        let (racks, npr, cores, mem) = SystemPreset::HighThroughput.machine();
        ClusterSpec::new(
            racks,
            npr,
            dmhpc_platform::NodeSpec::new(cores, mem),
            dmhpc_platform::PoolTopology::None,
        )
    }

    #[test]
    fn none_is_none_and_validates() {
        let none = ServiceSpec::none();
        assert!(none.is_none());
        assert_eq!(none.label(), "no-service");
        none.validate().unwrap();
        none.validate_for(&machine()).unwrap();
        assert!(none.open_source(&machine()).is_err());
        assert_eq!(ServiceSpec::default(), ServiceSpec::none());
    }

    #[test]
    fn open_scenarios_require_a_horizon() {
        let open = ServiceSpec::open(SystemPreset::HighThroughput);
        assert!(!open.is_none());
        let err = open.validate().unwrap_err();
        assert!(err.to_string().contains("horizon"), "{err}");
        open.clone().with_horizon_jobs(100).validate().unwrap();
        open.clone().with_horizon_secs(3600).validate().unwrap();
        // Empty horizons are typed workload errors.
        assert!(open.clone().with_horizon_jobs(0).validate().is_err());
        assert!(open.with_horizon_secs(0).validate().is_err());
    }

    #[test]
    fn validation_rejects_bad_parameters() {
        let base = ServiceSpec::open(SystemPreset::MidCluster).with_horizon_jobs(10);
        assert!(base.clone().with_rate(-3.0).validate().is_err());
        assert!(base.clone().with_utilization(0.0).validate().is_err());
        assert!(base.clone().with_utilization(5.0).validate().is_err());
        assert!(base.clone().with_slo_wait_secs(-1.0).validate().is_err());
        assert!(base
            .clone()
            .with_slo_budget_factor(2.0, 1.0)
            .validate()
            .is_err());
        assert!(base
            .clone()
            .with_slo_budget_factor(0.0, 1.0)
            .validate()
            .is_err());
        // Burst ratios ≥ 2 are valid since the MMPP bound was lifted;
        // sub-1 ratios still are not.
        base.clone()
            .with_process(ArrivalProcess::Mmpp {
                burst_ratio: 3.0,
                mean_dwell_secs: 60.0,
            })
            .validate()
            .unwrap();
        assert!(base
            .clone()
            .with_process(ArrivalProcess::Mmpp {
                burst_ratio: 0.5,
                mean_dwell_secs: 60.0,
            })
            .validate()
            .is_err());
        base.validate_for(&machine()).unwrap();
    }

    #[test]
    fn slo_targets_stamp_streamed_jobs() {
        let base = ServiceSpec::open(SystemPreset::HighThroughput)
            .with_horizon_jobs(40)
            .with_seed(7);

        // No SLO anywhere: jobs stream unstamped.
        let jobs: Vec<_> = {
            let mut s = base.clone().open_source(&machine()).unwrap();
            std::iter::from_fn(|| s.next_job()).collect()
        };
        assert!(jobs.iter().all(|j| j.slo.is_none()));

        // A wait target stamps a fixed deadline, leaving everything else
        // about the stream untouched.
        let stamped: Vec<_> = {
            let mut s = base
                .clone()
                .with_slo_wait_secs(1800.0)
                .open_source(&machine())
                .unwrap();
            std::iter::from_fn(|| s.next_job()).collect()
        };
        assert!(stamped
            .iter()
            .all(|j| j.slo == Some(Slo::Deadline { deadline_s: 1800.0 })));
        for (a, b) in jobs.iter().zip(stamped.iter()) {
            assert_eq!(a.arrival, b.arrival);
            assert_eq!(a.walltime, b.walltime);
        }

        // A budget-factor range wins over the wait target and draws
        // per-job factors inside it.
        let drawn: Vec<_> = {
            let mut s = base
                .clone()
                .with_slo_wait_secs(1800.0)
                .with_slo_budget_factor(1.5, 4.0)
                .open_source(&machine())
                .unwrap();
            std::iter::from_fn(|| s.next_job()).collect()
        };
        let mut factors = Vec::new();
        for j in &drawn {
            match j.slo {
                Some(Slo::BudgetFactor { factor }) => {
                    assert!((1.5..=4.0).contains(&factor));
                    factors.push(factor);
                }
                other => panic!("expected a budget-factor stamp, got {other:?}"),
            }
        }
        factors.dedup();
        assert!(factors.len() > 1, "factors vary per job");
        for (a, b) in jobs.iter().zip(drawn.iter()) {
            assert_eq!(a.arrival, b.arrival, "stamping never moves arrivals");
        }
    }

    #[test]
    fn open_source_binds_utilization_to_the_machine() {
        let spec = ServiceSpec::open(SystemPreset::HighThroughput)
            .with_utilization(0.85)
            .with_horizon_jobs(50)
            .with_seed(7);
        let mut a = spec.open_source(&machine()).unwrap();
        let mut b = spec.open_source(&machine()).unwrap();
        let ja: Vec<_> = std::iter::from_fn(|| a.next_job()).collect();
        let jb: Vec<_> = std::iter::from_fn(|| b.next_job()).collect();
        assert_eq!(ja, jb, "stream is a pure function of the spec");
        assert_eq!(ja.len(), 50);
        // A bigger machine absorbs the same target at a faster rate.
        let big = ClusterSpec::new(
            16,
            64,
            dmhpc_platform::NodeSpec::new(32, 192 * 1024),
            dmhpc_platform::PoolTopology::None,
        );
        let fast = spec.open_source(&big).unwrap();
        assert!(fast.mean_interarrival_secs() < a.mean_interarrival_secs());
    }

    #[test]
    fn labels_distinguish_scenarios() {
        let a = ServiceSpec::open(SystemPreset::HighThroughput)
            .with_utilization(0.85)
            .with_horizon_jobs(5000);
        let b = a.clone().with_utilization(0.9);
        let c = a.clone().with_horizon_secs(86_400);
        let d = a.clone().with_warmup_secs(3600).with_slo_wait_secs(1800.0);
        let e = a.clone().with_seed(9);
        let labels = [a.label(), b.label(), c.label(), d.label(), e.label()];
        for (i, x) in labels.iter().enumerate() {
            for (j, y) in labels.iter().enumerate() {
                if i != j {
                    assert_ne!(x, y);
                }
            }
        }
        assert!(labels[0].starts_with("svc-htc-128-poisson-u0.85-j5000"));
        // Labels are RunLabel-safe already (no sanitizing needed).
        let rl = crate::observe::RunLabel::new(labels[3].clone());
        assert_eq!(rl.file_stem, labels[3]);
    }
}
