//! The simulator's error type.
//!
//! One enum covers everything that can go wrong **before** a run starts:
//! ill-formed platform specs (cluster shape, slowdown model), malformed
//! experiment grids, and experiment-spec (de)serialization. Runs themselves
//! are infallible by construction — every fallible check happens at
//! build time, which is what makes large sweep fan-outs safe.

use dmhpc_metrics::json::JsonError;
use dmhpc_platform::PlatformError;
use dmhpc_workload::WorkloadError;
use std::fmt;

/// Everything that can go wrong constructing a simulation or experiment.
///
/// Re-exported by the `dmhpc` facade as the workspace's single public
/// error enum.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// An ill-formed platform description (cluster shape, node spec,
    /// slowdown model), carrying the platform's typed error.
    Platform(PlatformError),
    /// A malformed experiment description: empty axis, unusable load,
    /// contradictory settings.
    Spec {
        /// What was wrong, human-readable.
        reason: String,
    },
    /// Experiment-spec (de)serialization failed.
    Parse {
        /// What was wrong, human-readable.
        reason: String,
    },
    /// Filesystem access (result cache, spec files, exports, trace sinks)
    /// failed. The underlying `io::Error` is flattened to text so the enum
    /// stays `Clone + PartialEq`.
    Io {
        /// What the simulator was doing when the I/O failed.
        context: String,
        /// The flattened `io::Error`.
        reason: String,
    },
    /// A workload model rejected its parameters (typed, from
    /// `dmhpc-workload` — same fallible-construction convention as
    /// platform specs).
    Workload(WorkloadError),
}

impl SimError {
    /// Shorthand for a [`SimError::Spec`].
    pub fn spec(reason: impl Into<String>) -> Self {
        SimError::Spec {
            reason: reason.into(),
        }
    }

    /// Shorthand for a [`SimError::Parse`].
    pub fn parse(reason: impl Into<String>) -> Self {
        SimError::Parse {
            reason: reason.into(),
        }
    }

    /// Wrap an `io::Error` with what was being attempted.
    pub fn io(context: impl Into<String>, err: std::io::Error) -> Self {
        SimError::Io {
            context: context.into(),
            reason: err.to_string(),
        }
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Platform(e) => write!(f, "platform: {e}"),
            SimError::Spec { reason } => write!(f, "experiment spec: {reason}"),
            SimError::Parse { reason } => write!(f, "parse: {reason}"),
            SimError::Io { context, reason } => write!(f, "io ({context}): {reason}"),
            SimError::Workload(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SimError {}

impl From<PlatformError> for SimError {
    fn from(e: PlatformError) -> Self {
        SimError::Platform(e)
    }
}

impl From<JsonError> for SimError {
    fn from(e: JsonError) -> Self {
        SimError::Parse {
            reason: e.to_string(),
        }
    }
}

impl From<WorkloadError> for SimError {
    fn from(e: WorkloadError) -> Self {
        SimError::Workload(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_converts() {
        let p: SimError = PlatformError::InvalidSpec {
            reason: "bad".into(),
        }
        .into();
        assert!(p.to_string().contains("bad"));
        assert!(SimError::spec("empty grid")
            .to_string()
            .contains("empty grid"));
        let j: SimError = JsonError {
            message: "x".into(),
            offset: 3,
        }
        .into();
        assert!(matches!(j, SimError::Parse { .. }));
        let w: SimError = WorkloadError::new("sizes", "max_nodes must be >= 1").into();
        assert!(matches!(w, SimError::Workload(_)));
        assert!(w.to_string().contains("sizes"), "{w}");
    }
}
