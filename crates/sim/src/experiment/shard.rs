//! Deterministic grid sharding and shard-result merging.
//!
//! A [`Shard`] names one slice of a compiled grid: shard `i` of `n` takes
//! every cell whose compile-order index is congruent to `i` mod `n`.
//! Round-robin assignment (rather than contiguous chunks) balances load:
//! adjacent cells share a cluster and load point and therefore correlate
//! in cost, so dealing them out like cards gives each process a
//! representative mix. The partition is a pure function of the spec, so
//! `n` independent processes — or CI jobs — agree on it without
//! coordination, and `∪ shards == full grid` with no overlaps for any
//! `n ≥ 1` (tested).
//!
//! [`ExperimentResults::merge`] recombines shard outputs into one
//! grid-ordered table, verifying that the shards cover the grid exactly
//! (every cell present once, nothing foreign).

use super::results::RunStats;
use super::{CellKey, ExperimentResults, ExperimentSpec, RunSpec};
use crate::error::SimError;
use std::collections::BTreeMap;
use std::fmt;

/// One slice of a grid: shard `index` of `count`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shard {
    index: usize,
    count: usize,
}

impl Shard {
    /// Shard `index` of `count`. `index` must be `< count` and `count`
    /// must be `≥ 1`.
    pub fn new(index: usize, count: usize) -> Result<Self, SimError> {
        if count == 0 {
            return Err(SimError::spec("shard count must be >= 1"));
        }
        if index >= count {
            return Err(SimError::spec(format!(
                "shard index {index} out of range for {count} shards (valid: 0..{count})"
            )));
        }
        Ok(Shard { index, count })
    }

    /// Parse the CLI form `i/n` (e.g. `0/4`).
    pub fn parse(text: &str) -> Result<Self, SimError> {
        let bad = || SimError::spec(format!("shard must look like i/n (e.g. 0/4), got {text:?}"));
        let (i, n) = text.split_once('/').ok_or_else(bad)?;
        Shard::new(
            i.trim().parse().map_err(|_| bad())?,
            n.trim().parse().map_err(|_| bad())?,
        )
    }

    /// This shard's index (`0..count`).
    pub fn index(&self) -> usize {
        self.index
    }

    /// Total number of shards.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Whether compile-order cell `i` belongs to this shard.
    pub fn owns(&self, cell_index: usize) -> bool {
        cell_index % self.count == self.index
    }
}

impl fmt::Display for Shard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.index, self.count)
    }
}

/// Exact-equality lookup key for a grid cell (loads compared by bit
/// pattern, as the grid axes mean).
type MergeKey = (String, Option<u64>, Option<u64>, Option<String>, String);

fn merge_key(key: &CellKey) -> MergeKey {
    (
        key.cluster.clone(),
        key.load.map(f64::to_bits),
        key.seed,
        key.fault.clone(),
        key.scheduler.clone(),
    )
}

impl ExperimentSpec {
    /// Compile the grid and keep only the cells belonging to `shard`, in
    /// grid order. `shard(0, 1)` is the whole grid.
    pub fn shard(&self, shard: Shard) -> Result<Vec<RunSpec>, SimError> {
        Ok(self
            .compile()?
            .into_iter()
            .enumerate()
            .filter(|(i, _)| shard.owns(*i))
            .map(|(_, cell)| cell)
            .collect())
    }
}

impl ExperimentResults {
    /// Recombine shard results into the full grid-ordered table.
    ///
    /// `parts` may arrive in any order (they are matched by cell
    /// coordinates, not position). Fails if any grid cell is missing,
    /// duplicated, or if a part carries a cell the spec does not compile
    /// to — each a sign that the shards were produced from a different
    /// spec revision. Cache/simulation statistics are summed across
    /// parts.
    pub fn merge(
        spec: &ExperimentSpec,
        parts: impl IntoIterator<Item = ExperimentResults>,
    ) -> Result<ExperimentResults, SimError> {
        let grid = spec.compile()?;
        let mut by_key: BTreeMap<MergeKey, super::CellResult> = BTreeMap::new();
        let mut stats = RunStats::default();
        for part in parts {
            if part.name != spec.name {
                return Err(SimError::spec(format!(
                    "cannot merge results for {:?} into experiment {:?}",
                    part.name, spec.name
                )));
            }
            stats.simulated += part.stats().simulated;
            stats.cache_hits += part.stats().cache_hits;
            for cell in part.into_cells() {
                if by_key.insert(merge_key(&cell.key), cell).is_some() {
                    return Err(SimError::spec(
                        "duplicate cell across shard results (overlapping shards?)",
                    ));
                }
            }
        }
        let mut cells = Vec::with_capacity(grid.len());
        for cell in &grid {
            let result = by_key.remove(&merge_key(&cell.key)).ok_or_else(|| {
                SimError::spec(format!(
                    "shard results missing grid cell {} (incomplete shard set?)",
                    cell.key.label()
                ))
            })?;
            cells.push(result);
        }
        if !by_key.is_empty() {
            return Err(SimError::spec(format!(
                "{} shard result cell(s) not in the spec's grid (stale spec?)",
                by_key.len()
            )));
        }
        Ok(ExperimentResults::with_stats(
            spec.name.clone(),
            cells,
            stats,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::{default_slowdown, policy_suite};
    use crate::ExperimentRunner;
    use dmhpc_platform::PoolTopology;
    use dmhpc_workload::SystemPreset;

    fn spec() -> ExperimentSpec {
        ExperimentSpec::builder("shard-test")
            .preset(SystemPreset::HighThroughput, 30)
            .pools([
                PoolTopology::None,
                PoolTopology::PerRack {
                    mib_per_rack: 384 * 1024,
                },
            ])
            .loads([0.7, 0.9])
            .seeds([1, 2, 3])
            .schedulers(policy_suite(default_slowdown()))
            .build()
            .unwrap()
    }

    #[test]
    fn parse_and_validate() {
        assert_eq!(Shard::parse("0/4").unwrap(), Shard::new(0, 4).unwrap());
        assert_eq!(Shard::parse(" 3/8 ").unwrap().to_string(), "3/8");
        for bad in ["", "1", "4/4", "a/b", "1/0", "-1/2", "1/2/3"] {
            assert!(Shard::parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn shards_partition_the_grid_for_any_count() {
        let spec = spec();
        let full = spec.compile().unwrap();
        for n in [1usize, 2, 3, 5, 7, full.len(), full.len() + 13] {
            let mut seen: Vec<&super::super::CellKey> = Vec::new();
            for i in 0..n {
                let part = spec.shard(Shard::new(i, n).unwrap()).unwrap();
                for cell in &part {
                    assert!(
                        !seen.iter().any(|k| **k == cell.key),
                        "cell {} in two shards (n={n})",
                        cell.key.label()
                    );
                }
                // Balanced to within one cell.
                let lo = full.len() / n;
                assert!(
                    part.len() == lo || part.len() == lo + 1,
                    "shard {i}/{n} holds {} cells of {}",
                    part.len(),
                    full.len()
                );
                seen.extend(
                    spec.shard(Shard::new(i, n).unwrap())
                        .unwrap()
                        .iter()
                        .map(|c| {
                            full.iter()
                                .map(|f| &f.key)
                                .find(|k| **k == c.key)
                                .expect("shard cell exists in full grid")
                        }),
                );
            }
            assert_eq!(seen.len(), full.len(), "∪ shards == full grid (n={n})");
        }
    }

    #[test]
    fn merged_shards_equal_the_full_run() {
        let spec = spec();
        let runner = ExperimentRunner::with_threads(2);
        let full = runner.run(&spec).unwrap();
        let parts: Vec<ExperimentResults> = (0..3)
            .map(|i| runner.run_shard(&spec, Shard::new(i, 3).unwrap()).unwrap())
            .collect();
        // Parts merge in any order.
        let merged = ExperimentResults::merge(&spec, parts.into_iter().rev()).unwrap();
        assert_eq!(merged.len(), full.len());
        assert_eq!(merged.to_csv(), full.to_csv());
        assert_eq!(merged.to_json(), full.to_json());
        for (a, b) in merged.cells().iter().zip(full.cells()) {
            assert_eq!(a.key, b.key);
            assert_eq!(a.output.trace_hash, b.output.trace_hash);
        }
        assert_eq!(merged.stats().simulated, full.len());
    }

    #[test]
    fn merge_rejects_missing_overlapping_and_foreign_cells() {
        let spec = spec();
        let runner = ExperimentRunner::with_threads(1);
        let s0 = runner.run_shard(&spec, Shard::new(0, 2).unwrap()).unwrap();
        let s1 = runner.run_shard(&spec, Shard::new(1, 2).unwrap()).unwrap();

        // Missing a shard.
        let err = ExperimentResults::merge(&spec, [s0.clone()]).unwrap_err();
        assert!(err.to_string().contains("missing"), "{err}");

        // Overlapping shards.
        let err =
            ExperimentResults::merge(&spec, [s0.clone(), s0.clone(), s1.clone()]).unwrap_err();
        assert!(err.to_string().contains("duplicate"), "{err}");

        // Results from a different experiment name.
        let mut other = spec.clone();
        other.name = "something-else".into();
        let err = ExperimentResults::merge(&other, [s0, s1]).unwrap_err();
        assert!(err.to_string().contains("cannot merge"), "{err}");
    }
}
