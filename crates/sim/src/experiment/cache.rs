//! Content-addressed result cache for experiment grids.
//!
//! Every grid cell is identified by a stable 64-bit FNV-1a hash of the
//! *content that determines its result*: the workload source (preset
//! parameters or the full trace), the cluster shape, the offered load,
//! the seed, the scheduler configuration, and the fault scenario (a
//! fault-free cell hashes nothing for it, so pre-fault caches replay
//! unchanged). Presentation-only fields — the experiment name, cluster
//! labels, `check_invariants` — are deliberately excluded, so
//! relabelling a grid keeps its cache warm.
//!
//! The store is a directory of JSON files (one per cell, written through
//! [`dmhpc_metrics::json`] — no new dependencies), each holding the
//! complete [`SimOutput`]: report, per-job records, step series, and the
//! trace hash. Loads rebuild the output bit-exactly (integer-microsecond
//! times, shortest-round-trip floats, series replayed through the live
//! [`SeriesBundle`] update path), so a warm run is indistinguishable from
//! a cold one — including CSV/JSON export bytes — while performing zero
//! simulations. That identity is what makes incremental re-runs safe:
//! edit a spec and only cells whose hash changed are re-simulated.
//!
//! Unreadable, truncated, or version-mismatched cache files are treated
//! as misses (the cell is simply re-simulated and re-stored); writes go
//! through a per-process temporary file and an atomic rename, so
//! concurrent shard processes can share one cache directory.
//!
//! One deliberate caveat: the stored output includes engine *performance
//! counters* (`passes`), which are not part of any export (CSV/JSON carry
//! the trace hash and the report only) and not part of the replay-identity
//! guarantee. An engine upgrade that schedules fewer passes while
//! producing bit-identical traces — e.g. the PR-3 incremental kernel —
//! intentionally does **not** bump [`CACHE_FORMAT`]: old entries stay
//! valid, their results are exact, and only the in-memory `passes` stat
//! reflects the engine that originally simulated the cell.

use super::{RunSpec, WorkloadSource};
use crate::collector::SeriesBundle;
use crate::engine::SimOutput;
use crate::error::SimError;
use dmhpc_des::time::SimTime;
use dmhpc_metrics::export;
use dmhpc_metrics::json::{parse, Json, JsonError};
use dmhpc_platform::{PoolTopology, SlowdownModel};
use dmhpc_sched::{MemoryPolicy, OrderPolicy};
use dmhpc_workload::source::{ArrivalProcess, Horizon};
use std::path::{Path, PathBuf};

/// Bump when the cell-hash recipe or the on-disk layout changes; old
/// entries then miss instead of deserializing garbage.
const CACHE_FORMAT: u64 = 1;

// ------------------------------------------------------------------ hashing

/// Incremental FNV-1a (the same function the engine uses for trace
/// hashes). Strings are length-prefixed and every field is tagged by
/// write order, so distinct field sequences cannot collide by
/// concatenation.
struct Fnv64(u64);

impl Fnv64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    fn new() -> Self {
        Fnv64(Self::OFFSET)
    }

    fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write_bytes(s.as_bytes());
    }

    fn write_opt_u64(&mut self, v: Option<u64>) {
        match v {
            Some(v) => {
                self.write_u64(1);
                self.write_u64(v);
            }
            None => self.write_u64(0),
        }
    }

    fn finish(self) -> u64 {
        self.0
    }
}

/// Digest of a workload source: what jobs the grid will see. Presets
/// digest their calibration name and job count (the generator is
/// deterministic per seed, and seeds hash per cell); fixed traces digest
/// every job field.
pub(super) fn workload_digest(source: &WorkloadSource) -> u64 {
    let mut h = Fnv64::new();
    match source {
        WorkloadSource::Preset { preset, jobs } => {
            h.write_str("preset");
            h.write_str(preset.name());
            h.write_u64(*jobs as u64);
        }
        WorkloadSource::Fixed(w) => {
            h.write_str("fixed");
            h.write_u64(w.len() as u64);
            for job in w.iter() {
                h.write_u64(job.id.as_u64());
                h.write_u64(job.user as u64);
                h.write_u64(job.arrival.as_micros());
                h.write_u64(job.nodes as u64);
                h.write_u64(job.walltime.as_micros());
                h.write_u64(job.runtime.as_micros());
                h.write_u64(job.mem_per_node);
                h.write_f64(job.intensity);
                // SLO stamps digest only when present: unstamped jobs
                // hash byte-identically to pre-SLO digests, keeping old
                // caches warm.
                match job.slo {
                    None => {}
                    Some(dmhpc_workload::Slo::Deadline { deadline_s }) => {
                        h.write_str("slo-deadline");
                        h.write_f64(deadline_s);
                    }
                    Some(dmhpc_workload::Slo::BudgetFactor { factor }) => {
                        h.write_str("slo-bf");
                        h.write_f64(factor);
                    }
                }
            }
        }
    }
    h.finish()
}

/// Hash a cluster's machine shape (labels are presentation-only and
/// excluded). Shared by the cell's own cluster and pinned fleet sites.
fn hash_cluster(h: &mut Fnv64, cluster: &dmhpc_platform::ClusterSpec) {
    h.write_u64(cluster.racks as u64);
    h.write_u64(cluster.nodes_per_rack as u64);
    h.write_u64(cluster.node.cores as u64);
    h.write_u64(cluster.node.local_mem);
    match cluster.pool {
        PoolTopology::None => h.write_str("none"),
        PoolTopology::PerRack { mib_per_rack } => {
            h.write_str("per-rack");
            h.write_u64(mib_per_rack);
        }
        PoolTopology::Global { mib } => {
            h.write_str("global");
            h.write_u64(mib);
        }
    }
}

/// Hash a full scheduler configuration. Shared by the cell's own
/// scheduler and pinned fleet sites.
fn hash_scheduler(h: &mut Fnv64, sched: &dmhpc_sched::SchedulerConfig) {
    match sched.order {
        OrderPolicy::Wfp { exponent } => {
            h.write_str("wfp");
            h.write_f64(exponent);
        }
        OrderPolicy::BatchBudget { hold_s } => {
            h.write_str("batch-budget");
            h.write_f64(hold_s);
        }
        other => h.write_str(other.name()),
    }
    h.write_str(sched.backfill.name());
    match sched.memory {
        MemoryPolicy::SlowdownAware { max_dilation } => {
            h.write_str("slowdown-aware");
            h.write_f64(max_dilation);
        }
        MemoryPolicy::LaxityAware { max_dilation } => {
            h.write_str("laxity-aware");
            h.write_f64(max_dilation);
        }
        other => h.write_str(other.name()),
    }
    match sched.slowdown {
        SlowdownModel::None => h.write_str("none"),
        SlowdownModel::Linear { penalty } => {
            h.write_str("linear");
            h.write_f64(penalty);
        }
        SlowdownModel::Saturating { penalty, curvature } => {
            h.write_str("saturating");
            h.write_f64(penalty);
            h.write_f64(curvature);
        }
        SlowdownModel::Contention { penalty, gamma } => {
            h.write_str("contention");
            h.write_f64(penalty);
            h.write_f64(gamma);
        }
    }
    h.write_u64(sched.inflate_walltime as u64);
    // Admission/preemption digest only when non-default, so cells compiled
    // before the knobs existed keep their hashes — and their caches.
    if sched.admission != dmhpc_sched::AdmissionPolicy::AdmitAll {
        h.write_str("admission");
        h.write_str(sched.admission.name());
    }
    if let dmhpc_sched::PreemptPolicy::LaxityCheckpoint { overhead_s } = sched.preempt {
        h.write_str("preempt");
        h.write_u64(overhead_s);
    }
}

/// The content hash of one compiled grid cell. Two cells with equal
/// hashes run the same simulation and produce the same [`SimOutput`].
pub(super) fn cell_hash(workload_digest: u64, cell: &RunSpec) -> u64 {
    let mut h = Fnv64::new();
    h.write_u64(CACHE_FORMAT);
    h.write_u64(workload_digest);
    h.write_opt_u64(cell.key.load.map(f64::to_bits));
    h.write_opt_u64(cell.key.seed);

    hash_cluster(&mut h, &cell.config.cluster);
    hash_scheduler(&mut h, &cell.config.scheduler);
    h.write_u64(cell.config.enforce_walltime as u64);

    // Fault scenario: a fault-free cell writes NOTHING, so its hash is
    // bit-identical to what pre-fault engines computed — existing caches
    // stay warm. Any non-none scenario appends its full content.
    if !cell.faults.is_none() {
        h.write_str("faults");
        h.write_u64(cell.faults.schedule.len() as u64);
        for (at, action) in &cell.faults.schedule {
            h.write_u64(at.as_micros());
            h.write_u64(crate::faults::action_tag(action));
        }
        match &cell.faults.generator {
            None => h.write_u64(0),
            Some(g) => {
                h.write_u64(1);
                h.write_u64(g.seed);
                h.write_u64(g.horizon_s);
                h.write_u64(g.node_mtbf_s);
                h.write_u64(g.node_repair_s);
                h.write_u64(g.drain_interval_s);
                h.write_u64(g.drain_duration_s);
                h.write_u64(g.pool_degrade_interval_s);
                h.write_u64(g.pool_degrade_duration_s);
                h.write_f64(g.pool_degrade_factor);
            }
        }
        match cell.faults.interrupt {
            crate::faults::InterruptPolicy::Resubmit => h.write_str("resubmit"),
            crate::faults::InterruptPolicy::Checkpoint { overhead_s } => {
                h.write_str("checkpoint");
                h.write_u64(overhead_s);
            }
        }
        h.write_u64(cell.faults.max_resubmits as u64);
    }

    // Service scenario: same convention as faults — the closed-batch
    // identity writes NOTHING, so service-free cells hash bit-identically
    // to caches built before open-system runs existed.
    if !cell.service.is_none() {
        h.write_str("service");
        h.write_str(cell.service.preset.map_or("none", |p| p.name()));
        match cell.service.process {
            ArrivalProcess::Poisson => h.write_str("poisson"),
            ArrivalProcess::Daily { peak_to_trough } => {
                h.write_str("daily");
                h.write_f64(peak_to_trough);
            }
            ArrivalProcess::Mmpp {
                burst_ratio,
                mean_dwell_secs,
            } => {
                h.write_str("mmpp");
                h.write_f64(burst_ratio);
                h.write_f64(mean_dwell_secs);
            }
        }
        match cell.service.load {
            crate::service::ServiceLoad::Rate {
                mean_interarrival_secs,
            } => {
                h.write_str("rate");
                h.write_f64(mean_interarrival_secs);
            }
            crate::service::ServiceLoad::Utilization { target } => {
                h.write_str("util");
                h.write_f64(target);
            }
        }
        match cell.service.horizon {
            None => h.write_str("none"),
            Some(Horizon::Jobs(n)) => {
                h.write_str("jobs");
                h.write_u64(n);
            }
            Some(Horizon::Duration(d)) => {
                h.write_str("secs");
                h.write_u64(d.as_secs());
            }
        }
        h.write_u64(cell.service.warmup_s);
        h.write_opt_u64(cell.service.slo_wait_s.map(f64::to_bits));
        // Budget-factor stamping hashes only when set: pre-SLO service
        // cells keep their hashes (and caches) unchanged.
        if let Some((lo, hi)) = cell.service.slo_budget_factor {
            h.write_str("slo-bf");
            h.write_f64(lo);
            h.write_f64(hi);
        }
        h.write_opt_u64(cell.service.seed);
    }

    // Fleet scenario: same convention again — the single-cluster identity
    // writes NOTHING, so fleet-free cells hash bit-identically to caches
    // built before federation existed. Site labels are presentation-only
    // (like cluster labels) and excluded.
    if !cell.fleet.is_none() {
        h.write_str("fleet");
        h.write_f64(cell.fleet.epoch_s);
        h.write_str(cell.fleet.policy.name());
        h.write_u64(cell.fleet.sites.len() as u64);
        for site in &cell.fleet.sites {
            match &site.cluster {
                None => h.write_u64(0),
                Some(c) => {
                    h.write_u64(1);
                    hash_cluster(&mut h, c);
                }
            }
            match &site.scheduler {
                None => h.write_u64(0),
                Some(s) => {
                    h.write_u64(1);
                    hash_scheduler(&mut h, s);
                }
            }
        }
    }
    h.finish()
}

// --------------------------------------------------------- output documents

fn series_to_json(points: &[(SimTime, f64)]) -> Json {
    Json::Arr(
        points
            .iter()
            .map(|&(t, v)| Json::Arr(vec![Json::UInt(t.as_micros()), Json::F64(v)]))
            .collect(),
    )
}

fn series_from_json(v: &Json) -> Result<Vec<(SimTime, f64)>, JsonError> {
    let points: Vec<(SimTime, f64)> = v
        .to_arr()?
        .iter()
        .map(|p| {
            let pair = p.to_arr()?;
            if pair.len() != 2 {
                return Err(JsonError {
                    message: format!("series point must be [t, v], got {} items", pair.len()),
                    offset: 0,
                });
            }
            Ok((SimTime::from_micros(pair[0].to_u64()?), pair[1].to_f64()?))
        })
        .collect::<Result<_, _>>()?;
    // Replay feeds these into the causal `TimeWeighted` integrator, which
    // panics on time going backwards — a corrupt entry must be a cache
    // miss instead, so reject non-monotonic timestamps here.
    if points.windows(2).any(|w| w[1].0 < w[0].0) {
        return Err(JsonError {
            message: "series timestamps are not monotonic".into(),
            offset: 0,
        });
    }
    Ok(points)
}

fn output_to_json(hash: u64, output: &SimOutput) -> Json {
    let mut fields = vec![
        ("format", Json::UInt(CACHE_FORMAT)),
        ("cell_hash", Json::UInt(hash)),
        ("report", export::report_to_value(&output.report)),
        (
            "records",
            Json::Arr(output.records.iter().map(export::record_to_value).collect()),
        ),
        (
            "series",
            Json::obj(vec![
                (
                    "nodes_busy",
                    series_to_json(output.series.nodes_busy.points()),
                ),
                (
                    "pool_used",
                    series_to_json(output.series.pool_used.points()),
                ),
                (
                    "dram_used",
                    series_to_json(output.series.dram_used.points()),
                ),
                (
                    "queue_depth",
                    series_to_json(output.series.queue_depth.points()),
                ),
            ]),
        ),
        ("events_processed", Json::UInt(output.events_processed)),
        ("passes", Json::UInt(output.passes)),
        ("trace_hash", Json::UInt(output.trace_hash)),
        ("end_time_us", Json::UInt(output.end_time.as_micros())),
        (
            "faults",
            Json::obj(vec![
                ("interruptions", Json::UInt(output.faults.interruptions)),
                ("resubmissions", Json::UInt(output.faults.resubmissions)),
                ("rework_s", Json::F64(output.faults.rework_s)),
                ("downtime_node_s", Json::F64(output.faults.downtime_node_s)),
                ("avail_util", Json::F64(output.faults.avail_util)),
            ]),
        ),
    ];
    // Preemption-free runs (every run without an opt-in PreemptPolicy)
    // omit the key, keeping their documents byte-identical to
    // pre-preemption cache entries.
    if output.preemptions > 0 {
        fields.push(("preemptions", Json::UInt(output.preemptions)));
    }
    // Closed runs omit the key entirely, keeping their documents
    // byte-identical to pre-service cache entries.
    if let Some(svc) = &output.service {
        // Target-free runs keep the historical 0.0/1.0 sentinel encoding
        // so their documents stay byte-identical to pre-Option entries;
        // only the newly-legal explicit 0-second target (which the
        // sentinels used to shadow) needs a marker key to survive the
        // round trip.
        let mut svc_fields = vec![
            ("observed", Json::UInt(svc.observed)),
            ("warmup_skipped", Json::UInt(svc.warmup_skipped)),
            ("p99_wait_s", Json::F64(svc.p99_wait_s)),
            ("slo_wait_s", Json::F64(svc.slo_wait_s.unwrap_or(0.0))),
            ("slo_attained", Json::F64(svc.slo_attained.unwrap_or(1.0))),
        ];
        if svc.slo_wait_s == Some(0.0) {
            svc_fields.push(("slo_zero_target", Json::Bool(true)));
        }
        fields.push(("service", Json::obj(svc_fields)));
    }
    Json::obj(fields)
}

fn output_from_json(doc: &Json, hash: u64, cell: &RunSpec) -> Result<SimOutput, JsonError> {
    let mismatch = |what: &str| JsonError {
        message: format!("cache entry {what} mismatch"),
        offset: 0,
    };
    if doc.expect_key("format")?.to_u64()? != CACHE_FORMAT {
        return Err(mismatch("format"));
    }
    if doc.expect_key("cell_hash")?.to_u64()? != hash {
        return Err(mismatch("cell_hash"));
    }
    let series = doc.expect_key("series")?;
    let bundle = SeriesBundle::from_points(
        &cell.config.cluster,
        &series_from_json(series.expect_key("nodes_busy")?)?,
        &series_from_json(series.expect_key("pool_used")?)?,
        &series_from_json(series.expect_key("dram_used")?)?,
        &series_from_json(series.expect_key("queue_depth")?)?,
    )
    .ok_or_else(|| JsonError {
        message: "cache entry has an empty step series".into(),
        offset: 0,
    })?;
    let report = export::report_from_value(doc.expect_key("report")?)?;
    // Entries stored before the fault subsystem existed lack the "faults"
    // key; they are fault-free by construction, so the summary defaults
    // to zero counters with avail_util == node_util — exactly what a
    // fresh fault-free simulation would report.
    let faults = match doc.get("faults") {
        Some(f) => dmhpc_metrics::FaultSummary {
            interruptions: f.expect_key("interruptions")?.to_u64()?,
            resubmissions: f.expect_key("resubmissions")?.to_u64()?,
            rework_s: f.expect_key("rework_s")?.to_f64()?,
            downtime_node_s: f.expect_key("downtime_node_s")?.to_f64()?,
            avail_util: f.expect_key("avail_util")?.to_f64()?,
        },
        None => dmhpc_metrics::FaultSummary {
            avail_util: report.node_util,
            ..Default::default()
        },
    };
    let service = match doc.get("service") {
        Some(s) => {
            // Invert the sentinel encoding: a positive stored target is a
            // real target, 0.0 is "no target" unless the explicit
            // zero-target marker says otherwise.
            let raw_slo = s.expect_key("slo_wait_s")?.to_f64()?;
            let raw_attained = s.expect_key("slo_attained")?.to_f64()?;
            let zero_target = s.get("slo_zero_target").is_some();
            let slo_wait_s = if raw_slo > 0.0 || zero_target {
                Some(raw_slo)
            } else {
                None
            };
            Some(dmhpc_metrics::ServiceSummary {
                observed: s.expect_key("observed")?.to_u64()?,
                warmup_skipped: s.expect_key("warmup_skipped")?.to_u64()?,
                p99_wait_s: s.expect_key("p99_wait_s")?.to_f64()?,
                slo_wait_s,
                slo_attained: slo_wait_s.map(|_| raw_attained),
            })
        }
        None => None,
    };
    Ok(SimOutput {
        report,
        records: doc
            .expect_key("records")?
            .to_arr()?
            .iter()
            .map(export::record_from_value)
            .collect::<Result<_, _>>()?,
        series: bundle,
        events_processed: doc.expect_key("events_processed")?.to_u64()?,
        passes: doc.expect_key("passes")?.to_u64()?,
        trace_hash: doc.expect_key("trace_hash")?.to_u64()?,
        end_time: SimTime::from_micros(doc.expect_key("end_time_us")?.to_u64()?),
        faults,
        preemptions: match doc.get("preemptions") {
            Some(p) => p.to_u64()?,
            None => 0,
        },
        service,
    })
}

// ----------------------------------------------------------------- the store

/// A directory of content-addressed cell results.
///
/// Open with [`ResultCache::open`] and attach to an
/// [`super::ExperimentRunner`]; the runner then loads unchanged cells
/// instead of simulating them and stores every freshly simulated cell.
/// One cache directory can back any number of specs and shard processes.
#[derive(Debug, Clone)]
pub struct ResultCache {
    dir: PathBuf,
}

impl ResultCache {
    /// Open (creating if needed) a cache directory.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, SimError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)
            .map_err(|e| SimError::io(format!("creating cache dir {}", dir.display()), e))?;
        Ok(ResultCache { dir })
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn path(&self, hash: u64) -> PathBuf {
        self.dir.join(format!("cell-{hash:016x}.json"))
    }

    /// Whether a cell result is stored (cheap existence check; `load` may
    /// still miss if the entry is corrupt).
    pub fn contains(&self, hash: u64) -> bool {
        self.path(hash).is_file()
    }

    /// Number of cell entries currently stored.
    pub fn len(&self) -> usize {
        std::fs::read_dir(&self.dir)
            .map(|entries| {
                entries
                    .filter_map(|e| e.ok())
                    .filter(|e| {
                        e.file_name()
                            .to_str()
                            .is_some_and(|n| n.starts_with("cell-") && n.ends_with(".json"))
                    })
                    .count()
            })
            .unwrap_or(0)
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Load the output for a cell hash. Missing, unreadable, corrupt, or
    /// format-mismatched entries all return `None` — the caller simply
    /// re-simulates (and re-stores) the cell.
    pub(super) fn load_cell(&self, hash: u64, cell: &RunSpec) -> Option<SimOutput> {
        let text = std::fs::read_to_string(self.path(hash)).ok()?;
        let doc = parse(&text).ok()?;
        output_from_json(&doc, hash, cell).ok()
    }

    /// Store one cell's output under its content hash. Writes to a
    /// process-unique temporary file then renames, so concurrent shard
    /// processes never observe half-written entries.
    pub(super) fn store_cell(&self, hash: u64, output: &SimOutput) -> Result<(), SimError> {
        let final_path = self.path(hash);
        let tmp_path = self
            .dir
            .join(format!("cell-{hash:016x}.tmp.{}", std::process::id()));
        // Compact form: cache entries are machine artifacts, and they are
        // read far more often than humans inspect them.
        let text = output_to_json(hash, output).to_string_compact();
        std::fs::write(&tmp_path, text)
            .map_err(|e| SimError::io(format!("writing {}", tmp_path.display()), e))?;
        std::fs::rename(&tmp_path, &final_path)
            .map_err(|e| SimError::io(format!("publishing {}", final_path.display()), e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::{default_slowdown, policy_suite};
    use crate::{ExperimentRunner, ExperimentSpec, Simulation};
    use dmhpc_workload::SystemPreset;

    fn spec() -> ExperimentSpec {
        ExperimentSpec::builder("cache-test")
            .preset(SystemPreset::HighThroughput, 40)
            .pool(PoolTopology::PerRack {
                mib_per_rack: 384 * 1024,
            })
            .load(0.8)
            .seeds([1, 2])
            .schedulers(policy_suite(default_slowdown()))
            .build()
            .unwrap()
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("dmhpc-cache-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn hashes_are_unique_per_cell_and_stable() {
        let spec = spec();
        let digest = workload_digest(&spec.workload);
        let cells = spec.compile().unwrap();
        let mut hashes: Vec<u64> = cells.iter().map(|c| cell_hash(digest, c)).collect();
        // Stable across recompiles.
        let again: Vec<u64> = spec
            .compile()
            .unwrap()
            .iter()
            .map(|c| cell_hash(digest, c))
            .collect();
        assert_eq!(hashes, again);
        hashes.sort_unstable();
        hashes.dedup();
        assert_eq!(hashes.len(), cells.len(), "cells hash distinctly");
    }

    #[test]
    fn hash_ignores_labels_but_not_content() {
        let spec = spec();
        let digest = workload_digest(&spec.workload);
        let cells = spec.compile().unwrap();
        // Relabelling the cluster does not move the cell.
        let mut relabelled = cells[0].clone();
        relabelled.key.cluster = "renamed".into();
        assert_eq!(cell_hash(digest, &cells[0]), cell_hash(digest, &relabelled));
        // Changing real content does.
        let mut edited = cells[0].clone();
        edited.config.enforce_walltime = !edited.config.enforce_walltime;
        assert_ne!(cell_hash(digest, &cells[0]), cell_hash(digest, &edited));
        let mut reseeded = cells[0].clone();
        reseeded.key.seed = Some(999);
        assert_ne!(cell_hash(digest, &cells[0]), cell_hash(digest, &reseeded));
    }

    #[test]
    fn fleet_axis_is_hash_neutral_when_none_and_content_otherwise() {
        use crate::federation::FleetSpec;
        let base = spec();
        let digest = workload_digest(&base.workload);
        let plain: Vec<u64> = base
            .compile()
            .unwrap()
            .iter()
            .map(|c| cell_hash(digest, c))
            .collect();
        // An explicit no-fleet axis writes nothing: pre-federation caches
        // stay warm.
        let with_none = crate::ExperimentBuilder::from_spec(base.clone())
            .fleet(FleetSpec::none())
            .build()
            .unwrap();
        let none_hashes: Vec<u64> = with_none
            .compile()
            .unwrap()
            .iter()
            .map(|c| cell_hash(digest, c))
            .collect();
        assert_eq!(plain, none_hashes, "no-fleet axis is hash-neutral");
        // A real fleet moves every cell.
        let with_fleet = crate::ExperimentBuilder::from_spec(base)
            .fleet(FleetSpec::symmetric(
                2,
                120.0,
                dmhpc_sched::MetaPolicyKind::RoundRobin,
            ))
            .build()
            .unwrap();
        for (cell, old) in with_fleet.compile().unwrap().iter().zip(&plain) {
            assert_ne!(cell_hash(digest, cell), *old, "federated cells move");
        }
        // And the epoch length is content.
        let mut longer = with_fleet.clone();
        longer.fleets[0].epoch_s = 240.0;
        assert_ne!(
            cell_hash(digest, &with_fleet.compile().unwrap()[0]),
            cell_hash(digest, &longer.compile().unwrap()[0]),
            "epoch length is result-determining content"
        );
    }

    #[test]
    fn workload_digest_tracks_source_content() {
        let preset_40 = workload_digest(&WorkloadSource::Preset {
            preset: SystemPreset::HighThroughput,
            jobs: 40,
        });
        let preset_41 = workload_digest(&WorkloadSource::Preset {
            preset: SystemPreset::HighThroughput,
            jobs: 41,
        });
        assert_ne!(preset_40, preset_41);

        let w = SystemPreset::HighThroughput.synthetic_spec(20).generate(7);
        let fixed_a = workload_digest(&WorkloadSource::Fixed(std::sync::Arc::new(w.clone())));
        let mut jobs: Vec<_> = w.iter().cloned().collect();
        jobs[0].mem_per_node += 1;
        let fixed_b = workload_digest(&WorkloadSource::Fixed(std::sync::Arc::new(
            dmhpc_workload::Workload::from_jobs(jobs),
        )));
        assert_ne!(fixed_a, fixed_b, "one MiB of one job changes the digest");
    }

    #[test]
    fn output_round_trips_through_the_store() {
        let spec = spec();
        let cell = spec.compile().unwrap().remove(0);
        let workload = SystemPreset::HighThroughput.synthetic_spec(40).generate(1);
        let output = Simulation::new(cell.config).unwrap().run(&workload);

        let dir = tmp_dir("roundtrip");
        let cache = ResultCache::open(&dir).unwrap();
        let hash = cell_hash(workload_digest(&spec.workload), &cell);
        assert!(!cache.contains(hash));
        cache.store_cell(hash, &output).unwrap();
        assert!(cache.contains(hash));
        assert_eq!(cache.len(), 1);

        let back = cache.load_cell(hash, &cell).expect("stored entry loads");
        assert_eq!(back.trace_hash, output.trace_hash);
        assert_eq!(back.events_processed, output.events_processed);
        assert_eq!(back.passes, output.passes);
        assert_eq!(back.end_time, output.end_time);
        assert_eq!(back.records.len(), output.records.len());
        for (a, b) in back.records.iter().zip(&output.records) {
            assert_eq!(a.job.id, b.job.id);
            assert_eq!(a.outcome, b.outcome);
            assert_eq!(a.start, b.start);
            assert_eq!(a.finish, b.finish);
            assert_eq!(a.dilation_actual, b.dilation_actual);
        }
        assert_eq!(
            back.series.nodes_busy.points(),
            output.series.nodes_busy.points()
        );
        assert_eq!(
            back.series.queue_depth.points(),
            output.series.queue_depth.points()
        );
        assert_eq!(
            export::report_csv_row(&back.report),
            export::report_csv_row(&output.report)
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_entries_miss_instead_of_failing() {
        let spec = spec();
        let cell = spec.compile().unwrap().remove(0);
        let dir = tmp_dir("corrupt");
        let cache = ResultCache::open(&dir).unwrap();
        let hash = cell_hash(workload_digest(&spec.workload), &cell);
        std::fs::write(cache.path(hash), "{ not json").unwrap();
        assert!(cache.load_cell(hash, &cell).is_none());
        // Wrong hash inside the file (e.g. manual rename) also misses.
        std::fs::write(cache.path(hash), r#"{"format": 1, "cell_hash": 12345}"#).unwrap();
        assert!(cache.load_cell(hash, &cell).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn non_monotonic_series_is_a_parse_error_not_a_panic() {
        // The replay path feeds the causal TimeWeighted integrator, so a
        // parseable-but-corrupt entry with time going backwards must be
        // rejected here (=> cache miss), never replayed.
        let good = parse("[[0, 0.0], [10, 2.0], [10, 3.0]]").unwrap();
        assert!(series_from_json(&good).is_ok());
        let bad = parse("[[10000000, 1.0], [5000000, 2.0]]").unwrap();
        let err = series_from_json(&bad).unwrap_err();
        assert!(err.message.contains("monotonic"), "{err}");
    }

    #[test]
    fn runner_integration_cold_then_warm() {
        let dir = tmp_dir("runner");
        let spec = spec();
        let cold = ExperimentRunner::with_threads(2)
            .cache_dir(&dir)
            .unwrap()
            .run(&spec)
            .unwrap();
        assert_eq!(cold.stats().simulated, spec.cell_count());
        assert_eq!(cold.stats().cache_hits, 0);

        let warm = ExperimentRunner::with_threads(2)
            .cache_dir(&dir)
            .unwrap()
            .run(&spec)
            .unwrap();
        assert_eq!(warm.stats().simulated, 0, "warm run simulates nothing");
        assert_eq!(warm.stats().cache_hits, spec.cell_count());
        assert_eq!(warm.to_csv(), cold.to_csv(), "CSV export byte-identical");
        assert_eq!(warm.to_json(), cold.to_json(), "JSON export byte-identical");
        for (a, b) in warm.cells().iter().zip(cold.cells()) {
            assert_eq!(a.key, b.key);
            assert_eq!(a.output.trace_hash, b.output.trace_hash);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
