//! The declarative experiment API.
//!
//! The paper's evaluation — and every serious scheduling study — is a
//! *grid*: a policy suite crossed with pool topologies, offered loads, and
//! seeds. This module makes that grid a first-class value instead of a
//! nest of hand-rolled loops:
//!
//! * [`ExperimentSpec`] — a declarative, JSON-(de)serializable description
//!   of the run grid: a workload source ([`WorkloadSource`]), labelled
//!   cluster shapes, load/seed axes, and scheduler configurations. Built
//!   fluently via [`ExperimentSpec::builder`].
//! * [`ExperimentSpec::compile`] — expands the grid into concrete
//!   [`RunSpec`] cells (cluster × load × seed × scheduler), validating
//!   every axis up front so execution cannot fail mid-sweep.
//! * [`ExperimentRunner`] — executes the cells over the parallel sweep
//!   machinery with deterministic result ordering and a shared workload
//!   cache, yielding [`ExperimentResults`].
//! * [`ExperimentResults`] — a labelled table of per-cell
//!   [`crate::SimOutput`]s with CSV/JSON export.
//!
//! Large grids scale through two additional pieces:
//!
//! * [`ResultCache`] — a content-addressed on-disk store keyed by a
//!   stable 64-bit hash of each cell's result-determining content
//!   ([`ExperimentSpec::cell_hashes`]); attached via
//!   [`ExperimentRunner::cache_dir`], unchanged cells load bit-identically
//!   instead of simulating, so re-running an edited spec re-executes only
//!   the cells whose hash changed.
//! * [`Shard`] — deterministic round-robin grid partitioning
//!   ([`ExperimentSpec::shard`], [`ExperimentRunner::run_shard`]) so N
//!   processes or CI jobs each run a disjoint slice;
//!   [`ExperimentResults::merge`] recombines the slices into one
//!   grid-ordered table.
//!
//! ```
//! use dmhpc_sim::{ExperimentRunner, ExperimentSpec};
//! use dmhpc_platform::PoolTopology;
//! use dmhpc_workload::SystemPreset;
//!
//! let spec = ExperimentSpec::builder("demo")
//!     .preset(SystemPreset::HighThroughput, 50)
//!     .pools([
//!         PoolTopology::None,
//!         PoolTopology::PerRack { mib_per_rack: 512 * 1024 },
//!     ])
//!     .load(0.8)
//!     .seed(42)
//!     .policy_suite(dmhpc_sim::scenarios::default_slowdown())
//!     .build()
//!     .unwrap();
//! assert_eq!(spec.cell_count(), 2 * 1 * 1 * 4);
//! let results = ExperimentRunner::new().run(&spec).unwrap();
//! assert_eq!(results.len(), 8);
//! ```

mod builder;
mod cache;
mod results;
mod runner;
mod serial;
mod shard;

pub use builder::ExperimentBuilder;
pub use cache::ResultCache;
pub use results::{CellResult, ExperimentResults, RunStats};
pub use runner::ExperimentRunner;
pub use shard::Shard;

use crate::config::SimConfig;
use crate::error::SimError;
use crate::faults::FaultSpec;
use crate::federation::FleetSpec;
use crate::service::ServiceSpec;
use dmhpc_platform::{ClusterSpec, PoolTopology};
use dmhpc_sched::SchedulerConfig;
use dmhpc_workload::{SystemPreset, Workload};
use std::sync::Arc;

/// Where an experiment's jobs come from.
#[derive(Debug, Clone)]
pub enum WorkloadSource {
    /// Generate synthetically from a calibrated [`SystemPreset`], one
    /// workload per `(seed, load)` grid point.
    Preset {
        /// The calibration to generate from.
        preset: SystemPreset,
        /// Number of jobs per generated workload.
        jobs: usize,
    },
    /// Replay an externally supplied trace (SWF or hand-built). The seed
    /// axis collapses — the trace is fixed — while the load axis still
    /// rescales arrivals against each cluster's node count. Not
    /// JSON-serializable (the trace itself lives outside the spec).
    Fixed(Arc<Workload>),
}

/// One cell's coordinates in the experiment grid. Every field is a label
/// axis; equality of keys means "same grid point".
#[derive(Debug, Clone, PartialEq)]
pub struct CellKey {
    /// Cluster-axis label.
    pub cluster: String,
    /// Offered-load axis (`None` = the workload's native load).
    pub load: Option<f64>,
    /// Seed axis (`None` for fixed traces).
    pub seed: Option<u64>,
    /// Fault-scenario axis label (`None` when the cell runs fault-free —
    /// both when the axis is absent and for an explicit
    /// [`FaultSpec::none`], which is the same run).
    pub fault: Option<String>,
    /// Service-scenario axis label (`None` for closed batch cells — both
    /// when the axis is absent and for an explicit [`ServiceSpec::none`],
    /// which is the same run).
    pub service: Option<String>,
    /// Fleet axis label (`None` for single-cluster cells — both when the
    /// axis is absent and for an explicit [`FleetSpec::none`], which is
    /// the same run).
    pub fleet: Option<String>,
    /// Scheduler-axis label: the config's *full* label
    /// ([`SchedulerConfig::full_label`]), which distinguishes policy
    /// parameters, the slowdown model, and the inflation switch — so keys
    /// stay unique in grids that sweep those fields.
    pub scheduler: String,
}

impl CellKey {
    /// One-line label for reports: `cluster|load|seed|fault|scheduler`
    /// (fault-free cells omit the fault part, as pre-fault grids did).
    pub fn label(&self) -> String {
        let mut parts = vec![self.cluster.clone()];
        if let Some(load) = self.load {
            parts.push(format!("load{load:.2}"));
        }
        if let Some(seed) = self.seed {
            parts.push(format!("seed{seed}"));
        }
        if let Some(fault) = &self.fault {
            parts.push(fault.clone());
        }
        if let Some(service) = &self.service {
            parts.push(service.clone());
        }
        if let Some(fleet) = &self.fleet {
            parts.push(fleet.clone());
        }
        parts.push(self.scheduler.clone());
        parts.join("|")
    }
}

/// One fully concrete run: a grid cell compiled down to the simulator
/// configuration that executes it.
#[derive(Debug, Clone)]
pub struct RunSpec {
    /// Where this run sits in the grid.
    pub key: CellKey,
    /// The complete simulator configuration for the cell.
    pub config: SimConfig,
    /// The cell's fault scenario ([`FaultSpec::none`] for fault-free
    /// cells; hash-neutral then, so pre-fault caches stay warm).
    pub faults: FaultSpec,
    /// The cell's service scenario, with the stream seed resolved (the
    /// cell's seed-axis value unless the spec pinned one).
    /// [`ServiceSpec::none`] for closed cells; hash-neutral then, so
    /// pre-service caches stay warm.
    pub service: ServiceSpec,
    /// The cell's fleet scenario ([`FleetSpec::none`] for single-cluster
    /// cells; hash-neutral then, so pre-federation caches stay warm).
    /// Unpinned sites inherit the cell's cluster and scheduler axes.
    pub fleet: FleetSpec,
}

/// A declarative description of a whole experiment grid.
///
/// The grid is the cross product `clusters × loads × seeds × schedulers`
/// (with the load axis treated as a single "native load" point when empty,
/// and the seed axis collapsed for [`WorkloadSource::Fixed`]). Construct
/// via [`ExperimentSpec::builder`]; serialize with
/// [`ExperimentSpec::to_json`] / [`ExperimentSpec::from_json`].
#[derive(Debug, Clone)]
pub struct ExperimentSpec {
    /// Experiment name (report/file prefix).
    pub name: String,
    /// Where jobs come from.
    pub workload: WorkloadSource,
    /// Cluster axis: `(label, machine shape)`.
    pub clusters: Vec<(String, ClusterSpec)>,
    /// Offered-load axis. Empty = run the workload at its native load.
    pub loads: Vec<f64>,
    /// Seed axis (ignored for fixed traces).
    pub seeds: Vec<u64>,
    /// Scheduler axis.
    pub schedulers: Vec<SchedulerConfig>,
    /// Fault-scenario axis. Empty = every cell runs fault-free (identical
    /// to the pre-fault grid, hash-for-hash).
    pub faults: Vec<FaultSpec>,
    /// Service-scenario axis. Empty = every cell is a closed batch run
    /// (identical to the pre-service grid, hash-for-hash). Open scenarios
    /// do not combine with fault scenarios.
    pub services: Vec<ServiceSpec>,
    /// Fleet axis. Empty = every cell runs on a single cluster (identical
    /// to the pre-federation grid, hash-for-hash). Federated scenarios do
    /// not combine with fault or service scenarios.
    pub fleets: Vec<FleetSpec>,
    /// Kill jobs at their planned walltime (production behaviour).
    pub enforce_walltime: bool,
    /// Run cluster invariant checks after every event batch (tests only).
    pub check_invariants: bool,
}

impl ExperimentSpec {
    /// Start a fluent builder.
    pub fn builder(name: impl Into<String>) -> ExperimentBuilder {
        ExperimentBuilder::new(name)
    }

    /// Effective seed axis: the configured seeds, or a single `None` for
    /// fixed traces.
    fn seed_axis(&self) -> Vec<Option<u64>> {
        match self.workload {
            WorkloadSource::Preset { .. } => self.seeds.iter().map(|&s| Some(s)).collect(),
            WorkloadSource::Fixed(_) => vec![None],
        }
    }

    /// Effective load axis: the configured loads, or a single `None`.
    fn load_axis(&self) -> Vec<Option<f64>> {
        if self.loads.is_empty() {
            vec![None]
        } else {
            self.loads.iter().map(|&l| Some(l)).collect()
        }
    }

    /// Effective fault axis: the configured scenarios, or a single
    /// fault-free point.
    fn fault_axis(&self) -> Vec<FaultSpec> {
        if self.faults.is_empty() {
            vec![FaultSpec::none()]
        } else {
            self.faults.clone()
        }
    }

    /// Effective service axis: the configured scenarios, or a single
    /// closed-batch point.
    fn service_axis(&self) -> Vec<ServiceSpec> {
        if self.services.is_empty() {
            vec![ServiceSpec::none()]
        } else {
            self.services.clone()
        }
    }

    /// Effective fleet axis: the configured scenarios, or a single
    /// single-cluster point.
    fn fleet_axis(&self) -> Vec<FleetSpec> {
        if self.fleets.is_empty() {
            vec![FleetSpec::none()]
        } else {
            self.fleets.clone()
        }
    }

    /// Number of grid cells `compile` will produce.
    pub fn cell_count(&self) -> usize {
        self.clusters.len()
            * self.load_axis().len()
            * self.seed_axis().len()
            * self.fault_axis().len()
            * self.service_axis().len()
            * self.fleet_axis().len()
            * self.schedulers.len()
    }

    /// Check every axis. All failure modes of the whole experiment surface
    /// here, before any simulation starts.
    pub fn validate(&self) -> Result<(), SimError> {
        if self.name.is_empty() {
            return Err(SimError::spec("experiment name must not be empty"));
        }
        if self.clusters.is_empty() {
            return Err(SimError::spec(
                "cluster axis is empty (add a preset/pool or cluster)",
            ));
        }
        if self.schedulers.is_empty() {
            return Err(SimError::spec("scheduler axis is empty"));
        }
        match &self.workload {
            WorkloadSource::Preset { jobs, .. } => {
                if *jobs == 0 {
                    return Err(SimError::spec("preset workload needs jobs > 0"));
                }
                if self.seeds.is_empty() {
                    return Err(SimError::spec("seed axis is empty"));
                }
            }
            WorkloadSource::Fixed(w) => {
                if w.is_empty() {
                    return Err(SimError::spec("fixed workload contains no jobs"));
                }
                if !self.loads.is_empty() && w.arrival_span().is_zero() {
                    return Err(SimError::spec("cannot rescale load of a zero-span trace"));
                }
            }
        }
        for (label, cluster) in &self.clusters {
            if label.is_empty() {
                return Err(SimError::spec("cluster label must not be empty"));
            }
            cluster.validate()?;
        }
        let mut labels: Vec<&str> = self.clusters.iter().map(|(l, _)| l.as_str()).collect();
        labels.sort_unstable();
        labels.dedup();
        if labels.len() != self.clusters.len() {
            return Err(SimError::spec("cluster labels must be unique"));
        }
        for &load in &self.loads {
            if !(load.is_finite() && load > 0.0) {
                return Err(SimError::spec(format!(
                    "offered load must be > 0, got {load}"
                )));
            }
        }
        for sched in &self.schedulers {
            sched.slowdown.validate()?;
        }
        let mut sched_labels: Vec<String> =
            self.schedulers.iter().map(|s| s.full_label()).collect();
        sched_labels.sort_unstable();
        sched_labels.dedup();
        if sched_labels.len() != self.schedulers.len() {
            return Err(SimError::spec(
                "scheduler axis contains duplicate configurations",
            ));
        }
        for fault in &self.faults {
            // Machine-aware: fixed actions must fit every cluster on the
            // axis, or compile() would hand the runner an unrunnable cell.
            for (_, cluster) in &self.clusters {
                fault.validate_for(cluster)?;
            }
        }
        let mut fault_labels: Vec<String> = self.faults.iter().map(|f| f.label()).collect();
        fault_labels.sort_unstable();
        fault_labels.dedup();
        if fault_labels.len() != self.faults.len() {
            return Err(SimError::spec(
                "fault axis contains scenarios with colliding labels \
                 (duplicate or near-duplicate FaultSpecs)",
            ));
        }
        for service in &self.services {
            // Machine-aware: a utilization target must bind to every
            // cluster on the axis.
            for (_, cluster) in &self.clusters {
                service.validate_for(cluster)?;
            }
        }
        let mut service_labels: Vec<String> = self.services.iter().map(|s| s.label()).collect();
        service_labels.sort_unstable();
        service_labels.dedup();
        if service_labels.len() != self.services.len() {
            return Err(SimError::spec(
                "service axis contains scenarios with colliding labels \
                 (duplicate or near-duplicate ServiceSpecs)",
            ));
        }
        // The engine rejects the combination per run; surface it here so
        // the whole grid fails before any cell simulates.
        if self.services.iter().any(|s| !s.is_none()) && self.faults.iter().any(|f| !f.is_none()) {
            return Err(SimError::spec(
                "open-system service scenarios do not combine with fault scenarios \
                 (split them into separate experiments)",
            ));
        }
        for fleet in &self.fleets {
            // Machine-aware: unpinned sites inherit each cluster on the
            // axis, so the fleet must resolve against every one.
            for (_, cluster) in &self.clusters {
                fleet.validate_for(cluster)?;
            }
        }
        let mut fleet_labels: Vec<String> = self.fleets.iter().map(|f| f.label()).collect();
        fleet_labels.sort_unstable();
        fleet_labels.dedup();
        if fleet_labels.len() != self.fleets.len() {
            return Err(SimError::spec(
                "fleet axis contains scenarios with colliding labels \
                 (duplicate or near-duplicate FleetSpecs)",
            ));
        }
        if self.fleets.iter().any(|f| !f.is_none())
            && (self.faults.iter().any(|f| !f.is_none())
                || self.services.iter().any(|s| !s.is_none()))
        {
            return Err(SimError::spec(
                "federated fleet scenarios do not combine with fault or service \
                 scenarios (split them into separate experiments)",
            ));
        }
        Ok(())
    }

    /// Expand the grid into concrete cells, in deterministic axis order
    /// (clusters outermost, then loads, seeds, fault scenarios, service
    /// scenarios, fleets, and schedulers innermost).
    pub fn compile(&self) -> Result<Vec<RunSpec>, SimError> {
        self.validate()?;
        let mut cells = Vec::with_capacity(self.cell_count());
        for (cluster_label, cluster) in &self.clusters {
            for load in self.load_axis() {
                for seed in self.seed_axis() {
                    for faults in self.fault_axis() {
                        for service in self.service_axis() {
                            for fleet in self.fleet_axis() {
                                for sched in &self.schedulers {
                                    let mut config = SimConfig::new(*cluster, *sched);
                                    config.enforce_walltime = self.enforce_walltime;
                                    config.check_invariants = self.check_invariants;
                                    // The key labels the axis entry as
                                    // written (pre-resolution), so one
                                    // scenario keeps one label across the
                                    // whole seed axis.
                                    let service_label = if service.is_none() {
                                        None
                                    } else {
                                        Some(service.label())
                                    };
                                    // Resolve the stream seed: an unpinned
                                    // open scenario draws from the cell's
                                    // seed axis, so the seed axis varies
                                    // the stream just like it varies
                                    // closed workloads.
                                    let mut service = service.clone();
                                    if !service.is_none() && service.seed.is_none() {
                                        service.seed =
                                            Some(seed.unwrap_or(ServiceSpec::DEFAULT_SEED));
                                    }
                                    cells.push(RunSpec {
                                        key: CellKey {
                                            cluster: cluster_label.clone(),
                                            load,
                                            seed,
                                            fault: if faults.is_none() {
                                                None
                                            } else {
                                                Some(faults.label())
                                            },
                                            service: service_label,
                                            fleet: if fleet.is_none() {
                                                None
                                            } else {
                                                Some(fleet.label())
                                            },
                                            scheduler: sched.full_label(),
                                        },
                                        config,
                                        faults: faults.clone(),
                                        service,
                                        fleet: fleet.clone(),
                                    });
                                }
                            }
                        }
                    }
                }
            }
        }
        Ok(cells)
    }

    /// The content hash of every grid cell, in grid order — the keys a
    /// [`ResultCache`] stores results under.
    ///
    /// The hash covers exactly what determines a cell's result: workload
    /// source content, cluster shape, load, seed, scheduler configuration,
    /// walltime enforcement, and the fault scenario. Presentation-only
    /// fields (experiment name, cluster labels, `check_invariants`) are
    /// excluded, and hashes are computed from the parsed spec — not its
    /// JSON text — so reordering fields in a spec file changes nothing. A
    /// fault-free cell ([`FaultSpec::none`]) hashes exactly as pre-fault
    /// grids did, so attaching an explicit no-fault axis keeps existing
    /// caches warm. Diff two specs' hashes to see which cells an edit
    /// would re-execute.
    pub fn cell_hashes(&self) -> Result<Vec<(CellKey, u64)>, SimError> {
        let digest = cache::workload_digest(&self.workload);
        Ok(self
            .compile()?
            .into_iter()
            .map(|cell| {
                let hash = cache::cell_hash(digest, &cell);
                (cell.key, hash)
            })
            .collect())
    }

    /// Serialize to pretty JSON. Fails for [`WorkloadSource::Fixed`]
    /// (traces live outside the spec).
    pub fn to_json(&self) -> Result<String, SimError> {
        serial::spec_to_json(self)
    }

    /// Parse a spec previously written by [`ExperimentSpec::to_json`].
    /// The result is validated before it is returned.
    pub fn from_json(text: &str) -> Result<Self, SimError> {
        let spec = serial::spec_from_json(text)?;
        spec.validate()?;
        Ok(spec)
    }
}

/// A stable human label for a pool topology (used for auto-generated
/// cluster labels).
pub(crate) fn pool_label(pool: &PoolTopology) -> String {
    fn mib(m: u64) -> String {
        if m > 0 && m.is_multiple_of(1024 * 1024) {
            format!("{}tib", m / (1024 * 1024))
        } else if m > 0 && m.is_multiple_of(1024) {
            format!("{}gib", m / 1024)
        } else {
            format!("{m}mib")
        }
    }
    match *pool {
        PoolTopology::None => "no-pool".to_string(),
        PoolTopology::PerRack { mib_per_rack } => format!("rack-{}", mib(mib_per_rack)),
        PoolTopology::Global { mib: m } => format!("global-{}", mib(m)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::{default_slowdown, policy_suite};
    use dmhpc_platform::NodeSpec;
    use dmhpc_workload::JobBuilder;

    fn tiny_spec() -> ExperimentSpec {
        ExperimentSpec::builder("t")
            .preset(SystemPreset::HighThroughput, 20)
            .pools([
                PoolTopology::None,
                PoolTopology::PerRack {
                    mib_per_rack: 512 * 1024,
                },
                PoolTopology::Global { mib: 2048 * 1024 },
            ])
            .loads([0.7, 0.9])
            .seeds([1, 2])
            .schedulers(policy_suite(default_slowdown()))
            .build()
            .unwrap()
    }

    #[test]
    fn grid_cardinality() {
        let spec = tiny_spec();
        assert_eq!(spec.cell_count(), 3 * 2 * 2 * 4);
        let cells = spec.compile().unwrap();
        assert_eq!(cells.len(), spec.cell_count());
        // Every key is unique.
        for (i, a) in cells.iter().enumerate() {
            for b in &cells[i + 1..] {
                assert_ne!(a.key, b.key);
            }
        }
        // Axis order: schedulers innermost.
        assert_eq!(cells[0].key.scheduler, cells[4].key.scheduler);
        assert_eq!(cells[0].key.cluster, cells[4].key.cluster);
        assert_ne!(cells[0].key.seed, cells[4].key.seed);
    }

    #[test]
    fn empty_load_axis_means_native() {
        let spec = ExperimentSpec::builder("native")
            .preset(SystemPreset::HighThroughput, 10)
            .pool(PoolTopology::None)
            .seed(7)
            .scheduler(dmhpc_sched::SchedulerBuilder::new().build())
            .build()
            .unwrap();
        assert_eq!(spec.cell_count(), 1);
        assert_eq!(spec.compile().unwrap()[0].key.load, None);
    }

    #[test]
    fn fixed_workload_collapses_seed_axis() {
        let w = Workload::from_jobs(vec![JobBuilder::new(1)
            .nodes(1)
            .runtime_secs(10, 20)
            .mem_per_node(100)
            .build()]);
        let spec = ExperimentSpec::builder("trace")
            .fixed_workload(w)
            .cluster(
                "tiny",
                ClusterSpec::new(1, 2, NodeSpec::new(4, 1024), PoolTopology::None),
            )
            .seeds([1, 2, 3]) // ignored for fixed traces
            .scheduler(dmhpc_sched::SchedulerBuilder::new().build())
            .build()
            .unwrap();
        assert_eq!(spec.cell_count(), 1);
        assert_eq!(spec.compile().unwrap()[0].key.seed, None);
    }

    #[test]
    fn validation_rejects_bad_grids() {
        // No schedulers.
        let err = ExperimentSpec::builder("x")
            .preset(SystemPreset::MidCluster, 10)
            .pool(PoolTopology::None)
            .build()
            .unwrap_err();
        assert!(matches!(err, SimError::Spec { .. }), "{err}");

        // Bad load.
        let err = ExperimentSpec::builder("x")
            .preset(SystemPreset::MidCluster, 10)
            .pool(PoolTopology::None)
            .load(-0.5)
            .scheduler(dmhpc_sched::SchedulerBuilder::new().build())
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("load"), "{err}");

        // Bad slowdown model lands as a typed platform error.
        let bad = dmhpc_sched::SchedulerBuilder::new()
            .slowdown(dmhpc_platform::SlowdownModel::Linear { penalty: 0.2 })
            .build();
        let err = ExperimentSpec::builder("x")
            .preset(SystemPreset::MidCluster, 10)
            .pool(PoolTopology::None)
            .scheduler(bad)
            .build()
            .unwrap_err();
        assert!(matches!(err, SimError::Platform(_)), "{err}");

        // Duplicate cluster labels.
        let cs = ClusterSpec::new(1, 2, NodeSpec::new(4, 1024), PoolTopology::None);
        let err = ExperimentSpec::builder("x")
            .preset(SystemPreset::MidCluster, 10)
            .cluster("same", cs)
            .cluster("same", cs)
            .scheduler(dmhpc_sched::SchedulerBuilder::new().build())
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("unique"), "{err}");
    }

    #[test]
    fn pool_labels() {
        assert_eq!(pool_label(&PoolTopology::None), "no-pool");
        assert_eq!(
            pool_label(&PoolTopology::PerRack {
                mib_per_rack: 512 * 1024
            }),
            "rack-512gib"
        );
        assert_eq!(
            pool_label(&PoolTopology::Global {
                mib: 4 * 1024 * 1024
            }),
            "global-4tib"
        );
        assert_eq!(
            pool_label(&PoolTopology::Global { mib: 100 }),
            "global-100mib"
        );
    }

    #[test]
    fn cell_labels_read_well() {
        let mut key = CellKey {
            cluster: "mid".into(),
            load: Some(0.9),
            seed: Some(42),
            fault: None,
            service: None,
            fleet: None,
            scheduler: "fcfs+easy+pool-ff".into(),
        };
        assert_eq!(key.label(), "mid|load0.90|seed42|fcfs+easy+pool-ff");
        key.fault = Some("gen7-mtbf3600-resub".into());
        assert_eq!(
            key.label(),
            "mid|load0.90|seed42|gen7-mtbf3600-resub|fcfs+easy+pool-ff"
        );
        key.fault = None;
        key.service = Some("svc-htc-128-poisson-u0.85-j5000".into());
        assert_eq!(
            key.label(),
            "mid|load0.90|seed42|svc-htc-128-poisson-u0.85-j5000|fcfs+easy+pool-ff"
        );
        key.service = None;
        key.fleet = Some("fleet4-least-queue-e300".into());
        assert_eq!(
            key.label(),
            "mid|load0.90|seed42|fleet4-least-queue-e300|fcfs+easy+pool-ff"
        );
    }

    #[test]
    fn fault_axis_multiplies_grid_and_labels_cells() {
        let mut gen = crate::FaultGenerator::quiet(5, 40_000);
        gen.node_mtbf_s = 8_000;
        let spec = ExperimentSpec::builder("faulty")
            .preset(SystemPreset::HighThroughput, 20)
            .pool(PoolTopology::None)
            .seed(1)
            .scheduler(dmhpc_sched::SchedulerBuilder::new().build())
            .fault(crate::FaultSpec::none())
            .fault(crate::FaultSpec::none().with_generator(gen))
            .build()
            .unwrap();
        assert_eq!(spec.cell_count(), 2);
        let cells = spec.compile().unwrap();
        assert_eq!(cells[0].key.fault, None, "explicit none stays unlabeled");
        assert!(cells[1].key.fault.as_deref().unwrap().contains("gen5"));
        assert!(cells[0].faults.is_none());
        assert!(!cells[1].faults.is_none());
    }

    #[test]
    fn service_axis_multiplies_grid_and_resolves_seeds() {
        let svc = ServiceSpec::open(SystemPreset::HighThroughput).with_horizon_jobs(200);
        let spec = ExperimentSpec::builder("svc")
            .preset(SystemPreset::HighThroughput, 20)
            .pool(PoolTopology::None)
            .seeds([3, 9])
            .scheduler(dmhpc_sched::SchedulerBuilder::new().build())
            .service(ServiceSpec::none())
            .service(svc.clone())
            .build()
            .unwrap();
        assert_eq!(spec.cell_count(), 4);
        let cells = spec.compile().unwrap();
        assert_eq!(cells[0].key.service, None, "explicit none stays unlabeled");
        assert!(cells[0].service.is_none());
        // The open cells draw their stream seed from the seed axis, but
        // keep the axis entry's (seed-free) label.
        assert_eq!(cells[1].service.seed, Some(3));
        assert_eq!(cells[3].service.seed, Some(9));
        assert_eq!(cells[1].key.service, cells[3].key.service);
        assert_eq!(cells[1].key.service.as_deref(), Some(svc.label().as_str()));
        // A pinned seed wins over the axis.
        let pinned = ExperimentSpec::builder("svc2")
            .preset(SystemPreset::HighThroughput, 20)
            .pool(PoolTopology::None)
            .seed(3)
            .scheduler(dmhpc_sched::SchedulerBuilder::new().build())
            .service(svc.with_seed(77))
            .build()
            .unwrap();
        assert_eq!(pinned.compile().unwrap()[0].service.seed, Some(77));
    }

    #[test]
    fn service_axis_rejects_collisions_and_fault_combination() {
        let svc = ServiceSpec::open(SystemPreset::HighThroughput).with_horizon_jobs(200);
        let err = ExperimentSpec::builder("dup-svc")
            .preset(SystemPreset::HighThroughput, 20)
            .pool(PoolTopology::None)
            .seed(1)
            .scheduler(dmhpc_sched::SchedulerBuilder::new().build())
            .service(svc.clone())
            .service(svc.clone())
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("colliding"), "{err}");

        let mut gen = crate::FaultGenerator::quiet(5, 40_000);
        gen.node_mtbf_s = 8_000;
        let err = ExperimentSpec::builder("svc-faults")
            .preset(SystemPreset::HighThroughput, 20)
            .pool(PoolTopology::None)
            .seed(1)
            .scheduler(dmhpc_sched::SchedulerBuilder::new().build())
            .fault(crate::FaultSpec::none().with_generator(gen))
            .service(svc)
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("do not combine"), "{err}");
    }

    #[test]
    fn fleet_axis_multiplies_grid_and_labels_cells() {
        let spec = ExperimentSpec::builder("fed")
            .preset(SystemPreset::HighThroughput, 20)
            .pool(PoolTopology::None)
            .seed(1)
            .scheduler(dmhpc_sched::SchedulerBuilder::new().build())
            .fleet(FleetSpec::none())
            .fleet(FleetSpec::symmetric(
                4,
                300.0,
                dmhpc_sched::MetaPolicyKind::LeastQueueDepth,
            ))
            .build()
            .unwrap();
        assert_eq!(spec.cell_count(), 2);
        let cells = spec.compile().unwrap();
        assert_eq!(cells[0].key.fleet, None, "explicit none stays unlabeled");
        assert!(cells[0].fleet.is_none());
        assert_eq!(
            cells[1].key.fleet.as_deref(),
            Some("fleet4-least-queue-e300")
        );
        assert_eq!(cells[1].fleet.sites.len(), 4);
    }

    #[test]
    fn fleet_axis_rejects_collisions_and_fault_service_combination() {
        let fleet = FleetSpec::symmetric(2, 60.0, dmhpc_sched::MetaPolicyKind::RoundRobin);
        let err = ExperimentSpec::builder("dup-fleet")
            .preset(SystemPreset::HighThroughput, 20)
            .pool(PoolTopology::None)
            .seed(1)
            .scheduler(dmhpc_sched::SchedulerBuilder::new().build())
            .fleet(fleet.clone())
            .fleet(fleet.clone())
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("colliding"), "{err}");

        let mut gen = crate::FaultGenerator::quiet(5, 40_000);
        gen.node_mtbf_s = 8_000;
        let err = ExperimentSpec::builder("fleet-faults")
            .preset(SystemPreset::HighThroughput, 20)
            .pool(PoolTopology::None)
            .seed(1)
            .scheduler(dmhpc_sched::SchedulerBuilder::new().build())
            .fault(crate::FaultSpec::none().with_generator(gen))
            .fleet(fleet.clone())
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("do not combine"), "{err}");

        let svc = ServiceSpec::open(SystemPreset::HighThroughput).with_horizon_jobs(200);
        let err = ExperimentSpec::builder("fleet-svc")
            .preset(SystemPreset::HighThroughput, 20)
            .pool(PoolTopology::None)
            .seed(1)
            .scheduler(dmhpc_sched::SchedulerBuilder::new().build())
            .service(svc)
            .fleet(fleet)
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("do not combine"), "{err}");
    }

    #[test]
    fn colliding_fault_labels_rejected() {
        let err = ExperimentSpec::builder("dup")
            .preset(SystemPreset::HighThroughput, 20)
            .pool(PoolTopology::None)
            .seed(1)
            .scheduler(dmhpc_sched::SchedulerBuilder::new().build())
            .fault(crate::FaultSpec::none())
            .fault(crate::FaultSpec::none())
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("colliding"), "{err}");
    }
}
