//! JSON (de)serialization of [`ExperimentSpec`].
//!
//! The encoding is a stable, human-editable document — specs can live in
//! version control next to the paper's tables and be replayed byte-exactly
//! (integer seeds and MiB capacities round-trip exactly through
//! [`dmhpc_metrics::json`]). Enum variants use externally tagged form:
//! unit variants are strings (`"fcfs"`), data variants are single-key
//! objects (`{"wfp": {"exponent": 3.0}}`).

use super::{ExperimentSpec, WorkloadSource};
use crate::error::SimError;
use crate::faults::{FaultAction, FaultGenerator, FaultSpec, InterruptPolicy};
use crate::federation::{FleetSpec, SiteSpec};
use crate::service::{ServiceLoad, ServiceSpec};
use dmhpc_des::time::{SimDuration, SimTime};
use dmhpc_metrics::json::{parse, Json, JsonError};
use dmhpc_platform::{ClusterSpec, NodeId, NodeSpec, PoolId, PoolTopology, SlowdownModel};
use dmhpc_sched::{
    AdmissionPolicy, BackfillPolicy, MemoryPolicy, MetaPolicyKind, OrderPolicy, PreemptPolicy,
    SchedulerConfig,
};
use dmhpc_workload::source::{ArrivalProcess, Horizon};
use dmhpc_workload::SystemPreset;

fn shape(reason: impl Into<String>) -> JsonError {
    JsonError {
        message: reason.into(),
        offset: 0,
    }
}

/// Tag of an externally tagged enum value: either the string itself or the
/// single key of a one-entry object (returning its payload).
fn tagged(v: &Json) -> Result<(&str, Option<&Json>), JsonError> {
    match v {
        Json::Str(s) => Ok((s, None)),
        Json::Obj(pairs) if pairs.len() == 1 => Ok((&pairs[0].0, Some(&pairs[0].1))),
        _ => Err(shape(format!("expected enum tag, got {v:?}"))),
    }
}

fn payload<'a>(data: Option<&'a Json>, tag: &str) -> Result<&'a Json, JsonError> {
    data.ok_or_else(|| shape(format!("variant {tag:?} needs a payload object")))
}

// ---------------------------------------------------------------- to json

fn pool_to_json(pool: &PoolTopology) -> Json {
    match *pool {
        PoolTopology::None => Json::Str("none".into()),
        PoolTopology::PerRack { mib_per_rack } => Json::obj(vec![(
            "per-rack",
            Json::obj(vec![("mib_per_rack", Json::UInt(mib_per_rack))]),
        )]),
        PoolTopology::Global { mib } => {
            Json::obj(vec![("global", Json::obj(vec![("mib", Json::UInt(mib))]))])
        }
    }
}

fn cluster_shape_fields(spec: &ClusterSpec) -> Vec<(&'static str, Json)> {
    vec![
        ("racks", Json::UInt(spec.racks as u64)),
        ("nodes_per_rack", Json::UInt(spec.nodes_per_rack as u64)),
        ("cores", Json::UInt(spec.node.cores as u64)),
        ("node_mem_mib", Json::UInt(spec.node.local_mem)),
        ("pool", pool_to_json(&spec.pool)),
    ]
}

fn cluster_to_json(label: &str, spec: &ClusterSpec) -> Json {
    let mut pairs = vec![("label", Json::Str(label.into()))];
    pairs.extend(cluster_shape_fields(spec));
    Json::obj(pairs)
}

fn order_to_json(order: &OrderPolicy) -> Json {
    match *order {
        OrderPolicy::Wfp { exponent } => Json::obj(vec![(
            "wfp",
            Json::obj(vec![("exponent", Json::F64(exponent))]),
        )]),
        OrderPolicy::BatchBudget { hold_s } => Json::obj(vec![(
            "batch-budget",
            Json::obj(vec![("hold_s", Json::F64(hold_s))]),
        )]),
        _ => Json::Str(order.name().into()),
    }
}

fn memory_to_json(memory: &MemoryPolicy) -> Json {
    match *memory {
        MemoryPolicy::SlowdownAware { max_dilation } => Json::obj(vec![(
            "slowdown-aware",
            Json::obj(vec![("max_dilation", Json::F64(max_dilation))]),
        )]),
        MemoryPolicy::LaxityAware { max_dilation } => Json::obj(vec![(
            "laxity-aware",
            Json::obj(vec![("max_dilation", Json::F64(max_dilation))]),
        )]),
        _ => Json::Str(memory.name().into()),
    }
}

fn slowdown_to_json(model: &SlowdownModel) -> Json {
    match *model {
        SlowdownModel::None => Json::Str("none".into()),
        SlowdownModel::Linear { penalty } => Json::obj(vec![(
            "linear",
            Json::obj(vec![("penalty", Json::F64(penalty))]),
        )]),
        SlowdownModel::Saturating { penalty, curvature } => Json::obj(vec![(
            "saturating",
            Json::obj(vec![
                ("penalty", Json::F64(penalty)),
                ("curvature", Json::F64(curvature)),
            ]),
        )]),
        SlowdownModel::Contention { penalty, gamma } => Json::obj(vec![(
            "contention",
            Json::obj(vec![
                ("penalty", Json::F64(penalty)),
                ("gamma", Json::F64(gamma)),
            ]),
        )]),
    }
}

fn scheduler_to_json(cfg: &SchedulerConfig) -> Json {
    let mut pairs = vec![
        ("order", order_to_json(&cfg.order)),
        ("backfill", Json::Str(cfg.backfill.name().into())),
        ("memory", memory_to_json(&cfg.memory)),
        ("slowdown", slowdown_to_json(&cfg.slowdown)),
        ("inflate_walltime", Json::Bool(cfg.inflate_walltime)),
    ];
    // Admission/preemption keys appear only when non-default, so documents
    // written before these knobs existed stay byte-identical.
    if cfg.admission != AdmissionPolicy::AdmitAll {
        pairs.push(("admission", Json::Str(cfg.admission.name().into())));
    }
    if let PreemptPolicy::LaxityCheckpoint { overhead_s } = cfg.preempt {
        pairs.push((
            "preempt",
            Json::obj(vec![(
                "laxity-checkpoint",
                Json::obj(vec![("overhead_s", Json::UInt(overhead_s))]),
            )]),
        ));
    }
    Json::obj(pairs)
}

fn fault_action_to_json(at: SimTime, action: &FaultAction) -> Json {
    let node = |tag: &str, n: NodeId| {
        Json::obj(vec![(
            tag,
            Json::obj(vec![("node", Json::UInt(n.0 as u64))]),
        )])
    };
    let act = match *action {
        FaultAction::NodeFail(n) => node("node-fail", n),
        FaultAction::NodeRepair(n) => node("node-repair", n),
        FaultAction::DrainStart(n) => node("drain-start", n),
        FaultAction::DrainEnd(n) => node("drain-end", n),
        FaultAction::PoolDegrade { pool, factor } => Json::obj(vec![(
            "pool-degrade",
            Json::obj(vec![
                ("pool", Json::UInt(pool.0 as u64)),
                ("factor", Json::F64(factor)),
            ]),
        )]),
        FaultAction::PoolRepair(p) => Json::obj(vec![(
            "pool-repair",
            Json::obj(vec![("pool", Json::UInt(p.0 as u64))]),
        )]),
    };
    Json::obj(vec![("at_us", Json::UInt(at.as_micros())), ("action", act)])
}

fn fault_generator_to_json(g: &FaultGenerator) -> Json {
    Json::obj(vec![
        ("seed", Json::UInt(g.seed)),
        ("horizon_s", Json::UInt(g.horizon_s)),
        ("node_mtbf_s", Json::UInt(g.node_mtbf_s)),
        ("node_repair_s", Json::UInt(g.node_repair_s)),
        ("drain_interval_s", Json::UInt(g.drain_interval_s)),
        ("drain_duration_s", Json::UInt(g.drain_duration_s)),
        (
            "pool_degrade_interval_s",
            Json::UInt(g.pool_degrade_interval_s),
        ),
        (
            "pool_degrade_duration_s",
            Json::UInt(g.pool_degrade_duration_s),
        ),
        ("pool_degrade_factor", Json::F64(g.pool_degrade_factor)),
    ])
}

fn fault_to_json(f: &FaultSpec) -> Json {
    let interrupt = match f.interrupt {
        InterruptPolicy::Resubmit => Json::Str("resubmit".into()),
        InterruptPolicy::Checkpoint { overhead_s } => Json::obj(vec![(
            "checkpoint",
            Json::obj(vec![("overhead_s", Json::UInt(overhead_s))]),
        )]),
    };
    let mut pairs = vec![(
        "schedule",
        Json::Arr(
            f.schedule
                .iter()
                .map(|(at, action)| fault_action_to_json(*at, action))
                .collect(),
        ),
    )];
    if let Some(g) = &f.generator {
        pairs.push(("generator", fault_generator_to_json(g)));
    }
    pairs.push(("interrupt", interrupt));
    pairs.push(("max_resubmits", Json::UInt(f.max_resubmits as u64)));
    Json::obj(pairs)
}

fn service_to_json(s: &ServiceSpec) -> Json {
    let process = match s.process {
        ArrivalProcess::Poisson => Json::Str("poisson".into()),
        ArrivalProcess::Daily { peak_to_trough } => Json::obj(vec![(
            "daily",
            Json::obj(vec![("peak_to_trough", Json::F64(peak_to_trough))]),
        )]),
        ArrivalProcess::Mmpp {
            burst_ratio,
            mean_dwell_secs,
        } => Json::obj(vec![(
            "mmpp",
            Json::obj(vec![
                ("burst_ratio", Json::F64(burst_ratio)),
                ("mean_dwell_secs", Json::F64(mean_dwell_secs)),
            ]),
        )]),
    };
    let load = match s.load {
        ServiceLoad::Rate {
            mean_interarrival_secs,
        } => Json::obj(vec![(
            "rate",
            Json::obj(vec![(
                "mean_interarrival_secs",
                Json::F64(mean_interarrival_secs),
            )]),
        )]),
        ServiceLoad::Utilization { target } => Json::obj(vec![(
            "utilization",
            Json::obj(vec![("target", Json::F64(target))]),
        )]),
    };
    let mut pairs = Vec::new();
    if let Some(preset) = s.preset {
        pairs.push(("preset", Json::Str(preset.name().into())));
    }
    pairs.push(("process", process));
    pairs.push(("load", load));
    match s.horizon {
        Some(Horizon::Jobs(n)) => pairs.push(("horizon", Json::obj(vec![("jobs", Json::UInt(n))]))),
        Some(Horizon::Duration(d)) => pairs.push((
            "horizon",
            Json::obj(vec![("secs", Json::UInt(d.as_secs()))]),
        )),
        None => {}
    }
    pairs.push(("warmup_s", Json::UInt(s.warmup_s)));
    if let Some(slo) = s.slo_wait_s {
        pairs.push(("slo_wait_s", Json::F64(slo)));
    }
    if let Some((lo, hi)) = s.slo_budget_factor {
        pairs.push((
            "slo_budget_factor",
            Json::obj(vec![("min", Json::F64(lo)), ("max", Json::F64(hi))]),
        ));
    }
    if let Some(seed) = s.seed {
        pairs.push(("seed", Json::UInt(seed)));
    }
    Json::obj(pairs)
}

fn site_to_json(s: &SiteSpec) -> Json {
    let mut pairs = vec![("label", Json::Str(s.label.clone()))];
    // Pinned fields only: an unpinned site serializes as a bare label,
    // keeping "inherit the cell's axes" the visible default.
    if let Some(c) = &s.cluster {
        pairs.push(("cluster", Json::obj(cluster_shape_fields(c))));
    }
    if let Some(sc) = &s.scheduler {
        pairs.push(("scheduler", scheduler_to_json(sc)));
    }
    Json::obj(pairs)
}

fn fleet_to_json(f: &FleetSpec) -> Json {
    Json::obj(vec![
        ("epoch_s", Json::F64(f.epoch_s)),
        ("policy", Json::Str(f.policy.name().into())),
        (
            "sites",
            Json::Arr(f.sites.iter().map(site_to_json).collect()),
        ),
    ])
}

pub(super) fn spec_to_json(spec: &ExperimentSpec) -> Result<String, SimError> {
    let workload = match &spec.workload {
        WorkloadSource::Preset { preset, jobs } => Json::obj(vec![(
            "preset",
            Json::obj(vec![
                ("system", Json::Str(preset.name().into())),
                ("jobs", Json::UInt(*jobs as u64)),
            ]),
        )]),
        WorkloadSource::Fixed(_) => return Err(SimError::parse(
            "fixed-trace experiments are not JSON-serializable (the trace lives outside the spec)",
        )),
    };
    let doc = Json::obj(vec![
        ("name", Json::Str(spec.name.clone())),
        ("workload", workload),
        (
            "clusters",
            Json::Arr(
                spec.clusters
                    .iter()
                    .map(|(label, c)| cluster_to_json(label, c))
                    .collect(),
            ),
        ),
        (
            "loads",
            Json::Arr(spec.loads.iter().map(|&l| Json::F64(l)).collect()),
        ),
        (
            "seeds",
            Json::Arr(spec.seeds.iter().map(|&s| Json::UInt(s)).collect()),
        ),
        (
            "schedulers",
            Json::Arr(spec.schedulers.iter().map(scheduler_to_json).collect()),
        ),
        (
            "faults",
            Json::Arr(spec.faults.iter().map(fault_to_json).collect()),
        ),
        (
            "services",
            Json::Arr(spec.services.iter().map(service_to_json).collect()),
        ),
        (
            "fleets",
            Json::Arr(spec.fleets.iter().map(fleet_to_json).collect()),
        ),
        ("enforce_walltime", Json::Bool(spec.enforce_walltime)),
        ("check_invariants", Json::Bool(spec.check_invariants)),
    ]);
    Ok(doc.to_string_pretty())
}

// -------------------------------------------------------------- from json

fn pool_from_json(v: &Json) -> Result<PoolTopology, JsonError> {
    let (tag, data) = tagged(v)?;
    match tag {
        "none" => Ok(PoolTopology::None),
        "per-rack" => Ok(PoolTopology::PerRack {
            mib_per_rack: payload(data, tag)?.expect_key("mib_per_rack")?.to_u64()?,
        }),
        "global" => Ok(PoolTopology::Global {
            mib: payload(data, tag)?.expect_key("mib")?.to_u64()?,
        }),
        other => Err(shape(format!("unknown pool topology {other:?}"))),
    }
}

fn cluster_shape_from_json(v: &Json) -> Result<ClusterSpec, JsonError> {
    let node = NodeSpec::try_new(
        v.expect_key("cores")?.to_u64()? as u32,
        v.expect_key("node_mem_mib")?.to_u64()?,
    )
    .map_err(|e| shape(e.to_string()))?;
    ClusterSpec::try_new(
        v.expect_key("racks")?.to_u64()? as u32,
        v.expect_key("nodes_per_rack")?.to_u64()? as u32,
        node,
        pool_from_json(v.expect_key("pool")?)?,
    )
    .map_err(|e| shape(e.to_string()))
}

fn cluster_from_json(v: &Json) -> Result<(String, ClusterSpec), JsonError> {
    let label = v.expect_key("label")?.to_str()?.to_string();
    Ok((label, cluster_shape_from_json(v)?))
}

fn order_from_json(v: &Json) -> Result<OrderPolicy, JsonError> {
    let (tag, data) = tagged(v)?;
    match tag {
        "fcfs" => Ok(OrderPolicy::Fcfs),
        "sjf" => Ok(OrderPolicy::Sjf),
        "largest-first" => Ok(OrderPolicy::LargestFirst),
        "edf" => Ok(OrderPolicy::Edf),
        "llf" => Ok(OrderPolicy::LeastLaxity),
        "wfp" => Ok(OrderPolicy::Wfp {
            exponent: payload(data, tag)?.expect_key("exponent")?.to_f64()?,
        }),
        "batch-budget" => Ok(OrderPolicy::BatchBudget {
            hold_s: payload(data, tag)?.expect_key("hold_s")?.to_f64()?,
        }),
        other => Err(shape(format!("unknown order policy {other:?}"))),
    }
}

fn backfill_from_json(v: &Json) -> Result<BackfillPolicy, JsonError> {
    match v.to_str()? {
        "none" => Ok(BackfillPolicy::None),
        "easy" => Ok(BackfillPolicy::Easy),
        "conservative" => Ok(BackfillPolicy::Conservative),
        other => Err(shape(format!("unknown backfill policy {other:?}"))),
    }
}

fn memory_from_json(v: &Json) -> Result<MemoryPolicy, JsonError> {
    let (tag, data) = tagged(v)?;
    match tag {
        "local-only" => Ok(MemoryPolicy::LocalOnly),
        "pool-ff" => Ok(MemoryPolicy::PoolFirstFit),
        "pool-bf" => Ok(MemoryPolicy::PoolBestFit),
        "slowdown-aware" => Ok(MemoryPolicy::SlowdownAware {
            max_dilation: payload(data, tag)?.expect_key("max_dilation")?.to_f64()?,
        }),
        "laxity-aware" => Ok(MemoryPolicy::LaxityAware {
            max_dilation: payload(data, tag)?.expect_key("max_dilation")?.to_f64()?,
        }),
        other => Err(shape(format!("unknown memory policy {other:?}"))),
    }
}

fn slowdown_from_json(v: &Json) -> Result<SlowdownModel, JsonError> {
    let (tag, data) = tagged(v)?;
    match tag {
        "none" => Ok(SlowdownModel::None),
        "linear" => Ok(SlowdownModel::Linear {
            penalty: payload(data, tag)?.expect_key("penalty")?.to_f64()?,
        }),
        "saturating" => {
            let p = payload(data, tag)?;
            Ok(SlowdownModel::Saturating {
                penalty: p.expect_key("penalty")?.to_f64()?,
                curvature: p.expect_key("curvature")?.to_f64()?,
            })
        }
        "contention" => {
            let p = payload(data, tag)?;
            Ok(SlowdownModel::Contention {
                penalty: p.expect_key("penalty")?.to_f64()?,
                gamma: p.expect_key("gamma")?.to_f64()?,
            })
        }
        other => Err(shape(format!("unknown slowdown model {other:?}"))),
    }
}

fn admission_from_json(v: &Json) -> Result<AdmissionPolicy, JsonError> {
    let name = v.to_str()?;
    AdmissionPolicy::from_name(name)
        .ok_or_else(|| shape(format!("unknown admission policy {name:?}")))
}

fn preempt_from_json(v: &Json) -> Result<PreemptPolicy, JsonError> {
    let (tag, data) = tagged(v)?;
    match tag {
        "never" => Ok(PreemptPolicy::Never),
        "laxity-checkpoint" => Ok(PreemptPolicy::LaxityCheckpoint {
            overhead_s: payload(data, tag)?.expect_key("overhead_s")?.to_u64()?,
        }),
        other => Err(shape(format!("unknown preempt policy {other:?}"))),
    }
}

fn scheduler_from_json(v: &Json) -> Result<SchedulerConfig, JsonError> {
    Ok(SchedulerConfig {
        order: order_from_json(v.expect_key("order")?)?,
        backfill: backfill_from_json(v.expect_key("backfill")?)?,
        memory: memory_from_json(v.expect_key("memory")?)?,
        slowdown: slowdown_from_json(v.expect_key("slowdown")?)?,
        inflate_walltime: v.expect_key("inflate_walltime")?.to_bool()?,
        // Absent in pre-admission documents: default.
        admission: match v.get("admission") {
            Some(a) => admission_from_json(a)?,
            None => AdmissionPolicy::AdmitAll,
        },
        preempt: match v.get("preempt") {
            Some(p) => preempt_from_json(p)?,
            None => PreemptPolicy::Never,
        },
    })
}

fn fault_action_from_json(v: &Json) -> Result<(SimTime, FaultAction), JsonError> {
    let at = SimTime::from_micros(v.expect_key("at_us")?.to_u64()?);
    let (tag, data) = tagged(v.expect_key("action")?)?;
    let node = |data: Option<&Json>| -> Result<NodeId, JsonError> {
        Ok(NodeId(
            payload(data, tag)?.expect_key("node")?.to_u64()? as u32
        ))
    };
    let action = match tag {
        "node-fail" => FaultAction::NodeFail(node(data)?),
        "node-repair" => FaultAction::NodeRepair(node(data)?),
        "drain-start" => FaultAction::DrainStart(node(data)?),
        "drain-end" => FaultAction::DrainEnd(node(data)?),
        "pool-degrade" => {
            let p = payload(data, tag)?;
            FaultAction::PoolDegrade {
                pool: PoolId(p.expect_key("pool")?.to_u64()? as u32),
                factor: p.expect_key("factor")?.to_f64()?,
            }
        }
        "pool-repair" => FaultAction::PoolRepair(PoolId(
            payload(data, tag)?.expect_key("pool")?.to_u64()? as u32,
        )),
        other => return Err(shape(format!("unknown fault action {other:?}"))),
    };
    Ok((at, action))
}

fn fault_generator_from_json(v: &Json) -> Result<FaultGenerator, JsonError> {
    Ok(FaultGenerator {
        seed: v.expect_key("seed")?.to_u64()?,
        horizon_s: v.expect_key("horizon_s")?.to_u64()?,
        node_mtbf_s: v.expect_key("node_mtbf_s")?.to_u64()?,
        node_repair_s: v.expect_key("node_repair_s")?.to_u64()?,
        drain_interval_s: v.expect_key("drain_interval_s")?.to_u64()?,
        drain_duration_s: v.expect_key("drain_duration_s")?.to_u64()?,
        pool_degrade_interval_s: v.expect_key("pool_degrade_interval_s")?.to_u64()?,
        pool_degrade_duration_s: v.expect_key("pool_degrade_duration_s")?.to_u64()?,
        pool_degrade_factor: v.expect_key("pool_degrade_factor")?.to_f64()?,
    })
}

fn fault_from_json(v: &Json) -> Result<FaultSpec, JsonError> {
    let interrupt = match tagged(v.expect_key("interrupt")?)? {
        ("resubmit", _) => InterruptPolicy::Resubmit,
        ("checkpoint", data) => InterruptPolicy::Checkpoint {
            overhead_s: payload(data, "checkpoint")?
                .expect_key("overhead_s")?
                .to_u64()?,
        },
        (other, _) => return Err(shape(format!("unknown interrupt policy {other:?}"))),
    };
    Ok(FaultSpec {
        schedule: v
            .expect_key("schedule")?
            .to_arr()?
            .iter()
            .map(fault_action_from_json)
            .collect::<Result<_, _>>()?,
        generator: match v.get("generator") {
            Some(g) => Some(fault_generator_from_json(g)?),
            None => None,
        },
        interrupt,
        max_resubmits: v.expect_key("max_resubmits")?.to_u64()? as u32,
    })
}

fn service_from_json(v: &Json) -> Result<ServiceSpec, JsonError> {
    let process = match tagged(v.expect_key("process")?)? {
        ("poisson", _) => ArrivalProcess::Poisson,
        ("daily", data) => ArrivalProcess::Daily {
            peak_to_trough: payload(data, "daily")?
                .expect_key("peak_to_trough")?
                .to_f64()?,
        },
        ("mmpp", data) => {
            let p = payload(data, "mmpp")?;
            ArrivalProcess::Mmpp {
                burst_ratio: p.expect_key("burst_ratio")?.to_f64()?,
                mean_dwell_secs: p.expect_key("mean_dwell_secs")?.to_f64()?,
            }
        }
        (other, _) => return Err(shape(format!("unknown arrival process {other:?}"))),
    };
    let load = match tagged(v.expect_key("load")?)? {
        ("rate", data) => ServiceLoad::Rate {
            mean_interarrival_secs: payload(data, "rate")?
                .expect_key("mean_interarrival_secs")?
                .to_f64()?,
        },
        ("utilization", data) => ServiceLoad::Utilization {
            target: payload(data, "utilization")?
                .expect_key("target")?
                .to_f64()?,
        },
        (other, _) => return Err(shape(format!("unknown service load control {other:?}"))),
    };
    let horizon = match v.get("horizon") {
        None => None,
        Some(h) => Some(match tagged(h)? {
            ("jobs", data) => Horizon::Jobs(payload(data, "jobs")?.to_u64()?),
            ("secs", data) => {
                Horizon::Duration(SimDuration::from_secs(payload(data, "secs")?.to_u64()?))
            }
            (other, _) => return Err(shape(format!("unknown horizon kind {other:?}"))),
        }),
    };
    Ok(ServiceSpec {
        preset: match v.get("preset") {
            Some(p) => Some(preset_from_name(p.to_str()?)?),
            None => None,
        },
        process,
        load,
        horizon,
        warmup_s: v.expect_key("warmup_s")?.to_u64()?,
        slo_wait_s: match v.get("slo_wait_s") {
            Some(s) => Some(s.to_f64()?),
            None => None,
        },
        slo_budget_factor: match v.get("slo_budget_factor") {
            Some(b) => Some((
                b.expect_key("min")?.to_f64()?,
                b.expect_key("max")?.to_f64()?,
            )),
            None => None,
        },
        seed: match v.get("seed") {
            Some(s) => Some(s.to_u64()?),
            None => None,
        },
    })
}

fn site_from_json(v: &Json) -> Result<SiteSpec, JsonError> {
    Ok(SiteSpec {
        label: v.expect_key("label")?.to_str()?.to_string(),
        cluster: match v.get("cluster") {
            Some(c) => Some(cluster_shape_from_json(c)?),
            None => None,
        },
        scheduler: match v.get("scheduler") {
            Some(s) => Some(scheduler_from_json(s)?),
            None => None,
        },
    })
}

fn fleet_from_json(v: &Json) -> Result<FleetSpec, JsonError> {
    let policy_name = v.expect_key("policy")?.to_str()?;
    Ok(FleetSpec {
        sites: v
            .expect_key("sites")?
            .to_arr()?
            .iter()
            .map(site_from_json)
            .collect::<Result<_, _>>()?,
        epoch_s: v.expect_key("epoch_s")?.to_f64()?,
        policy: MetaPolicyKind::parse(policy_name)
            .ok_or_else(|| shape(format!("unknown meta policy {policy_name:?}")))?,
    })
}

fn preset_from_name(name: &str) -> Result<SystemPreset, JsonError> {
    SystemPreset::ALL
        .into_iter()
        .find(|p| p.name() == name)
        .ok_or_else(|| shape(format!("unknown system preset {name:?}")))
}

pub(super) fn spec_from_json(text: &str) -> Result<ExperimentSpec, SimError> {
    let doc = parse(text)?;
    let inner = || -> Result<ExperimentSpec, JsonError> {
        let (tag, data) = tagged(doc.expect_key("workload")?)?;
        let workload = match tag {
            "preset" => {
                let p = payload(data, tag)?;
                WorkloadSource::Preset {
                    preset: preset_from_name(p.expect_key("system")?.to_str()?)?,
                    jobs: p.expect_key("jobs")?.to_usize()?,
                }
            }
            other => return Err(shape(format!("unknown workload source {other:?}"))),
        };
        Ok(ExperimentSpec {
            name: doc.expect_key("name")?.to_str()?.to_string(),
            workload,
            clusters: doc
                .expect_key("clusters")?
                .to_arr()?
                .iter()
                .map(cluster_from_json)
                .collect::<Result<_, _>>()?,
            loads: doc
                .expect_key("loads")?
                .to_arr()?
                .iter()
                .map(Json::to_f64)
                .collect::<Result<_, _>>()?,
            seeds: doc
                .expect_key("seeds")?
                .to_arr()?
                .iter()
                .map(Json::to_u64)
                .collect::<Result<_, _>>()?,
            schedulers: doc
                .expect_key("schedulers")?
                .to_arr()?
                .iter()
                .map(scheduler_from_json)
                .collect::<Result<_, _>>()?,
            // Absent in documents written before the fault axis existed:
            // those grids are fault-free, exactly what an empty axis means.
            faults: match doc.get("faults") {
                Some(f) => f
                    .to_arr()?
                    .iter()
                    .map(fault_from_json)
                    .collect::<Result<_, _>>()?,
                None => Vec::new(),
            },
            // Absent in documents written before service mode existed:
            // those grids are closed, exactly what an empty axis means.
            services: match doc.get("services") {
                Some(s) => s
                    .to_arr()?
                    .iter()
                    .map(service_from_json)
                    .collect::<Result<_, _>>()?,
                None => Vec::new(),
            },
            // Absent in documents written before federation existed:
            // those grids are single-cluster, exactly what an empty axis
            // means.
            fleets: match doc.get("fleets") {
                Some(f) => f
                    .to_arr()?
                    .iter()
                    .map(fleet_from_json)
                    .collect::<Result<_, _>>()?,
                None => Vec::new(),
            },
            enforce_walltime: doc.expect_key("enforce_walltime")?.to_bool()?,
            check_invariants: doc.expect_key("check_invariants")?.to_bool()?,
        })
    };
    inner().map_err(SimError::from)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::default_slowdown;
    use crate::ExperimentBuilder;

    fn full_spec() -> ExperimentSpec {
        ExperimentSpec::builder("round-trip")
            .preset(SystemPreset::MidCluster, 1500)
            .pools([
                PoolTopology::None,
                PoolTopology::PerRack {
                    mib_per_rack: 512 * 1024,
                },
                PoolTopology::Global { mib: 4096 * 1024 },
            ])
            .loads([0.7, 0.9, 1.1])
            .seeds([42, 43])
            .policy_suite(default_slowdown())
            .scheduler(
                dmhpc_sched::SchedulerBuilder::new()
                    .order(OrderPolicy::Wfp { exponent: 3.0 })
                    .backfill(BackfillPolicy::Conservative)
                    .memory(MemoryPolicy::SlowdownAware { max_dilation: 1.35 })
                    .slowdown(SlowdownModel::Contention {
                        penalty: 1.5,
                        gamma: 2.0,
                    })
                    .inflate_walltime(false)
                    .build(),
            )
            .fault(FaultSpec::none())
            .fault(
                FaultSpec::none()
                    .with_action(SimTime::from_secs(3600), FaultAction::NodeFail(NodeId(3)))
                    .with_action(SimTime::from_secs(7200), FaultAction::DrainStart(NodeId(5)))
                    .with_generator({
                        let mut g = FaultGenerator::quiet(9, 100_000);
                        g.node_mtbf_s = 20_000;
                        g.drain_interval_s = 40_000;
                        g
                    })
                    .with_interrupt(InterruptPolicy::Checkpoint { overhead_s: 120 })
                    .with_max_resubmits(3),
            )
            .build()
            .unwrap()
    }

    #[test]
    fn spec_round_trips_exactly() {
        let spec = full_spec();
        let json = spec.to_json().unwrap();
        let back = ExperimentSpec::from_json(&json).unwrap();
        assert_eq!(back.name, spec.name);
        assert_eq!(back.clusters, spec.clusters);
        assert_eq!(back.loads, spec.loads);
        assert_eq!(back.seeds, spec.seeds);
        assert_eq!(back.schedulers, spec.schedulers);
        assert_eq!(back.faults, spec.faults, "fault axis round-trips exactly");
        assert_eq!(
            back.services, spec.services,
            "service axis round-trips exactly"
        );
        assert_eq!(back.enforce_walltime, spec.enforce_walltime);
        assert_eq!(back.check_invariants, spec.check_invariants);
        match (&back.workload, &spec.workload) {
            (
                WorkloadSource::Preset {
                    preset: a,
                    jobs: ja,
                },
                WorkloadSource::Preset {
                    preset: b,
                    jobs: jb,
                },
            ) => {
                assert_eq!(a, b);
                assert_eq!(ja, jb);
            }
            _ => panic!("workload source changed shape"),
        }
        // And a second trip is byte-identical (canonical form).
        assert_eq!(back.to_json().unwrap(), json);
    }

    #[test]
    fn compiled_grids_agree_after_round_trip() {
        let spec = full_spec();
        let back = ExperimentSpec::from_json(&spec.to_json().unwrap()).unwrap();
        let a = spec.compile().unwrap();
        let b = back.compile().unwrap();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.key, y.key);
            assert_eq!(x.config, y.config);
        }
    }

    #[test]
    fn service_axis_round_trips_exactly() {
        let spec = ExperimentSpec::builder("svc-trip")
            .preset(SystemPreset::HighThroughput, 40)
            .pool(PoolTopology::None)
            .seed(5)
            .scheduler(dmhpc_sched::SchedulerBuilder::new().build())
            .service(ServiceSpec::none())
            .service(
                ServiceSpec::open(SystemPreset::HighThroughput)
                    .with_process(ArrivalProcess::Mmpp {
                        burst_ratio: 1.8,
                        mean_dwell_secs: 1800.0,
                    })
                    .with_rate(45.0)
                    .with_horizon_jobs(2000)
                    .with_warmup_secs(3600)
                    .with_slo_wait_secs(900.0),
            )
            .service(
                ServiceSpec::open(SystemPreset::MidCluster)
                    .with_utilization(0.9)
                    .with_horizon_secs(86_400)
                    .with_seed(11),
            )
            .build()
            .unwrap();
        let json = spec.to_json().unwrap();
        let back = ExperimentSpec::from_json(&json).unwrap();
        assert_eq!(back.services, spec.services);
        assert_eq!(back.to_json().unwrap(), json, "canonical form is stable");
        // And the compiled grids (with resolved stream seeds) agree.
        let a = spec.compile().unwrap();
        let b = back.compile().unwrap();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.key, y.key);
            assert_eq!(x.service, y.service);
        }
    }

    #[test]
    fn fleet_axis_round_trips_exactly() {
        let big = ClusterSpec::new(4, 16, NodeSpec::new(16, 256 * 1024), PoolTopology::None);
        let spec = ExperimentSpec::builder("fleet-trip")
            .preset(SystemPreset::HighThroughput, 40)
            .pool(PoolTopology::None)
            .seed(5)
            .scheduler(dmhpc_sched::SchedulerBuilder::new().build())
            .fleet(FleetSpec::none())
            .fleet(FleetSpec::symmetric(
                3,
                300.0,
                MetaPolicyKind::LeastMemoryPressure,
            ))
            .fleet(
                FleetSpec {
                    sites: Vec::new(),
                    epoch_s: 120.0,
                    policy: MetaPolicyKind::RoundRobin,
                }
                .with_site("plain", None, None)
                .with_site(
                    "big",
                    Some(big),
                    Some(
                        dmhpc_sched::SchedulerBuilder::new()
                            .memory(MemoryPolicy::PoolBestFit)
                            .build(),
                    ),
                ),
            )
            .build()
            .unwrap();
        let json = spec.to_json().unwrap();
        let back = ExperimentSpec::from_json(&json).unwrap();
        assert_eq!(back.fleets, spec.fleets, "fleet axis round-trips exactly");
        assert_eq!(back.to_json().unwrap(), json, "canonical form is stable");
        let a = spec.compile().unwrap();
        let b = back.compile().unwrap();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.key, y.key);
            assert_eq!(x.fleet, y.fleet);
        }
    }

    #[test]
    fn pre_fleet_documents_parse_as_single_cluster() {
        // Documents written before federation have no "fleets" key; they
        // must keep parsing (as single-cluster grids).
        let old = r#"{
            "name": "legacy",
            "workload": {"preset": {"system": "htc-128", "jobs": 10}},
            "clusters": [{
                "label": "c0", "racks": 1, "nodes_per_rack": 4,
                "cores": 8, "node_mem_mib": 65536, "pool": "none"
            }],
            "loads": [],
            "seeds": [1],
            "schedulers": [{
                "order": "fcfs", "backfill": "easy", "memory": "local-only",
                "slowdown": "none", "inflate_walltime": true
            }],
            "enforce_walltime": true,
            "check_invariants": false
        }"#;
        let spec = ExperimentSpec::from_json(old).unwrap();
        assert!(spec.fleets.is_empty());
        assert_eq!(spec.compile().unwrap()[0].key.fleet, None);
    }

    #[test]
    fn fixed_traces_refuse_to_serialize() {
        let w = dmhpc_workload::Workload::from_jobs(vec![dmhpc_workload::JobBuilder::new(1)
            .nodes(1)
            .runtime_secs(5, 10)
            .mem_per_node(64)
            .build()]);
        let spec = ExperimentSpec::builder("trace")
            .fixed_workload(w)
            .cluster(
                "c",
                ClusterSpec::new(1, 2, NodeSpec::new(2, 1024), PoolTopology::None),
            )
            .scheduler(dmhpc_sched::SchedulerBuilder::new().build())
            .build()
            .unwrap();
        assert!(matches!(spec.to_json(), Err(SimError::Parse { .. })));
    }

    #[test]
    fn pool_fault_actions_round_trip_on_pool_grids() {
        let spec = ExperimentSpec::builder("pool-faults")
            .preset(SystemPreset::MidCluster, 50)
            .pool(PoolTopology::PerRack {
                mib_per_rack: 512 * 1024,
            })
            .seed(1)
            .scheduler(dmhpc_sched::SchedulerBuilder::new().build())
            .fault(
                FaultSpec::none()
                    .with_action(
                        SimTime::from_secs(100),
                        FaultAction::PoolDegrade {
                            pool: PoolId(0),
                            factor: 0.25,
                        },
                    )
                    .with_action(SimTime::from_secs(500), FaultAction::PoolRepair(PoolId(0))),
            )
            .build()
            .unwrap();
        let back = ExperimentSpec::from_json(&spec.to_json().unwrap()).unwrap();
        assert_eq!(back.faults, spec.faults);
        // A no-pool cluster with a pool fault is rejected up front.
        let err = ExperimentBuilder::from_spec(spec)
            .pool(PoolTopology::None)
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("pool domain"), "{err}");
    }

    #[test]
    fn pre_fault_documents_parse_as_fault_free() {
        // Specs written before the fault axis existed have no "faults"
        // key; they must keep parsing (as fault-free grids).
        let old = r#"{
            "name": "legacy",
            "workload": {"preset": {"system": "htc-128", "jobs": 10}},
            "clusters": [{
                "label": "c0", "racks": 1, "nodes_per_rack": 4,
                "cores": 8, "node_mem_mib": 65536, "pool": "none"
            }],
            "loads": [],
            "seeds": [1],
            "schedulers": [{
                "order": "fcfs", "backfill": "easy", "memory": "local-only",
                "slowdown": "none", "inflate_walltime": true
            }],
            "enforce_walltime": true,
            "check_invariants": false
        }"#;
        let spec = ExperimentSpec::from_json(old).unwrap();
        assert!(spec.faults.is_empty());
        assert_eq!(spec.compile().unwrap()[0].key.fault, None);
    }

    #[test]
    fn malformed_documents_are_typed_errors() {
        for text in [
            "not json",
            r#"{"name": "x"}"#,
            r#"{"name": "x", "workload": {"preset": {"system": "who", "jobs": 5}},
                "clusters": [], "loads": [], "seeds": [1], "schedulers": [],
                "enforce_walltime": true, "check_invariants": false}"#,
        ] {
            let err = ExperimentSpec::from_json(text).unwrap_err();
            assert!(
                matches!(err, SimError::Parse { .. } | SimError::Spec { .. }),
                "{err}"
            );
        }
    }
}
