//! Grid execution.

use super::cache::{self, ResultCache};
use super::results::{CellResult, ExperimentResults, RunStats};
use super::shard::Shard;
use super::{ExperimentSpec, RunSpec, WorkloadSource};
use crate::engine::{ObserverSet, Simulation};
use crate::error::SimError;
use crate::federation::FleetSimulation;
use crate::observe::{Observer, ObserverFactory, RunLabel, TraceDir};
use crate::sweep::run_parallel;
use dmhpc_workload::{transform, Workload};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::Arc;

/// Executes every cell of an [`ExperimentSpec`] and returns the labelled
/// result table.
///
/// Workloads are materialized once per distinct `(seed, load, node-count)`
/// combination and shared across cells, then the cells fan out over the
/// [`run_parallel`] worker pool. Results come back in grid order no matter
/// how many threads run, and each cell's simulation is a pure function of
/// its cell config and workload — so the whole experiment is deterministic
/// (the 1-thread and N-thread runs produce identical per-cell trace
/// hashes; tested).
///
/// Two scaling levers compose with that determinism:
///
/// * **Result caching** ([`ExperimentRunner::cache_dir`]): each cell is
///   content-addressed by a stable hash of everything that determines its
///   result; cached cells are loaded instead of simulated, bit-identically.
///   Re-running an edited spec therefore re-executes only the cells whose
///   hash changed — incremental re-runs for free.
/// * **Sharding** ([`ExperimentRunner::run_shard`]): N processes each run
///   a disjoint slice of the grid; [`ExperimentResults::merge`] (or a warm
///   cached run over the full spec) recombines them.
#[derive(Clone, Default)]
pub struct ExperimentRunner {
    threads: usize,
    cache: Option<ResultCache>,
    event_queue: Option<crate::EventQueueKind>,
    /// Per-cell observer factories (see [`ExperimentRunner::observe`]).
    observers: Vec<Arc<dyn ObserverFactory>>,
}

impl std::fmt::Debug for ExperimentRunner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExperimentRunner")
            .field("threads", &self.threads)
            .field("cache", &self.cache)
            .field("event_queue", &self.event_queue)
            .field("observers", &self.observers.len())
            .finish()
    }
}

/// Workload-cache key: `(seed, load bits, cluster node count)`. Loads are
/// keyed by bit pattern — exact float identity is what the grid axes mean.
type WorkloadKey = (Option<u64>, Option<u64>, u32);

impl ExperimentRunner {
    /// A runner using one worker per available core.
    pub fn new() -> Self {
        Self::default()
    }

    /// A runner with an explicit worker count (`0` = one per core, `1` =
    /// serial).
    pub fn with_threads(threads: usize) -> Self {
        ExperimentRunner {
            threads,
            ..Self::default()
        }
    }

    /// Override every simulated cell's pending-event-set backend (an
    /// execution knob like `threads`: results — and therefore cell hashes
    /// and cache entries — are identical on either backend, so this never
    /// invalidates a cache).
    pub fn event_queue(mut self, kind: crate::EventQueueKind) -> Self {
        self.event_queue = Some(kind);
        self
    }

    /// Attach a content-addressed result cache rooted at `dir` (created if
    /// missing). Subsequent runs load unchanged cells from the cache and
    /// store every freshly simulated cell.
    pub fn cache_dir(self, dir: impl Into<PathBuf>) -> Result<Self, SimError> {
        Ok(self.cache(ResultCache::open(dir)?))
    }

    /// Attach an already opened [`ResultCache`].
    pub fn cache(mut self, cache: ResultCache) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Attach a per-cell observer factory: every *simulated* cell creates
    /// one fresh observer (named by `spec.name` + cell label) and feeds it
    /// the cell's event stream. Hash-neutral — observers never change a
    /// cell's result, its hash, or its cache entry — and cells served
    /// from the cache are not re-simulated, so they produce no
    /// observations (run without `cache_dir`, or with a cold cache, to
    /// observe every cell).
    pub fn observe(mut self, factory: Arc<dyn ObserverFactory>) -> Self {
        self.observers.push(factory);
        self
    }

    /// Convenience for the common factory: stream every simulated cell's
    /// event trace to `dir/<spec>.<cell>.jsonl` (constant memory per
    /// cell; see [`crate::TraceSink`]).
    pub fn trace_dir(self, dir: impl Into<PathBuf>) -> Result<Self, SimError> {
        Ok(self.observe(Arc::new(TraceDir::new(dir)?)))
    }

    fn workload_key(cell: &RunSpec) -> WorkloadKey {
        // Fleet cells scale offered load against the whole fleet's
        // capacity (with unpinned sites resolved to the cell's cluster),
        // so `load 0.8` means the same relative pressure federated or not.
        let nodes = if cell.fleet.is_none() {
            cell.config.cluster.total_nodes()
        } else {
            cell.fleet.total_nodes(&cell.config.cluster)
        };
        (cell.key.seed, cell.key.load.map(f64::to_bits), nodes)
    }

    /// Materialize the workload for one cache key.
    fn materialize(
        source: &WorkloadSource,
        seed: Option<u64>,
        load: Option<f64>,
        nodes: u32,
    ) -> Arc<Workload> {
        let base = match source {
            WorkloadSource::Preset { preset, jobs } => {
                // lint: allow(panic) — compile() stamps a seed on every preset cell
                let seed = seed.expect("preset cells carry a seed");
                Arc::new(preset.synthetic_spec(*jobs).generate(seed))
            }
            WorkloadSource::Fixed(w) => Arc::clone(w),
        };
        match load {
            None => match source {
                // Generated workloads are shifted to t=0 even unscaled, so
                // native-load and rescaled cells share a time origin.
                WorkloadSource::Preset { .. } => Arc::new(transform::shift_to_origin(&base)),
                WorkloadSource::Fixed(_) => base,
            },
            Some(load) => {
                let scaled = transform::rescale_load(&base, nodes, load);
                Arc::new(transform::shift_to_origin(&scaled))
            }
        }
    }

    /// Run the whole grid. Grid validation is the only fallible step of
    /// execution itself; with a cache attached, store failures (disk
    /// full, permissions) also surface here.
    pub fn run(&self, spec: &ExperimentSpec) -> Result<ExperimentResults, SimError> {
        let cells = spec.compile()?;
        self.execute(spec, cells)
    }

    /// Run one shard of the grid (see [`Shard`]); the partial results are
    /// in grid order and recombine via [`ExperimentResults::merge`].
    pub fn run_shard(
        &self,
        spec: &ExperimentSpec,
        shard: Shard,
    ) -> Result<ExperimentResults, SimError> {
        let cells = spec.shard(shard)?;
        self.execute(spec, cells)
    }

    fn execute(
        &self,
        spec: &ExperimentSpec,
        cells: Vec<RunSpec>,
    ) -> Result<ExperimentResults, SimError> {
        // Probe the cache first: hits skip both workload materialization
        // and simulation.
        let digest = self
            .cache
            .as_ref()
            .map(|_| cache::workload_digest(&spec.workload));
        let mut slots: Vec<Option<CellResult>> = (0..cells.len()).map(|_| None).collect();
        let mut pending: Vec<(usize, RunSpec, Option<u64>)> = Vec::new();
        for (i, cell) in cells.into_iter().enumerate() {
            if let (Some(cache), Some(digest)) = (&self.cache, digest) {
                let hash = cache::cell_hash(digest, &cell);
                if let Some(output) = cache.load_cell(hash, &cell) {
                    slots[i] = Some(CellResult {
                        key: cell.key,
                        config: cell.config,
                        output,
                    });
                    continue;
                }
                pending.push((i, cell, Some(hash)));
            } else {
                pending.push((i, cell, None));
            }
        }
        let cache_hits = slots.iter().filter(|s| s.is_some()).count();
        let simulated = pending.len();

        // Materialize each distinct workload once, serially: generation is
        // cheap next to simulation and sharing maximizes cache reuse.
        // Service cells stream their jobs from the scenario instead, so
        // they share one empty placeholder workload.
        let empty = Arc::new(Workload::from_jobs(Vec::new()));
        let mut workloads: BTreeMap<WorkloadKey, Arc<Workload>> = BTreeMap::new();
        for (_, cell, _) in &pending {
            if !cell.service.is_none() {
                continue;
            }
            let key = Self::workload_key(cell);
            workloads.entry(key).or_insert_with(|| {
                Self::materialize(&spec.workload, cell.key.seed, cell.key.load, key.2)
            });
        }

        let outputs = run_parallel(pending, self.threads, |(i, cell, hash)| {
            let workload = if cell.service.is_none() {
                &workloads[&Self::workload_key(cell)]
            } else {
                &empty
            };
            let mut config = cell.config;
            if let Some(kind) = self.event_queue {
                config.event_queue = kind;
            }
            // Fleet cells run the federation engine serially (the grid
            // already parallelizes across cells) and report the
            // fleet-level aggregate. They are observation-free: per-site
            // event streams have no single-run identity to attach
            // observers to yet. compile() validated every cell config and
            // fault/service scenario, so construction errors here are
            // bugs — but they ride the per-cell error channel rather than
            // panicking a worker thread.
            if !cell.fleet.is_none() {
                let result = FleetSimulation::new(&cell.fleet, config)
                    .map(|fleet| fleet.run(workload).aggregate);
                return (*i, cell.clone(), *hash, result);
            }
            let result = Simulation::new(config)
                .and_then(|s| s.with_fault_spec(cell.faults.clone()))
                .and_then(|s| s.with_service_spec(cell.service.clone()))
                .and_then(|sim| {
                    // Observers are created in the worker, right before
                    // the cell runs, so open sinks (trace files, fds,
                    // buffers) are bounded by the thread count, not the
                    // grid size. Factory failures ride the same per-cell
                    // channel as deferred sink failures.
                    let run = RunLabel::new(format!("{}.{}", spec.name, cell.key.label()));
                    let mut obs: Vec<Box<dyn Observer>> = self
                        .observers
                        .iter()
                        .map(|f| f.make(&run))
                        .collect::<Result<_, SimError>>()?;
                    let output =
                        sim.try_run_with(workload, ObserverSet::new().watch_boxed(&mut obs))?;
                    match obs.iter().find_map(|o| o.failure()) {
                        Some(e) => Err(e),
                        None => Ok(output),
                    }
                });
            (*i, cell.clone(), *hash, result)
        });

        for (i, cell, hash, result) in outputs {
            let output = result?;
            if let (Some(cache), Some(hash)) = (&self.cache, hash) {
                cache.store_cell(hash, &output)?;
            }
            slots[i] = Some(CellResult {
                key: cell.key,
                config: cell.config,
                output,
            });
        }

        Ok(ExperimentResults::with_stats(
            spec.name.clone(),
            slots
                .into_iter()
                // lint: allow(panic) — the result loop above filled every slot or returned the error
                .map(|slot| slot.expect("every grid slot filled"))
                .collect(),
            RunStats {
                simulated,
                cache_hits,
            },
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::{default_slowdown, policy_suite};
    use crate::ExperimentSpec;
    use dmhpc_platform::PoolTopology;
    use dmhpc_workload::SystemPreset;

    fn small_spec() -> ExperimentSpec {
        ExperimentSpec::builder("runner-test")
            .preset(SystemPreset::HighThroughput, 60)
            .pools([
                PoolTopology::None,
                PoolTopology::PerRack {
                    mib_per_rack: 384 * 1024,
                },
            ])
            .load(0.8)
            .seed(9)
            .schedulers(policy_suite(default_slowdown()))
            .build()
            .unwrap()
    }

    #[test]
    fn runs_whole_grid_in_order() {
        let spec = small_spec();
        let results = ExperimentRunner::with_threads(2).run(&spec).unwrap();
        assert_eq!(results.len(), spec.cell_count());
        assert_eq!(results.stats().simulated, spec.cell_count());
        assert_eq!(results.stats().cache_hits, 0);
        let compiled = spec.compile().unwrap();
        for (cell, result) in compiled.iter().zip(results.cells()) {
            assert_eq!(cell.key, result.key, "grid order preserved");
            let r = &result.output.report;
            assert_eq!(r.completed + r.killed + r.rejected, 60);
        }
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let spec = small_spec();
        let serial = ExperimentRunner::with_threads(1).run(&spec).unwrap();
        let parallel = ExperimentRunner::with_threads(4).run(&spec).unwrap();
        for (a, b) in serial.cells().iter().zip(parallel.cells()) {
            assert_eq!(a.key, b.key);
            assert_eq!(
                a.output.trace_hash,
                b.output.trace_hash,
                "{}",
                a.key.label()
            );
            assert_eq!(a.output.report.mean_wait_s, b.output.report.mean_wait_s);
        }
    }

    #[test]
    fn event_queue_backend_does_not_change_results() {
        let spec = small_spec();
        let heap = ExperimentRunner::with_threads(2).run(&spec).unwrap();
        let calendar = ExperimentRunner::with_threads(2)
            .event_queue(crate::EventQueueKind::Calendar)
            .run(&spec)
            .unwrap();
        for (a, b) in heap.cells().iter().zip(calendar.cells()) {
            assert_eq!(a.key, b.key);
            assert_eq!(
                a.output.trace_hash,
                b.output.trace_hash,
                "{}",
                a.key.label()
            );
            assert_eq!(a.output.passes, b.output.passes);
        }
    }

    #[test]
    fn workloads_are_shared_across_policies() {
        // All four policies on one (cluster, load, seed) point must see the
        // same jobs: equal totals.
        let spec = small_spec();
        let results = ExperimentRunner::new().run(&spec).unwrap();
        let totals: Vec<usize> = results
            .cells()
            .iter()
            .map(|c| c.output.records.len())
            .collect();
        assert!(totals.iter().all(|&t| t == totals[0]));
    }

    #[test]
    fn service_cells_stream_and_stay_deterministic() {
        let spec = ExperimentSpec::builder("svc-runner")
            .preset(SystemPreset::HighThroughput, 10)
            .pool(PoolTopology::None)
            .seeds([1, 2])
            .scheduler(dmhpc_sched::SchedulerBuilder::new().build())
            .service(
                crate::service::ServiceSpec::open(SystemPreset::HighThroughput)
                    .with_utilization(0.7)
                    .with_horizon_jobs(300),
            )
            .build()
            .unwrap();
        let serial = ExperimentRunner::with_threads(1).run(&spec).unwrap();
        let parallel = ExperimentRunner::with_threads(4).run(&spec).unwrap();
        for (a, b) in serial.cells().iter().zip(parallel.cells()) {
            assert_eq!(a.key, b.key);
            assert_eq!(
                a.output.trace_hash,
                b.output.trace_hash,
                "{}",
                a.key.label()
            );
            let svc = a.output.service.expect("service cells carry a summary");
            assert!(svc.observed > 0);
            assert!(
                a.output.records.is_empty(),
                "service mode keeps no per-job records"
            );
        }
        // Distinct seed-axis points stream distinct jobs.
        assert_ne!(
            serial.cells()[0].output.trace_hash,
            serial.cells()[1].output.trace_hash
        );
    }

    #[test]
    fn fleet_cells_run_federated_and_stay_deterministic() {
        use crate::federation::FleetSpec;
        let spec = ExperimentSpec::builder("fleet-runner")
            .preset(SystemPreset::HighThroughput, 40)
            .pool(PoolTopology::None)
            .load(0.8)
            .seed(5)
            .scheduler(dmhpc_sched::SchedulerBuilder::new().build())
            .fleet(FleetSpec::none())
            .fleet(FleetSpec::symmetric(
                2,
                300.0,
                dmhpc_sched::MetaPolicyKind::RoundRobin,
            ))
            .build()
            .unwrap();
        let serial = ExperimentRunner::with_threads(1).run(&spec).unwrap();
        let parallel = ExperimentRunner::with_threads(4).run(&spec).unwrap();
        assert_eq!(serial.len(), 2);
        for (a, b) in serial.cells().iter().zip(parallel.cells()) {
            assert_eq!(a.key, b.key);
            assert_eq!(
                a.output.trace_hash,
                b.output.trace_hash,
                "{}",
                a.key.label()
            );
        }
        let fleet_cell = &serial.cells()[1];
        assert!(fleet_cell.key.fleet.is_some());
        assert_eq!(
            fleet_cell.output.records.len(),
            40,
            "fleet aggregate merges every site's records"
        );
        // The fleet cell's workload is rescaled against twice the
        // capacity, so it is a genuinely different run.
        assert_ne!(
            serial.cells()[0].output.trace_hash,
            fleet_cell.output.trace_hash
        );
    }

    #[test]
    fn fleet_cells_round_trip_through_the_cache() {
        use crate::federation::FleetSpec;
        let dir =
            std::env::temp_dir().join(format!("dmhpc-fleet-runner-cache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let spec = ExperimentSpec::builder("fleet-cache")
            .preset(SystemPreset::HighThroughput, 30)
            .pool(PoolTopology::None)
            .seed(3)
            .scheduler(dmhpc_sched::SchedulerBuilder::new().build())
            .fleet(FleetSpec::symmetric(
                2,
                120.0,
                dmhpc_sched::MetaPolicyKind::LeastQueueDepth,
            ))
            .build()
            .unwrap();
        let cold = ExperimentRunner::with_threads(1)
            .cache_dir(&dir)
            .unwrap()
            .run(&spec)
            .unwrap();
        assert_eq!(cold.stats().simulated, 1);
        let warm = ExperimentRunner::with_threads(1)
            .cache_dir(&dir)
            .unwrap()
            .run(&spec)
            .unwrap();
        assert_eq!(warm.stats().cache_hits, 1, "fleet cells replay from cache");
        assert_eq!(warm.to_csv(), cold.to_csv(), "CSV byte-identical");
        assert_eq!(
            warm.cells()[0].output.trace_hash,
            cold.cells()[0].output.trace_hash
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shard_runs_are_slices_of_the_full_run() {
        let spec = small_spec();
        let runner = ExperimentRunner::with_threads(2);
        let full = runner.run(&spec).unwrap();
        let shard = runner.run_shard(&spec, Shard::new(1, 3).unwrap()).unwrap();
        assert!(shard.len() < full.len());
        for cell in shard.cells() {
            let twin = full
                .cells()
                .iter()
                .find(|c| c.key == cell.key)
                .expect("shard cell exists in full grid");
            assert_eq!(cell.output.trace_hash, twin.output.trace_hash);
        }
    }
}
