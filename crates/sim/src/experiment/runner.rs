//! Grid execution.

use super::results::{CellResult, ExperimentResults};
use super::{ExperimentSpec, RunSpec, WorkloadSource};
use crate::engine::Simulation;
use crate::error::SimError;
use crate::sweep::run_parallel;
use dmhpc_workload::{transform, Workload};
use std::collections::HashMap;
use std::sync::Arc;

/// Executes every cell of an [`ExperimentSpec`] and returns the labelled
/// result table.
///
/// Workloads are materialized once per distinct `(seed, load, node-count)`
/// combination and shared across cells, then the cells fan out over the
/// [`run_parallel`] worker pool. Results come back in grid order no matter
/// how many threads run, and each cell's simulation is a pure function of
/// its cell config and workload — so the whole experiment is deterministic
/// (the 1-thread and N-thread runs produce identical per-cell trace
/// hashes; tested).
#[derive(Debug, Clone, Default)]
pub struct ExperimentRunner {
    threads: usize,
}

/// Workload-cache key: `(seed, load bits, cluster node count)`. Loads are
/// keyed by bit pattern — exact float identity is what the grid axes mean.
type WorkloadKey = (Option<u64>, Option<u64>, u32);

impl ExperimentRunner {
    /// A runner using one worker per available core.
    pub fn new() -> Self {
        ExperimentRunner { threads: 0 }
    }

    /// A runner with an explicit worker count (`0` = one per core, `1` =
    /// serial).
    pub fn with_threads(threads: usize) -> Self {
        ExperimentRunner { threads }
    }

    fn workload_key(cell: &RunSpec) -> WorkloadKey {
        (
            cell.key.seed,
            cell.key.load.map(f64::to_bits),
            cell.config.cluster.total_nodes(),
        )
    }

    /// Materialize the workload for one cache key.
    fn materialize(
        source: &WorkloadSource,
        seed: Option<u64>,
        load: Option<f64>,
        nodes: u32,
    ) -> Arc<Workload> {
        let base = match source {
            WorkloadSource::Preset { preset, jobs } => {
                let seed = seed.expect("preset cells carry a seed");
                Arc::new(preset.synthetic_spec(*jobs).generate(seed))
            }
            WorkloadSource::Fixed(w) => Arc::clone(w),
        };
        match load {
            None => match source {
                // Generated workloads are shifted to t=0 even unscaled, so
                // native-load and rescaled cells share a time origin.
                WorkloadSource::Preset { .. } => Arc::new(transform::shift_to_origin(&base)),
                WorkloadSource::Fixed(_) => base,
            },
            Some(load) => {
                let scaled = transform::rescale_load(&base, nodes, load);
                Arc::new(transform::shift_to_origin(&scaled))
            }
        }
    }

    /// Run the whole grid. Every fallible check happened in
    /// [`ExperimentSpec::compile`], so execution itself cannot fail — the
    /// `Result` covers grid validation only.
    pub fn run(&self, spec: &ExperimentSpec) -> Result<ExperimentResults, SimError> {
        let cells = spec.compile()?;

        // Materialize each distinct workload once, serially: generation is
        // cheap next to simulation and sharing maximizes cache reuse.
        let mut workloads: HashMap<WorkloadKey, Arc<Workload>> = HashMap::new();
        for cell in &cells {
            let key = Self::workload_key(cell);
            workloads.entry(key).or_insert_with(|| {
                Self::materialize(&spec.workload, cell.key.seed, cell.key.load, key.2)
            });
        }

        let outputs = run_parallel(cells, self.threads, |cell| {
            let workload = &workloads[&Self::workload_key(cell)];
            // compile() validated every cell config.
            let sim = Simulation::new(cell.config).expect("cell config validated by compile()");
            (cell.clone(), sim.run(workload))
        });

        Ok(ExperimentResults::new(
            spec.name.clone(),
            outputs
                .into_iter()
                .map(|(cell, output)| CellResult {
                    key: cell.key,
                    config: cell.config,
                    output,
                })
                .collect(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::{default_slowdown, policy_suite};
    use crate::ExperimentSpec;
    use dmhpc_platform::PoolTopology;
    use dmhpc_workload::SystemPreset;

    fn small_spec() -> ExperimentSpec {
        ExperimentSpec::builder("runner-test")
            .preset(SystemPreset::HighThroughput, 60)
            .pools([
                PoolTopology::None,
                PoolTopology::PerRack {
                    mib_per_rack: 384 * 1024,
                },
            ])
            .load(0.8)
            .seed(9)
            .schedulers(policy_suite(default_slowdown()))
            .build()
            .unwrap()
    }

    #[test]
    fn runs_whole_grid_in_order() {
        let spec = small_spec();
        let results = ExperimentRunner::with_threads(2).run(&spec).unwrap();
        assert_eq!(results.len(), spec.cell_count());
        let compiled = spec.compile().unwrap();
        for (cell, result) in compiled.iter().zip(results.cells()) {
            assert_eq!(cell.key, result.key, "grid order preserved");
            let r = &result.output.report;
            assert_eq!(r.completed + r.killed + r.rejected, 60);
        }
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let spec = small_spec();
        let serial = ExperimentRunner::with_threads(1).run(&spec).unwrap();
        let parallel = ExperimentRunner::with_threads(4).run(&spec).unwrap();
        for (a, b) in serial.cells().iter().zip(parallel.cells()) {
            assert_eq!(a.key, b.key);
            assert_eq!(
                a.output.trace_hash,
                b.output.trace_hash,
                "{}",
                a.key.label()
            );
            assert_eq!(a.output.report.mean_wait_s, b.output.report.mean_wait_s);
        }
    }

    #[test]
    fn workloads_are_shared_across_policies() {
        // All four policies on one (cluster, load, seed) point must see the
        // same jobs: equal totals.
        let spec = small_spec();
        let results = ExperimentRunner::new().run(&spec).unwrap();
        let totals: Vec<usize> = results
            .cells()
            .iter()
            .map(|c| c.output.records.len())
            .collect();
        assert!(totals.iter().all(|&t| t == totals[0]));
    }
}
