//! The labelled result table an experiment produces.

use super::CellKey;
use crate::config::SimConfig;
use crate::engine::SimOutput;
use dmhpc_metrics::export;
use dmhpc_metrics::json::Json;
use dmhpc_metrics::SimReport;

/// One executed grid cell: its coordinates, the exact configuration that
/// ran, and everything the simulation produced.
#[derive(Debug, Clone)]
pub struct CellResult {
    /// Where this cell sits in the grid.
    pub key: CellKey,
    /// The configuration that ran.
    pub config: SimConfig,
    /// Full simulation output (report, records, series, trace hash).
    pub output: SimOutput,
}

impl CellResult {
    /// This cell's SLO attainment, when it has a service objective:
    ///
    /// * open service cells report the sketch-measured fraction of jobs
    ///   whose wait met the run's wait target;
    /// * closed batch cells derive it from per-job records — the fraction
    ///   of [`dmhpc_workload::Slo`]-stamped jobs that started by their
    ///   deadline.
    ///
    /// Never-started stamped jobs — admission rejections, terminal
    /// failures, jobs still mid-resubmission at drain — count as misses,
    /// not as unmeasured: an admission policy must not be able to raise
    /// its attainment by rejecting the jobs it would have missed. (A
    /// fault-resubmitted job that *did* start is judged by its final
    /// attempt's start, the one its record carries.) This is the
    /// `r.start.is_some_and(..)` below, pinned by
    /// `never_started_stamped_jobs_count_as_misses`.
    ///
    /// `None` when nothing in the cell carries a deadline, so SLO-free
    /// grids report exactly what they did before deadlines existed.
    pub fn slo_attainment(&self) -> Option<f64> {
        if let Some(svc) = &self.output.service {
            return svc.slo_attained;
        }
        let mut met = 0u64;
        let mut total = 0u64;
        for r in &self.output.records {
            let Some(slo) = r.job.slo else { continue };
            let deadline = slo.deadline_for(r.job.arrival, r.job.walltime);
            total += 1;
            if r.start.is_some_and(|s| s <= deadline) {
                met += 1;
            }
        }
        (total > 0).then(|| met as f64 / total as f64)
    }
}

/// How a result table was produced: how many cells were simulated versus
/// loaded from a [`super::ResultCache`]. A warm re-run of an unchanged
/// spec reports `simulated == 0` — the property the CI grid smoke
/// asserts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Cells executed by the simulator this run.
    pub simulated: usize,
    /// Cells loaded from the result cache.
    pub cache_hits: usize,
}

/// Results for a whole experiment, in grid order.
#[derive(Debug, Clone)]
pub struct ExperimentResults {
    /// The experiment's name (from the spec).
    pub name: String,
    cells: Vec<CellResult>,
    stats: RunStats,
}

impl ExperimentResults {
    pub(super) fn with_stats(name: String, cells: Vec<CellResult>, stats: RunStats) -> Self {
        ExperimentResults { name, cells, stats }
    }

    /// Simulated-vs-cached provenance of this table.
    pub fn stats(&self) -> RunStats {
        self.stats
    }

    /// Consume the table into its cells (grid order), e.g. for merging.
    pub fn into_cells(self) -> Vec<CellResult> {
        self.cells
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the grid was empty.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// All cells, in grid order (clusters outermost, schedulers innermost).
    pub fn cells(&self) -> &[CellResult] {
        &self.cells
    }

    /// Cells whose key satisfies `pred`, in grid order.
    pub fn select(&self, pred: impl Fn(&CellKey) -> bool) -> Vec<&CellResult> {
        self.cells.iter().filter(|c| pred(&c.key)).collect()
    }

    /// The first cell at these coordinates, if any (grids with a fault
    /// axis have one cell per scenario at each point — use
    /// [`select`](ExperimentResults::select) with `key.fault` to pick
    /// among them).
    pub fn get(
        &self,
        cluster: &str,
        load: Option<f64>,
        seed: Option<u64>,
        scheduler: &str,
    ) -> Option<&CellResult> {
        self.cells.iter().find(|c| {
            c.key.cluster == cluster
                && c.key.load == load
                && c.key.seed == seed
                && c.key.scheduler == scheduler
        })
    }

    /// Per-cell reports, relabelled with the full cell label
    /// (`cluster|load|seed|scheduler`) so rows stay distinguishable in
    /// flat tables.
    pub fn reports(&self) -> Vec<SimReport> {
        self.cells
            .iter()
            .map(|c| {
                let mut r = c.output.report.clone();
                r.label = c.key.label();
                r
            })
            .collect()
    }

    /// CSV document: one row per cell, grid axes as leading columns, then
    /// the full report column set from
    /// [`dmhpc_metrics::export::REPORT_CSV_HEADER`].
    pub fn to_csv(&self) -> String {
        let mut out = String::with_capacity(256 * (self.cells.len() + 1));
        out.push_str("experiment,cluster,load,seed,fault,service,fleet,");
        out.push_str(export::REPORT_CSV_HEADER);
        out.push_str(",preempted,slo_attainment\n");
        for c in &self.cells {
            let load = c.key.load.map(|l| format!("{l}")).unwrap_or_default();
            let seed = c.key.seed.map(|s| s.to_string()).unwrap_or_default();
            let fault = c.key.fault.as_deref().unwrap_or_default();
            let service = c.key.service.as_deref().unwrap_or_default();
            let fleet = c.key.fleet.as_deref().unwrap_or_default();
            let slo = c
                .slo_attainment()
                .map(|a| format!("{a}"))
                .unwrap_or_default();
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{},{},{}\n",
                export::sanitize(&self.name),
                export::sanitize(&c.key.cluster),
                load,
                seed,
                export::sanitize(fault),
                export::sanitize(service),
                export::sanitize(fleet),
                export::report_csv_row(&c.output.report),
                c.output.preemptions,
                slo
            ));
        }
        out
    }

    /// Pretty JSON document: experiment name plus one object per cell with
    /// its axes, trace hash, and the full report.
    pub fn to_json(&self) -> String {
        let cells = self
            .cells
            .iter()
            .map(|c| {
                let mut pairs = vec![
                    ("cluster", Json::Str(c.key.cluster.clone())),
                    ("load", c.key.load.map(Json::F64).unwrap_or(Json::Null)),
                    ("seed", c.key.seed.map(Json::UInt).unwrap_or(Json::Null)),
                    (
                        "fault",
                        c.key.fault.clone().map(Json::Str).unwrap_or(Json::Null),
                    ),
                    (
                        "service",
                        c.key.service.clone().map(Json::Str).unwrap_or(Json::Null),
                    ),
                    (
                        "fleet",
                        c.key.fleet.clone().map(Json::Str).unwrap_or(Json::Null),
                    ),
                    ("scheduler", Json::Str(c.key.scheduler.clone())),
                    ("trace_hash", Json::UInt(c.output.trace_hash)),
                ];
                // Keys present only for cells where the feature fired:
                // SLO-free, preemption-free grids serialize byte-identically
                // to the documents they produced before either existed.
                if c.output.preemptions > 0 {
                    pairs.push(("preempted", Json::UInt(c.output.preemptions)));
                }
                if let Some(a) = c.slo_attainment() {
                    pairs.push(("slo_attainment", Json::F64(a)));
                }
                pairs.push(("report", export::report_to_value(&c.output.report)));
                Json::obj(pairs)
            })
            .collect();
        Json::obj(vec![
            ("experiment", Json::Str(self.name.clone())),
            ("cells", Json::Arr(cells)),
        ])
        .to_string_pretty()
    }
}

#[cfg(test)]
mod tests {
    use crate::scenarios::default_slowdown;
    use crate::{ExperimentRunner, ExperimentSpec};
    use dmhpc_platform::PoolTopology;
    use dmhpc_sched::{MemoryPolicy, SchedulerBuilder};
    use dmhpc_workload::SystemPreset;

    fn results() -> crate::ExperimentResults {
        let spec = ExperimentSpec::builder("table-test")
            .preset(SystemPreset::HighThroughput, 40)
            .pool(PoolTopology::PerRack {
                mib_per_rack: 384 * 1024,
            })
            .loads([0.7, 0.9])
            .seed(3)
            .scheduler(SchedulerBuilder::new().slowdown(default_slowdown()).build())
            .scheduler(
                SchedulerBuilder::new()
                    .memory(MemoryPolicy::PoolBestFit)
                    .slowdown(default_slowdown())
                    .build(),
            )
            .build()
            .unwrap();
        ExperimentRunner::with_threads(1).run(&spec).unwrap()
    }

    #[test]
    fn csv_has_axis_columns_and_uniform_arity() {
        let r = results();
        let csv = r.to_csv();
        let lines: Vec<&str> = csv.trim_end().lines().collect();
        assert_eq!(lines.len(), 1 + r.len());
        assert!(lines[0].starts_with("experiment,cluster,load,seed,fault,service,fleet,label,"));
        assert!(lines[0].ends_with(",slo_attainment"));
        let arity = lines[0].split(',').count();
        for line in &lines[1..] {
            assert_eq!(line.split(',').count(), arity);
            assert!(line.starts_with("table-test,rack-384gib,"));
            // No deadlines anywhere in this grid: the trailing attainment
            // field stays empty and the JSON key is absent entirely.
            assert!(line.ends_with(','));
        }
        assert!(!r.to_json().contains("slo_attainment"));
        for c in r.cells() {
            assert_eq!(c.slo_attainment(), None);
        }
    }

    #[test]
    fn closed_cells_report_deadline_attainment() {
        use dmhpc_platform::{ClusterSpec, NodeSpec};
        use dmhpc_workload::{JobBuilder, Slo, Workload};

        // Two single-node jobs on a one-node machine: job 1 runs [0, 100)
        // and trivially meets its generous deadline; job 2 (arrival 0,
        // start 100) has a 50 s start deadline it cannot make.
        let jobs = vec![
            JobBuilder::new(1)
                .nodes(1)
                .runtime_secs(100, 100)
                .mem_per_node(100)
                .slo(Slo::Deadline { deadline_s: 1000.0 })
                .build(),
            JobBuilder::new(2)
                .nodes(1)
                .runtime_secs(100, 100)
                .mem_per_node(100)
                .slo(Slo::Deadline { deadline_s: 50.0 })
                .build(),
        ];
        let spec = ExperimentSpec::builder("slo-table")
            .fixed_workload(Workload::from_jobs(jobs))
            .cluster(
                "one",
                ClusterSpec::new(1, 1, NodeSpec::new(4, 1024), PoolTopology::None),
            )
            .scheduler(SchedulerBuilder::new().slowdown(default_slowdown()).build())
            .build()
            .unwrap();
        let r = ExperimentRunner::with_threads(1).run(&spec).unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r.cells()[0].slo_attainment(), Some(0.5));
        let csv = r.to_csv();
        let row = csv.trim_end().lines().last().unwrap();
        assert!(row.ends_with(",0.5"), "{row}");
        assert!(r.to_json().contains("\"slo_attainment\": 0.5"));
    }

    /// Satellite pin: never-started stamped jobs are misses, not
    /// unmeasured. An admission policy that rejects the jobs it would
    /// miss must not thereby report higher attainment; a terminally
    /// failed stamped job counts the same way; a fault-resubmitted job
    /// that did start is judged by its final attempt's start.
    #[test]
    fn never_started_stamped_jobs_count_as_misses() {
        use dmhpc_metrics::{JobOutcome, JobRecord};
        use dmhpc_workload::{JobBuilder, Slo};

        let stamped = |id: u64| {
            JobBuilder::new(id)
                .nodes(1)
                .runtime_secs(100, 100)
                .mem_per_node(100)
                .slo(Slo::Deadline { deadline_s: 500.0 })
                .build()
        };
        let r = results();
        let mut cell = r.cells()[0].clone();
        let started = |id: u64, start_s: u64, outcome: JobOutcome| JobRecord {
            job: stamped(id),
            outcome,
            start: Some(dmhpc_des::time::SimTime::from_secs(start_s)),
            finish: Some(dmhpc_des::time::SimTime::from_secs(start_s + 100)),
            nodes_allocated: 1,
            remote_per_node: 0,
            dilation_planned: 1.0,
            dilation_actual: 1.0,
        };
        cell.output.records = vec![
            // Met: completed, started inside the deadline.
            started(1, 100, JobOutcome::Completed),
            // Miss: admission-rejected, never started.
            JobRecord::rejected(stamped(2)),
            // Miss: terminally failed without ever starting.
            JobRecord::failed_unstarted(stamped(3)),
            // Met: fault-resubmitted job whose *final* attempt started in
            // time (the record carries the last attempt's start), even
            // though the attempt itself then failed.
            started(4, 200, JobOutcome::Failed),
            // Miss: started, but only after the deadline passed.
            started(5, 900, JobOutcome::Completed),
        ];
        assert_eq!(cell.slo_attainment(), Some(0.4));
    }

    #[test]
    fn json_parses_back_and_carries_axes() {
        let r = results();
        let doc = dmhpc_metrics::json::parse(&r.to_json()).unwrap();
        assert_eq!(
            doc.expect_key("experiment").unwrap().as_str(),
            Some("table-test")
        );
        let cells = doc.expect_key("cells").unwrap().to_arr().unwrap();
        assert_eq!(cells.len(), r.len());
        assert_eq!(cells[0].expect_key("seed").unwrap().as_u64(), Some(3));
        assert!(cells[0]
            .expect_key("trace_hash")
            .unwrap()
            .as_u64()
            .is_some());
    }

    #[test]
    fn select_and_get() {
        let r = results();
        let bf = r.select(|k| k.scheduler.contains("pool-bf"));
        assert_eq!(bf.len(), 2);
        let cell = r
            .get(
                "rack-384gib",
                Some(0.9),
                Some(3),
                "fcfs+easy+pool-bf+sat1.5k3",
            )
            .unwrap();
        assert_eq!(cell.key.load, Some(0.9));
        assert!(r
            .get(
                "rack-384gib",
                Some(0.8),
                Some(3),
                "fcfs+easy+pool-bf+sat1.5k3"
            )
            .is_none());
    }

    #[test]
    fn reports_are_relabelled() {
        let r = results();
        let reports = r.reports();
        assert!(reports[0].label.contains("rack-384gib|load0.70|seed3|"));
        let mut labels: Vec<String> = reports.iter().map(|x| x.label.clone()).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), r.len(), "labels unique");
    }
}
