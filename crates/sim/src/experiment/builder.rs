//! Fluent construction of [`ExperimentSpec`]s.

use super::{pool_label, ExperimentSpec, WorkloadSource};
use crate::error::SimError;
use crate::faults::FaultSpec;
use crate::federation::FleetSpec;
use crate::scenarios;
use crate::service::ServiceSpec;
use dmhpc_platform::{ClusterSpec, PoolTopology, SlowdownModel};
use dmhpc_sched::SchedulerConfig;
use dmhpc_workload::{SystemPreset, Workload};
use std::sync::Arc;

/// Builds an [`ExperimentSpec`] fluently. Finish with
/// [`ExperimentBuilder::build`], which validates the whole grid and
/// reports every problem as a typed [`SimError`].
///
/// The usual shape:
///
/// ```
/// use dmhpc_sim::ExperimentSpec;
/// use dmhpc_platform::PoolTopology;
/// use dmhpc_workload::SystemPreset;
///
/// let spec = ExperimentSpec::builder("pool-sweep")
///     .preset(SystemPreset::MidCluster, 500)
///     .pools((0..3).map(|i| PoolTopology::PerRack {
///         mib_per_rack: 128 * 1024 << i,
///     }))
///     .load(0.9)
///     .seed(42)
///     .policy_suite(dmhpc_sim::scenarios::default_slowdown())
///     .build()
///     .unwrap();
/// assert_eq!(spec.cell_count(), 3 * 4);
/// ```
#[derive(Debug, Clone)]
pub struct ExperimentBuilder {
    name: String,
    workload: Option<WorkloadSource>,
    preset: Option<SystemPreset>,
    clusters: Vec<(String, ClusterSpec)>,
    loads: Vec<f64>,
    seeds: Vec<u64>,
    schedulers: Vec<SchedulerConfig>,
    faults: Vec<FaultSpec>,
    services: Vec<ServiceSpec>,
    fleets: Vec<FleetSpec>,
    enforce_walltime: bool,
    check_invariants: bool,
    deferred_error: Option<String>,
}

impl ExperimentBuilder {
    pub(super) fn new(name: impl Into<String>) -> Self {
        ExperimentBuilder {
            name: name.into(),
            workload: None,
            preset: None,
            clusters: Vec::new(),
            loads: Vec::new(),
            seeds: Vec::new(),
            schedulers: Vec::new(),
            faults: Vec::new(),
            services: Vec::new(),
            fleets: Vec::new(),
            enforce_walltime: true,
            check_invariants: false,
            deferred_error: None,
        }
    }

    /// Reopen an existing spec for editing — the incremental-re-run path:
    /// tweak an axis, `build()`, and a cached runner re-executes only the
    /// cells whose content hash changed
    /// ([`super::ExperimentSpec::cell_hashes`]).
    ///
    /// For preset-sourced specs the preset is restored, so
    /// [`ExperimentBuilder::pool`]/[`ExperimentBuilder::pools`] keep
    /// working on the reopened builder.
    pub fn from_spec(spec: ExperimentSpec) -> Self {
        let preset = match spec.workload {
            WorkloadSource::Preset { preset, .. } => Some(preset),
            WorkloadSource::Fixed(_) => None,
        };
        ExperimentBuilder {
            name: spec.name,
            workload: Some(spec.workload),
            preset,
            clusters: spec.clusters,
            loads: spec.loads,
            seeds: spec.seeds,
            schedulers: spec.schedulers,
            faults: spec.faults,
            services: spec.services,
            fleets: spec.fleets,
            enforce_walltime: spec.enforce_walltime,
            check_invariants: spec.check_invariants,
            deferred_error: None,
        }
    }

    /// Replace the experiment name (useful when deriving a variant spec
    /// via [`ExperimentBuilder::from_spec`]).
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    fn defer(&mut self, reason: String) {
        if self.deferred_error.is_none() {
            self.deferred_error = Some(reason);
        }
    }

    /// Generate the workload from a calibrated preset (`jobs` jobs per
    /// `(seed, load)` grid point) and use the preset's machine shape as
    /// the base for [`ExperimentBuilder::pool`]/[`ExperimentBuilder::pools`].
    pub fn preset(mut self, preset: SystemPreset, jobs: usize) -> Self {
        if self.workload.is_some() {
            self.defer("workload source set twice".into());
        }
        self.workload = Some(WorkloadSource::Preset { preset, jobs });
        self.preset = Some(preset);
        self
    }

    /// Replay a fixed trace instead of generating workloads. The seed axis
    /// collapses; the load axis still rescales arrivals per cluster.
    pub fn fixed_workload(mut self, workload: Workload) -> Self {
        if self.workload.is_some() {
            self.defer("workload source set twice".into());
        }
        self.workload = Some(WorkloadSource::Fixed(Arc::new(workload)));
        self
    }

    /// Add one cluster-axis point: the preset's machine with this pool
    /// topology, auto-labelled (e.g. `rack-512gib`). Requires
    /// [`ExperimentBuilder::preset`] first.
    pub fn pool(mut self, pool: PoolTopology) -> Self {
        match self.preset {
            Some(preset) => {
                let label = pool_label(&pool);
                self.clusters
                    .push((label, scenarios::preset_cluster(preset, pool)));
            }
            None => self.defer("pool() requires preset() first (no base machine)".into()),
        }
        self
    }

    /// Add several preset-machine × pool-topology cluster points.
    pub fn pools(mut self, pools: impl IntoIterator<Item = PoolTopology>) -> Self {
        for pool in pools {
            self = self.pool(pool);
        }
        self
    }

    /// Add an explicitly shaped, labelled cluster-axis point.
    pub fn cluster(mut self, label: impl Into<String>, spec: ClusterSpec) -> Self {
        self.clusters.push((label.into(), spec));
        self
    }

    /// Add one offered-load axis point.
    pub fn load(mut self, load: f64) -> Self {
        self.loads.push(load);
        self
    }

    /// Add several offered-load axis points.
    pub fn loads(mut self, loads: impl IntoIterator<Item = f64>) -> Self {
        self.loads.extend(loads);
        self
    }

    /// Add one seed-axis point.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seeds.push(seed);
        self
    }

    /// Add several seed-axis points.
    pub fn seeds(mut self, seeds: impl IntoIterator<Item = u64>) -> Self {
        self.seeds.extend(seeds);
        self
    }

    /// Add one scheduler-axis point.
    pub fn scheduler(mut self, cfg: SchedulerConfig) -> Self {
        self.schedulers.push(cfg);
        self
    }

    /// Add several scheduler-axis points.
    pub fn schedulers(mut self, cfgs: impl IntoIterator<Item = SchedulerConfig>) -> Self {
        self.schedulers.extend(cfgs);
        self
    }

    /// Add one fault-scenario axis point. An empty fault axis (the
    /// default) means every cell runs fault-free; adding scenarios crosses
    /// them into the grid like any other dimension. Add
    /// [`FaultSpec::none`] explicitly to keep a fault-free baseline
    /// alongside fault scenarios — its cells hash (and cache) identically
    /// to a grid without the axis.
    pub fn fault(mut self, spec: FaultSpec) -> Self {
        self.faults.push(spec);
        self
    }

    /// Add several fault-scenario axis points.
    pub fn faults(mut self, specs: impl IntoIterator<Item = FaultSpec>) -> Self {
        self.faults.extend(specs);
        self
    }

    /// Add one service-scenario axis point. An empty service axis (the
    /// default) means every cell is a closed batch run; adding open
    /// scenarios crosses them into the grid like any other dimension. Add
    /// [`ServiceSpec::none`] explicitly to keep a closed baseline
    /// alongside open scenarios — its cells hash (and cache) identically
    /// to a grid without the axis. Open scenarios do not combine with
    /// fault scenarios (rejected at build).
    pub fn service(mut self, spec: ServiceSpec) -> Self {
        self.services.push(spec);
        self
    }

    /// Add several service-scenario axis points.
    pub fn services(mut self, specs: impl IntoIterator<Item = ServiceSpec>) -> Self {
        self.services.extend(specs);
        self
    }

    /// Add one fleet-axis point. An empty fleet axis (the default) means
    /// every cell runs on a single cluster; adding federated scenarios
    /// crosses them into the grid like any other dimension. Add
    /// [`FleetSpec::none`] explicitly to keep a single-cluster baseline
    /// alongside fleets — its cells hash (and cache) identically to a
    /// grid without the axis. Fleets do not combine with fault or service
    /// scenarios (rejected at build).
    pub fn fleet(mut self, spec: FleetSpec) -> Self {
        self.fleets.push(spec);
        self
    }

    /// Add several fleet-axis points.
    pub fn fleets(mut self, specs: impl IntoIterator<Item = FleetSpec>) -> Self {
        self.fleets.extend(specs);
        self
    }

    /// Add the paper's four-way policy comparison suite (local-only, pool
    /// first/best fit, slowdown-aware; all FCFS + EASY) under the given
    /// slowdown model.
    pub fn policy_suite(self, slowdown: SlowdownModel) -> Self {
        self.schedulers(scenarios::policy_suite(slowdown))
    }

    /// Toggle walltime enforcement for every cell (default on).
    pub fn enforce_walltime(mut self, on: bool) -> Self {
        self.enforce_walltime = on;
        self
    }

    /// Toggle per-batch invariant checking for every cell (default off;
    /// O(nodes) per event — tests only).
    pub fn check_invariants(mut self, on: bool) -> Self {
        self.check_invariants = on;
        self
    }

    /// Validate and produce the spec. Seeds default to `[42]` when the
    /// axis was never touched.
    pub fn build(self) -> Result<ExperimentSpec, SimError> {
        if let Some(reason) = self.deferred_error {
            return Err(SimError::spec(reason));
        }
        let workload = self.workload.ok_or_else(|| {
            SimError::spec("no workload source (call preset() or fixed_workload())")
        })?;
        let seeds = if self.seeds.is_empty() {
            vec![42]
        } else {
            self.seeds
        };
        let spec = ExperimentSpec {
            name: self.name,
            workload,
            clusters: self.clusters,
            loads: self.loads,
            seeds,
            schedulers: self.schedulers,
            faults: self.faults,
            services: self.services,
            fleets: self.fleets,
            enforce_walltime: self.enforce_walltime,
            check_invariants: self.check_invariants,
        };
        spec.validate()?;
        Ok(spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmhpc_sched::SchedulerBuilder;

    #[test]
    fn pool_before_preset_is_a_typed_error() {
        let err = ExperimentSpec::builder("bad")
            .pool(PoolTopology::None)
            .preset(SystemPreset::MidCluster, 10)
            .scheduler(SchedulerBuilder::new().build())
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("preset"), "{err}");
    }

    #[test]
    fn seeds_default_to_42() {
        let spec = ExperimentSpec::builder("d")
            .preset(SystemPreset::MidCluster, 10)
            .pool(PoolTopology::None)
            .scheduler(SchedulerBuilder::new().build())
            .build()
            .unwrap();
        assert_eq!(spec.seeds, vec![42]);
    }

    #[test]
    fn from_spec_reopens_for_incremental_edits() {
        let spec = ExperimentSpec::builder("incr")
            .preset(SystemPreset::MidCluster, 10)
            .pool(PoolTopology::None)
            .seeds([1, 2])
            .scheduler(SchedulerBuilder::new().build())
            .build()
            .unwrap();
        let base_hashes = spec.cell_hashes().unwrap();

        // Unchanged rebuild: identical hashes.
        let same = ExperimentBuilder::from_spec(spec.clone()).build().unwrap();
        assert_eq!(same.cell_hashes().unwrap(), base_hashes);

        // Adding a seed (and renaming) keeps the old cells' hashes —
        // only the new cell would simulate on a cached re-run.
        let edited = ExperimentBuilder::from_spec(spec.clone())
            .name("incr-v2")
            .seed(3)
            .pool(PoolTopology::PerRack {
                mib_per_rack: 256 * 1024,
            })
            .build()
            .unwrap();
        let edited_hashes = edited.cell_hashes().unwrap();
        assert_eq!(edited.cell_count(), 2 * 3);
        for (_, h) in &base_hashes {
            assert!(
                edited_hashes.iter().any(|(_, eh)| eh == h),
                "original cells keep their hashes under edits"
            );
        }
    }

    #[test]
    fn double_workload_source_rejected() {
        let err = ExperimentSpec::builder("d")
            .preset(SystemPreset::MidCluster, 10)
            .preset(SystemPreset::Capability, 10)
            .pool(PoolTopology::None)
            .scheduler(SchedulerBuilder::new().build())
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("twice"), "{err}");
    }
}
