//! Streaming JSONL trace export with bounded memory.

use super::{Observer, ObserverFactory, RunContext, RunEnd, RunLabel, SimEvent};
use crate::error::SimError;
use crate::faults::FaultAction;
use dmhpc_metrics::{JobOutcome, JobRecord};
use std::fmt::Write as _;
use std::fs::File;
use std::io::{BufWriter, Write as _};
use std::path::{Path, PathBuf};

/// Default write-buffer size (bytes) — the constant that bounds a trace
/// run's memory footprint.
pub const DEFAULT_BUFFER: usize = 64 * 1024;

/// Streams the event stream to disk as JSON lines, one object per event,
/// through a fixed-size buffer: memory stays O(buffer) however many
/// events the run produces, so arbitrarily long runs export full traces.
///
/// The first line is a `run_start` header (label, job count, origin), the
/// last a `run_end` footer (event counts, passes, trace hash); every line
/// in between is one [`SimEvent`]. All values are integers (microsecond
/// times) or shortest-round-trip floats, and the stream is a pure
/// function of the run — byte-identical across thread counts and
/// event-queue backends (tested).
///
/// I/O errors are deferred: the sink goes quiet and reports via
/// [`TraceSink::finish`] / [`Observer::failure`] (the experiment runner
/// checks the latter after every cell).
#[derive(Debug)]
pub struct TraceSink {
    out: BufWriter<File>,
    path: PathBuf,
    events: u64,
    line: String,
    error: Option<SimError>,
}

impl TraceSink {
    /// Create (truncate) `path` with the default buffer size.
    pub fn create(path: impl Into<PathBuf>) -> Result<Self, SimError> {
        Self::with_buffer(path, DEFAULT_BUFFER)
    }

    /// Create (truncate) `path` with an explicit buffer size in bytes —
    /// the memory bound of the sink.
    pub fn with_buffer(path: impl Into<PathBuf>, buffer: usize) -> Result<Self, SimError> {
        let path = path.into();
        let file = File::create(&path)
            .map_err(|e| SimError::io(format!("creating trace {}", path.display()), e))?;
        Ok(TraceSink {
            out: BufWriter::with_capacity(buffer.max(1), file),
            path,
            events: 0,
            line: String::with_capacity(160),
            error: None,
        })
    }

    /// Where the trace is being written.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Events written so far (header/footer lines not counted).
    pub fn events_written(&self) -> u64 {
        self.events
    }

    /// Flush and close, returning the event count — or the first deferred
    /// I/O error.
    pub fn finish(mut self) -> Result<u64, SimError> {
        self.flush();
        match self.error.take() {
            Some(e) => Err(e),
            None => Ok(self.events),
        }
    }

    fn flush(&mut self) {
        if self.error.is_none() {
            if let Err(e) = self.out.flush() {
                self.error = Some(SimError::io(
                    format!("flushing trace {}", self.path.display()),
                    e,
                ));
            }
        }
    }

    fn write_line(&mut self) {
        if self.error.is_some() {
            return;
        }
        self.line.push('\n');
        if let Err(e) = self.out.write_all(self.line.as_bytes()) {
            self.error = Some(SimError::io(
                format!("writing trace {}", self.path.display()),
                e,
            ));
        }
    }

    fn format_event(line: &mut String, ev: &SimEvent) {
        let _ = write!(
            line,
            r#"{{"t_us":{},"kind":"{}""#,
            ev.at().as_micros(),
            ev.kind()
        );
        match ev {
            SimEvent::JobSubmitted { job, resubmit, .. } => {
                let _ = write!(
                    line,
                    r#","job":{},"nodes":{},"runtime_us":{},"mem_mib":{},"resubmit":{}"#,
                    job.id.0,
                    job.nodes,
                    job.runtime.as_micros(),
                    job.mem_per_node,
                    resubmit
                );
            }
            SimEvent::JobStarted {
                job,
                nodes,
                dilation,
                ..
            } => {
                let _ = write!(
                    line,
                    r#","job":{},"nodes":{nodes},"dilation":{dilation}"#,
                    job.0
                );
            }
            SimEvent::AllocationGrabbed {
                job,
                nodes,
                local_mib,
                remote_mib,
                ..
            }
            | SimEvent::AllocationReleased {
                job,
                nodes,
                local_mib,
                remote_mib,
                ..
            } => {
                let _ = write!(
                    line,
                    r#","job":{},"nodes":{nodes},"local_mib":{local_mib},"remote_mib":{remote_mib}"#,
                    job.0
                );
            }
            SimEvent::JobFinished { record, .. }
            | SimEvent::JobFailed { record, .. }
            | SimEvent::JobRejected { record, .. } => Self::format_record(line, record),
            SimEvent::JobInterrupted {
                job,
                rework_s,
                resubmitted,
                ..
            } => {
                let _ = write!(
                    line,
                    r#","job":{},"rework_s":{rework_s},"resubmitted":{resubmitted}"#,
                    job.0
                );
            }
            SimEvent::FaultApplied {
                action,
                nodes_in_service,
                ..
            }
            | SimEvent::FaultCleared {
                action,
                nodes_in_service,
                ..
            } => {
                Self::format_action(line, action);
                let _ = write!(line, r#","in_service":{nodes_in_service}"#);
            }
            SimEvent::JobDeferred {
                job, recheck_at, ..
            } => {
                let _ = write!(
                    line,
                    r#","job":{},"recheck_us":{}"#,
                    job.0,
                    recheck_at.as_micros()
                );
            }
            SimEvent::JobPreempted { job, for_job, .. } => {
                let _ = write!(line, r#","job":{},"for_job":{}"#, job.0, for_job.0);
            }
            SimEvent::PassCompleted {
                started,
                rejected,
                queued,
                ..
            } => {
                let _ = write!(
                    line,
                    r#","started":{started},"rejected":{rejected},"queued":{queued}"#
                );
            }
        }
        line.push('}');
    }

    fn format_record(line: &mut String, r: &JobRecord) {
        let outcome = match r.outcome {
            JobOutcome::Completed => "completed",
            JobOutcome::Killed => "killed",
            JobOutcome::Rejected => "rejected",
            JobOutcome::Failed => "failed",
        };
        let _ = write!(line, r#","job":{},"outcome":"{outcome}""#, r.job.id.0);
        if let Some(start) = r.start {
            let _ = write!(line, r#","start_us":{}"#, start.as_micros());
        }
        if let Some(finish) = r.finish {
            let _ = write!(line, r#","finish_us":{}"#, finish.as_micros());
        }
        if r.start.is_some() {
            let _ = write!(
                line,
                r#","nodes":{},"remote_per_node":{},"dilation":{}"#,
                r.nodes_allocated, r.remote_per_node, r.dilation_actual
            );
        }
    }

    fn format_action(line: &mut String, action: &FaultAction) {
        match *action {
            FaultAction::NodeFail(n) => {
                let _ = write!(line, r#","action":"node_fail","target":{}"#, n.0);
            }
            FaultAction::NodeRepair(n) => {
                let _ = write!(line, r#","action":"node_repair","target":{}"#, n.0);
            }
            FaultAction::DrainStart(n) => {
                let _ = write!(line, r#","action":"drain_start","target":{}"#, n.0);
            }
            FaultAction::DrainEnd(n) => {
                let _ = write!(line, r#","action":"drain_end","target":{}"#, n.0);
            }
            FaultAction::PoolDegrade { pool, factor } => {
                let _ = write!(
                    line,
                    r#","action":"pool_degrade","target":{},"factor":{factor}"#,
                    pool.0
                );
            }
            FaultAction::PoolRepair(p) => {
                let _ = write!(line, r#","action":"pool_repair","target":{}"#, p.0);
            }
        }
    }
}

impl Observer for TraceSink {
    fn on_run_start(&mut self, ctx: &RunContext) {
        self.line.clear();
        let label = dmhpc_metrics::json::Json::Str(ctx.label.clone()).to_string_compact();
        let _ = write!(
            self.line,
            r#"{{"kind":"run_start","label":{label},"jobs":{},"nodes":{},"start_us":{}}}"#,
            ctx.jobs,
            ctx.cluster.total_nodes(),
            ctx.start.as_micros()
        );
        self.write_line();
    }

    fn on_event(&mut self, ev: &SimEvent) {
        self.line.clear();
        Self::format_event(&mut self.line, ev);
        self.write_line();
        self.events += 1;
    }

    fn on_run_end(&mut self, end: &RunEnd) {
        self.line.clear();
        let _ = write!(
            self.line,
            r#"{{"kind":"run_end","t_us":{},"end_us":{},"events":{},"engine_events":{},"passes":{},"trace_hash":"{:016x}"}}"#,
            end.at.as_micros(),
            end.end.as_micros(),
            self.events,
            end.events_processed,
            end.passes,
            end.trace_hash
        );
        self.write_line();
        self.flush();
    }

    fn failure(&self) -> Option<SimError> {
        self.error.clone()
    }
}

/// [`ObserverFactory`] writing one `<run>.jsonl` per run into a
/// directory — the factory behind `ExperimentRunner::trace_dir` and
/// `repro … --trace-out DIR`.
///
/// File stems come from the lossy [`RunLabel`] sanitization, so two
/// distinct run labels can collide (e.g. `fcfs|easy` and `fcfs-easy`);
/// the factory disambiguates repeats with a numeric suffix instead of
/// letting two concurrent sinks interleave into one file. The used-stem
/// set is shared across clones of the factory (they target the same
/// directory).
#[derive(Debug, Clone)]
pub struct TraceDir {
    dir: PathBuf,
    buffer: usize,
    used: std::sync::Arc<std::sync::Mutex<std::collections::BTreeSet<String>>>,
}

impl TraceDir {
    /// Create the directory (if missing) and return the factory.
    pub fn new(dir: impl Into<PathBuf>) -> Result<Self, SimError> {
        Self::with_buffer(dir, DEFAULT_BUFFER)
    }

    /// Like [`TraceDir::new`] with an explicit per-sink buffer size.
    pub fn with_buffer(dir: impl Into<PathBuf>, buffer: usize) -> Result<Self, SimError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)
            .map_err(|e| SimError::io(format!("creating trace dir {}", dir.display()), e))?;
        Ok(TraceDir {
            dir,
            buffer,
            used: std::sync::Arc::default(),
        })
    }
}

impl ObserverFactory for TraceDir {
    fn make(&self, run: &RunLabel) -> Result<Box<dyn Observer>, SimError> {
        let stem = {
            // lint: allow(panic) — a poisoned lock means a sibling observer already panicked
            let mut used = self.used.lock().expect("trace stem set poisoned");
            let mut stem = run.file_stem.clone();
            let mut n = 1u32;
            while !used.insert(stem.clone()) {
                n += 1;
                stem = format!("{}-{n}", run.file_stem);
            }
            stem
        };
        let path = self.dir.join(format!("{stem}.jsonl"));
        Ok(Box::new(TraceSink::with_buffer(path, self.buffer)?))
    }
}

/// Parse and validate one line of a streamed trace: it must be a JSON
/// object carrying a string `"kind"`. Returns the parsed document (CI
/// smoke checks and notebooks use this to consume traces without a JSON
/// dependency of their own).
pub fn parse_trace_line(line: &str) -> Result<dmhpc_metrics::json::Json, SimError> {
    let doc = dmhpc_metrics::json::parse(line)?;
    doc.expect_key("kind")?.to_str()?;
    Ok(doc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmhpc_des::time::SimTime;
    use dmhpc_workload::JobBuilder;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("dmhpc-trace-{}-{name}", std::process::id()))
    }

    #[test]
    fn writes_parseable_jsonl() {
        let path = tmp("parse.jsonl");
        let mut sink = TraceSink::with_buffer(&path, 64).unwrap();
        sink.on_event(&SimEvent::JobSubmitted {
            at: SimTime::from_secs(1),
            job: JobBuilder::new(7).nodes(2).runtime_secs(10, 20).build(),
            resubmit: false,
        });
        sink.on_event(&SimEvent::PassCompleted {
            at: SimTime::from_secs(1),
            started: 1,
            rejected: 0,
            queued: 0,
        });
        assert_eq!(sink.events_written(), 2);
        sink.finish().unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in &lines {
            let doc = dmhpc_metrics::json::parse(line).expect("line parses");
            assert!(doc.get("kind").is_some());
        }
        assert!(lines[0].contains(r#""kind":"submit""#));
        assert!(lines[0].contains(r#""job":7"#));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn trace_dir_names_files_by_run() {
        let dir = tmp("dir");
        let factory = TraceDir::new(&dir).unwrap();
        let mut obs = factory.make(&RunLabel::new("a|b c")).unwrap();
        obs.on_event(&SimEvent::PassCompleted {
            at: SimTime::ZERO,
            started: 0,
            rejected: 0,
            queued: 0,
        });
        obs.on_run_end(&RunEnd {
            at: SimTime::ZERO,
            end: SimTime::ZERO,
            events_processed: 0,
            passes: 0,
            trace_hash: 0,
        });
        assert!(obs.failure().is_none());
        drop(obs);
        let text = std::fs::read_to_string(dir.join("a-b-c.jsonl")).unwrap();
        assert!(text.lines().count() == 2, "event + footer");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
