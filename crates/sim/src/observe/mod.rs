//! The streaming observation API: a typed event stream with pluggable
//! consumers.
//!
//! Every run the engine executes is *observed* through one mechanism: it
//! emits a [`SimEvent`] at each state change (job submitted / started /
//! interrupted / finished / failed / rejected, allocation grab / release,
//! fault applied / cleared, scheduling pass ran), and a set of
//! [`Observer`]s consume the stream. All of the simulator's own metrics
//! are built-in observers —
//!
//! * [`SeriesObserver`] — the time-weighted system series
//!   ([`crate::SeriesBundle`]: busy nodes, pool/DRAM occupancy, queue
//!   depth);
//! * [`JobStatsObserver`] — the per-job outcome records;
//! * [`SketchStatsObserver`] — the O(1)-memory alternative for
//!   open-system service runs: streaming quantile sketches and online
//!   moments over a post-warmup measurement window, in place of the
//!   per-job record list;
//! * [`FaultObserver`] — interruption/rework counters and the
//!   availability integral ([`dmhpc_metrics::FaultSummary`]);
//!
//! — and [`crate::SimOutput`] is assembled from their final state, so the
//! default observer set reproduces the pre-redesign output bit for bit
//! (golden-hash tested). On top of that ride the optional consumers:
//!
//! * [`TraceSink`] — a streaming JSONL trace writer with a fixed-size
//!   buffer: memory stays O(buffer) no matter how many events a run
//!   produces, which is what makes million-job traces exportable;
//! * [`SampledSeriesProbe`] — system state sampled at a configurable
//!   cadence (bounded output regardless of event count);
//! * [`ProgressObserver`] — a heartbeat line every N events;
//! * [`EventCounter`] — per-kind event counts (tests, quick looks).
//!
//! **Hash-neutrality rule:** observers *consume* the stream, they never
//! feed back into it. Attaching any observer changes neither the trace
//! hash nor any metric, and observer configuration is excluded from
//! experiment cell hashes (like `event_queue`) — so result caches built
//! before this API replay untouched.
//!
//! Attach points, innermost to outermost: per run, everything goes
//! through one [`crate::ObserverSet`] passed to
//! [`crate::Simulation::run_with`] — caller-owned observers, per-run
//! factories, and the progress heartbeat alike; per-cell factories on a
//! whole grid via `ExperimentRunner::observe` /
//! `ExperimentRunner::trace_dir`; and `repro … --trace-out DIR` from the
//! command line.

mod builtin;
mod probe;
mod sketch;
mod trace;

pub use builtin::{FaultObserver, JobStatsObserver, SeriesObserver};
pub use probe::{EventCounter, ProgressObserver, SampleRow, SampledSeriesProbe};
pub use sketch::SketchStatsObserver;
pub use trace::{parse_trace_line, TraceDir, TraceSink};

use crate::error::SimError;
use crate::faults::FaultAction;
use dmhpc_des::time::SimTime;
use dmhpc_metrics::JobRecord;
use dmhpc_platform::ClusterSpec;
use dmhpc_workload::{Job, JobId};

/// One observation from a run, emitted by the engine at the instant the
/// corresponding state change happens. Events carry everything a consumer
/// needs — observers never reach back into the engine.
#[derive(Debug, Clone)]
pub enum SimEvent {
    /// A job entered the wait queue: a workload arrival, or a
    /// fault-interrupted job resubmitted (`resubmit`, possibly with
    /// checkpoint-adjusted remaining runtime).
    JobSubmitted {
        /// Event time.
        at: SimTime,
        /// The submitted job.
        job: Job,
        /// True for fault-policy resubmissions, false for arrivals.
        resubmit: bool,
    },
    /// A scheduling pass started a queued job.
    JobStarted {
        /// Event time.
        at: SimTime,
        /// The started job.
        job: JobId,
        /// Nodes allocated (≥ requested when memory-inflated).
        nodes: u32,
        /// Dilation the scheduler planned at start.
        dilation: f64,
    },
    /// Capacity was allocated to a starting job.
    AllocationGrabbed {
        /// Event time.
        at: SimTime,
        /// The holding job.
        job: JobId,
        /// Node count of the allocation.
        nodes: u32,
        /// Node-local DRAM pinned, MiB (all nodes).
        local_mib: u64,
        /// Pool memory borrowed, MiB (all nodes).
        remote_mib: u64,
    },
    /// A job's capacity was released (finish, kill, or interruption).
    AllocationReleased {
        /// Event time.
        at: SimTime,
        /// The releasing job.
        job: JobId,
        /// Node count of the allocation.
        nodes: u32,
        /// Node-local DRAM released, MiB (all nodes).
        local_mib: u64,
        /// Pool memory released, MiB (all nodes).
        remote_mib: u64,
    },
    /// A running job reached its end (completed, or killed at walltime —
    /// see `record.outcome`).
    JobFinished {
        /// Event time.
        at: SimTime,
        /// The job's final record.
        record: JobRecord,
    },
    /// A fault displaced a running job (its allocation was already
    /// released in the preceding [`SimEvent::AllocationReleased`]).
    JobInterrupted {
        /// Event time.
        at: SimTime,
        /// The interrupted job.
        job: JobId,
        /// Work seconds charged to rework by this interruption.
        rework_s: f64,
        /// Whether the job re-enters the queue (false: it fails terminally
        /// in the [`SimEvent::JobFailed`] that follows).
        resubmitted: bool,
    },
    /// A job terminally failed under a fault scenario: resubmission budget
    /// exhausted (`record.start` is set), or unservable after permanent
    /// capacity loss (`record.start` is `None` — it was still queued).
    JobFailed {
        /// Event time.
        at: SimTime,
        /// The job's final record.
        record: JobRecord,
    },
    /// A scheduling pass rejected a queued job as unrunnable.
    JobRejected {
        /// Event time.
        at: SimTime,
        /// The job's final record.
        record: JobRecord,
    },
    /// A machine perturbation took hold (node failure, drain start, pool
    /// degradation). Emitted before the interruptions it causes.
    FaultApplied {
        /// Event time.
        at: SimTime,
        /// The perturbation.
        action: FaultAction,
        /// In-service (`Up`) node count after the transition.
        nodes_in_service: usize,
    },
    /// A machine perturbation ended (repair, drain end, pool repair).
    FaultCleared {
        /// Event time.
        at: SimTime,
        /// The clearing action.
        action: FaultAction,
        /// In-service (`Up`) node count after the transition.
        nodes_in_service: usize,
    },
    /// Admission control deferred a queued job: no up-capacity placement
    /// meets its deadline right now, but one could once running jobs
    /// release. Emitted once per job, at its first deferral.
    JobDeferred {
        /// Event time.
        at: SimTime,
        /// The deferred job.
        job: JobId,
        /// When admission will re-examine the job.
        recheck_at: SimTime,
    },
    /// The preemption policy checkpointed a running job to make room for a
    /// deadline-critical queued job (its allocation was already released
    /// in the preceding [`SimEvent::AllocationReleased`]; the
    /// [`SimEvent::JobSubmitted`] resubmission follows).
    JobPreempted {
        /// Event time.
        at: SimTime,
        /// The preempted (checkpointed) job.
        job: JobId,
        /// The queued job the capacity was freed for.
        for_job: JobId,
    },
    /// A scheduling pass ran to completion.
    PassCompleted {
        /// Event time.
        at: SimTime,
        /// Jobs started by the pass.
        started: usize,
        /// Jobs rejected by the pass.
        rejected: usize,
        /// Queue depth after the pass.
        queued: usize,
    },
}

impl SimEvent {
    /// The simulated instant of the event.
    pub fn at(&self) -> SimTime {
        match *self {
            SimEvent::JobSubmitted { at, .. }
            | SimEvent::JobStarted { at, .. }
            | SimEvent::AllocationGrabbed { at, .. }
            | SimEvent::AllocationReleased { at, .. }
            | SimEvent::JobFinished { at, .. }
            | SimEvent::JobInterrupted { at, .. }
            | SimEvent::JobFailed { at, .. }
            | SimEvent::JobRejected { at, .. }
            | SimEvent::FaultApplied { at, .. }
            | SimEvent::FaultCleared { at, .. }
            | SimEvent::JobDeferred { at, .. }
            | SimEvent::JobPreempted { at, .. }
            | SimEvent::PassCompleted { at, .. } => at,
        }
    }

    /// Stable kind tag (trace lines, counters).
    pub fn kind(&self) -> &'static str {
        match self {
            SimEvent::JobSubmitted { .. } => "submit",
            SimEvent::JobStarted { .. } => "start",
            SimEvent::AllocationGrabbed { .. } => "grab",
            SimEvent::AllocationReleased { .. } => "release",
            SimEvent::JobFinished { .. } => "finish",
            SimEvent::JobInterrupted { .. } => "interrupt",
            SimEvent::JobFailed { .. } => "fail",
            SimEvent::JobRejected { .. } => "reject",
            SimEvent::FaultApplied { .. } => "fault",
            SimEvent::FaultCleared { .. } => "fault_clear",
            SimEvent::JobDeferred { .. } => "defer",
            SimEvent::JobPreempted { .. } => "preempt",
            SimEvent::PassCompleted { .. } => "pass",
        }
    }
}

/// What an observer learns when a run begins.
#[derive(Debug, Clone)]
pub struct RunContext {
    /// Time origin of the run (first arrival, or the first fault if it
    /// precedes every arrival).
    pub start: SimTime,
    /// The machine being simulated.
    pub cluster: ClusterSpec,
    /// Jobs in the workload.
    pub jobs: usize,
    /// In-service (`Up`) nodes at the origin.
    pub in_service_nodes: usize,
    /// Run label (scheduler policy triple).
    pub label: String,
}

/// What an observer learns when a run ends.
#[derive(Debug, Clone, Copy)]
pub struct RunEnd {
    /// Time of the last processed engine event.
    pub at: SimTime,
    /// End of the metrics window (clamped to the last job-affecting event
    /// on fault runs; equals `at` otherwise).
    pub end: SimTime,
    /// Engine events processed (arrivals + live finishes + faults).
    pub events_processed: u64,
    /// Scheduling passes executed.
    pub passes: u64,
    /// The run's deterministic trace hash.
    pub trace_hash: u64,
}

/// A consumer of the event stream. All methods default to no-ops, so an
/// observer implements only what it cares about.
///
/// Observers are strictly read-only with respect to the simulation:
/// nothing they do can change the run (the engine hands out data, never
/// control), which is what makes them hash-neutral by construction.
/// Implementations must be deterministic if their output is compared
/// across runs (the built-ins and `TraceSink` are).
pub trait Observer: Send {
    /// The run is about to execute.
    fn on_run_start(&mut self, _ctx: &RunContext) {}
    /// One state change happened.
    fn on_event(&mut self, _ev: &SimEvent) {}
    /// The run finished; flush/summarize here.
    fn on_run_end(&mut self, _end: &RunEnd) {}
    /// A deferred failure (e.g. a sink's I/O error), surfaced by callers
    /// that can propagate errors (the experiment runner checks this after
    /// every cell).
    fn failure(&self) -> Option<SimError> {
        None
    }
}

/// Identity of one run, handed to [`ObserverFactory`] so per-run sinks
/// can name their outputs.
#[derive(Debug, Clone)]
pub struct RunLabel {
    /// Human-readable label (cell label in grids, policy triple for
    /// stand-alone runs).
    pub label: String,
    /// Filesystem-safe unique stem derived from the label.
    pub file_stem: String,
}

impl RunLabel {
    /// A label with a sanitized file stem (every character outside
    /// `[A-Za-z0-9._+-]` becomes `-`).
    pub fn new(label: impl Into<String>) -> Self {
        let label = label.into();
        let file_stem: String = label
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '+' | '-') {
                    c
                } else {
                    '-'
                }
            })
            .collect();
        RunLabel { label, file_stem }
    }
}

/// Builds one fresh observer per run. Grids execute many runs (cells)
/// concurrently, and stateful observers cannot be shared between them —
/// so the attach points that outlive a single run
/// ([`crate::ObserverSet::factory`], `ExperimentRunner::observe`)
/// take factories.
pub trait ObserverFactory: Send + Sync {
    /// Create the observer for one run. Fallible so file-backed sinks can
    /// surface creation errors before the run starts.
    fn make(&self, run: &RunLabel) -> Result<Box<dyn Observer>, SimError>;
}

/// Closures work as factories: `runner.observe(Arc::new(|run: &RunLabel| …))`.
impl<F> ObserverFactory for F
where
    F: Fn(&RunLabel) -> Result<Box<dyn Observer>, SimError> + Send + Sync,
{
    fn make(&self, run: &RunLabel) -> Result<Box<dyn Observer>, SimError> {
        self(run)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_label_sanitizes() {
        let l = RunLabel::new("htc|load0.80|seed1|fcfs+easy/local only");
        assert_eq!(l.file_stem, "htc-load0.80-seed1-fcfs+easy-local-only");
        assert_eq!(l.label, "htc|load0.80|seed1|fcfs+easy/local only");
    }

    #[test]
    fn event_kind_and_time_accessors() {
        let ev = SimEvent::PassCompleted {
            at: SimTime::from_secs(5),
            started: 1,
            rejected: 0,
            queued: 2,
        };
        assert_eq!(ev.kind(), "pass");
        assert_eq!(ev.at(), SimTime::from_secs(5));
    }
}
