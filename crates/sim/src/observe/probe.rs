//! Sampling, progress, and counting observers.

use super::{Observer, RunContext, RunEnd, SimEvent};
use dmhpc_des::time::{SimDuration, SimTime};
use std::collections::BTreeMap;
use std::io::Write;

/// One sample of system state at a cadence boundary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampleRow {
    /// Sample time.
    pub at: SimTime,
    /// Wait-queue depth.
    pub queued: u32,
    /// Running jobs.
    pub running: u32,
    /// Busy nodes.
    pub nodes_busy: u32,
    /// Node-local DRAM pinned, MiB.
    pub dram_mib: u64,
    /// Pool memory borrowed, MiB.
    pub pool_mib: u64,
}

/// Samples system state (queue depth, running jobs, busy nodes, memory
/// occupancy) at a fixed cadence: output size is `makespan / cadence`,
/// independent of event count — the bounded-memory alternative to the
/// full [`crate::SeriesBundle`] breakpoints for long runs.
///
/// Sampling is deterministic step-and-hold: each sample reports the state
/// just before the first event at or after the sample instant.
#[derive(Debug, Clone)]
pub struct SampledSeriesProbe {
    cadence: SimDuration,
    next: Option<SimTime>,
    queued: i64,
    running: i64,
    nodes_busy: i64,
    dram_mib: i64,
    pool_mib: i64,
    rows: Vec<SampleRow>,
}

impl SampledSeriesProbe {
    /// A probe sampling every `cadence` of simulated time.
    ///
    /// # Panics
    /// Panics on a zero cadence.
    pub fn new(cadence: SimDuration) -> Self {
        assert!(!cadence.is_zero(), "sample cadence must be positive");
        SampledSeriesProbe {
            cadence,
            next: None,
            queued: 0,
            running: 0,
            nodes_busy: 0,
            dram_mib: 0,
            pool_mib: 0,
            rows: Vec::new(),
        }
    }

    /// The samples recorded so far.
    pub fn samples(&self) -> &[SampleRow] {
        &self.rows
    }

    fn sample_until(&mut self, at: SimTime) {
        while let Some(next) = self.next {
            if next > at {
                break;
            }
            let row = self.snapshot(next);
            self.rows.push(row);
            self.next = Some(next + self.cadence);
        }
    }

    fn snapshot(&self, at: SimTime) -> SampleRow {
        SampleRow {
            at,
            queued: self.queued.max(0) as u32,
            running: self.running.max(0) as u32,
            nodes_busy: self.nodes_busy.max(0) as u32,
            dram_mib: self.dram_mib.max(0) as u64,
            pool_mib: self.pool_mib.max(0) as u64,
        }
    }
}

impl Observer for SampledSeriesProbe {
    fn on_run_start(&mut self, ctx: &RunContext) {
        self.next = Some(ctx.start);
        self.rows.clear();
    }

    fn on_event(&mut self, ev: &SimEvent) {
        self.sample_until(ev.at());
        match *ev {
            SimEvent::JobSubmitted { .. } => self.queued += 1,
            SimEvent::JobStarted { .. } => {
                self.queued -= 1;
                self.running += 1;
            }
            SimEvent::AllocationGrabbed {
                nodes,
                local_mib,
                remote_mib,
                ..
            } => {
                self.nodes_busy += nodes as i64;
                self.dram_mib += local_mib as i64;
                self.pool_mib += remote_mib as i64;
            }
            SimEvent::AllocationReleased {
                nodes,
                local_mib,
                remote_mib,
                ..
            } => {
                self.running -= 1;
                self.nodes_busy -= nodes as i64;
                self.dram_mib -= local_mib as i64;
                self.pool_mib -= remote_mib as i64;
            }
            SimEvent::JobRejected { .. } => self.queued -= 1,
            SimEvent::JobFailed { ref record, .. } if record.start.is_none() => self.queued -= 1,
            _ => {}
        }
    }

    fn on_run_end(&mut self, end: &RunEnd) {
        // Drain pending cadence points, then close the series with one
        // final sample of the end-of-run state at the window end. On
        // fault runs, trailing repair/drain-end events can outlive the
        // clamped metrics window, leaving the last recorded row *past*
        // `end.end` — never append behind it (samples stay monotonic).
        self.sample_until(end.end);
        if self.rows.last().is_none_or(|r| r.at < end.end) {
            let row = self.snapshot(end.end);
            self.rows.push(row);
        }
    }
}

/// Emits a heartbeat line every `every` events — the long-run "is it
/// alive" signal. Writes to stderr by default; any `Write + Send` sink
/// can be substituted (tests use a buffer).
pub struct ProgressObserver {
    every: u64,
    seen: u64,
    lines: u64,
    label: String,
    out: Box<dyn Write + Send>,
}

impl std::fmt::Debug for ProgressObserver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProgressObserver")
            .field("every", &self.every)
            .field("seen", &self.seen)
            .finish()
    }
}

impl ProgressObserver {
    /// Report to stderr every `every` events (values < 1 clamp to 1).
    pub fn every(every: u64) -> Self {
        Self::to_writer(every, Box::new(std::io::stderr()))
    }

    /// Report into an arbitrary writer (tests, log files).
    pub fn to_writer(every: u64, out: Box<dyn Write + Send>) -> Self {
        ProgressObserver {
            every: every.max(1),
            seen: 0,
            lines: 0,
            label: String::new(),
            out,
        }
    }

    /// Heartbeat lines emitted so far.
    pub fn lines_emitted(&self) -> u64 {
        self.lines
    }
}

impl Observer for ProgressObserver {
    fn on_run_start(&mut self, ctx: &RunContext) {
        self.seen = 0;
        self.lines = 0;
        self.label = ctx.label.clone();
    }

    fn on_event(&mut self, ev: &SimEvent) {
        self.seen += 1;
        if self.seen.is_multiple_of(self.every) {
            self.lines += 1;
            let _ = writeln!(
                self.out,
                "[{}] {} events, t={:.1}h",
                self.label,
                self.seen,
                ev.at().as_hours_f64()
            );
        }
    }

    fn on_run_end(&mut self, end: &RunEnd) {
        let _ = writeln!(
            self.out,
            "[{}] done: {} observed events, {} engine events, {} passes",
            self.label, self.seen, end.events_processed, end.passes
        );
        let _ = self.out.flush();
    }
}

/// Counts events per kind — the cheapest possible observer (tests,
/// benches, quick sanity checks).
#[derive(Debug, Clone, Default)]
pub struct EventCounter {
    counts: BTreeMap<&'static str, u64>,
}

impl EventCounter {
    /// An empty counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Events of one kind (see [`SimEvent::kind`]).
    pub fn count(&self, kind: &str) -> u64 {
        self.counts.get(kind).copied().unwrap_or(0)
    }

    /// Total events observed.
    pub fn total(&self) -> u64 {
        self.counts.values().sum()
    }

    /// All (kind, count) pairs, sorted by kind.
    pub fn counts(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counts.iter().map(|(&k, &v)| (k, v))
    }
}

impl Observer for EventCounter {
    fn on_event(&mut self, ev: &SimEvent) {
        *self.counts.entry(ev.kind()).or_insert(0) += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmhpc_workload::{JobBuilder, JobId};

    fn submit(at: u64) -> SimEvent {
        SimEvent::JobSubmitted {
            at: SimTime::from_secs(at),
            job: JobBuilder::new(at).nodes(1).runtime_secs(10, 20).build(),
            resubmit: false,
        }
    }

    #[test]
    fn probe_samples_on_cadence() {
        let mut p = SampledSeriesProbe::new(SimDuration::from_secs(10));
        p.next = Some(SimTime::ZERO);
        p.on_event(&submit(5));
        p.on_event(&SimEvent::JobStarted {
            at: SimTime::from_secs(25),
            job: JobId(5),
            nodes: 1,
            dilation: 1.0,
        });
        // Samples at t=0 (before submit), 10, 20 (before start).
        assert_eq!(p.samples().len(), 3);
        assert_eq!(p.samples()[0].queued, 0);
        assert_eq!(p.samples()[1].queued, 1);
        assert_eq!(p.samples()[2].queued, 1);
        p.on_run_end(&RunEnd {
            at: SimTime::from_secs(31),
            end: SimTime::from_secs(31),
            events_processed: 2,
            passes: 1,
            trace_hash: 0,
        });
        // Cadence point at 30, then the closing end-of-window sample.
        let last = *p.samples().last().unwrap();
        assert_eq!(last.at, SimTime::from_secs(31));
        assert_eq!(last.queued, 0);
        assert_eq!(last.running, 1);
        let n = p.samples().len();
        assert_eq!(p.samples()[n - 2].at, SimTime::from_secs(30));
    }

    #[test]
    fn counter_counts_kinds() {
        let mut c = EventCounter::new();
        c.on_event(&submit(1));
        c.on_event(&submit(2));
        assert_eq!(c.count("submit"), 2);
        assert_eq!(c.count("start"), 0);
        assert_eq!(c.total(), 2);
    }

    #[test]
    fn progress_emits_on_schedule() {
        let mut p = ProgressObserver::to_writer(2, Box::new(std::io::sink()));
        for i in 0..5 {
            p.on_event(&submit(i));
        }
        assert_eq!(p.lines_emitted(), 2);
    }
}
