//! The built-in metric observers — the simulator's own metrics,
//! re-expressed as consumers of the event stream.
//!
//! The engine attaches all three to every run and assembles
//! [`crate::SimOutput`] from their final state. Each performs exactly the
//! floating-point operations the pre-observer engine performed, in the
//! same order, so the default observer set reproduces historic outputs
//! bit for bit (pinned by the golden-hash parity tests in
//! `tests/integration.rs`).

use super::{Observer, RunContext, SimEvent};
use crate::collector::SeriesBundle;
use dmhpc_des::time::{SimDuration, SimTime};
use dmhpc_metrics::{FaultSummary, JobRecord};
use dmhpc_platform::ClusterSpec;

/// Maintains the time-weighted system series ([`SeriesBundle`]) from the
/// event stream: queue depth from submit/start/reject events, busy
/// nodes and memory occupancy from allocation grab/release.
#[derive(Debug, Clone)]
pub struct SeriesObserver {
    bundle: SeriesBundle,
}

impl SeriesObserver {
    /// A series observer for a machine, with its time origin.
    pub fn new(start: SimTime, spec: &ClusterSpec) -> Self {
        SeriesObserver {
            bundle: SeriesBundle::new(start, spec),
        }
    }

    /// The live series.
    pub fn bundle(&self) -> &SeriesBundle {
        &self.bundle
    }

    /// Take the series out (end of run).
    pub fn into_bundle(self) -> SeriesBundle {
        self.bundle
    }
}

impl Observer for SeriesObserver {
    fn on_run_start(&mut self, ctx: &RunContext) {
        self.bundle = SeriesBundle::new(ctx.start, &ctx.cluster);
    }

    fn on_event(&mut self, ev: &SimEvent) {
        match *ev {
            SimEvent::JobSubmitted { at, .. } => self.bundle.on_queue_change(at, 1.0),
            SimEvent::JobStarted { at, .. } => self.bundle.on_queue_change(at, -1.0),
            SimEvent::AllocationGrabbed {
                at,
                nodes,
                local_mib,
                remote_mib,
                ..
            } => self.bundle.on_start(at, nodes, local_mib, remote_mib),
            SimEvent::AllocationReleased {
                at,
                nodes,
                local_mib,
                remote_mib,
                ..
            } => self.bundle.on_finish(at, nodes, local_mib, remote_mib),
            SimEvent::JobRejected { at, .. } => self.bundle.on_queue_change(at, -1.0),
            // A job that failed without ever starting was still queued.
            SimEvent::JobFailed { at, ref record } if record.start.is_none() => {
                self.bundle.on_queue_change(at, -1.0)
            }
            _ => {}
        }
    }
}

/// Collects the per-job outcome records in completion order (rejected
/// jobs at rejection time), exactly as `SimOutput::records` reports them.
#[derive(Debug, Clone, Default)]
pub struct JobStatsObserver {
    records: Vec<JobRecord>,
}

impl JobStatsObserver {
    /// An empty collector pre-sized for `jobs` records.
    pub fn with_capacity(jobs: usize) -> Self {
        JobStatsObserver {
            records: Vec::with_capacity(jobs),
        }
    }

    /// The records collected so far.
    pub fn records(&self) -> &[JobRecord] {
        &self.records
    }

    /// Take the records out (end of run).
    pub fn into_records(self) -> Vec<JobRecord> {
        self.records
    }
}

impl Observer for JobStatsObserver {
    fn on_run_start(&mut self, ctx: &RunContext) {
        self.records.clear();
        self.records.reserve(ctx.jobs);
    }

    fn on_event(&mut self, ev: &SimEvent) {
        match ev {
            SimEvent::JobFinished { record, .. }
            | SimEvent::JobFailed { record, .. }
            | SimEvent::JobRejected { record, .. } => self.records.push(record.clone()),
            _ => {}
        }
    }
}

/// Accumulates fault counters and the availability breakpoints, and
/// derives the [`FaultSummary`] at end of run.
#[derive(Debug, Clone)]
pub struct FaultObserver {
    interruptions: u64,
    resubmissions: u64,
    rework_s: f64,
    /// Availability breakpoints `(time, in-service nodes)`, seeded at the
    /// run origin; appended whenever a fault event changes the count.
    /// Kept as breakpoints (not a running integral) because the metrics
    /// window is clamped at finalize, which is unknown until then.
    avail_points: Vec<(SimTime, usize)>,
}

impl FaultObserver {
    /// A fault observer for a run starting at `start` with `in_service`
    /// nodes up.
    pub fn new(start: SimTime, in_service: usize) -> Self {
        FaultObserver {
            interruptions: 0,
            resubmissions: 0,
            rework_s: 0.0,
            avail_points: vec![(start, in_service)],
        }
    }

    fn note_avail(&mut self, at: SimTime, count: usize) {
        // lint: allow(panic) — the series is seeded with a t=0 point at construction
        if count != self.avail_points.last().expect("seeded at start").1 {
            self.avail_points.push((at, count));
        }
    }

    /// Derive the run's [`FaultSummary`] over the metrics window
    /// `[window start, end]`. `node_util` and the busy-node series come
    /// from the series observer; without downtime inside the window,
    /// `avail_util` is the *same expression* as `node_util` (bit-equal)
    /// and downtime is exactly zero — fault-free outputs are unchanged.
    pub fn finalize(
        &self,
        end: SimTime,
        makespan: SimDuration,
        total_nodes: f64,
        node_util: f64,
        series: &SeriesBundle,
    ) -> FaultSummary {
        let mut summary = FaultSummary {
            interruptions: self.interruptions,
            resubmissions: self.resubmissions,
            rework_s: self.rework_s,
            ..FaultSummary::default()
        };
        let had_downtime = self
            .avail_points
            .iter()
            .any(|&(t, count)| t < end && count != self.avail_points[0].1);
        if had_downtime {
            let mut avail_node_s = 0.0f64;
            for (i, &(t, count)) in self.avail_points.iter().enumerate() {
                if t >= end {
                    break;
                }
                let next = self
                    .avail_points
                    .get(i + 1)
                    .map(|&(t, _)| t.min_of(end))
                    .unwrap_or(end);
                avail_node_s += count as f64 * (next - t).as_secs_f64();
            }
            summary.downtime_node_s =
                (total_nodes * makespan.as_secs_f64() - avail_node_s).max(0.0);
            let busy_node_s = series.nodes_busy.stats().integral_until(end);
            summary.avail_util = if avail_node_s > 0.0 {
                busy_node_s / avail_node_s
            } else {
                0.0
            };
        } else {
            summary.avail_util = node_util;
        }
        summary
    }
}

impl Observer for FaultObserver {
    fn on_run_start(&mut self, ctx: &RunContext) {
        *self = FaultObserver::new(ctx.start, ctx.in_service_nodes);
    }

    fn on_event(&mut self, ev: &SimEvent) {
        match *ev {
            SimEvent::JobInterrupted {
                rework_s,
                resubmitted,
                ..
            } => {
                self.interruptions += 1;
                self.rework_s += rework_s;
                if resubmitted {
                    self.resubmissions += 1;
                }
            }
            SimEvent::FaultApplied {
                at,
                nodes_in_service,
                ..
            }
            | SimEvent::FaultCleared {
                at,
                nodes_in_service,
                ..
            } => self.note_avail(at, nodes_in_service),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::FaultAction;
    use dmhpc_platform::{NodeId, NodeSpec, PoolTopology};
    use dmhpc_workload::JobBuilder;

    fn spec() -> ClusterSpec {
        ClusterSpec::new(
            1,
            4,
            NodeSpec::new(8, 1000),
            PoolTopology::PerRack { mib_per_rack: 500 },
        )
    }

    #[test]
    fn series_observer_tracks_queue_and_allocations() {
        let mut obs = SeriesObserver::new(SimTime::ZERO, &spec());
        let job = JobBuilder::new(1).nodes(2).runtime_secs(10, 20).build();
        obs.on_event(&SimEvent::JobSubmitted {
            at: SimTime::ZERO,
            job,
            resubmit: false,
        });
        obs.on_event(&SimEvent::JobStarted {
            at: SimTime::from_secs(5),
            job: dmhpc_workload::JobId(1),
            nodes: 2,
            dilation: 1.0,
        });
        obs.on_event(&SimEvent::AllocationGrabbed {
            at: SimTime::from_secs(5),
            job: dmhpc_workload::JobId(1),
            nodes: 2,
            local_mib: 800,
            remote_mib: 100,
        });
        assert_eq!(obs.bundle().nodes_busy.stats().current(), 2.0);
        assert_eq!(obs.bundle().queue_depth.stats().current(), 0.0);
        obs.on_event(&SimEvent::AllocationReleased {
            at: SimTime::from_secs(15),
            job: dmhpc_workload::JobId(1),
            nodes: 2,
            local_mib: 800,
            remote_mib: 100,
        });
        assert_eq!(obs.bundle().nodes_busy.stats().current(), 0.0);
    }

    #[test]
    fn fault_observer_counts_and_integrates() {
        let mut obs = FaultObserver::new(SimTime::ZERO, 4);
        obs.on_event(&SimEvent::FaultApplied {
            at: SimTime::from_secs(10),
            action: FaultAction::NodeFail(NodeId(0)),
            nodes_in_service: 3,
        });
        obs.on_event(&SimEvent::JobInterrupted {
            at: SimTime::from_secs(10),
            job: dmhpc_workload::JobId(1),
            rework_s: 10.0,
            resubmitted: true,
        });
        obs.on_event(&SimEvent::FaultCleared {
            at: SimTime::from_secs(30),
            action: FaultAction::NodeRepair(NodeId(0)),
            nodes_in_service: 4,
        });
        let series = SeriesBundle::new(SimTime::ZERO, &spec());
        let end = SimTime::from_secs(40);
        let summary = obs.finalize(end, SimDuration::from_secs(40), 4.0, 0.0, &series);
        assert_eq!(summary.interruptions, 1);
        assert_eq!(summary.resubmissions, 1);
        assert!((summary.rework_s - 10.0).abs() < 1e-12);
        // 4×40 total − (4×10 + 3×20 + 4×10) = 20 node-seconds down.
        assert!((summary.downtime_node_s - 20.0).abs() < 1e-9);
    }

    #[test]
    fn stats_observer_keeps_record_order() {
        let mut obs = JobStatsObserver::with_capacity(2);
        let rec =
            |id: u64| dmhpc_metrics::JobRecord::rejected(JobBuilder::new(id).nodes(1).build());
        obs.on_event(&SimEvent::JobRejected {
            at: SimTime::ZERO,
            record: rec(7),
        });
        obs.on_event(&SimEvent::JobFinished {
            at: SimTime::ZERO,
            record: rec(3),
        });
        let ids: Vec<u64> = obs.records().iter().map(|r| r.job.id.0).collect();
        assert_eq!(ids, vec![7, 3]);
    }
}
