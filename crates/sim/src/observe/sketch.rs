//! The O(1)-memory streaming metrics observer for open-system runs.
//!
//! [`crate::observe::JobStatsObserver`] keeps every [`JobRecord`] — O(jobs)
//! memory, fatal for service runs streaming millions of arrivals.
//! [`SketchStatsObserver`] replaces it with
//! [`dmhpc_metrics::StreamingJobStats`] (P² quantile sketches + online
//! moments) and replaces the breakpoint-recording series of
//! [`crate::observe::SeriesObserver`] with plain [`TimeWeighted`]
//! integrators: the footprint is constant in both job count and event
//! count (growing only with the distinct-user population).
//!
//! **Warmup / measurement window.** Service runs report steady-state
//! numbers: per-job records whose event lands before `start + warmup` are
//! skipped (counted in `warmup_skipped`), and the time-weighted system
//! metrics are integrated over the measurement window `[start + warmup,
//! end]` — the integral at the cutoff is snapshotted at the first event
//! inside the window, which is exact because the signals are
//! piecewise-constant and every earlier update precedes the cutoff. The
//! queue-depth *maximum* remains run-global (a sketchless property of the
//! whole run). With zero warmup every reported quantity spans the full
//! run, and the quantile fields are the only ones that differ from a
//! batch run's exact report (by the P² sketch error; tested).

use super::{Observer, RunContext, SimEvent};
use dmhpc_des::stats::TimeWeighted;
use dmhpc_des::time::{SimDuration, SimTime};
use dmhpc_metrics::{
    ClassThresholds, FaultSummary, JobRecord, ServiceSummary, SimReport, StreamingJobStats,
    SystemSeriesStats,
};
use dmhpc_platform::ClusterSpec;

/// Streaming (constant-memory) replacement for the series + job-stats
/// observer pair. Attachable to closed runs too (e.g. to compare sketch
/// estimates against exact records); the engine attaches it automatically
/// on service runs.
#[derive(Debug, Clone)]
pub struct SketchStatsObserver {
    warmup: SimDuration,
    window_start: SimTime,
    stats: StreamingJobStats,
    warmup_skipped: u64,
    slo_wait_s: Option<f64>,
    nodes_busy: TimeWeighted,
    pool_used: TimeWeighted,
    dram_used: TimeWeighted,
    queue_depth: TimeWeighted,
    /// `[nodes_busy, pool_used, dram_used, queue_depth]` integrals at the
    /// window start, snapshotted at the first in-window event.
    window_base: Option<[f64; 4]>,
    total_nodes: f64,
    total_pool: f64,
    total_dram: f64,
}

impl SketchStatsObserver {
    /// An observer for a machine, with its time origin, warmup cutoff, and
    /// optional wait-SLO target.
    pub fn new(start: SimTime, spec: &ClusterSpec, warmup_s: u64, slo_wait_s: Option<f64>) -> Self {
        let warmup = SimDuration::from_secs(warmup_s);
        SketchStatsObserver {
            warmup,
            window_start: start + warmup,
            stats: StreamingJobStats::new(slo_wait_s),
            warmup_skipped: 0,
            slo_wait_s,
            nodes_busy: TimeWeighted::new(start, 0.0),
            pool_used: TimeWeighted::new(start, 0.0),
            dram_used: TimeWeighted::new(start, 0.0),
            queue_depth: TimeWeighted::new(start, 0.0),
            window_base: None,
            total_nodes: spec.total_nodes() as f64,
            total_pool: spec.total_pool_mem() as f64,
            total_dram: spec.total_local_mem() as f64,
        }
    }

    /// Jobs excluded by the warmup cutoff so far.
    pub fn warmup_skipped(&self) -> u64 {
        self.warmup_skipped
    }

    /// The live streaming accumulator.
    pub fn stats(&self) -> &StreamingJobStats {
        &self.stats
    }

    /// Snapshot the window-start integrals if `at` is the first event
    /// inside the measurement window. Exact: all earlier updates precede
    /// `window_start`, so `integral_until(window_start)` closes the last
    /// pre-window segment at the cutoff.
    fn note_window(&mut self, at: SimTime) {
        if self.window_base.is_none() && at >= self.window_start {
            self.window_base = Some([
                self.nodes_busy.integral_until(self.window_start),
                self.pool_used.integral_until(self.window_start),
                self.dram_used.integral_until(self.window_start),
                self.queue_depth.integral_until(self.window_start),
            ]);
        }
    }

    /// Fold a final per-job record in, subject to the warmup cutoff.
    fn observe_record(&mut self, at: SimTime, record: &JobRecord) {
        if at < self.window_start {
            self.warmup_skipped += 1;
        } else {
            self.stats.observe(record);
        }
    }

    /// The time-weighted system metrics over the measurement window
    /// ending at `end`.
    pub fn system_stats(&self, end: SimTime) -> SystemSeriesStats {
        let measure_start = self.window_start.min_of(end);
        let span = end.saturating_since(measure_start).as_secs_f64();
        // No event ever reached the window: every update precedes the
        // cutoff, so querying the integrators at it is still exact.
        let base = self.window_base.unwrap_or_else(|| {
            [
                self.nodes_busy.integral_until(measure_start),
                self.pool_used.integral_until(measure_start),
                self.dram_used.integral_until(measure_start),
                self.queue_depth.integral_until(measure_start),
            ]
        });
        let mean = |tw: &TimeWeighted, base: f64, denom: f64| {
            if span <= 0.0 || denom == 0.0 {
                0.0
            } else {
                (tw.integral_until(end) - base) / span / denom
            }
        };
        SystemSeriesStats {
            makespan_s: span,
            node_util: mean(&self.nodes_busy, base[0], self.total_nodes),
            pool_util: mean(&self.pool_used, base[1], self.total_pool),
            dram_util: mean(&self.dram_used, base[2], self.total_dram),
            queue_depth_mean: mean(&self.queue_depth, base[3], 1.0),
            queue_depth_max: self.queue_depth.max(),
        }
    }

    /// Synthesize the run's report and service summary at end of run.
    /// `faults` carries interruption counters and availability (service
    /// runs without fault scenarios pass a default whose `avail_util`
    /// equals the computed node utilization).
    pub fn finalize(
        &self,
        label: &str,
        end: SimTime,
        faults: Option<FaultSummary>,
        thresholds: &ClassThresholds,
    ) -> (SimReport, ServiceSummary) {
        let sys = self.system_stats(end);
        let faults = faults.unwrap_or(FaultSummary {
            avail_util: sys.node_util,
            ..FaultSummary::default()
        });
        let report = self.stats.report(label, &sys, &faults, thresholds);
        let summary = self.stats.service_summary(self.warmup_skipped);
        (report, summary)
    }
}

impl Observer for SketchStatsObserver {
    fn on_run_start(&mut self, ctx: &RunContext) {
        *self = SketchStatsObserver::new(
            ctx.start,
            &ctx.cluster,
            self.warmup.as_secs(),
            self.slo_wait_s,
        );
    }

    fn on_event(&mut self, ev: &SimEvent) {
        self.note_window(ev.at());
        match *ev {
            SimEvent::JobSubmitted { at, .. } => self.queue_depth.add(at, 1.0),
            SimEvent::JobStarted { at, .. } => self.queue_depth.add(at, -1.0),
            SimEvent::AllocationGrabbed {
                at,
                nodes,
                local_mib,
                remote_mib,
                ..
            } => {
                self.nodes_busy.add(at, nodes as f64);
                self.dram_used.add(at, local_mib as f64);
                self.pool_used.add(at, remote_mib as f64);
            }
            SimEvent::AllocationReleased {
                at,
                nodes,
                local_mib,
                remote_mib,
                ..
            } => {
                self.nodes_busy.add(at, -(nodes as f64));
                self.dram_used.add(at, -(local_mib as f64));
                self.pool_used.add(at, -(remote_mib as f64));
            }
            SimEvent::JobFinished { at, ref record } => self.observe_record(at, record),
            SimEvent::JobRejected { at, ref record } => {
                self.queue_depth.add(at, -1.0);
                self.observe_record(at, record);
            }
            SimEvent::JobFailed { at, ref record } => {
                if record.start.is_none() {
                    self.queue_depth.add(at, -1.0);
                }
                self.observe_record(at, record);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmhpc_platform::{NodeSpec, PoolTopology};
    use dmhpc_workload::{JobBuilder, JobId};

    fn spec() -> ClusterSpec {
        ClusterSpec::new(
            1,
            4,
            NodeSpec::new(8, 1000),
            PoolTopology::PerRack { mib_per_rack: 500 },
        )
    }

    fn finished(id: u64, arrival: u64, start: u64, finish: u64) -> SimEvent {
        SimEvent::JobFinished {
            at: SimTime::from_secs(finish),
            record: JobRecord {
                job: JobBuilder::new(id)
                    .arrival_secs(arrival)
                    .runtime_secs(finish - start, 2 * (finish - start))
                    .build(),
                outcome: dmhpc_metrics::JobOutcome::Completed,
                start: Some(SimTime::from_secs(start)),
                finish: Some(SimTime::from_secs(finish)),
                nodes_allocated: 1,
                remote_per_node: 0,
                dilation_planned: 1.0,
                dilation_actual: 1.0,
            },
        }
    }

    #[test]
    fn integrates_series_like_the_series_observer() {
        let mut obs = SketchStatsObserver::new(SimTime::ZERO, &spec(), 0, None);
        obs.on_event(&SimEvent::AllocationGrabbed {
            at: SimTime::ZERO,
            job: JobId(1),
            nodes: 2,
            local_mib: 800,
            remote_mib: 200,
        });
        obs.on_event(&SimEvent::AllocationReleased {
            at: SimTime::from_secs(50),
            job: JobId(1),
            nodes: 2,
            local_mib: 800,
            remote_mib: 200,
        });
        let sys = obs.system_stats(SimTime::from_secs(100));
        // Same arithmetic as SeriesBundle: 2 of 4 nodes for half the window.
        assert!((sys.node_util - 0.25).abs() < 1e-9);
        assert!((sys.dram_util - 0.1).abs() < 1e-9);
        assert!((sys.pool_util - 0.2).abs() < 1e-9);
        assert_eq!(sys.makespan_s, 100.0);
    }

    #[test]
    fn warmup_window_excludes_transient_jobs_and_time() {
        let mut obs = SketchStatsObserver::new(SimTime::ZERO, &spec(), 100, Some(30.0));
        // Finishes inside the warmup: skipped, not measured.
        obs.on_event(&finished(1, 0, 10, 50));
        // Busy the whole run: 1 node from t=0 to t=200.
        obs.on_event(&SimEvent::AllocationGrabbed {
            at: SimTime::ZERO,
            job: JobId(2),
            nodes: 1,
            local_mib: 0,
            remote_mib: 0,
        });
        // Finishes inside the window: measured (wait 20 > SLO? no, 20 <= 30).
        obs.on_event(&finished(3, 100, 120, 150));
        obs.on_event(&SimEvent::AllocationReleased {
            at: SimTime::from_secs(200),
            job: JobId(2),
            nodes: 1,
            local_mib: 0,
            remote_mib: 0,
        });
        assert_eq!(obs.warmup_skipped(), 1);
        assert_eq!(obs.stats().observed(), 1);
        let sys = obs.system_stats(SimTime::from_secs(200));
        // Window is [100, 200]; 1 of 4 nodes busy for all of it.
        assert_eq!(sys.makespan_s, 100.0);
        assert!((sys.node_util - 0.25).abs() < 1e-9);
        let (report, summary) = obs.finalize(
            "svc",
            SimTime::from_secs(200),
            None,
            &ClassThresholds::standard(1000),
        );
        assert_eq!(report.completed, 1);
        assert!((report.mean_wait_s - 20.0).abs() < 1e-9);
        assert_eq!(report.avail_util, report.node_util);
        assert_eq!(summary.warmup_skipped, 1);
        assert_eq!(summary.observed, 1);
        assert_eq!(summary.slo_attained, Some(1.0));
        assert_eq!(summary.slo_wait_s, Some(30.0));
    }

    #[test]
    fn no_event_reaches_the_window() {
        let mut obs = SketchStatsObserver::new(SimTime::ZERO, &spec(), 1000, None);
        obs.on_event(&finished(1, 0, 10, 50));
        // Run ends inside the warmup: nothing measured, empty window.
        let sys = obs.system_stats(SimTime::from_secs(50));
        assert_eq!(sys.makespan_s, 0.0);
        assert_eq!(sys.node_util, 0.0);
        assert_eq!(obs.warmup_skipped(), 1);
    }

    #[test]
    fn run_start_resets_but_keeps_configuration() {
        let mut obs = SketchStatsObserver::new(SimTime::ZERO, &spec(), 60, Some(10.0));
        obs.on_event(&finished(1, 0, 10, 20));
        assert_eq!(obs.warmup_skipped(), 1);
        obs.on_run_start(&RunContext {
            start: SimTime::from_secs(500),
            cluster: spec(),
            jobs: 0,
            in_service_nodes: 4,
            label: "x".into(),
        });
        assert_eq!(obs.warmup_skipped(), 0);
        assert_eq!(obs.stats().observed(), 0);
        // Warmup still applies, now relative to the new origin.
        obs.on_event(&finished(2, 500, 510, 540));
        assert_eq!(obs.warmup_skipped(), 1);
        obs.on_event(&finished(3, 500, 560, 600));
        assert_eq!(obs.stats().observed(), 1);
    }
}
