//! Exact time-weighted series collection.

use dmhpc_des::stats::StepSeries;
use dmhpc_des::time::SimTime;
use dmhpc_platform::ClusterSpec;

/// The system-level step series a run records — each updated exactly at the
/// event that changes it, so time-weighted means are exact, and each
/// resamplable for time-series figures (F7).
#[derive(Debug, Clone)]
pub struct SeriesBundle {
    /// Busy node count.
    pub nodes_busy: StepSeries,
    /// Pool MiB in use (all domains).
    pub pool_used: StepSeries,
    /// Node-local DRAM MiB pinned by running jobs.
    pub dram_used: StepSeries,
    /// Wait-queue depth.
    pub queue_depth: StepSeries,
    /// Machine constants for normalization.
    total_nodes: f64,
    total_pool: f64,
    total_dram: f64,
}

impl SeriesBundle {
    /// Fresh series for a machine, starting at `start`.
    pub fn new(start: SimTime, spec: &ClusterSpec) -> Self {
        SeriesBundle {
            nodes_busy: StepSeries::new(start, 0.0),
            pool_used: StepSeries::new(start, 0.0),
            dram_used: StepSeries::new(start, 0.0),
            queue_depth: StepSeries::new(start, 0.0),
            total_nodes: spec.total_nodes() as f64,
            total_pool: spec.total_pool_mem() as f64,
            total_dram: spec.total_local_mem() as f64,
        }
    }

    /// Rebuild a bundle from previously recorded breakpoints (the result
    /// cache's load path). Replaying the breakpoints through the same
    /// [`StepSeries`] update path reconstructs the integrators exactly, so
    /// a cache-loaded bundle is indistinguishable from the live one.
    /// Returns `None` if any series has no points (never produced by a
    /// run: construction records the initial value).
    pub fn from_points(
        spec: &ClusterSpec,
        nodes_busy: &[(SimTime, f64)],
        pool_used: &[(SimTime, f64)],
        dram_used: &[(SimTime, f64)],
        queue_depth: &[(SimTime, f64)],
    ) -> Option<Self> {
        fn replay(points: &[(SimTime, f64)]) -> Option<StepSeries> {
            let (&(start, initial), rest) = points.split_first()?;
            let mut s = StepSeries::new(start, initial);
            for &(at, value) in rest {
                s.update(at, value);
            }
            Some(s)
        }
        Some(SeriesBundle {
            nodes_busy: replay(nodes_busy)?,
            pool_used: replay(pool_used)?,
            dram_used: replay(dram_used)?,
            queue_depth: replay(queue_depth)?,
            total_nodes: spec.total_nodes() as f64,
            total_pool: spec.total_pool_mem() as f64,
            total_dram: spec.total_local_mem() as f64,
        })
    }

    /// Record a job start.
    pub fn on_start(&mut self, at: SimTime, nodes: u32, local_mib: u64, remote_mib: u64) {
        self.nodes_busy.add(at, nodes as f64);
        self.dram_used.add(at, local_mib as f64);
        self.pool_used.add(at, remote_mib as f64);
    }

    /// Record a job finish.
    pub fn on_finish(&mut self, at: SimTime, nodes: u32, local_mib: u64, remote_mib: u64) {
        self.nodes_busy.add(at, -(nodes as f64));
        self.dram_used.add(at, -(local_mib as f64));
        self.pool_used.add(at, -(remote_mib as f64));
    }

    /// Record a queue-depth change (`delta` of ±1 usually).
    pub fn on_queue_change(&mut self, at: SimTime, delta: f64) {
        self.queue_depth.add(at, delta);
    }

    /// Time-weighted node utilization over `[start, end]`.
    pub fn node_util(&self, end: SimTime) -> f64 {
        if self.total_nodes == 0.0 {
            return 0.0;
        }
        self.nodes_busy.stats().mean_until(end) / self.total_nodes
    }

    /// Time-weighted pool utilization (0 without pools).
    pub fn pool_util(&self, end: SimTime) -> f64 {
        if self.total_pool == 0.0 {
            return 0.0;
        }
        self.pool_used.stats().mean_until(end) / self.total_pool
    }

    /// Time-weighted DRAM utilization.
    pub fn dram_util(&self, end: SimTime) -> f64 {
        if self.total_dram == 0.0 {
            return 0.0;
        }
        self.dram_used.stats().mean_until(end) / self.total_dram
    }

    /// Time-weighted mean queue depth.
    pub fn queue_depth_mean(&self, end: SimTime) -> f64 {
        self.queue_depth.stats().mean_until(end)
    }

    /// Peak queue depth.
    pub fn queue_depth_max(&self) -> f64 {
        self.queue_depth.stats().max()
    }

    /// Pool utilization as a resampled fraction series (for F7). Like
    /// every `*_series` helper, x is fractional hours and y a fraction of
    /// capacity, via the shared [`StepSeries::resample_over`].
    pub fn pool_util_series(&self, end: SimTime, points: usize) -> Vec<(f64, f64)> {
        if self.total_pool == 0.0 {
            return Vec::new();
        }
        self.pool_used.resample_over(end, points, self.total_pool)
    }

    /// Busy-node fraction as a resampled series (for F2).
    pub fn node_util_series(&self, end: SimTime, points: usize) -> Vec<(f64, f64)> {
        if self.total_nodes == 0.0 {
            return Vec::new();
        }
        self.nodes_busy.resample_over(end, points, self.total_nodes)
    }

    /// Pinned-DRAM fraction as a resampled series (for F2).
    pub fn dram_util_series(&self, end: SimTime, points: usize) -> Vec<(f64, f64)> {
        if self.total_dram == 0.0 {
            return Vec::new();
        }
        self.dram_used.resample_over(end, points, self.total_dram)
    }

    /// Queue depth as a resampled series (raw counts, x in hours).
    pub fn queue_depth_series(&self, end: SimTime, points: usize) -> Vec<(f64, f64)> {
        self.queue_depth.resample_over(end, points, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmhpc_platform::{NodeSpec, PoolTopology};

    fn spec() -> ClusterSpec {
        ClusterSpec::new(
            2,
            2,
            NodeSpec::new(4, 1000),
            PoolTopology::PerRack { mib_per_rack: 500 },
        )
    }

    #[test]
    fn utilization_math() {
        let mut s = SeriesBundle::new(SimTime::ZERO, &spec());
        // 2 of 4 nodes busy for the first half of a 100 s window.
        s.on_start(SimTime::ZERO, 2, 800, 200);
        s.on_finish(SimTime::from_secs(50), 2, 800, 200);
        let end = SimTime::from_secs(100);
        assert!((s.node_util(end) - 0.25).abs() < 1e-9);
        // DRAM: 800 of 4000 for half the time = 0.1.
        assert!((s.dram_util(end) - 0.1).abs() < 1e-9);
        // Pool: 200 of 1000 for half = 0.1.
        assert!((s.pool_util(end) - 0.1).abs() < 1e-9);
    }

    #[test]
    fn queue_depth_tracking() {
        let mut s = SeriesBundle::new(SimTime::ZERO, &spec());
        s.on_queue_change(SimTime::ZERO, 1.0);
        s.on_queue_change(SimTime::from_secs(10), 1.0);
        s.on_queue_change(SimTime::from_secs(20), -2.0);
        let end = SimTime::from_secs(40);
        // 1×10 + 2×10 + 0×20 = 30 over 40 s.
        assert!((s.queue_depth_mean(end) - 0.75).abs() < 1e-9);
        assert_eq!(s.queue_depth_max(), 2.0);
    }

    #[test]
    fn pool_series_normalized() {
        let mut s = SeriesBundle::new(SimTime::ZERO, &spec());
        s.on_start(SimTime::ZERO, 1, 0, 500);
        let pts = s.pool_util_series(SimTime::from_secs(3600), 4);
        assert_eq!(pts.len(), 4);
        assert!((pts[0].1 - 0.5).abs() < 1e-9);
        assert!((pts[3].0 - 1.0).abs() < 1e-9, "x in hours");
    }

    #[test]
    fn all_series_helpers_share_the_resample_path() {
        let mut s = SeriesBundle::new(SimTime::ZERO, &spec());
        s.on_start(SimTime::ZERO, 2, 2000, 500);
        s.on_queue_change(SimTime::ZERO, 3.0);
        let end = SimTime::from_secs(3600);
        let nodes = s.node_util_series(end, 3);
        let dram = s.dram_util_series(end, 3);
        let queue = s.queue_depth_series(end, 3);
        assert!((nodes[0].1 - 0.5).abs() < 1e-9, "2 of 4 nodes");
        assert!((dram[0].1 - 0.5).abs() < 1e-9, "2000 of 4000 MiB");
        assert_eq!(queue[0].1, 3.0, "queue depth is raw counts");
        // x axes agree: one shared resample grid.
        assert_eq!(nodes[1].0, dram[1].0);
        assert_eq!(nodes[1].0, queue[1].0);
    }

    #[test]
    fn from_points_replays_exactly() {
        let mut s = SeriesBundle::new(SimTime::ZERO, &spec());
        s.on_start(SimTime::ZERO, 2, 800, 200);
        s.on_queue_change(SimTime::from_secs(10), 3.0);
        s.on_finish(SimTime::from_secs(50), 2, 800, 200);
        let rebuilt = SeriesBundle::from_points(
            &spec(),
            s.nodes_busy.points(),
            s.pool_used.points(),
            s.dram_used.points(),
            s.queue_depth.points(),
        )
        .unwrap();
        let end = SimTime::from_secs(100);
        assert_eq!(rebuilt.node_util(end), s.node_util(end));
        assert_eq!(rebuilt.pool_util(end), s.pool_util(end));
        assert_eq!(rebuilt.dram_util(end), s.dram_util(end));
        assert_eq!(rebuilt.queue_depth_mean(end), s.queue_depth_mean(end));
        assert_eq!(rebuilt.queue_depth_max(), s.queue_depth_max());
        assert_eq!(rebuilt.nodes_busy.points(), s.nodes_busy.points());
        assert!(SeriesBundle::from_points(&spec(), &[], &[], &[], &[]).is_none());
    }

    #[test]
    fn no_pool_machine() {
        let spec = ClusterSpec::new(1, 2, NodeSpec::new(4, 1000), PoolTopology::None);
        let s = SeriesBundle::new(SimTime::ZERO, &spec);
        assert_eq!(s.pool_util(SimTime::from_secs(10)), 0.0);
        assert!(s.pool_util_series(SimTime::from_secs(10), 4).is_empty());
    }
}
