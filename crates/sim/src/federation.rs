//! Federated multi-cluster simulation: N sites behind one meta-scheduler.
//!
//! A [`FleetSpec`] describes a *fleet*: N sites, each an independent
//! cluster with its own scheduler, fed by a single arrival stream. A
//! deterministic meta-scheduler (a [`dmhpc_sched::MetaPolicy`]) routes
//! every arriving job to exactly one site; each site then schedules it
//! with its own policy triple, oblivious to the rest of the fleet.
//!
//! # Epoch-synchronized execution
//!
//! Sites advance in conservative lockstep **epochs** of `epoch_s`
//! simulated seconds. Fleet time is divided into barriers
//! `t_k = origin + k·epoch`; a job with `arrival ∈ [t_k, t_k + epoch)`
//! belongs to epoch `k` and is routed **at barrier `t_k`**, after every
//! site has simulated all events strictly before `t_k`:
//!
//! 1. all sites advance to the barrier (events `< t_k`),
//! 2. each site is snapshotted ([`dmhpc_sched::SiteSnapshot`]: queue
//!    depth, free nodes, memory pressure),
//! 3. the meta-policy routes the epoch's jobs in arrival order against
//!    those snapshots (adjusted in-batch via `note_routed`), and each
//!    routed job is injected into its site *at its true arrival time*,
//! 4. sites simulate the epoch (up to the next barrier of interest —
//!    barriers with no arrivals are skipped wholesale, which changes
//!    nothing observable because no routing decision falls in them).
//!
//! Routing therefore sees site state that is `≤ epoch_s` stale — the
//! conservative-synchronization trade every parallel DES makes — but it
//! is a **pure function of the spec and seed**: snapshots are taken at
//! deterministic instants, routing order is arrival order, and ties
//! break by site index. Results are byte-identical from 1 to N worker
//! threads and across event-queue backends (tested).
//!
//! # Parallelism
//!
//! With `workers > 1` the sites are partitioned round-robin over worker
//! threads (site `i` on worker `i mod W`); each worker owns its site
//! engines for the whole run and the coordinator exchanges only plain
//! data (routed jobs in, snapshots out) at barriers. This is the
//! simulator's first *within-run* use of multiple cores: one huge
//! federated run scales with the machine instead of only grid cells
//! (`engine_scale` bench; `fleet_scale_ratio` gate).

use crate::collector::SeriesBundle;
use crate::config::SimConfig;
use crate::engine::{SimOutput, SiteEngine, FNV_OFFSET, FNV_PRIME};
use crate::error::SimError;
use crate::faults::FaultSpec;
use crate::service::ServiceSpec;
use dmhpc_des::time::{SimDuration, SimTime};
use dmhpc_metrics::{ClassThresholds, FaultSummary, RunData, SimReport};
use dmhpc_platform::ClusterSpec;
use dmhpc_sched::{MetaPolicy, MetaPolicyKind, Scheduler, SchedulerConfig, SiteSnapshot};
use dmhpc_workload::{Job, Workload};
use std::sync::mpsc;

/// One site of a fleet: a label plus optionally pinned machine shape and
/// scheduler. `None` fields inherit the enclosing experiment cell's
/// cluster / scheduler axes, so a symmetric fleet crosses meaningfully
/// with every existing axis; pinning them builds heterogeneous fleets.
#[derive(Debug, Clone, PartialEq)]
pub struct SiteSpec {
    /// Site name for per-site reporting (must be unique in the fleet).
    // lint: allow(hash-field) — presentation-only site name; cell identity hashes the site's cluster, scheduler, and weight
    pub label: String,
    /// Machine shape; `None` inherits the cell's cluster.
    pub cluster: Option<ClusterSpec>,
    /// Scheduling policy; `None` inherits the cell's scheduler.
    pub scheduler: Option<SchedulerConfig>,
}

impl SiteSpec {
    /// A site inheriting both the cell's cluster and scheduler.
    pub fn inherit(label: impl Into<String>) -> Self {
        SiteSpec {
            label: label.into(),
            cluster: None,
            scheduler: None,
        }
    }
}

/// A federated fleet scenario: the sites, the epoch length, and the
/// meta-scheduling policy. Follows the same axis conventions as
/// [`FaultSpec`] / [`ServiceSpec`]: [`FleetSpec::none`] means "no
/// federation" and is **hash-neutral** — fleet-free cells hash and replay
/// bit-identically to pre-federation caches.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetSpec {
    /// The sites, in fleet order (site index = position).
    pub sites: Vec<SiteSpec>,
    /// Epoch length in simulated seconds: how stale routing snapshots may
    /// get, and the granularity of the conservative lockstep.
    pub epoch_s: f64,
    /// The meta-scheduling policy routing jobs to sites.
    pub policy: MetaPolicyKind,
}

impl FleetSpec {
    /// The no-federation marker (hash-neutral; single-cluster run).
    pub fn none() -> Self {
        FleetSpec {
            sites: Vec::new(),
            epoch_s: 0.0,
            policy: MetaPolicyKind::default(),
        }
    }

    /// True when this is [`FleetSpec::none`].
    pub fn is_none(&self) -> bool {
        self.sites.is_empty()
    }

    /// A fleet of `n` sites inheriting the cell's cluster and scheduler.
    pub fn symmetric(n: usize, epoch_s: f64, policy: MetaPolicyKind) -> Self {
        FleetSpec {
            sites: (0..n)
                .map(|i| SiteSpec::inherit(format!("site{i}")))
                .collect(),
            epoch_s,
            policy,
        }
    }

    /// Add a site with a pinned cluster and/or scheduler.
    pub fn with_site(
        mut self,
        label: impl Into<String>,
        cluster: Option<ClusterSpec>,
        scheduler: Option<SchedulerConfig>,
    ) -> Self {
        self.sites.push(SiteSpec {
            label: label.into(),
            cluster,
            scheduler,
        });
        self
    }

    /// Axis label, e.g. `fleet4-least-queue-e300`.
    pub fn label(&self) -> String {
        if self.is_none() {
            return "no-fleet".into();
        }
        format!(
            "fleet{}-{}-e{}",
            self.sites.len(),
            self.policy.name(),
            self.epoch_s
        )
    }

    /// Intrinsic validation (cluster-independent). [`FleetSpec::none`]
    /// is always valid.
    pub fn validate(&self) -> Result<(), SimError> {
        if self.is_none() {
            return Ok(());
        }
        if !(self.epoch_s.is_finite() && self.epoch_s > 0.0) {
            return Err(SimError::spec(format!(
                "fleet epoch must be a positive finite number of seconds, got {}",
                self.epoch_s
            )));
        }
        for (i, site) in self.sites.iter().enumerate() {
            if site.label.is_empty() {
                return Err(SimError::spec(format!("fleet site {i} has an empty label")));
            }
            if self.sites[..i].iter().any(|s| s.label == site.label) {
                return Err(SimError::spec(format!(
                    "duplicate fleet site label '{}'",
                    site.label
                )));
            }
            if let Some(c) = &site.cluster {
                c.validate()?;
            }
            if let Some(s) = &site.scheduler {
                s.slowdown.validate()?;
            }
        }
        Ok(())
    }

    /// Validation against the cluster the unpinned sites would inherit.
    pub fn validate_for(&self, cluster: &ClusterSpec) -> Result<(), SimError> {
        self.validate()?;
        if !self.is_none() {
            cluster.validate()?;
        }
        Ok(())
    }

    /// Total nodes across the fleet, with unpinned sites resolved against
    /// `inherited` — the capacity offered-load scaling is relative to.
    pub fn total_nodes(&self, inherited: &ClusterSpec) -> u32 {
        self.sites
            .iter()
            .map(|s| s.cluster.as_ref().unwrap_or(inherited).total_nodes())
            .sum()
    }
}

/// A runnable fleet: resolved sites plus execution knobs. Construction
/// validates everything ([`SimError`]), so [`FleetSimulation::run`] is
/// infallible — the same convention as [`crate::Simulation`].
#[derive(Debug)]
pub struct FleetSimulation {
    sites: Vec<ResolvedSite>,
    base: SimConfig,
    epoch: SimDuration,
    policy: MetaPolicyKind,
    workers: usize,
}

/// One site with inheritance applied: a complete per-site [`SimConfig`].
#[derive(Debug, Clone)]
struct ResolvedSite {
    label: String,
    cfg: SimConfig,
}

/// Everything a fleet run produces: the per-site outputs (one full
/// [`SimOutput`] per site, byte-identical to what that site would report
/// standalone given the same injected jobs) plus a synthesized aggregate.
#[derive(Debug, Clone)]
pub struct FleetOutput {
    /// Site labels, in fleet order.
    pub site_labels: Vec<String>,
    /// Per-site outputs, in fleet order.
    pub site_outputs: Vec<SimOutput>,
    /// Jobs routed to each site, in fleet order.
    pub routed_jobs: Vec<u64>,
    /// Fleet-level view: merged records, capacity-weighted utilizations,
    /// fleet makespan, and a combined trace hash (FNV-1a over the
    /// per-site hashes in site order — equal hashes ⇒ identical fleet
    /// runs).
    pub aggregate: SimOutput,
}

impl FleetSimulation {
    /// Resolve `fleet` against `base` (the config unpinned sites
    /// inherit; its `event_queue`, `enforce_walltime`, and
    /// `check_invariants` knobs apply to every site).
    pub fn new(fleet: &FleetSpec, base: SimConfig) -> Result<Self, SimError> {
        if fleet.is_none() {
            return Err(SimError::spec(
                "fleet spec has no sites (use Simulation for single-cluster runs)",
            ));
        }
        fleet.validate_for(&base.cluster)?;
        let sites = fleet
            .sites
            .iter()
            .map(|s| {
                let mut cfg = base;
                if let Some(c) = &s.cluster {
                    cfg.cluster = *c;
                }
                if let Some(sc) = &s.scheduler {
                    cfg.scheduler = *sc;
                }
                // Per-site schedulers must construct cleanly now so the
                // run (possibly on a worker thread) cannot fail.
                Scheduler::new(cfg.scheduler)?;
                Ok(ResolvedSite {
                    label: s.label.clone(),
                    cfg,
                })
            })
            .collect::<Result<Vec<_>, SimError>>()?;
        Ok(FleetSimulation {
            sites,
            base,
            // At least one microsecond, so barriers always advance.
            epoch: SimDuration::from_micros(
                SimDuration::from_secs_f64(fleet.epoch_s).as_micros().max(1),
            ),
            policy: fleet.policy,
            workers: 1,
        })
    }

    /// Set the worker-thread count (clamped to `[1, sites]`). Purely an
    /// execution knob: results are byte-identical at any setting.
    pub fn workers(mut self, n: usize) -> Self {
        self.workers = n.max(1);
        self
    }

    /// Site labels in fleet order.
    pub fn site_labels(&self) -> Vec<String> {
        self.sites.iter().map(|s| s.label.clone()).collect()
    }

    /// Simulate the workload across the fleet to completion.
    pub fn run(&self, workload: &Workload) -> FleetOutput {
        let origin = workload.first_arrival().unwrap_or(SimTime::ZERO);
        let mut router = Router {
            jobs: workload.jobs(),
            cursor: 0,
            origin_us: origin.as_micros(),
            epoch_us: self.epoch.as_micros(),
            policy: self.policy.build(),
            routed: vec![0u64; self.sites.len()],
        };
        let workers = self.workers.min(self.sites.len()).max(1);
        let site_outputs = if workers <= 1 {
            let runtimes: Vec<SiteRuntime> =
                self.sites.iter().map(|s| SiteRuntime::new(s.cfg)).collect();
            let empty = Workload::from_jobs(Vec::new());
            let engines: Vec<SiteEngine<'_>> = runtimes
                .iter()
                .map(|rt| rt.engine(&empty, origin))
                .collect();
            run_epochs(
                SerialTransport {
                    engines,
                    empty: &empty,
                },
                &mut router,
            )
        } else {
            self.run_threaded(workers, origin, &mut router)
        };
        let aggregate = self.aggregate(origin, &site_outputs);
        FleetOutput {
            site_labels: self.site_labels(),
            site_outputs,
            routed_jobs: router.routed,
            aggregate,
        }
    }

    /// The threaded execution path: site `i` lives on worker `i mod W`
    /// for the whole run; the coordinator exchanges routed jobs and
    /// snapshots over channels at each barrier.
    fn run_threaded(&self, workers: usize, origin: SimTime, router: &mut Router) -> Vec<SimOutput> {
        std::thread::scope(|scope| {
            let links: Vec<WorkerLink> = (0..workers)
                .map(|w| {
                    let (cmd_tx, cmd_rx) = mpsc::channel::<Cmd>();
                    let (rep_tx, rep_rx) = mpsc::channel::<Reply>();
                    let my_sites: Vec<(usize, SimConfig)> = self
                        .sites
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| i % workers == w)
                        .map(|(i, s)| (i, s.cfg))
                        .collect();
                    scope.spawn(move || worker_loop(my_sites, origin, cmd_rx, rep_tx));
                    WorkerLink {
                        cmd: cmd_tx,
                        reply: rep_rx,
                    }
                })
                .collect();
            run_epochs(
                ThreadedTransport {
                    links,
                    sites: self.sites.len(),
                },
                router,
            )
        })
    }

    /// Synthesize the fleet-level [`SimOutput`] from the per-site ones.
    ///
    /// Records are concatenated in site order; utilizations are
    /// capacity-and-time weighted over the fleet window (each site's
    /// busy resource-seconds recovered as `util × capacity × site
    /// makespan`); the queue-depth integral sums across sites; the
    /// queue-depth max is the deepest single-site queue (a cross-site
    /// instantaneous sum is not recoverable from summaries). The trace
    /// hash chains the per-site hashes with FNV-1a in site order.
    fn aggregate(&self, origin: SimTime, outputs: &[SimOutput]) -> SimOutput {
        let end_time = outputs
            .iter()
            .map(|o| o.end_time)
            .fold(origin, SimTime::max_of);
        // Sites are fault-free and share the fleet origin, so each
        // site's makespan is exactly its last event time minus origin.
        let site_span = |o: &SimOutput| o.end_time.saturating_since(origin).as_secs_f64();
        let makespan_s = end_time.saturating_since(origin).as_secs_f64();
        let mut busy_node_s = 0.0f64;
        let mut busy_pool_s = 0.0f64;
        let mut busy_dram_s = 0.0f64;
        let mut nodes = 0.0f64;
        let mut pool_mem = 0.0f64;
        let mut dram_mem = 0.0f64;
        let mut queue_integral = 0.0f64;
        let mut queue_max = 0.0f64;
        let mut records = Vec::new();
        let mut events_processed = 0u64;
        let mut passes = 0u64;
        let mut preemptions = 0u64;
        let mut trace_hash = FNV_OFFSET;
        for (site, out) in self.sites.iter().zip(outputs) {
            let span = site_span(out);
            let n = site.cfg.cluster.total_nodes() as f64;
            let pool = site.cfg.cluster.total_pool_mem() as f64;
            let dram = site.cfg.cluster.total_local_mem() as f64;
            busy_node_s += out.report.node_util * n * span;
            busy_pool_s += out.report.pool_util * pool * span;
            busy_dram_s += out.report.dram_util * dram * span;
            nodes += n;
            pool_mem += pool;
            dram_mem += dram;
            queue_integral += out.report.queue_depth_mean * span;
            queue_max = queue_max.max(out.report.queue_depth_max);
            records.extend(out.records.iter().cloned());
            events_processed += out.events_processed;
            passes += out.passes;
            preemptions += out.preemptions;
            for byte in out.trace_hash.to_le_bytes() {
                trace_hash ^= byte as u64;
                trace_hash = trace_hash.wrapping_mul(FNV_PRIME);
            }
        }
        let frac = |num: f64, cap: f64| {
            if cap > 0.0 && makespan_s > 0.0 {
                num / (cap * makespan_s)
            } else {
                0.0
            }
        };
        let node_util = frac(busy_node_s, nodes);
        let data = RunData {
            label: self.base.scheduler.label(),
            records: records.clone(),
            makespan_s,
            node_util,
            pool_util: frac(busy_pool_s, pool_mem),
            dram_util: frac(busy_dram_s, dram_mem),
            queue_depth_mean: if makespan_s > 0.0 {
                queue_integral / makespan_s
            } else {
                0.0
            },
            queue_depth_max: queue_max,
            // Fleets carry no fault scenario (excluded at the spec
            // level), so the summary is the fault-free default with
            // avail_util == node_util.
            faults: FaultSummary {
                avail_util: node_util,
                ..FaultSummary::default()
            },
        };
        let thresholds = ClassThresholds::standard(self.base.cluster.node.local_mem);
        SimOutput {
            report: SimReport::compute(&data, &thresholds),
            records,
            series: SeriesBundle::new(origin, &self.base.cluster),
            events_processed,
            passes,
            trace_hash,
            end_time,
            faults: data.faults,
            preemptions,
            service: None,
        }
    }
}

/// The per-site owned state a [`SiteEngine`] borrows from. Fleet sites
/// never carry faults or services; the none specs live here so the
/// engine's borrowed fields have a stable home.
struct SiteRuntime {
    cfg: SimConfig,
    scheduler: Scheduler,
    faults: FaultSpec,
    service: ServiceSpec,
}

impl SiteRuntime {
    fn new(cfg: SimConfig) -> Self {
        SiteRuntime {
            // lint: allow(panic) — compile()/FleetSpec validation vetted every site scheduler
            scheduler: Scheduler::new(cfg.scheduler).expect("fleet site scheduler validated"),
            faults: FaultSpec::none(),
            service: ServiceSpec::none(),
            cfg,
        }
    }

    fn engine<'a>(&'a self, empty: &Workload, origin: SimTime) -> SiteEngine<'a> {
        SiteEngine::new(
            &self.cfg,
            &self.scheduler,
            &self.faults,
            &self.service,
            empty,
            origin,
        )
    }
}

/// Routes the arrival stream epoch by epoch, tracking the cursor into
/// the (arrival-sorted) job list and the per-site routing tallies.
struct Router<'a> {
    jobs: &'a [Job],
    cursor: usize,
    origin_us: u64,
    epoch_us: u64,
    policy: Box<dyn MetaPolicy>,
    routed: Vec<u64>,
}

impl Router<'_> {
    /// The barrier opening the epoch the next unrouted job falls in;
    /// `None` when every job is routed. Jumping straight here skips
    /// arrival-free epochs — no routing decision can fall in them, so
    /// the event-level execution is identical.
    fn next_barrier(&self) -> Option<SimTime> {
        let j = self.jobs.get(self.cursor)?;
        let k = (j.arrival.as_micros() - self.origin_us) / self.epoch_us;
        Some(SimTime::from_micros(self.origin_us + k * self.epoch_us))
    }

    /// Route every job arriving in `[barrier, barrier + epoch)`, in
    /// arrival order, adjusting `snaps` in-batch so later decisions see
    /// earlier ones.
    fn route_batch(&mut self, barrier: SimTime, snaps: &mut [SiteSnapshot]) -> Vec<(usize, Job)> {
        let end_us = barrier.as_micros().saturating_add(self.epoch_us);
        let mut batch = Vec::new();
        while let Some(j) = self.jobs.get(self.cursor) {
            if j.arrival.as_micros() >= end_us {
                break;
            }
            let site = self.policy.route(j, snaps);
            assert!(site < snaps.len(), "meta policy routed past the fleet");
            snaps[site].note_routed(j);
            self.routed[site] += 1;
            batch.push((site, j.clone()));
            self.cursor += 1;
        }
        batch
    }
}

/// How the epoch coordinator reaches the site engines: inline (serial)
/// or over channels (threaded). The coordinator issues the exact same
/// call sequence either way, which is what makes worker count a pure
/// execution knob.
trait EpochTransport {
    /// Inject the routed `batch`, advance every site to `until`, and
    /// return the barrier snapshots indexed by site.
    fn step(&mut self, batch: Vec<(usize, Job)>, until: SimTime) -> Vec<SiteSnapshot>;
    /// Inject the final `batch`, drain every site, and return the
    /// per-site outputs in fleet order.
    fn finish(self, batch: Vec<(usize, Job)>) -> Vec<SimOutput>;
}

/// The conservative-lockstep epoch loop, shared by both transports.
fn run_epochs<T: EpochTransport>(mut transport: T, router: &mut Router) -> Vec<SimOutput> {
    let origin = SimTime::from_micros(router.origin_us);
    // A zero-length step yields the initial (empty-fleet) snapshots.
    let mut snaps = transport.step(Vec::new(), origin);
    let mut advanced = origin;
    loop {
        let Some(barrier) = router.next_barrier() else {
            return transport.finish(Vec::new());
        };
        if barrier > advanced {
            // Only reachable on the first iteration (later iterations
            // pre-advance to the next barrier below); re-snapshot at it.
            snaps = transport.step(Vec::new(), barrier);
        }
        let batch = router.route_batch(barrier, &mut snaps);
        match router.next_barrier() {
            // The next routing decision is at `next` (≥ one epoch ahead
            // — route_batch consumed the whole current epoch), so the
            // sites can safely simulate up to it in one stride.
            Some(next) => {
                snaps = transport.step(batch, next);
                advanced = next;
            }
            None => return transport.finish(batch),
        }
    }
}

/// All sites advanced inline on the caller's thread.
struct SerialTransport<'e, 'a> {
    engines: Vec<SiteEngine<'a>>,
    empty: &'e Workload,
}

impl EpochTransport for SerialTransport<'_, '_> {
    fn step(&mut self, batch: Vec<(usize, Job)>, until: SimTime) -> Vec<SiteSnapshot> {
        for (site, job) in batch {
            self.engines[site].inject(job);
        }
        for e in self.engines.iter_mut() {
            e.advance_until(self.empty, until);
        }
        self.engines
            .iter()
            .enumerate()
            .map(|(i, e)| e.snapshot(i))
            .collect()
    }

    fn finish(self, batch: Vec<(usize, Job)>) -> Vec<SimOutput> {
        let SerialTransport { mut engines, empty } = self;
        for (site, job) in batch {
            engines[site].inject(job);
        }
        engines.into_iter().map(|e| e.finish(empty)).collect()
    }
}

/// A barrier command to one worker.
enum Cmd {
    /// Inject the worker's share of the batch and advance to `until`.
    Step {
        jobs: Vec<(usize, Job)>,
        until: SimTime,
    },
    /// Inject the final share and drain to completion.
    Finish { jobs: Vec<(usize, Job)> },
}

/// A worker's answer: snapshots after a step, outputs after the drain.
enum Reply {
    Snaps(Vec<SiteSnapshot>),
    Done(Vec<(usize, SimOutput)>),
}

struct WorkerLink {
    cmd: mpsc::Sender<Cmd>,
    reply: mpsc::Receiver<Reply>,
}

/// Sites partitioned over worker threads; the coordinator fans each
/// barrier out and reassembles replies in site order.
struct ThreadedTransport {
    links: Vec<WorkerLink>,
    sites: usize,
}

impl ThreadedTransport {
    fn partition(&self, batch: Vec<(usize, Job)>) -> Vec<Vec<(usize, Job)>> {
        let mut per: Vec<Vec<(usize, Job)>> = (0..self.links.len()).map(|_| Vec::new()).collect();
        for (site, job) in batch {
            per[site % self.links.len()].push((site, job));
        }
        per
    }
}

impl EpochTransport for ThreadedTransport {
    fn step(&mut self, batch: Vec<(usize, Job)>, until: SimTime) -> Vec<SiteSnapshot> {
        for (link, jobs) in self.links.iter().zip(self.partition(batch)) {
            link.cmd
                .send(Cmd::Step { jobs, until })
                // lint: allow(panic) — site workers outlive the epoch loop; a dead worker is a panic we should propagate
                .expect("worker alive");
        }
        let mut snaps: Vec<Option<SiteSnapshot>> = vec![None; self.sites];
        for link in &self.links {
            // lint: allow(panic) — site workers outlive the epoch loop; a dead worker is a panic we should propagate
            match link.reply.recv().expect("worker alive") {
                Reply::Snaps(s) => {
                    for snap in s {
                        snaps[snap.site] = Some(snap);
                    }
                }
                Reply::Done(_) => unreachable!("finish reply during step"),
            }
        }
        snaps
            .into_iter()
            // lint: allow(panic) — the reply loop above snapshotted every site
            .map(|s| s.expect("every site snapshotted"))
            .collect()
    }

    fn finish(self, batch: Vec<(usize, Job)>) -> Vec<SimOutput> {
        let per = self.partition(batch);
        for (link, jobs) in self.links.iter().zip(per) {
            // lint: allow(panic) — site workers outlive the epoch loop; a dead worker is a panic we should propagate
            link.cmd.send(Cmd::Finish { jobs }).expect("worker alive");
        }
        let mut outputs: Vec<Option<SimOutput>> = (0..self.sites).map(|_| None).collect();
        for link in &self.links {
            // lint: allow(panic) — site workers outlive the epoch loop; a dead worker is a panic we should propagate
            match link.reply.recv().expect("worker alive") {
                Reply::Done(outs) => {
                    for (site, out) in outs {
                        outputs[site] = Some(out);
                    }
                }
                Reply::Snaps(_) => unreachable!("step reply during finish"),
            }
        }
        outputs
            .into_iter()
            // lint: allow(panic) — the finish loop above collected every site
            .map(|o| o.expect("every site finished"))
            .collect()
    }
}

/// One worker thread: owns its sites' engines for the whole run,
/// answering barrier commands until the final drain.
fn worker_loop(
    my_sites: Vec<(usize, SimConfig)>,
    origin: SimTime,
    cmd: mpsc::Receiver<Cmd>,
    reply: mpsc::Sender<Reply>,
) {
    let runtimes: Vec<SiteRuntime> = my_sites
        .iter()
        .map(|&(_, cfg)| SiteRuntime::new(cfg))
        .collect();
    let empty = Workload::from_jobs(Vec::new());
    let mut engines: Vec<(usize, SiteEngine<'_>)> = my_sites
        .iter()
        .zip(runtimes.iter())
        .map(|(&(global, _), rt)| (global, rt.engine(&empty, origin)))
        .collect();
    let inject = |engines: &mut Vec<(usize, SiteEngine<'_>)>, jobs: Vec<(usize, Job)>| {
        for (site, job) in jobs {
            let e = engines
                .iter_mut()
                .find(|(g, _)| *g == site)
                // lint: allow(panic) — the router only dispatches jobs to the worker owning their site
                .expect("job routed to a site this worker owns");
            e.1.inject(job);
        }
    };
    while let Ok(c) = cmd.recv() {
        match c {
            Cmd::Step { jobs, until } => {
                inject(&mut engines, jobs);
                for (_, e) in engines.iter_mut() {
                    e.advance_until(&empty, until);
                }
                let snaps = engines.iter().map(|(g, e)| e.snapshot(*g)).collect();
                if reply.send(Reply::Snaps(snaps)).is_err() {
                    return;
                }
            }
            Cmd::Finish { jobs } => {
                inject(&mut engines, jobs);
                let engines = std::mem::take(&mut engines);
                let outs = engines
                    .into_iter()
                    .map(|(g, e)| (g, e.finish(&empty)))
                    .collect();
                let _ = reply.send(Reply::Done(outs));
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EventQueueKind;
    use dmhpc_platform::{NodeSpec, PoolTopology};
    use dmhpc_sched::SchedulerBuilder;
    use dmhpc_workload::JobBuilder;

    fn cluster() -> ClusterSpec {
        ClusterSpec::new(
            2,
            4,
            NodeSpec::new(8, 1024),
            PoolTopology::PerRack { mib_per_rack: 2048 },
        )
    }

    fn base() -> SimConfig {
        SimConfig::new(cluster(), SchedulerBuilder::new().build())
    }

    fn burst(n: u64) -> Workload {
        let jobs = (0..n)
            .map(|i| {
                JobBuilder::new(i + 1)
                    .nodes(2 + (i % 3) as u32)
                    .runtime_secs(200 + 90 * (i % 5), 900)
                    .mem_per_node(256 + 128 * (i % 4))
                    .arrival_secs(10 * i)
                    .build()
            })
            .collect();
        Workload::from_jobs(jobs)
    }

    #[test]
    fn spec_labels_and_validation() {
        assert!(FleetSpec::none().is_none());
        assert_eq!(FleetSpec::none().label(), "no-fleet");
        assert!(FleetSpec::none().validate().is_ok());
        let f = FleetSpec::symmetric(4, 300.0, MetaPolicyKind::LeastQueueDepth);
        assert_eq!(f.label(), "fleet4-least-queue-e300");
        assert!(f.validate().is_ok());
        assert_eq!(f.total_nodes(&cluster()), 4 * cluster().total_nodes());
        let bad_epoch = FleetSpec {
            epoch_s: 0.0,
            ..f.clone()
        };
        assert!(bad_epoch.validate().is_err());
        let mut dup = f.clone();
        dup.sites[1].label = "site0".into();
        assert!(dup.validate().is_err());
        assert!(FleetSimulation::new(&FleetSpec::none(), base()).is_err());
    }

    #[test]
    fn one_site_fleet_matches_plain_run_bit_for_bit() {
        // A 1-site fleet routes everything to site 0 at true arrival
        // times, so the site's trace must be byte-identical to a plain
        // run of the same workload — the injection path really is the
        // arrival path.
        let w = burst(40);
        let plain = crate::Simulation::new(base()).unwrap().run(&w);
        let fleet = FleetSpec::symmetric(1, 120.0, MetaPolicyKind::RoundRobin);
        let out = FleetSimulation::new(&fleet, base()).unwrap().run(&w);
        assert_eq!(out.site_outputs[0].trace_hash, plain.trace_hash);
        let (a, b) = (&out.site_outputs[0].report, &plain.report);
        assert_eq!(a.mean_wait_s.to_bits(), b.mean_wait_s.to_bits());
        assert_eq!(a.node_util.to_bits(), b.node_util.to_bits());
        assert_eq!(a.makespan_h.to_bits(), b.makespan_h.to_bits());
        assert_eq!(out.routed_jobs, vec![40]);
    }

    #[test]
    fn worker_count_is_byte_identical_on_both_backends() {
        let w = burst(60);
        for backend in [EventQueueKind::BinaryHeap, EventQueueKind::Calendar] {
            let cfg = base().with_event_queue(backend);
            let fleet = FleetSpec::symmetric(4, 180.0, MetaPolicyKind::LeastMemoryPressure);
            let sim = FleetSimulation::new(&fleet, cfg).unwrap();
            let serial = sim.run(&w);
            for workers in [2, 3, 4, 8] {
                let threaded = FleetSimulation::new(&fleet, cfg)
                    .unwrap()
                    .workers(workers)
                    .run(&w);
                assert_eq!(
                    threaded.aggregate.trace_hash,
                    serial.aggregate.trace_hash,
                    "workers={workers} backend={}",
                    backend.name()
                );
                for (a, b) in serial.site_outputs.iter().zip(&threaded.site_outputs) {
                    assert_eq!(a.trace_hash, b.trace_hash);
                    assert_eq!(
                        a.report.mean_wait_s.to_bits(),
                        b.report.mean_wait_s.to_bits()
                    );
                    assert_eq!(a.report.node_util.to_bits(), b.report.node_util.to_bits());
                }
                assert_eq!(threaded.routed_jobs, serial.routed_jobs);
            }
        }
    }

    #[test]
    fn backends_are_byte_identical_to_each_other() {
        let w = burst(50);
        let fleet = FleetSpec::symmetric(3, 240.0, MetaPolicyKind::LeastQueueDepth);
        let heap = FleetSimulation::new(&fleet, base()).unwrap().run(&w);
        let cal = FleetSimulation::new(&fleet, base().with_event_queue(EventQueueKind::Calendar))
            .unwrap()
            .workers(2)
            .run(&w);
        assert_eq!(heap.aggregate.trace_hash, cal.aggregate.trace_hash);
    }

    #[test]
    fn round_robin_spreads_jobs_evenly() {
        let w = burst(40);
        let fleet = FleetSpec::symmetric(4, 60.0, MetaPolicyKind::RoundRobin);
        let out = FleetSimulation::new(&fleet, base()).unwrap().run(&w);
        assert_eq!(out.routed_jobs, vec![10, 10, 10, 10]);
        assert_eq!(out.site_labels, vec!["site0", "site1", "site2", "site3"]);
        // Every job completed somewhere: the merged records cover the
        // whole workload.
        assert_eq!(out.aggregate.records.len(), 40);
        assert!(out.aggregate.report.makespan_h > 0.0);
        assert!(out.aggregate.report.node_util > 0.0);
    }

    #[test]
    fn heterogeneous_sites_resolve_cluster_and_scheduler() {
        let big = ClusterSpec::new(
            4,
            4,
            NodeSpec::new(8, 2048),
            PoolTopology::PerRack { mib_per_rack: 4096 },
        );
        let fleet = FleetSpec {
            sites: vec![
                SiteSpec::inherit("small"),
                SiteSpec {
                    label: "big".into(),
                    cluster: Some(big),
                    scheduler: None,
                },
            ],
            epoch_s: 120.0,
            policy: MetaPolicyKind::LeastQueueDepth,
        };
        assert_eq!(
            fleet.total_nodes(&cluster()),
            cluster().total_nodes() + big.total_nodes()
        );
        let out = FleetSimulation::new(&fleet, base())
            .unwrap()
            .run(&burst(30));
        assert_eq!(out.routed_jobs.iter().sum::<u64>(), 30);
        // The bigger, emptier site absorbs more of the queue-balanced load.
        assert!(out.routed_jobs[1] >= out.routed_jobs[0]);
    }

    #[test]
    fn aggregate_sums_events_and_chains_hashes() {
        let w = burst(24);
        let fleet = FleetSpec::symmetric(2, 300.0, MetaPolicyKind::RoundRobin);
        let out = FleetSimulation::new(&fleet, base()).unwrap().run(&w);
        let sum: u64 = out.site_outputs.iter().map(|o| o.events_processed).sum();
        assert_eq!(out.aggregate.events_processed, sum);
        let mut h = FNV_OFFSET;
        for o in &out.site_outputs {
            for byte in o.trace_hash.to_le_bytes() {
                h ^= byte as u64;
                h = h.wrapping_mul(FNV_PRIME);
            }
        }
        assert_eq!(out.aggregate.trace_hash, h);
        assert_ne!(
            out.aggregate.trace_hash, out.site_outputs[0].trace_hash,
            "fleet hash is distinct from any single site's"
        );
    }
}
