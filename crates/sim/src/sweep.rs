//! Parallel parameter sweeps.
//!
//! Experiments run dozens of independent simulations (policies × pool sizes
//! × loads). [`run_parallel`] fans them out over `std::thread::scope`
//! workers; results come back **in input order** regardless of thread
//! scheduling, so sweep output is deterministic given deterministic run
//! functions.

use std::sync::Mutex;

/// Map `f` over `inputs` in parallel, preserving order. `threads = 0` means
/// one per available core.
pub fn run_parallel<T, R, F>(inputs: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = inputs.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = if threads == 0 {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    } else {
        threads
    }
    .min(n);

    if threads <= 1 {
        return inputs.iter().map(&f).collect();
    }

    let work: Vec<(usize, T)> = inputs.into_iter().enumerate().collect();
    let queue = Mutex::new(work);
    let results: Mutex<Vec<Option<R>>> = Mutex::new((0..n).map(|_| None).collect());

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                // Self-scheduling work queue: long simulations don't stall
                // a static partition.
                // lint: allow(panic) — a poisoned lock means a sibling worker already panicked
                let item = queue.lock().expect("sweep queue poisoned").pop();
                let Some((idx, input)) = item else { break };
                let out = f(&input);
                // lint: allow(panic) — a poisoned lock means a sibling worker already panicked
                results.lock().expect("sweep results poisoned")[idx] = Some(out);
            });
        }
    });

    results
        .into_inner()
        // lint: allow(panic) — a poisoned lock means a sibling worker already panicked
        .expect("sweep results poisoned")
        .into_iter()
        // lint: allow(panic) — the worker loop stored an output for every index before the join
        .map(|r| r.expect("every index filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let inputs: Vec<u64> = (0..100).collect();
        let out = run_parallel(inputs.clone(), 8, |&x| x * 2);
        assert_eq!(out, inputs.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_path() {
        let out = run_parallel(vec![1, 2, 3], 1, |&x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn zero_threads_means_auto() {
        let out = run_parallel(vec![5; 10], 0, |&x| x);
        assert_eq!(out, vec![5; 10]);
    }

    #[test]
    fn empty_input() {
        let out: Vec<u32> = run_parallel(Vec::<u32>::new(), 4, |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn uneven_work_is_self_balanced() {
        // Items with wildly different costs still all complete.
        let inputs: Vec<u64> = (0..32).collect();
        let out = run_parallel(inputs, 4, |&x| {
            let mut acc = 0u64;
            for i in 0..(x * 1000) {
                acc = acc.wrapping_add(i);
            }
            (x, acc).0
        });
        assert_eq!(out, (0..32).collect::<Vec<_>>());
    }
}
