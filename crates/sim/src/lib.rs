//! # dmhpc-sim — the end-to-end batch-scheduling simulator
//!
//! Binds the DES kernel, platform, workload, scheduler and metrics crates
//! into a deterministic simulator behind a declarative experiment API:
//!
//! * [`experiment`] — the public entry point for studies:
//!   [`ExperimentSpec`] (a JSON-(de)serializable description of a run
//!   grid: clusters × loads × seeds × schedulers), [`ExperimentRunner`]
//!   (parallel execution with deterministic, grid-ordered results), and
//!   [`ExperimentResults`] (labelled per-cell outputs with CSV/JSON
//!   export).
//! * [`Simulation`] — one run: the event loop where arrivals enqueue
//!   jobs, completions release capacity, and a scheduling pass runs after
//!   every event batch. Running jobs carry **work-remaining** state, so
//!   the contention-aware slowdown model can re-dilate in-flight jobs
//!   exactly whenever pool pressure changes (stale finish events are
//!   invalidated by generation stamps). Construction is fallible
//!   ([`SimError`]); custom [`dmhpc_sched::Ordering`]/
//!   [`dmhpc_sched::Placement`] policies plug in via
//!   [`Simulation::with_policies`].
//! * [`SimConfig`] — machine × scheduler × execution-model configuration.
//! * [`observe`] — the streaming observation API: the engine emits a
//!   typed [`observe::SimEvent`] per state change, all metrics are
//!   built-in [`observe::Observer`]s (so [`SimOutput`] is assembled from
//!   the default observer set, bit-identically), and pluggable consumers
//!   ride the same stream — a constant-memory JSONL
//!   [`observe::TraceSink`], a cadence-sampled
//!   [`observe::SampledSeriesProbe`], progress heartbeats. Observers are
//!   hash-neutral by construction.
//! * [`collector`] — time-weighted series (busy nodes, pool use, DRAM use,
//!   queue depth) recorded exactly at every change, maintained by the
//!   series observer.
//! * [`service`] — open-system service mode: a [`ServiceSpec`] describes
//!   a streaming arrival scenario (Poisson / diurnal / MMPP process,
//!   load control by rate or target utilization, a run horizon by job
//!   count or duration, a warmup cutoff). The engine admits jobs
//!   pull-based — one pending arrival in flight, refilled from the
//!   source — and metrics come from O(1)-memory sketches
//!   ([`observe::SketchStatsObserver`]) instead of per-job records.
//! * [`sweep`] — scoped-thread parallel fan-out with deterministic result
//!   ordering (the runner's execution substrate).
//! * [`scenarios`] — the axis vocabulary (preset machines, calibrated
//!   workloads, the paper's policy suite) experiment specs compose.
//!
//! Determinism: a run is a pure function of `(SimConfig, Workload)`. The
//! output carries a trace hash; two runs of the same inputs produce the
//! same hash — and the experiment runner produces identical per-cell
//! hashes at any thread count (both tested), which is what makes the
//! experiment tables trustworthy.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod collector;
mod config;
mod engine;
mod error;
pub mod experiment;
pub mod faults;
pub mod federation;
pub mod observe;
pub mod scenarios;
pub mod service;
pub mod sweep;

pub use collector::SeriesBundle;
pub use config::{EventQueueKind, ObserverSpec, SimConfig};
pub use engine::{ObserverSet, SimOutput, Simulation};
pub use error::SimError;
pub use experiment::{
    CellKey, CellResult, ExperimentBuilder, ExperimentResults, ExperimentRunner, ExperimentSpec,
    ResultCache, RunSpec, RunStats, Shard, WorkloadSource,
};
pub use faults::{FaultAction, FaultGenerator, FaultSpec, InterruptPolicy};
pub use federation::{FleetOutput, FleetSimulation, FleetSpec, SiteSpec};
pub use observe::{
    EventCounter, Observer, ObserverFactory, ProgressObserver, RunLabel, SampledSeriesProbe,
    SimEvent, SketchStatsObserver, TraceDir, TraceSink,
};
pub use service::{ServiceLoad, ServiceSpec};
