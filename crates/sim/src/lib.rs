//! # dmhpc-sim — the end-to-end batch-scheduling simulator
//!
//! Binds the DES kernel, platform, workload, scheduler and metrics crates
//! into a deterministic simulator:
//!
//! * [`Simulation`] — the event loop: arrivals enqueue jobs, completions
//!   release capacity, and a scheduling pass runs after every event batch.
//!   Running jobs carry **work-remaining** state, so the contention-aware
//!   slowdown model can re-dilate in-flight jobs exactly whenever pool
//!   pressure changes (stale finish events are invalidated by generation
//!   stamps).
//! * [`SimConfig`] — machine × scheduler × execution-model configuration.
//! * [`collector`] — time-weighted series (busy nodes, pool use, DRAM use,
//!   queue depth) recorded exactly at every change.
//! * [`sweep`] — crossbeam-based parallel parameter sweeps with
//!   deterministic result ordering.
//! * [`scenarios`] — canned preset → (cluster, workload, policy suite)
//!   builders shared by the examples and the reproduction harness.
//!
//! Determinism: a run is a pure function of `(SimConfig, Workload)`. The
//! output carries a trace hash; two runs of the same inputs produce the
//! same hash (tested), which is what makes the experiment tables
//! trustworthy.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod collector;
mod config;
mod engine;
pub mod scenarios;
pub mod sweep;

pub use collector::SeriesBundle;
pub use config::SimConfig;
pub use engine::{SimOutput, Simulation};
