//! Simulation configuration.

use dmhpc_platform::ClusterSpec;
use dmhpc_sched::SchedulerConfig;

/// Which pending-event-set implementation the engine drives.
///
/// Purely an execution knob: both backends are stable queues and the
/// engine produces **bit-identical traces** on either (tested), so the
/// choice never invalidates cached experiment cells — it is excluded from
/// result-cache hashing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EventQueueKind {
    /// `std::collections::BinaryHeap`-backed queue: O(log n) everywhere
    /// with excellent constants. The default.
    #[default]
    BinaryHeap,
    /// Brown's adaptive calendar queue: amortized O(1) insert/extract on
    /// well-spaced event times (which batch workloads are). Opt-in.
    Calendar,
}

impl EventQueueKind {
    /// Stable name (`heap`/`calendar`) for CLI flags and bench labels.
    pub fn name(&self) -> &'static str {
        match self {
            EventQueueKind::BinaryHeap => "heap",
            EventQueueKind::Calendar => "calendar",
        }
    }
}

/// Declarative observer attachments carried by the config.
///
/// Purely observational (like [`EventQueueKind`], an execution knob):
/// nothing here can change a run's results or trace hash, and the struct
/// is excluded from experiment cell hashes — attaching observers never
/// invalidates a result cache. Observers that need per-run resources
/// (trace files, sample buffers) attach through
/// [`crate::Simulation::with_observer`] / `ExperimentRunner::observe`
/// instead; this struct holds only the side-effect-free built-ins a
/// config can fully describe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ObserverSpec {
    /// Emit a progress heartbeat to stderr every N observed events
    /// (`None` = silent, the default).
    pub progress_every: Option<u64>,
}

/// Everything that defines a run besides the workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Machine shape.
    pub cluster: ClusterSpec,
    /// Scheduling policy triple + slowdown model.
    pub scheduler: SchedulerConfig,
    /// Kill jobs at their planned walltime (production behaviour). With
    /// `false`, jobs always run to natural completion — useful for isolating
    /// policy effects from kill effects.
    pub enforce_walltime: bool,
    /// Run `Cluster::verify_invariants` after every event batch. O(nodes)
    /// per batch — meant for tests, not sweeps. Note that the incremental
    /// kernel only reaches a batch end when an arrival or a live finish was
    /// processed, so with sparse scheduling passes this check still runs
    /// per *batch*, not per pass: its cost scales with events, and stays
    /// the dominant cost of a checked run on large machines.
    pub check_invariants: bool,
    /// Pending-event-set backend. Results are identical either way; see
    /// [`EventQueueKind`].
    pub event_queue: EventQueueKind,
    /// Declarative built-in observers (hash-neutral; see [`ObserverSpec`]).
    pub observers: ObserverSpec,
}

impl SimConfig {
    /// A config with production defaults (walltime enforcement on,
    /// invariant checking off, binary-heap event queue).
    pub fn new(cluster: ClusterSpec, scheduler: SchedulerConfig) -> Self {
        SimConfig {
            cluster,
            scheduler,
            enforce_walltime: true,
            check_invariants: false,
            event_queue: EventQueueKind::default(),
            observers: ObserverSpec::default(),
        }
    }

    /// Same config with invariant checking on (for tests).
    pub fn checked(mut self) -> Self {
        self.check_invariants = true;
        self
    }

    /// Same config with the given event-queue backend.
    pub fn with_event_queue(mut self, kind: EventQueueKind) -> Self {
        self.event_queue = kind;
        self
    }

    /// Same config with a progress heartbeat every `every` observed
    /// events (hash-neutral: purely observational).
    #[deprecated(note = "attach per run: `run_with(w, ObserverSet::new().progress_every(n))`")]
    pub fn with_progress_every(mut self, every: u64) -> Self {
        self.observers.progress_every = Some(every);
        self
    }

    /// Label used in reports: policy triple.
    pub fn label(&self) -> String {
        self.scheduler.label()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmhpc_platform::{NodeSpec, PoolTopology};
    use dmhpc_sched::SchedulerBuilder;

    #[test]
    fn construction_and_label() {
        let cfg = SimConfig::new(
            ClusterSpec::new(1, 4, NodeSpec::new(8, 1024), PoolTopology::None),
            SchedulerBuilder::new().build(),
        );
        assert!(cfg.enforce_walltime);
        assert!(!cfg.check_invariants);
        assert!(cfg.checked().check_invariants);
        assert_eq!(cfg.label(), "fcfs+easy+local-only");
        assert_eq!(cfg.event_queue, EventQueueKind::BinaryHeap);
        let cal = cfg.with_event_queue(EventQueueKind::Calendar);
        assert_eq!(cal.event_queue, EventQueueKind::Calendar);
        assert_eq!(cal.event_queue.name(), "calendar");
        assert_eq!(EventQueueKind::BinaryHeap.name(), "heap");
        assert_eq!(cfg.observers, ObserverSpec::default());
        #[allow(deprecated)]
        let with_progress = cfg.with_progress_every(500);
        assert_eq!(with_progress.observers.progress_every, Some(500));
    }
}
