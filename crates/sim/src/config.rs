//! Simulation configuration.

use dmhpc_platform::ClusterSpec;
use dmhpc_sched::SchedulerConfig;

/// Everything that defines a run besides the workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Machine shape.
    pub cluster: ClusterSpec,
    /// Scheduling policy triple + slowdown model.
    pub scheduler: SchedulerConfig,
    /// Kill jobs at their planned walltime (production behaviour). With
    /// `false`, jobs always run to natural completion — useful for isolating
    /// policy effects from kill effects.
    pub enforce_walltime: bool,
    /// Run `Cluster::verify_invariants` after every event batch. O(nodes)
    /// per event — meant for tests, not sweeps.
    pub check_invariants: bool,
}

impl SimConfig {
    /// A config with production defaults (walltime enforcement on,
    /// invariant checking off).
    pub fn new(cluster: ClusterSpec, scheduler: SchedulerConfig) -> Self {
        SimConfig {
            cluster,
            scheduler,
            enforce_walltime: true,
            check_invariants: false,
        }
    }

    /// Same config with invariant checking on (for tests).
    pub fn checked(mut self) -> Self {
        self.check_invariants = true;
        self
    }

    /// Label used in reports: policy triple.
    pub fn label(&self) -> String {
        self.scheduler.label()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmhpc_platform::{NodeSpec, PoolTopology};
    use dmhpc_sched::SchedulerBuilder;

    #[test]
    fn construction_and_label() {
        let cfg = SimConfig::new(
            ClusterSpec::new(1, 4, NodeSpec::new(8, 1024), PoolTopology::None),
            SchedulerBuilder::new().build(),
        );
        assert!(cfg.enforce_walltime);
        assert!(!cfg.check_invariants);
        assert!(cfg.checked().check_invariants);
        assert_eq!(cfg.label(), "fcfs+easy+local-only");
    }
}
