//! Fault & availability scenarios as first-class, deterministic inputs.
//!
//! A [`FaultSpec`] perturbs the *machine* over the course of a run — the
//! first scenario axis that does, where every earlier axis perturbed the
//! workload or the policy. It combines:
//!
//! * a **fixed schedule** of timestamped [`FaultAction`]s (node failures
//!   and repairs, maintenance drain windows, pool degradations), for
//!   hand-authored what-if studies and exact regression tests;
//! * an optional **seeded generator** ([`FaultGenerator`]) that expands to
//!   such a schedule deterministically (Pcg64 streams keyed by the fault
//!   seed, independent of the workload seed), for statistical studies;
//! * an [`InterruptPolicy`] deciding what happens to jobs running on
//!   capacity that disappears: resubmit from scratch, or checkpoint and
//!   restart with a configurable overhead; plus a resubmission budget
//!   after which a repeatedly interrupted job fails terminally.
//!
//! [`FaultSpec::none`] is the identity scenario: the engine takes the
//! exact pre-fault code path, producing bit-identical traces to a fault-
//! free run, and the experiment layer hashes nothing for it — so existing
//! result caches stay warm (tested in `tests/integration.rs`).

use crate::error::SimError;
use dmhpc_des::rng::Pcg64;
use dmhpc_des::time::{SimDuration, SimTime};
use dmhpc_platform::{ClusterSpec, NodeId, PoolId, PoolTopology};

/// One machine perturbation at a point in simulated time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultAction {
    /// A node fails (`→ Down`); any job holding it is interrupted.
    NodeFail(NodeId),
    /// A failed node returns to service (`Down → Up`).
    NodeRepair(NodeId),
    /// A maintenance drain begins (`Up → Draining`); running work on the
    /// node is interrupted (hard drain — with a checkpoint policy this is
    /// the graceful-preemption case).
    DrainStart(NodeId),
    /// A maintenance drain ends (`Draining → Up`).
    DrainEnd(NodeId),
    /// A pool's health degrades to `factor` of nominal capacity and
    /// bandwidth; borrowers are evicted (interrupted) until the remaining
    /// holdings fit the degraded capacity.
    PoolDegrade {
        /// Affected pool domain.
        pool: PoolId,
        /// New health factor in `(0, 1)`.
        factor: f64,
    },
    /// A degraded pool returns to full health.
    PoolRepair(PoolId),
}

/// What happens to a job interrupted by a fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InterruptPolicy {
    /// Resubmit from scratch: all completed work is lost and redone.
    Resubmit,
    /// Checkpoint/restart: completed work survives; the restarted job
    /// pays a restore overhead on top of its remaining work.
    Checkpoint {
        /// Restore overhead in *work* seconds, added to the remaining
        /// runtime. Like all work it is subject to the restarted
        /// placement's dilation (restoring a checkpoint moves memory
        /// through the same fabric), so its wall-clock cost can exceed
        /// this value for pool borrowers. `FaultSummary::rework_s`
        /// charges the undilated figure.
        overhead_s: u64,
    },
}

impl InterruptPolicy {
    /// Stable name for labels.
    pub fn name(&self) -> &'static str {
        match self {
            InterruptPolicy::Resubmit => "resubmit",
            InterruptPolicy::Checkpoint { .. } => "checkpoint",
        }
    }
}

/// Seeded random fault generator: expands deterministically into a fixed
/// schedule over `[0, horizon_s]`. Three independent processes, each
/// disabled by a zero interval/MTBF:
///
/// * node **failures** — Poisson arrivals with mean `node_mtbf_s` (whole
///   machine, uniformly chosen victim), each repaired `node_repair_s`
///   later;
/// * maintenance **drains** — a periodic window every `drain_interval_s`
///   of length `drain_duration_s` on a uniformly chosen node;
/// * pool **degradations** — every `pool_degrade_interval_s`, a uniformly
///   chosen pool drops to `pool_degrade_factor` health for
///   `pool_degrade_duration_s`.
///
/// Determinism: the expansion is a pure function of this struct and the
/// cluster shape; each process draws from its own Pcg64 stream keyed by
/// `seed`, so enabling one process never shifts another's draws.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultGenerator {
    /// Fault-process seed (independent of the workload seed axis).
    pub seed: u64,
    /// Horizon in seconds: no generated fault starts at or after it
    /// (repairs/drain-ends may land beyond it).
    pub horizon_s: u64,
    /// Mean time between node failures, seconds (0 = no failures).
    pub node_mtbf_s: u64,
    /// Repair time after each failure, seconds.
    pub node_repair_s: u64,
    /// Seconds between maintenance-drain windows (0 = no drains).
    pub drain_interval_s: u64,
    /// Length of each drain window, seconds.
    pub drain_duration_s: u64,
    /// Seconds between pool degradations (0 = none).
    pub pool_degrade_interval_s: u64,
    /// Length of each degradation, seconds.
    pub pool_degrade_duration_s: u64,
    /// Health factor during a degradation, in `(0, 1)`.
    pub pool_degrade_factor: f64,
}

impl FaultGenerator {
    /// A generator with everything disabled — compose by setting the
    /// processes you want.
    pub fn quiet(seed: u64, horizon_s: u64) -> Self {
        FaultGenerator {
            seed,
            horizon_s,
            node_mtbf_s: 0,
            node_repair_s: 3_600,
            drain_interval_s: 0,
            drain_duration_s: 3_600,
            pool_degrade_interval_s: 0,
            pool_degrade_duration_s: 3_600,
            pool_degrade_factor: 0.5,
        }
    }

    fn is_quiet(&self) -> bool {
        self.node_mtbf_s == 0 && self.drain_interval_s == 0 && self.pool_degrade_interval_s == 0
    }

    fn validate(&self) -> Result<(), SimError> {
        if self.is_quiet() {
            return Ok(());
        }
        if self.horizon_s == 0 {
            return Err(SimError::spec("fault generator needs horizon_s > 0"));
        }
        if self.pool_degrade_interval_s > 0
            && !(self.pool_degrade_factor > 0.0 && self.pool_degrade_factor < 1.0)
        {
            return Err(SimError::spec(format!(
                "pool_degrade_factor must be in (0, 1), got {}",
                self.pool_degrade_factor
            )));
        }
        Ok(())
    }

    /// Expand into timestamped actions for one machine shape.
    /// Generated outage windows never overlap per target: a failure drawn
    /// while its victim is still inside an earlier down window is dropped
    /// (the engine would no-op the second failure, but its paired repair
    /// would then end the *first* window early — silently shortening the
    /// realized outage process). Same for drain windows per node and
    /// degradation windows per pool. Fixed schedules are taken verbatim;
    /// overlapping hand-written windows get the engine's tolerant no-op
    /// semantics.
    fn generate(&self, cluster: &ClusterSpec) -> Vec<(SimTime, FaultAction)> {
        let mut out = Vec::new();
        let nodes = cluster.total_nodes() as usize;
        let horizon = self.horizon_s as f64;
        if self.node_mtbf_s > 0 && nodes > 0 {
            let mut rng = Pcg64::new_stream(self.seed, 0xFA11_0001);
            let mut down_until = vec![SimTime::ZERO; nodes];
            let mut t = 0.0f64;
            loop {
                // Exponential inter-arrival with the configured mean.
                t +=
                    -(self.node_mtbf_s as f64) * (1.0 - rng.next_f64()).max(f64::MIN_POSITIVE).ln();
                if t >= horizon {
                    break;
                }
                let node = rng.index(nodes);
                let at = SimTime::from_secs_f64(t);
                if at < down_until[node] {
                    continue; // victim still down: window would not nest
                }
                let up_at = at + SimDuration::from_secs(self.node_repair_s);
                down_until[node] = up_at;
                out.push((at, FaultAction::NodeFail(NodeId(node as u32))));
                out.push((up_at, FaultAction::NodeRepair(NodeId(node as u32))));
            }
        }
        if self.drain_interval_s > 0 && nodes > 0 {
            let mut rng = Pcg64::new_stream(self.seed, 0xFA11_0002);
            let mut draining_until = vec![SimTime::ZERO; nodes];
            let mut t = self.drain_interval_s;
            while (t as f64) < horizon {
                let node = rng.index(nodes);
                let at = SimTime::from_secs(t);
                t += self.drain_interval_s;
                if at < draining_until[node] {
                    continue;
                }
                let end_at = at + SimDuration::from_secs(self.drain_duration_s);
                draining_until[node] = end_at;
                out.push((at, FaultAction::DrainStart(NodeId(node as u32))));
                out.push((end_at, FaultAction::DrainEnd(NodeId(node as u32))));
            }
        }
        let domains = pool_domains(cluster);
        if self.pool_degrade_interval_s > 0 && domains > 0 {
            let mut rng = Pcg64::new_stream(self.seed, 0xFA11_0003);
            let mut degraded_until = vec![SimTime::ZERO; domains];
            let mut t = self.pool_degrade_interval_s;
            while (t as f64) < horizon {
                let pool = rng.index(domains);
                let at = SimTime::from_secs(t);
                t += self.pool_degrade_interval_s;
                if at < degraded_until[pool] {
                    continue;
                }
                let end_at = at + SimDuration::from_secs(self.pool_degrade_duration_s);
                degraded_until[pool] = end_at;
                out.push((
                    at,
                    FaultAction::PoolDegrade {
                        pool: PoolId(pool as u32),
                        factor: self.pool_degrade_factor,
                    },
                ));
                out.push((end_at, FaultAction::PoolRepair(PoolId(pool as u32))));
            }
        }
        out
    }
}

/// Number of pool domains a topology creates.
fn pool_domains(cluster: &ClusterSpec) -> usize {
    match cluster.pool {
        PoolTopology::None => 0,
        PoolTopology::PerRack { .. } => cluster.racks as usize,
        PoolTopology::Global { .. } => 1,
    }
}

/// A complete fault/availability scenario for one run. See the module
/// docs; build with [`FaultSpec::none`] and the `with_*` methods.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSpec {
    /// Hand-authored timestamped actions (applied alongside any generated
    /// ones; need not be sorted).
    pub schedule: Vec<(SimTime, FaultAction)>,
    /// Optional seeded generator expanded per machine shape.
    pub generator: Option<FaultGenerator>,
    /// What happens to interrupted jobs.
    pub interrupt: InterruptPolicy,
    /// How many times one job may be resubmitted after interruptions
    /// before it fails terminally.
    pub max_resubmits: u32,
}

impl Default for FaultSpec {
    fn default() -> Self {
        FaultSpec::none()
    }
}

impl FaultSpec {
    /// The identity scenario: no faults, bit-identical engine behaviour to
    /// a fault-free run, and hash-neutral in the experiment cache.
    pub fn none() -> Self {
        FaultSpec {
            schedule: Vec::new(),
            generator: None,
            interrupt: InterruptPolicy::Resubmit,
            max_resubmits: 1,
        }
    }

    /// True when this scenario perturbs nothing (no fixed actions and no
    /// active generator process) — the engine then skips the fault path
    /// entirely and the cell hash is unchanged.
    pub fn is_none(&self) -> bool {
        self.schedule.is_empty() && self.generator.is_none_or(|g| g.is_quiet())
    }

    /// Add one fixed action.
    pub fn with_action(mut self, at: SimTime, action: FaultAction) -> Self {
        self.schedule.push((at, action));
        self
    }

    /// Attach a seeded generator.
    pub fn with_generator(mut self, generator: FaultGenerator) -> Self {
        self.generator = Some(generator);
        self
    }

    /// Set the interrupted-job policy.
    pub fn with_interrupt(mut self, interrupt: InterruptPolicy) -> Self {
        self.interrupt = interrupt;
        self
    }

    /// Set the resubmission budget.
    pub fn with_max_resubmits(mut self, max: u32) -> Self {
        self.max_resubmits = max;
        self
    }

    /// Check the scenario for ill-formed parameters.
    pub fn validate(&self) -> Result<(), SimError> {
        for (_, action) in &self.schedule {
            if let FaultAction::PoolDegrade { factor, .. } = action {
                if !(*factor > 0.0 && *factor < 1.0) {
                    return Err(SimError::spec(format!(
                        "pool degrade factor must be in (0, 1), got {factor}"
                    )));
                }
            }
        }
        if let Some(g) = &self.generator {
            g.validate()?;
        }
        Ok(())
    }

    /// [`validate`](FaultSpec::validate) plus machine-shape checks: every
    /// fixed action must target a node/pool this cluster actually has.
    pub fn validate_for(&self, cluster: &ClusterSpec) -> Result<(), SimError> {
        self.validate()?;
        let nodes = cluster.total_nodes();
        let domains = pool_domains(cluster) as u32;
        for (_, action) in &self.schedule {
            match action {
                FaultAction::NodeFail(n)
                | FaultAction::NodeRepair(n)
                | FaultAction::DrainStart(n)
                | FaultAction::DrainEnd(n) => {
                    if n.0 >= nodes {
                        return Err(SimError::spec(format!(
                            "fault schedule targets node {n}, machine has {nodes} nodes"
                        )));
                    }
                }
                FaultAction::PoolDegrade { pool, .. } | FaultAction::PoolRepair(pool) => {
                    if pool.0 >= domains {
                        return Err(SimError::spec(format!(
                            "fault schedule targets pool {pool}, machine has {domains} pool domain(s)"
                        )));
                    }
                }
            }
        }
        Ok(())
    }

    /// Expand into the full, time-sorted action list for one machine
    /// shape: fixed schedule plus generated events. Stable sort, so
    /// same-time actions keep (schedule, then generator-process) order —
    /// the order the engine enqueues and therefore processes them in.
    pub fn materialize(&self, cluster: &ClusterSpec) -> Vec<(SimTime, FaultAction)> {
        let mut out = self.schedule.clone();
        if let Some(g) = &self.generator {
            out.extend(g.generate(cluster));
        }
        out.sort_by_key(|&(t, _)| t);
        out
    }

    /// Short, distinguishing label for grid axes (e.g.
    /// `fix2-gen7-mtbf14400-ckpt120`). Distinct scenarios occasionally
    /// share a label (fixed schedules differing only in payloads hash a
    /// 16-bit digest); axis validation rejects such collisions, so rename
    /// by nudging a parameter.
    pub fn label(&self) -> String {
        if self.is_none() {
            return "no-faults".into();
        }
        let mut parts: Vec<String> = Vec::new();
        if !self.schedule.is_empty() {
            // A short content digest keeps same-length schedules apart.
            let mut digest: u64 = 0xcbf2_9ce4_8422_2325;
            for (t, action) in &self.schedule {
                for b in t.as_micros().to_le_bytes() {
                    digest ^= b as u64;
                    digest = digest.wrapping_mul(0x0000_0100_0000_01b3);
                }
                digest ^= action_tag(action);
                digest = digest.wrapping_mul(0x0000_0100_0000_01b3);
            }
            parts.push(format!(
                "fix{}h{:04x}",
                self.schedule.len(),
                digest & 0xffff
            ));
        }
        if let Some(g) = &self.generator {
            let mut s = format!("gen{}", g.seed);
            if g.node_mtbf_s > 0 {
                s.push_str(&format!("-mtbf{}", g.node_mtbf_s));
            }
            if g.drain_interval_s > 0 {
                s.push_str(&format!("-drain{}", g.drain_interval_s));
            }
            if g.pool_degrade_interval_s > 0 {
                s.push_str(&format!("-pdeg{}", g.pool_degrade_interval_s));
            }
            parts.push(s);
        }
        match self.interrupt {
            InterruptPolicy::Resubmit => parts.push("resub".into()),
            InterruptPolicy::Checkpoint { overhead_s } => parts.push(format!("ckpt{overhead_s}")),
        }
        if self.max_resubmits != 1 {
            parts.push(format!("r{}", self.max_resubmits));
        }
        parts.join("-")
    }
}

/// Stable per-variant tag (also used by the cache hasher).
pub(crate) fn action_tag(action: &FaultAction) -> u64 {
    match action {
        FaultAction::NodeFail(n) => 1 << 32 | n.0 as u64,
        FaultAction::NodeRepair(n) => 2 << 32 | n.0 as u64,
        FaultAction::DrainStart(n) => 3 << 32 | n.0 as u64,
        FaultAction::DrainEnd(n) => 4 << 32 | n.0 as u64,
        FaultAction::PoolDegrade { pool, factor } => {
            (5 << 32 | pool.0 as u64) ^ factor.to_bits().rotate_left(17)
        }
        FaultAction::PoolRepair(p) => 6 << 32 | p.0 as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmhpc_platform::NodeSpec;

    fn machine() -> ClusterSpec {
        ClusterSpec::new(
            2,
            8,
            NodeSpec::new(32, 128 * 1024),
            PoolTopology::PerRack {
                mib_per_rack: 256 * 1024,
            },
        )
    }

    #[test]
    fn none_is_none_and_quiet_generators_count_as_none() {
        assert!(FaultSpec::none().is_none());
        let quiet = FaultSpec::none().with_generator(FaultGenerator::quiet(1, 1000));
        assert!(quiet.is_none());
        assert!(quiet.materialize(&machine()).is_empty());
        assert_eq!(FaultSpec::none().label(), "no-faults");
    }

    #[test]
    fn generator_is_deterministic_and_respects_horizon() {
        let mut gen = FaultGenerator::quiet(42, 50_000);
        gen.node_mtbf_s = 5_000;
        gen.node_repair_s = 1_000;
        gen.drain_interval_s = 20_000;
        gen.pool_degrade_interval_s = 25_000;
        gen.pool_degrade_factor = 0.5;
        let spec = FaultSpec::none().with_generator(gen);
        spec.validate().unwrap();
        let a = spec.materialize(&machine());
        let b = spec.materialize(&machine());
        assert_eq!(a, b, "expansion is pure");
        assert!(!a.is_empty());
        // Sorted by time.
        assert!(a.windows(2).all(|w| w[0].0 <= w[1].0));
        // Every failure starts before the horizon; repairs may overshoot.
        for (t, action) in &a {
            if matches!(
                action,
                FaultAction::NodeFail(_)
                    | FaultAction::DrainStart(_)
                    | FaultAction::PoolDegrade { .. }
            ) {
                assert!(t.as_secs() < 50_000, "{action:?} at {t}");
            }
        }
        // Each process present.
        assert!(a.iter().any(|(_, x)| matches!(x, FaultAction::NodeFail(_))));
        assert!(a
            .iter()
            .any(|(_, x)| matches!(x, FaultAction::DrainStart(_))));
        assert!(a
            .iter()
            .any(|(_, x)| matches!(x, FaultAction::PoolDegrade { .. })));
    }

    #[test]
    fn fixed_schedule_merges_sorted_with_generated() {
        let mut gen = FaultGenerator::quiet(7, 10_000);
        gen.drain_interval_s = 4_000;
        gen.drain_duration_s = 100;
        let spec = FaultSpec::none()
            .with_action(SimTime::from_secs(9_000), FaultAction::NodeFail(NodeId(0)))
            .with_action(SimTime::from_secs(1), FaultAction::NodeFail(NodeId(1)))
            .with_generator(gen);
        let events = spec.materialize(&machine());
        assert!(events.windows(2).all(|w| w[0].0 <= w[1].0));
        assert_eq!(events.first().unwrap().0.as_secs(), 1);
    }

    #[test]
    fn validation_rejects_bad_factors() {
        let bad = FaultSpec::none().with_action(
            SimTime::ZERO,
            FaultAction::PoolDegrade {
                pool: PoolId(0),
                factor: 1.5,
            },
        );
        assert!(bad.validate().is_err());
        let mut gen = FaultGenerator::quiet(1, 100);
        gen.pool_degrade_interval_s = 10;
        gen.pool_degrade_factor = 0.0;
        assert!(FaultSpec::none().with_generator(gen).validate().is_err());
    }

    #[test]
    fn labels_distinguish_scenarios() {
        let mut gen = FaultGenerator::quiet(3, 1000);
        gen.node_mtbf_s = 100;
        let a = FaultSpec::none().with_generator(gen);
        let mut gen2 = gen;
        gen2.seed = 4;
        let b = FaultSpec::none().with_generator(gen2);
        assert_ne!(a.label(), b.label());
        let c = a
            .clone()
            .with_interrupt(InterruptPolicy::Checkpoint { overhead_s: 60 });
        assert_ne!(a.label(), c.label());
        assert!(c.label().contains("ckpt60"));
        // Same-length fixed schedules with different payloads differ.
        let f1 = FaultSpec::none().with_action(SimTime::ZERO, FaultAction::NodeFail(NodeId(0)));
        let f2 = FaultSpec::none().with_action(SimTime::ZERO, FaultAction::NodeFail(NodeId(1)));
        assert_ne!(f1.label(), f2.label());
    }
}
