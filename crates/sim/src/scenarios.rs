//! Canned building blocks shared by experiment specs and the reproduction
//! harness.
//!
//! These are the *axis vocabularies* the declarative experiment API
//! ([`crate::ExperimentSpec`]) composes: preset machines with a chosen pool
//! topology, calibrated workloads rescaled to an exact offered load, and
//! the paper's four-way policy suite. Orchestration itself — crossing the
//! axes, fanning out runs, collecting labelled results — lives in
//! [`crate::experiment`]; nothing here runs a simulation.

use dmhpc_platform::{ClusterSpec, NodeSpec, PoolTopology, SlowdownModel};
use dmhpc_sched::{BackfillPolicy, MemoryPolicy, OrderPolicy, SchedulerBuilder, SchedulerConfig};
use dmhpc_workload::{transform, SystemPreset, Workload};

/// Build a preset's machine with an explicit pool topology.
pub fn preset_cluster(preset: SystemPreset, pool: PoolTopology) -> ClusterSpec {
    let (racks, nodes_per_rack, cores, node_mem) = preset.machine();
    ClusterSpec::new(racks, nodes_per_rack, NodeSpec::new(cores, node_mem), pool)
}

/// Generate a preset's workload, rescaled to an exact offered load on the
/// preset machine.
pub fn preset_workload(preset: SystemPreset, n_jobs: usize, seed: u64, load: f64) -> Workload {
    let spec = preset.synthetic_spec(n_jobs);
    let w = spec.generate(seed);
    let (racks, npr, _, _) = preset.machine();
    let w = transform::rescale_load(&w, racks * npr, load);
    transform::shift_to_origin(&w)
}

/// The four-policy comparison suite the paper's evaluation revolves around:
/// the conventional baseline plus three disaggregation-aware policies, all
/// under FCFS + EASY.
pub fn policy_suite(slowdown: SlowdownModel) -> Vec<SchedulerConfig> {
    [
        MemoryPolicy::LocalOnly,
        MemoryPolicy::PoolFirstFit,
        MemoryPolicy::PoolBestFit,
        MemoryPolicy::SlowdownAware { max_dilation: 1.35 },
    ]
    .into_iter()
    .map(|memory| {
        SchedulerBuilder::new()
            .order(OrderPolicy::Fcfs)
            .backfill(BackfillPolicy::Easy)
            .memory(memory)
            .slowdown(slowdown)
            .build()
    })
    .collect()
}

/// The default slowdown model used by the experiments: saturating with a
/// 1.5× worst case — the mid-range of published far-memory penalties.
pub fn default_slowdown() -> SlowdownModel {
    SlowdownModel::Saturating {
        penalty: 1.5,
        curvature: 3.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_cluster_shapes() {
        let c = preset_cluster(
            SystemPreset::MidCluster,
            PoolTopology::PerRack {
                mib_per_rack: 512 * 1024,
            },
        );
        assert_eq!(c.total_nodes(), 256);
        assert_eq!(c.total_pool_mem(), 8 * 512 * 1024);
    }

    #[test]
    fn preset_workload_hits_load() {
        let w = preset_workload(SystemPreset::HighThroughput, 800, 3, 0.7);
        let (racks, npr, _, _) = SystemPreset::HighThroughput.machine();
        let load = w.offered_load(racks * npr);
        assert!((load - 0.7).abs() < 0.02, "load {load}");
        assert_eq!(w.first_arrival().unwrap().as_micros(), 0);
    }

    #[test]
    fn suite_has_four_distinct_policies() {
        let suite = policy_suite(default_slowdown());
        assert_eq!(suite.len(), 4);
        let labels: Vec<String> = suite.iter().map(|c| c.label()).collect();
        let mut dedup = labels.clone();
        dedup.dedup();
        assert_eq!(labels, dedup);
        assert!(labels[0].contains("local-only"));
        assert!(labels[3].contains("slowdown-aware"));
    }
}
