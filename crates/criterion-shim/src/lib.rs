//! A minimal, dependency-free stand-in for the subset of the `criterion`
//! API this workspace's benches use.
//!
//! The real criterion crate cannot be vendored in offline builds, so the
//! bench targets depend on this shim under the name `criterion` (see
//! `crates/bench/Cargo.toml`). It keeps the familiar surface —
//! [`Criterion`], [`black_box`], [`criterion_group!`], [`criterion_main!`],
//! benchmark groups with throughput annotations — and prints one
//! `name ... mean ± spread` line per benchmark.
//!
//! Methodology (simplified): each benchmark is warmed up briefly, then
//! timed over `sample_size` samples; a sample is as many iterations as fit
//! a fixed slice of wall time. Numbers are indicative, not
//! statistically rigorous — good enough to compare runner overhead across
//! commits on the same machine.
//!
//! When the `BENCH_JSON` environment variable names a file, every
//! benchmark additionally appends one JSON object per line
//! (`{"name": ..., "mean_ns": ..., "std_ns": ...}`) to it. Appending —
//! rather than rewriting — lets the several bench binaries of a
//! `cargo bench` invocation share one machine-readable results file,
//! which is what the CI bench-regression gate consumes.

#![forbid(unsafe_code)]

use std::fmt;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Opaque value barrier: prevents the optimizer from deleting benchmark work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation attached to a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// How `iter_batched` amortizes setup cost. The shim re-runs setup per
/// batch regardless; the variants exist for API compatibility.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// A benchmark identifier: function name plus a parameter value.
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `name/parameter`, as criterion renders it.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{name}/{parameter}"),
        }
    }

    /// Just a parameter (used with `bench_with_input` on anonymous fns).
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

/// Per-benchmark timing driver handed to the closure.
pub struct Bencher {
    /// Mean nanoseconds per iteration, filled by `iter`.
    samples_ns: Vec<f64>,
    sample_size: usize,
    measure_time: Duration,
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Bencher {
            samples_ns: Vec::new(),
            sample_size,
            measure_time: Duration::from_millis(300),
        }
    }

    /// Time `routine` repeatedly.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // Warmup + calibration: how many iterations fit ~1/sample of the
        // measurement budget?
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(50));
        let per_sample = self.measure_time / self.sample_size as u32;
        let iters = (per_sample.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let dt = start.elapsed();
            self.samples_ns.push(dt.as_nanos() as f64 / iters as f64);
        }
    }

    /// Time `routine` on fresh inputs from `setup` (setup excluded from the
    /// timing by measuring per-call and subtracting nothing — the shim
    /// simply times only the routine body).
    pub fn iter_batched<I, R, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> R,
    {
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples_ns.push(start.elapsed().as_nanos() as f64);
        }
    }
}

fn mean_std(samples: &[f64]) -> (f64, f64) {
    let n = samples.len().max(1) as f64;
    let mean = samples.iter().sum::<f64>() / n;
    let var = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / n;
    (mean, var.sqrt())
}

fn human_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Escape a benchmark name for a JSON string literal. Names come from
/// bench source code, but quotes/backslashes must still not corrupt the
/// results file.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn append_json_line(name: &str, mean: f64, std: f64) {
    let Ok(path) = std::env::var("BENCH_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let line = format!(
        "{{\"name\": \"{}\", \"mean_ns\": {mean:.3}, \"std_ns\": {std:.3}}}\n",
        json_escape(name)
    );
    let written = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut f| std::io::Write::write_all(&mut f, line.as_bytes()));
    if let Err(e) = written {
        eprintln!("criterion-shim: cannot append to BENCH_JSON={path}: {e}");
    }
}

fn report(name: &str, samples: &[f64], throughput: Option<Throughput>) {
    let (mean, std) = mean_std(samples);
    append_json_line(name, mean, std);
    let rate = match throughput {
        Some(Throughput::Elements(n)) if mean > 0.0 => {
            format!("  ({:.0} elem/s)", n as f64 / (mean / 1e9))
        }
        Some(Throughput::Bytes(n)) if mean > 0.0 => {
            format!(
                "  ({:.1} MiB/s)",
                n as f64 / (mean / 1e9) / (1024.0 * 1024.0)
            )
        }
        _ => String::new(),
    };
    println!(
        "{name:<52} {:>12} ± {:>10}{rate}",
        human_ns(mean),
        human_ns(std)
    );
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Annotate subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run a benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b, input);
        report(
            &format!("{}/{}", self.name, id.name),
            &b.samples_ns,
            self.throughput,
        );
        self
    }

    /// Run a benchmark.
    pub fn bench_function<F>(&mut self, name: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        report(
            &format!("{}/{}", self.name, name),
            &b.samples_ns,
            self.throughput,
        );
        self
    }

    /// Finish the group (prints nothing extra; kept for API parity).
    pub fn finish(&mut self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {
    sample_size: usize,
}

impl Criterion {
    /// Driver with default settings.
    pub fn new() -> Self {
        Criterion { sample_size: 20 }
    }

    /// Start a named group.
    pub fn benchmark_group(&mut self, name: impl fmt::Display) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            name: name.to_string(),
            sample_size,
            throughput: None,
            _parent: self,
        }
    }

    /// Run a standalone benchmark.
    pub fn bench_function<F>(&mut self, name: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        report(&name.to_string(), &b.samples_ns, None);
        self
    }
}

/// Collect benchmark functions into a runnable group, as criterion does.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::new();
            $( $target(&mut c); )+
        }
    };
}

/// Entry point running every group, as criterion does.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut b = Bencher::new(5);
        b.iter(|| black_box(3u64 * 7));
        assert_eq!(b.samples_ns.len(), 5);
        assert!(b.samples_ns.iter().all(|&s| s >= 0.0));
    }

    #[test]
    fn group_runs_to_completion() {
        let mut c = Criterion::new();
        let mut g = c.benchmark_group("shim");
        g.sample_size(3)
            .throughput(Throughput::Elements(10))
            .bench_with_input(BenchmarkId::new("mul", 4), &4u64, |b, &x| {
                b.iter(|| black_box(x * x))
            });
        g.finish();
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_escape("plain/name"), "plain/name");
        assert_eq!(json_escape("q\"uote\\back"), "q\\\"uote\\\\back");
        assert_eq!(json_escape("tab\there"), "tab\\u0009here");
    }

    #[test]
    fn human_units() {
        assert!(human_ns(12.0).ends_with("ns"));
        assert!(human_ns(12_000.0).ends_with("µs"));
        assert!(human_ns(12_000_000.0).ends_with("ms"));
        assert!(human_ns(2e9).ends_with(" s"));
    }
}
