//! The scheduler: queue ordering × backfilling × memory placement.
//!
//! A scheduling pass ([`Scheduler::schedule`]) runs at every arrival and
//! completion event:
//!
//! 1. Order the queue per [`OrderPolicy`].
//! 2. Greedily start jobs from the head while the [`MemoryPolicy`] can
//!    place them.
//! 3. When the head blocks, backfill per [`BackfillPolicy`]:
//!    * **EASY** — reserve the head at its earliest two-resource fit (via
//!      [`AvailabilityProfile`]), then start any later job whose concrete
//!      placement fits *alongside the reservation* for its whole (possibly
//!      dilation-inflated) walltime. A backfill can therefore never delay
//!      the head — including by stealing pool memory the head needs, which
//!      single-resource backfilling misses.
//!    * **Conservative** — walk the queue in order, give every job a
//!      reservation at its earliest fit given all earlier reservations, and
//!      start exactly those whose reservation is *now* and whose concrete
//!      placement agrees with the profile. No job is ever delayed by a
//!      later-queued one.

use crate::admission::{AdmissionPolicy, AdmissionVerdict, PreemptPolicy, RejectReason};
use crate::memory::MemoryPolicy;
use crate::order::OrderPolicy;
use crate::profile::{AvailabilityProfile, Release};
use crate::queue::WaitQueue;
use crate::release::ReleaseView;
use crate::traits::{Ordering, PassDirective, Placement, SchedContext};
use dmhpc_des::time::{SimDuration, SimTime};
use dmhpc_platform::{Cluster, MemoryAssignment, PlatformError, SlowdownModel};
use dmhpc_workload::{Job, JobId};

/// Backfilling flavour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackfillPolicy {
    /// No backfilling: strict queue order (head blocks everyone).
    None,
    /// EASY: one reservation (queue head); aggressive otherwise.
    Easy,
    /// Conservative: a reservation for every queued job.
    Conservative,
}

impl BackfillPolicy {
    /// Stable name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            BackfillPolicy::None => "none",
            BackfillPolicy::Easy => "easy",
            BackfillPolicy::Conservative => "conservative",
        }
    }
}

/// Full scheduler configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SchedulerConfig {
    /// Queue ordering.
    pub order: OrderPolicy,
    /// Backfilling flavour.
    pub backfill: BackfillPolicy,
    /// Memory placement policy.
    pub memory: MemoryPolicy,
    /// Far-memory cost model (shared with the engine).
    pub slowdown: SlowdownModel,
    /// Inflate planned walltimes (reservation lengths and kill limits) by
    /// the predicted dilation, so borrowing jobs are not killed for running
    /// exactly as slow as predicted. Ablation A1 turns this off.
    pub inflate_walltime: bool,
    /// Admission control for deadline-stamped jobs. The default
    /// ([`AdmissionPolicy::AdmitAll`]) is inert: it contributes nothing to
    /// labels, cell hashes, or serialized specs.
    pub admission: AdmissionPolicy,
    /// Deadline-priced preemption of running jobs. The default
    /// ([`PreemptPolicy::Never`]) is inert, exactly as for `admission`.
    pub preempt: PreemptPolicy,
}

impl SchedulerConfig {
    /// Human-readable policy triple, e.g. `fcfs+easy+pool-ff`.
    pub fn label(&self) -> String {
        format!(
            "{}+{}+{}",
            self.order.name(),
            self.backfill.name(),
            self.memory.name()
        )
    }

    /// A label that distinguishes *every* field, including policy
    /// parameters, the slowdown model, and the walltime-inflation switch —
    /// e.g. `fcfs+easy+slowdown-aware1.35+sat1.5k3+noinfl`. Two configs
    /// share a full label iff they are equal, which is what experiment
    /// grids key cells on.
    pub fn full_label(&self) -> String {
        let order = match self.order {
            OrderPolicy::Wfp { exponent } => format!("wfp{exponent}"),
            OrderPolicy::BatchBudget { hold_s } => format!("batch-budget{hold_s}"),
            other => other.name().to_string(),
        };
        let memory = match self.memory {
            MemoryPolicy::SlowdownAware { max_dilation } => {
                format!("slowdown-aware{max_dilation}")
            }
            MemoryPolicy::LaxityAware { max_dilation } => {
                format!("laxity-aware{max_dilation}")
            }
            other => other.name().to_string(),
        };
        let slowdown = match self.slowdown {
            SlowdownModel::None => "sd-none".to_string(),
            SlowdownModel::Linear { penalty } => format!("lin{penalty}"),
            SlowdownModel::Saturating { penalty, curvature } => {
                format!("sat{penalty}k{curvature}")
            }
            SlowdownModel::Contention { penalty, gamma } => format!("con{penalty}g{gamma}"),
        };
        let mut label = format!("{order}+{}+{memory}+{slowdown}", self.backfill.name());
        if !self.inflate_walltime {
            label.push_str("+noinfl");
        }
        if self.admission != AdmissionPolicy::AdmitAll {
            label.push('+');
            label.push_str(self.admission.name());
        }
        if let PreemptPolicy::LaxityCheckpoint { overhead_s } = self.preempt {
            label.push_str(&format!("+preempt{overhead_s}"));
        }
        label
    }
}

/// Fluent builder for [`SchedulerConfig`] with the conventional defaults
/// (FCFS + EASY + LocalOnly + linear 1.5× slowdown + walltime inflation
/// on). The result is plain data; validation happens when a [`Scheduler`]
/// or simulation is constructed from it.
#[derive(Debug, Clone)]
pub struct SchedulerBuilder {
    cfg: SchedulerConfig,
}

impl Default for SchedulerBuilder {
    fn default() -> Self {
        SchedulerBuilder {
            cfg: SchedulerConfig {
                order: OrderPolicy::Fcfs,
                backfill: BackfillPolicy::Easy,
                memory: MemoryPolicy::LocalOnly,
                slowdown: SlowdownModel::Linear { penalty: 1.5 },
                inflate_walltime: true,
                admission: AdmissionPolicy::AdmitAll,
                preempt: PreemptPolicy::Never,
            },
        }
    }
}

impl SchedulerBuilder {
    /// Start from defaults.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the queue order.
    pub fn order(mut self, order: OrderPolicy) -> Self {
        self.cfg.order = order;
        self
    }

    /// Set the backfill flavour.
    pub fn backfill(mut self, backfill: BackfillPolicy) -> Self {
        self.cfg.backfill = backfill;
        self
    }

    /// Set the memory policy.
    pub fn memory(mut self, memory: MemoryPolicy) -> Self {
        self.cfg.memory = memory;
        self
    }

    /// Set the slowdown model.
    pub fn slowdown(mut self, model: SlowdownModel) -> Self {
        self.cfg.slowdown = model;
        self
    }

    /// Toggle walltime inflation (ablation A1).
    pub fn inflate_walltime(mut self, on: bool) -> Self {
        self.cfg.inflate_walltime = on;
        self
    }

    /// Set the admission policy for deadline-stamped jobs.
    pub fn admission(mut self, admission: AdmissionPolicy) -> Self {
        self.cfg.admission = admission;
        self
    }

    /// Set the preemption policy.
    pub fn preempt(mut self, preempt: PreemptPolicy) -> Self {
        self.cfg.preempt = preempt;
        self
    }

    /// Finish, yielding the configuration value. Pass it to
    /// [`Scheduler::new`] (or a `dmhpc-sim` constructor), which validates
    /// it and reports problems as typed errors.
    pub fn build(self) -> SchedulerConfig {
        self.cfg
    }
}

/// A job the pass decided to start, with everything the engine needs.
#[derive(Debug, Clone)]
pub struct StartedJob {
    /// The job (removed from the queue).
    pub job: Job,
    /// Where it runs and how its memory splits.
    pub assignment: MemoryAssignment,
    /// Planned dilation estimate at start.
    pub dilation: f64,
    /// Kill limit (inflated if configured).
    pub planned_walltime: SimDuration,
}

/// Result of one scheduling pass.
#[derive(Debug, Clone, Default)]
pub struct PassResult {
    /// Jobs started now (already allocated on the cluster).
    pub started: Vec<StartedJob>,
    /// Jobs refused admission (removed from the queue): either they can
    /// never run on this machine, or the active [`AdmissionPolicy`]
    /// declared their deadline unmeetable.
    pub rejected: Vec<(Job, RejectReason)>,
    /// Jobs the admission policy deferred this pass (still queued, in
    /// queue order), each with its re-check instant. The engine surfaces
    /// each job's *first* deferral as an event.
    pub deferred: Vec<(JobId, SimTime)>,
    /// Earliest instant a deferred job's deadline feasibility lapses; the
    /// engine schedules a wake-up so the lapse is assessed even if no
    /// natural event intervenes. `None` when nothing was deferred.
    pub recheck_at: Option<SimTime>,
    /// Set when the ordering held the batch ([`PassDirective::Hold`]):
    /// nothing was started or rejected, and the engine should re-pass at
    /// this instant.
    pub hold_until: Option<SimTime>,
}

/// The scheduler. Stateless between passes: all state lives in the queue,
/// the cluster, and the engine's running set, so passes are pure functions
/// of the visible system state — a property the determinism tests rely on.
///
/// Ordering and placement behaviour are held as trait objects, so the
/// built-in [`OrderPolicy`]/[`MemoryPolicy`] enums and user-supplied
/// [`Ordering`]/[`Placement`] implementations schedule through the same
/// code path.
#[derive(Debug)]
pub struct Scheduler {
    cfg: SchedulerConfig,
    order: Box<dyn Ordering>,
    placement: Box<dyn Placement>,
    /// Run-wide SLO wait target (seconds), surfaced to policies through
    /// [`SchedContext::slo_wait_s`]. Deliberately *not* part of
    /// [`SchedulerConfig`]: it describes the workload's service objective,
    /// not the policy, so labels and cell hashes ignore it.
    slo_wait_s: Option<f64>,
}

impl Scheduler {
    /// A scheduler with the given configuration, using the built-in policy
    /// enums. Fails with a typed error when the slowdown model is
    /// ill-formed.
    pub fn new(cfg: SchedulerConfig) -> Result<Self, PlatformError> {
        Self::with_policies(cfg, Box::new(cfg.order), Box::new(cfg.memory))
    }

    /// A scheduler with custom ordering and placement behaviour. `cfg`
    /// still supplies the backfill flavour, the slowdown model, and the
    /// walltime-inflation switch; its `order`/`memory` enums are ignored
    /// in favour of the supplied trait objects. Note the enums keep their
    /// original values inside the config — `config().label()` and any
    /// serialized form describe the *enums*, not the active custom
    /// policies; use [`Scheduler::label`] (or the engine's report labels,
    /// which go through it) for what actually ran.
    pub fn with_policies(
        cfg: SchedulerConfig,
        order: Box<dyn Ordering>,
        placement: Box<dyn Placement>,
    ) -> Result<Self, PlatformError> {
        cfg.slowdown.validate()?;
        Ok(Scheduler {
            cfg,
            order,
            placement,
            slo_wait_s: None,
        })
    }

    /// This scheduler's configuration.
    pub fn config(&self) -> &SchedulerConfig {
        &self.cfg
    }

    /// Set (or clear) the run-wide SLO wait target policies see through
    /// [`SchedContext::slo_wait_s`]. The engine wires this from an open
    /// run's service objective; standalone users may set it directly.
    pub fn set_slo_target(&mut self, slo_wait_s: Option<f64>) {
        self.slo_wait_s = slo_wait_s;
    }

    /// The active run-wide SLO wait target, if any.
    pub fn slo_target(&self) -> Option<f64> {
        self.slo_wait_s
    }

    /// The active placement policy. The engine prices deadline feasibility
    /// with it ([`Placement::best_dilation`]) when deciding whether a
    /// queued job justifies preempting running work.
    pub fn placement(&self) -> &dyn Placement {
        self.placement.as_ref()
    }

    /// The context all policy calls in a pass receive. Cheap to build, so
    /// passes materialize one wherever the previous cluster mutation ended
    /// its predecessor's borrow.
    fn ctx<'a>(
        &'a self,
        now: SimTime,
        cluster: &'a Cluster,
        running: ReleaseView<'a>,
    ) -> SchedContext<'a> {
        SchedContext::new(now, cluster, &self.cfg.slowdown, running, self.slo_wait_s)
    }

    /// Human-readable policy triple, using the *active* policies (which
    /// differ from `config().label()` when custom trait objects are
    /// plugged in).
    pub fn label(&self) -> String {
        format!(
            "{}+{}+{}",
            self.order.name(),
            self.cfg.backfill.name(),
            self.placement.name()
        )
    }

    /// Planned walltime for a job at the given dilation.
    fn planned_walltime(&self, job: &Job, dilation: f64) -> SimDuration {
        if self.cfg.inflate_walltime && dilation > 1.0 {
            job.walltime.scale(dilation)
        } else {
            job.walltime
        }
    }

    /// Run one scheduling pass. Started jobs are allocated on `cluster`
    /// (lease = job id) and removed from `queue`. `running` is the
    /// engine-maintained [`crate::ReleaseIndex`]'s view of planned
    /// releases, already in ascending planned-end order — passes no longer
    /// rebuild it.
    pub fn schedule(
        &self,
        now: SimTime,
        queue: &mut WaitQueue,
        cluster: &mut Cluster,
        running: ReleaseView<'_>,
    ) -> PassResult {
        let mut result = PassResult::default();
        {
            let ctx = self.ctx(now, cluster, running);
            let entries = queue.entries_mut();
            self.order.order(entries, &ctx);
            // Batch-forming orderings may hold the whole start set until
            // their latency budget expires (directives with `until ≤ now`
            // proceed — the budget is already spent).
            if let PassDirective::Hold { until } = self.order.directive(entries, &ctx) {
                if until > now {
                    result.hold_until = Some(until);
                    return result;
                }
            }
        }

        // Phase 1: greedy head starts.
        while let Some(head) = queue.front() {
            let job = &head.job;
            let ctx = self.ctx(now, cluster, running);
            // Jobs impossible even on an idle machine are rejected here so
            // they cannot block the queue forever.
            if self.placement.nominal_shape(job, &ctx).is_none() {
                let entry = queue.pop_front();
                result
                    .rejected
                    .push((entry.job, RejectReason::CapacityExceeded));
                continue;
            }
            let Some(plan) = self.placement.plan(job, &ctx) else {
                break; // head blocked
            };
            let entry = queue.pop_front();
            let planned_walltime = self.planned_walltime(&entry.job, plan.dilation);
            cluster
                .allocate(entry.job.id.as_u64(), plan.assignment.clone())
                // lint: allow(panic) — plan() only returns assignments the cluster can satisfy right now
                .expect("plan() returned an unallocatable assignment");
            result.started.push(StartedJob {
                job: entry.job,
                assignment: plan.assignment,
                dilation: plan.dilation,
                planned_walltime,
            });
        }

        if queue.is_empty() || self.cfg.backfill == BackfillPolicy::None {
            self.admission_pass(now, queue, cluster, running, &mut result);
            return result;
        }

        // View iteration is already (time, lease)-sorted; the profile's
        // stable sort then sees pre-sorted input plus the started-jobs tail.
        let releases: Vec<Release> = running
            .iter()
            .map(|r| Release {
                time: r.planned_end,
                nodes_per_rack: r.nodes_per_rack.clone(),
                pool_per_domain: r.pool_per_domain.clone(),
            })
            // Jobs started in phase 1 also release capacity later.
            .chain(
                result
                    .started
                    .iter()
                    .map(|s| release_of(cluster, &s.assignment, now + s.planned_walltime)),
            )
            .collect();
        let mut profile = AvailabilityProfile::from_cluster(now, cluster, &releases);

        // The profile only sees current free capacity plus running-job
        // releases; it knows nothing about scheduled repairs or drain
        // ends. On a degraded machine (out-of-service nodes or degraded
        // pools), "never fits the profile" may therefore be transient —
        // such jobs stay queued instead of being rejected, and the engine
        // fails them terminally only once no event can restore capacity.
        // On a healthy machine the predicate is always false, so the
        // pre-fault rejection behaviour is untouched.
        let degraded = cluster.available_nodes() < cluster.total_nodes() as usize
            || cluster.pools().iter().any(|p| p.health() < 1.0);

        match self.cfg.backfill {
            BackfillPolicy::None => unreachable!("handled above"),
            BackfillPolicy::Easy => self.easy_pass(
                now,
                queue,
                cluster,
                running,
                degraded,
                &mut profile,
                &mut result,
            ),
            BackfillPolicy::Conservative => self.conservative_pass(
                now,
                queue,
                cluster,
                running,
                degraded,
                &mut profile,
                &mut result,
            ),
        }
        self.admission_pass(now, queue, cluster, running, &mut result);
        result
    }

    /// Assess every job the pass left queued against the admission
    /// policy: rejects are removed from the queue and recorded with their
    /// typed reason; deferrals stay queued and surface with the earliest
    /// re-check instant. A no-op under the default
    /// [`AdmissionPolicy::AdmitAll`] — and on held passes, which return
    /// before scheduling anything (the engine re-passes at `hold_until`,
    /// well inside any deadline a batch budget could threaten).
    fn admission_pass(
        &self,
        now: SimTime,
        queue: &mut WaitQueue,
        cluster: &Cluster,
        running: ReleaseView<'_>,
        result: &mut PassResult,
    ) {
        if self.cfg.admission == AdmissionPolicy::AdmitAll {
            return;
        }
        let mut idx = 0;
        while idx < queue.len() {
            let verdict = {
                let ctx = self.ctx(now, cluster, running);
                // lint: allow(panic) — the loop condition maintains idx < queue.len()
                let job = &queue.get(idx).expect("idx < len").job;
                self.cfg
                    .admission
                    .assess(job, &ctx, self.placement.as_ref())
            };
            match verdict {
                AdmissionVerdict::Admit => idx += 1,
                AdmissionVerdict::Defer { recheck_at } => {
                    result
                        .deferred
                        // lint: allow(panic) — the loop condition maintains idx < queue.len()
                        .push((queue.get(idx).expect("idx < len").job.id, recheck_at));
                    result.recheck_at = Some(match result.recheck_at {
                        Some(t) => t.min(recheck_at),
                        None => recheck_at,
                    });
                    idx += 1;
                }
                AdmissionVerdict::Reject(reason) => {
                    let entry = queue.remove(idx);
                    result.rejected.push((entry.job, reason));
                }
            }
        }
    }

    /// EASY: reserve the head, then start any later job that fits alongside.
    #[allow(clippy::too_many_arguments)]
    fn easy_pass(
        &self,
        now: SimTime,
        queue: &mut WaitQueue,
        cluster: &mut Cluster,
        running: ReleaseView<'_>,
        degraded: bool,
        profile: &mut AvailabilityProfile,
        result: &mut PassResult,
    ) {
        // lint: allow(panic) — the caller enters the easy pass only with a non-empty queue
        let head = &queue.front().expect("easy pass needs a head").job;
        let (head_demand, head_dilation) = self
            .placement
            .nominal_shape(head, &self.ctx(now, cluster, running))
            // lint: allow(panic) — phase 1 rejected jobs that can never fit, so the head has a shape
            .expect("head rejected in phase 1 if impossible");
        let head_wall = self.planned_walltime(head, head_dilation);
        let Some((shadow, head_split)) = profile.earliest_fit(now, head_wall, &head_demand) else {
            if degraded {
                // Capacity lost to faults may return (pending repair /
                // drain-end): keep the head queued and skip backfilling
                // (no reservation to protect it against).
                return;
            }
            // Healthy machine: cannot ever fit (pool topology too small
            // for the nominal shape) — reject rather than wedge the queue.
            let entry = queue.pop_front();
            result
                .rejected
                .push((entry.job, RejectReason::ProfileInfeasible));
            return;
        };
        profile.reserve(shadow, head_wall, &head_split, head_demand.remote_per_node);

        // Scan the rest of the queue in order.
        let mut idx = 1;
        while idx < queue.len() {
            // lint: allow(panic) — the loop condition maintains idx < queue.len()
            let job = &queue.get(idx).expect("idx < len").job;
            let Some(plan) = self.placement.plan(job, &self.ctx(now, cluster, running)) else {
                idx += 1;
                continue;
            };
            let wall = self.planned_walltime(job, plan.dilation);
            let split = split_of(cluster, &plan.assignment);
            if !profile.fits_split(now, wall, &split, plan.assignment.remote_per_node) {
                idx += 1;
                continue;
            }
            let entry = queue.remove(idx);
            cluster
                .allocate(entry.job.id.as_u64(), plan.assignment.clone())
                // lint: allow(panic) — plan() only returns assignments the cluster can satisfy right now
                .expect("plan() returned an unallocatable assignment");
            profile.reserve(now, wall, &split, plan.assignment.remote_per_node);
            result.started.push(StartedJob {
                job: entry.job,
                assignment: plan.assignment,
                dilation: plan.dilation,
                planned_walltime: wall,
            });
            // Do not advance idx: removal shifted the next candidate here.
        }
    }

    /// Conservative: a reservation per queued job, in queue order.
    #[allow(clippy::too_many_arguments)]
    fn conservative_pass(
        &self,
        now: SimTime,
        queue: &mut WaitQueue,
        cluster: &mut Cluster,
        running: ReleaseView<'_>,
        degraded: bool,
        profile: &mut AvailabilityProfile,
        result: &mut PassResult,
    ) {
        let mut idx = 0;
        while idx < queue.len() {
            // lint: allow(panic) — the loop condition maintains idx < queue.len()
            let job = &queue.get(idx).expect("idx < len").job;
            let (demand, dilation) = self
                .placement
                .nominal_shape(job, &self.ctx(now, cluster, running))
                // lint: allow(panic) — phase 1 rejected jobs that can never fit, so a shape exists
                .expect("impossible jobs rejected in phase 1");
            let wall = self.planned_walltime(job, dilation);
            let Some((start, split)) = profile.earliest_fit(now, wall, &demand) else {
                if degraded {
                    // Transiently unservable (see `schedule`): keep it
                    // queued, unreserved, and move on.
                    idx += 1;
                    continue;
                }
                let entry = queue.remove(idx);
                result
                    .rejected
                    .push((entry.job, RejectReason::ProfileInfeasible));
                continue;
            };
            if start == now {
                if let Some(plan) = self.placement.plan(job, &self.ctx(now, cluster, running)) {
                    let plan_wall = self.planned_walltime(job, plan.dilation);
                    let plan_split = split_of(cluster, &plan.assignment);
                    if profile.fits_split(
                        now,
                        plan_wall,
                        &plan_split,
                        plan.assignment.remote_per_node,
                    ) {
                        let entry = queue.remove(idx);
                        cluster
                            .allocate(entry.job.id.as_u64(), plan.assignment.clone())
                            // lint: allow(panic) — plan() only returns assignments the cluster can satisfy right now
                            .expect("plan() returned an unallocatable assignment");
                        profile.reserve(
                            now,
                            plan_wall,
                            &plan_split,
                            plan.assignment.remote_per_node,
                        );
                        result.started.push(StartedJob {
                            job: entry.job,
                            assignment: plan.assignment,
                            dilation: plan.dilation,
                            planned_walltime: plan_wall,
                        });
                        continue; // same idx: next job shifted in
                    }
                }
            }
            // Hold a reservation; the job stays queued.
            profile.reserve(start, wall, &split, demand.remote_per_node);
            idx += 1;
        }
    }
}

/// Count an assignment's nodes per rack.
fn split_of(cluster: &Cluster, assignment: &MemoryAssignment) -> Vec<u32> {
    let racks = cluster.spec().racks as usize;
    let mut split = vec![0u32; racks];
    for &node in &assignment.nodes {
        split[cluster.rack_of(node).0 as usize] += 1;
    }
    split
}

/// The release event an assignment will produce at `end`.
fn release_of(cluster: &Cluster, assignment: &MemoryAssignment, end: SimTime) -> Release {
    let racks = cluster.spec().racks as usize;
    let domains = cluster.pools().len();
    let mut nodes_per_rack = vec![0u32; racks];
    let mut pool_per_domain = vec![0u64; domains];
    for &node in &assignment.nodes {
        nodes_per_rack[cluster.rack_of(node).0 as usize] += 1;
        if assignment.remote_per_node > 0 {
            let pool = cluster
                .pool_of(node)
                // lint: allow(panic) — assignments with remote memory are only planned on pool-backed nodes
                .expect("remote memory implies a pool domain");
            pool_per_domain[pool.0 as usize] += assignment.remote_per_node;
        }
    }
    Release {
        time: end,
        nodes_per_rack,
        pool_per_domain,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::release::{ReleaseIndex, RunningRelease};
    use dmhpc_platform::{ClusterSpec, NodeSpec, PoolTopology};
    use dmhpc_workload::{JobBuilder, JobId};

    const GIB: u64 = 1024;

    /// 1 rack × 4 nodes, 256 GiB DRAM, 100 GiB rack pool.
    fn small_cluster() -> Cluster {
        Cluster::new(ClusterSpec::new(
            1,
            4,
            NodeSpec::new(64, 256 * GIB),
            PoolTopology::PerRack {
                mib_per_rack: 100 * GIB,
            },
        ))
    }

    fn fcfs_easy() -> Scheduler {
        Scheduler::new(
            SchedulerBuilder::new()
                .memory(MemoryPolicy::PoolFirstFit)
                .build(),
        )
        .unwrap()
    }

    fn job(id: u64, nodes: u32, runtime_s: u64, wall_s: u64) -> Job {
        JobBuilder::new(id)
            .nodes(nodes)
            .runtime_secs(runtime_s, wall_s)
            .mem_per_node(32 * GIB)
            .build()
    }

    /// Park a lease on the cluster and track its release in the index.
    fn park(
        cluster: &mut Cluster,
        running: &mut ReleaseIndex,
        lease: u64,
        nodes: &[u32],
        remote: u64,
        end_s: u64,
    ) {
        let ids: Vec<_> = nodes.iter().map(|&n| dmhpc_platform::NodeId(n)).collect();
        let a = if remote > 0 {
            MemoryAssignment::hybrid(ids, 32 * GIB, remote)
        } else {
            MemoryAssignment::local(ids, 32 * GIB)
        };
        cluster.allocate(lease, a.clone()).unwrap();
        let rel = release_of(cluster, &a, SimTime::from_secs(end_s));
        running.insert(
            lease,
            RunningRelease {
                planned_end: rel.time,
                nodes_per_rack: rel.nodes_per_rack,
                pool_per_domain: rel.pool_per_domain,
            },
        );
    }

    fn ids(started: &[StartedJob]) -> Vec<u64> {
        started.iter().map(|s| s.job.id.0).collect()
    }

    #[test]
    fn greedy_starts_until_blocked() {
        let sched = fcfs_easy();
        let mut cluster = small_cluster();
        let mut queue = WaitQueue::new();
        for (id, nodes) in [(1, 2), (2, 1), (3, 4)] {
            queue.push(job(id, nodes, 100, 200), SimTime::ZERO);
        }
        let result = sched.schedule(
            SimTime::ZERO,
            &mut queue,
            &mut cluster,
            ReleaseView::empty(),
        );
        // Jobs 1 (2 nodes) and 2 (1 node) start; job 3 (4 nodes) blocks
        // (1 node free) and nothing is behind it to backfill.
        assert_eq!(ids(&result.started), vec![1, 2]);
        assert_eq!(queue.len(), 1);
        assert_eq!(cluster.free_nodes(), 1);
        cluster.verify_invariants().unwrap();
    }

    #[test]
    fn easy_backfills_short_jobs_only() {
        let sched = fcfs_easy();
        let mut cluster = small_cluster();
        // 2 nodes busy until t=100.
        let mut running = ReleaseIndex::new();
        park(&mut cluster, &mut running, 100, &[0, 1], 0, 100);
        let mut queue = WaitQueue::new();
        // Head: needs all 4 nodes → shadow at t=100.
        queue.push(job(1, 4, 500, 1000), SimTime::ZERO);
        // Short filler (2 nodes, 100 s ≤ shadow): must start.
        queue.push(job(2, 2, 50, 100), SimTime::ZERO);
        // Long filler (2 nodes, 400 s): would hold nodes past t=100 → no.
        queue.push(job(3, 2, 300, 400), SimTime::ZERO);
        let result = sched.schedule(SimTime::ZERO, &mut queue, &mut cluster, running.view());
        assert_eq!(ids(&result.started), vec![2]);
        assert_eq!(queue.len(), 2);
        assert_eq!(queue.front().unwrap().job.id, JobId(1), "head still first");
    }

    #[test]
    fn easy_pool_aware_backfill_blocks_pool_thieves() {
        let sched = Scheduler::new(
            SchedulerBuilder::new()
                .memory(MemoryPolicy::PoolFirstFit)
                .inflate_walltime(false) // keep window arithmetic exact
                .build(),
        )
        .unwrap();
        let mut cluster = small_cluster();
        // Node 0 borrows 60 GiB of the 100 GiB pool until t=100; nodes 1–2
        // are busy locally until t=100. Only node 3 and 40 GiB of pool are
        // free now.
        let mut running = ReleaseIndex::new();
        park(&mut cluster, &mut running, 100, &[0], 60 * GIB, 100);
        park(&mut cluster, &mut running, 101, &[1, 2], 0, 100);
        let mut queue = WaitQueue::new();
        // Head: 1 node borrowing 100 GiB. Now: pool has only 40 free and
        // inflation (2 nodes) has only 1 free node → blocked. Shadow at
        // t=100 when the pool refills.
        let head = JobBuilder::new(1)
            .nodes(1)
            .mem_per_node(356 * GIB) // 256 local + 100 remote
            .runtime_secs(500, 1000)
            .build();
        queue.push(head, SimTime::ZERO);
        // Filler borrowing 40 GiB for 400 s: node 3 and 40 GiB are free NOW
        // — but from t=100 the head's reservation needs the whole pool.
        // Single-resource (node-count) backfill would start it and delay
        // the head; the two-resource profile must not.
        let thief = JobBuilder::new(2)
            .nodes(1)
            .mem_per_node(296 * GIB) // 256 local + 40 remote
            .runtime_secs(300, 400)
            .build();
        queue.push(thief, SimTime::ZERO);
        // Same shape but short (50 s): returns the pool before the shadow.
        let polite = JobBuilder::new(3)
            .nodes(1)
            .mem_per_node(296 * GIB)
            .runtime_secs(30, 50)
            .build();
        queue.push(polite, SimTime::ZERO);

        let result = sched.schedule(SimTime::ZERO, &mut queue, &mut cluster, running.view());
        assert_eq!(ids(&result.started), vec![3], "only the polite filler");
        assert_eq!(queue.front().unwrap().job.id, JobId(1));
        assert_eq!(queue.get(1).unwrap().job.id, JobId(2));
        cluster.verify_invariants().unwrap();
    }

    #[test]
    fn no_backfill_policy_blocks_strictly() {
        let sched = Scheduler::new(
            SchedulerBuilder::new()
                .backfill(BackfillPolicy::None)
                .memory(MemoryPolicy::PoolFirstFit)
                .build(),
        )
        .unwrap();
        let mut cluster = small_cluster();
        let mut running = ReleaseIndex::new();
        park(&mut cluster, &mut running, 100, &[0, 1], 0, 100);
        let mut queue = WaitQueue::new();
        queue.push(job(1, 4, 500, 1000), SimTime::ZERO);
        queue.push(job(2, 1, 50, 100), SimTime::ZERO);
        let result = sched.schedule(SimTime::ZERO, &mut queue, &mut cluster, running.view());
        assert!(result.started.is_empty(), "head blocks everything");
    }

    #[test]
    fn conservative_never_delays_earlier_reservations() {
        let sched = Scheduler::new(
            SchedulerBuilder::new()
                .backfill(BackfillPolicy::Conservative)
                .memory(MemoryPolicy::PoolFirstFit)
                .build(),
        )
        .unwrap();
        let mut cluster = small_cluster();
        let mut running = ReleaseIndex::new();
        park(&mut cluster, &mut running, 100, &[0, 1], 0, 100);
        let mut queue = WaitQueue::new();
        // Head: all 4 nodes, reserved at t=100 for 1000 s.
        queue.push(job(1, 4, 500, 1000), SimTime::ZERO);
        // Second: 2 nodes for 1000 s → reserved at t=1100 (after head).
        queue.push(job(2, 2, 500, 1000), SimTime::ZERO);
        // Third: 2 nodes, 100 s: fits NOW (2 free until t=100) without
        // delaying either reservation.
        queue.push(job(3, 2, 50, 100), SimTime::ZERO);
        let result = sched.schedule(SimTime::ZERO, &mut queue, &mut cluster, running.view());
        assert_eq!(ids(&result.started), vec![3]);

        // Under conservative, a job that EASY would admit but which delays
        // the SECOND reservation must stay queued: 2 nodes for 150 s
        // overlaps [100, 1100) when head holds all 4… here it would overlap
        // the head reservation itself, so it stays queued too.
        let mut queue2 = WaitQueue::new();
        queue2.push(job(4, 2, 100, 150), SimTime::ZERO);
        // (fresh pass on the mutated cluster: nodes 0-3 now: 0,1 parked +
        // job 3 on two → all busy)
        let r2 = sched.schedule(SimTime::ZERO, &mut queue2, &mut cluster, running.view());
        assert!(r2.started.is_empty());
    }

    #[test]
    fn impossible_jobs_rejected_not_wedged() {
        let sched = fcfs_easy();
        let mut cluster = small_cluster();
        let mut queue = WaitQueue::new();
        // 8 nodes on a 4-node machine.
        queue.push(job(1, 8, 100, 200), SimTime::ZERO);
        queue.push(job(2, 1, 100, 200), SimTime::ZERO);
        let result = sched.schedule(
            SimTime::ZERO,
            &mut queue,
            &mut cluster,
            ReleaseView::empty(),
        );
        assert_eq!(result.rejected.len(), 1);
        assert_eq!(result.rejected[0].0.id, JobId(1));
        assert_eq!(ids(&result.started), vec![2], "queue not wedged");
    }

    #[test]
    fn walltime_inflation_toggle() {
        let heavy = JobBuilder::new(1)
            .nodes(1)
            .mem_per_node(356 * GIB) // borrows 100 GiB → dilated
            .intensity(1.0)
            .runtime_secs(100, 1000)
            .build();
        for (inflate, expect_longer) in [(true, true), (false, false)] {
            let sched = Scheduler::new(
                SchedulerBuilder::new()
                    .memory(MemoryPolicy::PoolFirstFit)
                    .inflate_walltime(inflate)
                    .build(),
            )
            .unwrap();
            let mut cluster = small_cluster();
            let mut queue = WaitQueue::new();
            queue.push(heavy.clone(), SimTime::ZERO);
            let result = sched.schedule(
                SimTime::ZERO,
                &mut queue,
                &mut cluster,
                ReleaseView::empty(),
            );
            let s = &result.started[0];
            assert!(s.dilation > 1.0);
            if expect_longer {
                assert!(s.planned_walltime > heavy.walltime);
            } else {
                assert_eq!(s.planned_walltime, heavy.walltime);
            }
        }
    }

    #[test]
    fn sjf_reorders_before_scheduling() {
        let sched = Scheduler::new(
            SchedulerBuilder::new()
                .order(OrderPolicy::Sjf)
                .memory(MemoryPolicy::PoolFirstFit)
                .build(),
        )
        .unwrap();
        let mut cluster = small_cluster();
        let mut queue = WaitQueue::new();
        queue.push(job(1, 1, 100, 10_000), SimTime::ZERO);
        queue.push(job(2, 1, 100, 100), SimTime::ZERO);
        let result = sched.schedule(
            SimTime::ZERO,
            &mut queue,
            &mut cluster,
            ReleaseView::empty(),
        );
        assert_eq!(ids(&result.started), vec![2, 1], "short job first");
    }

    #[test]
    fn pass_is_deterministic() {
        let sched = fcfs_easy();
        let build = || {
            let mut cluster = small_cluster();
            let mut running = ReleaseIndex::new();
            park(&mut cluster, &mut running, 100, &[0], 20 * GIB, 77);
            let mut queue = WaitQueue::new();
            for i in 0..6 {
                queue.push(job(i, 1 + (i % 3) as u32, 50 + i * 10, 200), SimTime::ZERO);
            }
            (cluster, running, queue)
        };
        let (mut c1, r1, mut q1) = build();
        let (mut c2, r2, mut q2) = build();
        let a = sched.schedule(SimTime::ZERO, &mut q1, &mut c1, r1.view());
        let b = sched.schedule(SimTime::ZERO, &mut q2, &mut c2, r2.view());
        assert_eq!(ids(&a.started), ids(&b.started));
        for (x, y) in a.started.iter().zip(b.started.iter()) {
            assert_eq!(x.assignment, y.assignment);
        }
    }

    #[test]
    fn config_label() {
        assert_eq!(fcfs_easy().config().label(), "fcfs+easy+pool-ff");
    }

    #[test]
    fn batch_budget_holds_then_releases() {
        let sched = Scheduler::new(
            SchedulerBuilder::new()
                .order(OrderPolicy::BatchBudget { hold_s: 100.0 })
                .memory(MemoryPolicy::PoolFirstFit)
                .build(),
        )
        .unwrap();
        let mut cluster = small_cluster();
        let mut queue = WaitQueue::new();
        queue.push(job(1, 1, 50, 100), SimTime::from_secs(10));
        queue.push(job(2, 1, 50, 100), SimTime::from_secs(40));

        // Budget not exhausted: nothing starts, the pass asks for a
        // wake-up at oldest-enqueued + budget.
        let held = sched.schedule(
            SimTime::from_secs(50),
            &mut queue,
            &mut cluster,
            ReleaseView::empty(),
        );
        assert!(held.started.is_empty() && held.rejected.is_empty());
        assert_eq!(held.hold_until, Some(SimTime::from_secs(110)));
        assert_eq!(queue.len(), 2, "held jobs stay queued");
        assert_eq!(cluster.free_nodes(), 4, "nothing allocated while held");

        // At the release instant the whole batch goes out at once.
        let released = sched.schedule(
            SimTime::from_secs(110),
            &mut queue,
            &mut cluster,
            ReleaseView::empty(),
        );
        assert_eq!(ids(&released.started), vec![1, 2]);
        assert_eq!(released.hold_until, None);
        cluster.verify_invariants().unwrap();
    }

    #[test]
    fn full_label_admission_and_preempt_suffixes() {
        let default = SchedulerBuilder::new().build();
        assert_eq!(default.full_label(), "fcfs+easy+local-only+lin1.5");
        let loaded = SchedulerBuilder::new()
            .memory(MemoryPolicy::LaxityAware { max_dilation: 1.5 })
            .admission(AdmissionPolicy::RejectInfeasible)
            .preempt(PreemptPolicy::LaxityCheckpoint { overhead_s: 60 })
            .build();
        assert_eq!(
            loaded.full_label(),
            "fcfs+easy+laxity-aware1.5+lin1.5+reject-infeasible+preempt60"
        );
        let deferred = SchedulerBuilder::new()
            .admission(AdmissionPolicy::DeferUntilFeasible)
            .build();
        assert_eq!(deferred.full_label(), "fcfs+easy+local-only+lin1.5+defer");
    }

    fn stamped_job(id: u64, wall_s: u64, deadline_s: f64) -> Job {
        JobBuilder::new(id)
            .arrival_secs(0)
            .nodes(1)
            .runtime_secs(wall_s / 2, wall_s)
            .mem_per_node(32 * GIB)
            .slo(dmhpc_workload::Slo::Deadline { deadline_s })
            .build()
    }

    /// Fill the whole machine until `end_s` so nothing can start.
    fn park_all(cluster: &mut Cluster, running: &mut ReleaseIndex, end_s: u64) {
        park(cluster, running, 900, &[0, 1, 2, 3], 0, end_s);
    }

    #[test]
    fn admission_rejects_laxity_exhausted_jobs() {
        let sched = Scheduler::new(
            SchedulerBuilder::new()
                .memory(MemoryPolicy::PoolFirstFit)
                .admission(AdmissionPolicy::RejectInfeasible)
                .build(),
        )
        .unwrap();
        let mut cluster = small_cluster();
        let mut running = ReleaseIndex::new();
        park_all(&mut cluster, &mut running, 1000);
        let mut queue = WaitQueue::new();
        // Deadline t=50 but walltime 100: lost before it could ever start.
        queue.push(stamped_job(1, 100, 50.0), SimTime::ZERO);
        // Deadline t=5000: plenty of laxity, stays queued.
        queue.push(stamped_job(2, 100, 5000.0), SimTime::ZERO);
        let result = sched.schedule(SimTime::ZERO, &mut queue, &mut cluster, running.view());
        assert!(result.started.is_empty());
        assert_eq!(result.rejected.len(), 1);
        assert_eq!(result.rejected[0].0.id, JobId(1));
        assert_eq!(
            result.rejected[0].1,
            crate::RejectReason::DeadlineInfeasible
        );
        assert_eq!(queue.len(), 1, "feasible job still queued");
        assert!(result.deferred.is_empty(), "reject mode never defers");
    }

    #[test]
    fn admission_defers_then_rejects_on_lapse() {
        let sched = Scheduler::new(
            SchedulerBuilder::new()
                .memory(MemoryPolicy::PoolFirstFit)
                .admission(AdmissionPolicy::DeferUntilFeasible)
                .build(),
        )
        .unwrap();
        let mut cluster = small_cluster();
        let mut running = ReleaseIndex::new();
        park_all(&mut cluster, &mut running, 1000);
        let mut queue = WaitQueue::new();
        // Deadline t=500, walltime 100: feasible until t=400.
        queue.push(stamped_job(1, 100, 500.0), SimTime::ZERO);
        let held = sched.schedule(SimTime::ZERO, &mut queue, &mut cluster, running.view());
        assert!(held.started.is_empty() && held.rejected.is_empty());
        assert_eq!(held.deferred, vec![(JobId(1), SimTime::from_secs(400))]);
        assert_eq!(held.recheck_at, Some(SimTime::from_secs(400)));
        assert_eq!(queue.len(), 1, "deferred jobs stay queued");

        // Past the lapse instant even an idle healthy machine cannot meet
        // the deadline: the deferral converts to a typed reject.
        let late = sched.schedule(
            SimTime::from_secs(450),
            &mut queue,
            &mut cluster,
            running.view(),
        );
        assert_eq!(late.rejected.len(), 1);
        assert_eq!(late.rejected[0].1, crate::RejectReason::DeadlineInfeasible);
        assert!(queue.is_empty());
    }

    #[test]
    fn edf_uses_run_wide_slo_target_via_scheduler() {
        // Two jobs, both unstamped; per-job budget-factor stamp on the
        // later arrival gives it the earlier deadline, so EDF flips FCFS.
        let mut sched = Scheduler::new(
            SchedulerBuilder::new()
                .order(OrderPolicy::Edf)
                .memory(MemoryPolicy::PoolFirstFit)
                .build(),
        )
        .unwrap();
        assert_eq!(sched.slo_target(), None);
        sched.set_slo_target(Some(3600.0));
        assert_eq!(sched.slo_target(), Some(3600.0));

        let mut cluster = small_cluster();
        let mut queue = WaitQueue::new();
        let early = JobBuilder::new(1)
            .arrival_secs(0)
            .nodes(1)
            .runtime_secs(50, 100)
            .mem_per_node(32 * GIB)
            .build();
        let mut urgent = JobBuilder::new(2)
            .arrival_secs(10)
            .nodes(1)
            .runtime_secs(50, 100)
            .mem_per_node(32 * GIB)
            .build();
        urgent.slo = Some(dmhpc_workload::Slo::Deadline { deadline_s: 30.0 });
        queue.push(early, SimTime::ZERO);
        queue.push(urgent, SimTime::from_secs(10));
        let result = sched.schedule(
            SimTime::from_secs(20),
            &mut queue,
            &mut cluster,
            ReleaseView::empty(),
        );
        // Deadlines: job 2 at t=40 (stamp), job 1 at t=3600 (run-wide).
        assert_eq!(ids(&result.started), vec![2, 1]);
    }
}
