//! # dmhpc-sched — batch scheduling with disaggregated memory
//!
//! The paper's contribution: schedulers that order, backfill, and place jobs
//! on a cluster whose memory is partly disaggregated.
//!
//! The crate decomposes a scheduler into three orthogonal policies, combined
//! by [`Scheduler`]:
//!
//! * [`OrderPolicy`] — who goes first: FCFS, shortest-job-first, the
//!   WFP-style utility function used on leadership systems, and the
//!   deadline-aware family (EDF, least-laxity, budget-bounded batch
//!   formation) driven by per-job [`dmhpc_workload::Slo`] stamps or a
//!   run-wide SLO target.
//! * [`MemoryPolicy`] — how a job's footprint is placed: `LocalOnly`
//!   (conventional cluster: memory-hungry jobs inflate their node count),
//!   `PoolFirstFit` / `PoolBestFit` (borrow pool memory, first-fit or
//!   best-fit across rack pools), and `SlowdownAware` (borrow only when the
//!   predicted dilation is worth the saved nodes, budgeted by a dilation
//!   cap).
//! * [`BackfillPolicy`] — EASY or conservative backfilling, both running
//!   against the **two-resource** [`AvailabilityProfile`] that forecasts
//!   free nodes *and* free pool bytes per domain, so a backfilled job can
//!   never steal the pool memory a reservation depends on.
//!
//! Ordering and placement are **pluggable**: the [`Ordering`] and
//! [`Placement`] traits define the behaviour, the enums above are the
//! built-in implementations, and [`Scheduler::with_policies`] accepts any
//! boxed pair — downstream users add policies without forking the enums.
//! Every policy call receives a [`SchedContext`]: the pass instant, the
//! read-only cluster, the slowdown model, the running-job release plan,
//! and the active SLO target, plus derived per-job wait/deadline/laxity
//! accessors. Orderings may additionally return a [`PassDirective`] to
//! hold a pass's start set until a latency budget expires.
//!
//! Deadlines flow through all three scheduling decisions, not just
//! ordering: [`MemoryPolicy::LaxityAware`] placement prefers shapes whose
//! dilated finish still meets the job's deadline, an [`AdmissionPolicy`]
//! rejects or defers jobs whose deadline no up-capacity placement can
//! meet (with typed [`RejectReason`]s), and a [`PreemptPolicy`] lets a
//! deadline-critical arrival checkpoint the laxity-richest running jobs.
//! All three default to inert variants that leave labels, hashes, and
//! serialized specs untouched.
//!
//! Construction is fallible: [`SchedulerBuilder::build`] yields a plain
//! [`SchedulerConfig`] value, and [`Scheduler::new`] validates it with
//! typed [`dmhpc_platform::PlatformError`]s instead of panicking.
//!
//! Above single-cluster scheduling sits the fleet layer: a
//! [`MetaPolicy`] routes each arriving job to one of N federated sites
//! from [`SiteSnapshot`]s taken at epoch barriers (round-robin,
//! least-queue-depth, and least-memory-pressure built-ins via
//! [`MetaPolicyKind`]); the federation engine in `dmhpc-sim` drives it.
//!
//! Scheduling passes mutate a [`dmhpc_platform::Cluster`] directly and
//! return the jobs started; the simulation engine in `dmhpc-sim` wires
//! passes to events. Passes are **incremental** on the engine side: the
//! planned releases of running jobs live in a persistent [`ReleaseIndex`]
//! (sorted by planned end, updated on start/finish) and each pass receives
//! a read-only [`ReleaseView`] instead of a freshly rebuilt release list.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod admission;
mod memory;
mod meta;
mod order;
mod policy;
mod profile;
mod queue;
mod release;
mod traits;

pub use admission::{AdmissionPolicy, AdmissionVerdict, PreemptPolicy, RejectReason};
pub use memory::{MemoryPolicy, PlannedAllocation};
pub use meta::{
    LeastMemoryPressure, LeastQueueDepth, MetaPolicy, MetaPolicyKind, RoundRobin, SiteSnapshot,
};
pub use order::OrderPolicy;
pub use policy::{
    BackfillPolicy, PassResult, Scheduler, SchedulerBuilder, SchedulerConfig, StartedJob,
};
pub use profile::{AvailabilityProfile, Demand, Release};
pub use queue::{QueuedJob, WaitQueue};
pub use release::{ReleaseIndex, ReleaseView, RunningRelease};
pub use traits::{Ordering, PassDirective, Placement, SchedContext};
