//! The wait queue.

use dmhpc_des::time::SimTime;
use dmhpc_workload::{Job, JobId};
use std::collections::VecDeque;

/// A job waiting to run, with queue metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct QueuedJob {
    /// The job as submitted.
    pub job: Job,
    /// When it entered the queue (== arrival for normal submissions).
    pub enqueued: SimTime,
}

/// Deque-backed wait queue that scheduling passes reorder in place.
///
/// Phase 1 of a pass consumes the queue strictly from the head (start or
/// reject, then look at the new head), so the backing store is a
/// [`VecDeque`]: popping the head is O(1) instead of the O(n) shift a
/// `Vec` pays per started job. Backfill removals from the middle stay
/// O(n), but they are the rare case.
///
/// The queue deliberately stores jobs by value: a scheduling pass removes
/// started jobs and the engine owns them thereafter, so there is no shared
/// mutable job state anywhere in the simulator.
#[derive(Debug, Clone, Default)]
pub struct WaitQueue {
    entries: VecDeque<QueuedJob>,
}

impl WaitQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of waiting jobs.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no jobs wait.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Enqueue a job at time `now`.
    pub fn push(&mut self, job: Job, now: SimTime) {
        self.entries.push_back(QueuedJob { job, enqueued: now });
    }

    /// The entry at position `idx`, if any.
    pub fn get(&self, idx: usize) -> Option<&QueuedJob> {
        self.entries.get(idx)
    }

    /// The queue head (next to schedule), if any.
    pub fn front(&self) -> Option<&QueuedJob> {
        self.entries.front()
    }

    /// Waiting jobs in current order.
    pub fn iter(&self) -> impl Iterator<Item = &QueuedJob> {
        self.entries.iter()
    }

    /// Mutable access for order policies. Contiguous so policies can use
    /// slice sorts; amortized O(1) across passes.
    pub fn entries_mut(&mut self) -> &mut [QueuedJob] {
        self.entries.make_contiguous()
    }

    /// Remove and return the queue head.
    ///
    /// # Panics
    /// Panics on an empty queue — passes check emptiness first.
    pub fn pop_front(&mut self) -> QueuedJob {
        // lint: allow(panic) — documented contract: callers check is_empty first
        self.entries.pop_front().expect("pop_front on empty queue")
    }

    /// Remove and return the entry at `idx`.
    ///
    /// # Panics
    /// Panics when `idx` is out of bounds.
    pub fn remove(&mut self, idx: usize) -> QueuedJob {
        // lint: allow(panic) — documented contract: callers pass indexes below len
        self.entries.remove(idx).expect("queue index out of bounds")
    }

    /// Position of a job by id.
    pub fn position(&self, id: JobId) -> Option<usize> {
        self.entries.iter().position(|e| e.job.id == id)
    }

    /// Total nodes requested by waiting jobs (queue-pressure metric).
    pub fn total_requested_nodes(&self) -> u64 {
        self.entries.iter().map(|e| e.job.nodes as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmhpc_workload::JobBuilder;

    #[test]
    fn push_remove_position() {
        let mut q = WaitQueue::new();
        assert!(q.is_empty());
        q.push(JobBuilder::new(1).nodes(2).build(), SimTime::from_secs(5));
        q.push(JobBuilder::new(2).nodes(3).build(), SimTime::from_secs(6));
        assert_eq!(q.len(), 2);
        assert_eq!(q.total_requested_nodes(), 5);
        assert_eq!(q.position(JobId(2)), Some(1));
        assert_eq!(q.position(JobId(9)), None);
        let removed = q.remove(0);
        assert_eq!(removed.job.id, JobId(1));
        assert_eq!(removed.enqueued, SimTime::from_secs(5));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn front_pop_and_iter() {
        let mut q = WaitQueue::new();
        for id in 1..=3 {
            q.push(JobBuilder::new(id).nodes(1).build(), SimTime::ZERO);
        }
        assert_eq!(q.front().unwrap().job.id, JobId(1));
        assert_eq!(q.get(2).unwrap().job.id, JobId(3));
        assert!(q.get(3).is_none());
        assert_eq!(q.pop_front().job.id, JobId(1));
        assert_eq!(q.front().unwrap().job.id, JobId(2));
        let ids: Vec<u64> = q.iter().map(|e| e.job.id.0).collect();
        assert_eq!(ids, vec![2, 3]);
    }

    #[test]
    fn entries_mut_is_contiguous_after_wraparound() {
        // Force deque wraparound: push, pop, push — then sort the slice.
        let mut q = WaitQueue::new();
        for id in 0..8 {
            q.push(JobBuilder::new(id).nodes(1).build(), SimTime::ZERO);
        }
        for _ in 0..5 {
            q.pop_front();
        }
        for id in 8..12 {
            q.push(JobBuilder::new(id).nodes(1).build(), SimTime::ZERO);
        }
        let slice = q.entries_mut();
        slice.sort_by_key(|e| std::cmp::Reverse(e.job.id.0));
        let ids: Vec<u64> = q.iter().map(|e| e.job.id.0).collect();
        assert_eq!(ids, vec![11, 10, 9, 8, 7, 6, 5]);
    }
}
