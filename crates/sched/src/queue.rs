//! The wait queue.

use dmhpc_des::time::SimTime;
use dmhpc_workload::{Job, JobId};

/// A job waiting to run, with queue metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct QueuedJob {
    /// The job as submitted.
    pub job: Job,
    /// When it entered the queue (== arrival for normal submissions).
    pub enqueued: SimTime,
}

/// FIFO-backed wait queue that scheduling passes reorder in place.
///
/// The queue deliberately stores jobs by value: a scheduling pass removes
/// started jobs and the engine owns them thereafter, so there is no shared
/// mutable job state anywhere in the simulator.
#[derive(Debug, Clone, Default)]
pub struct WaitQueue {
    entries: Vec<QueuedJob>,
}

impl WaitQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of waiting jobs.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no jobs wait.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Enqueue a job at time `now`.
    pub fn push(&mut self, job: Job, now: SimTime) {
        self.entries.push(QueuedJob { job, enqueued: now });
    }

    /// Waiting jobs in current order.
    pub fn entries(&self) -> &[QueuedJob] {
        &self.entries
    }

    /// Mutable access for order policies.
    pub fn entries_mut(&mut self) -> &mut Vec<QueuedJob> {
        &mut self.entries
    }

    /// Remove and return the entry at `idx`.
    pub fn remove(&mut self, idx: usize) -> QueuedJob {
        self.entries.remove(idx)
    }

    /// Position of a job by id.
    pub fn position(&self, id: JobId) -> Option<usize> {
        self.entries.iter().position(|e| e.job.id == id)
    }

    /// Total nodes requested by waiting jobs (queue-pressure metric).
    pub fn total_requested_nodes(&self) -> u64 {
        self.entries.iter().map(|e| e.job.nodes as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmhpc_workload::JobBuilder;

    #[test]
    fn push_remove_position() {
        let mut q = WaitQueue::new();
        assert!(q.is_empty());
        q.push(JobBuilder::new(1).nodes(2).build(), SimTime::from_secs(5));
        q.push(JobBuilder::new(2).nodes(3).build(), SimTime::from_secs(6));
        assert_eq!(q.len(), 2);
        assert_eq!(q.total_requested_nodes(), 5);
        assert_eq!(q.position(JobId(2)), Some(1));
        assert_eq!(q.position(JobId(9)), None);
        let removed = q.remove(0);
        assert_eq!(removed.job.id, JobId(1));
        assert_eq!(removed.enqueued, SimTime::from_secs(5));
        assert_eq!(q.len(), 1);
    }
}
