//! Pluggable policy traits.
//!
//! The scheduler decomposes into two behavioural axes that downstream
//! users may want to replace without forking this crate:
//!
//! * [`Ordering`] — who goes first. The built-in implementation is the
//!   [`crate::OrderPolicy`] enum (FCFS, SJF, largest-first, WFP).
//! * [`Placement`] — how a job's memory footprint maps onto nodes and
//!   pools. The built-in implementation is the [`crate::MemoryPolicy`]
//!   enum (local-only, pool first/best fit, slowdown-aware).
//!
//! [`crate::Scheduler::with_policies`] accepts any pair of boxed
//! implementations; [`crate::Scheduler::new`] wires up the enums from a
//! plain [`crate::SchedulerConfig`]. Custom policies must be deterministic
//! (pure functions of their inputs) or they void the simulator's
//! reproducibility guarantees.
//!
//! Policies run inside [`crate::Scheduler::schedule`], whose pass state is
//! incremental: running-job releases arrive as a [`crate::ReleaseView`]
//! over the engine's persistent [`crate::ReleaseIndex`], and placement
//! implementations should prefer the cluster's free-capacity indexes
//! ([`Cluster::free_node_iter`], [`Cluster::free_nodes_in_rack_iter`],
//! [`Cluster::pools_by_free`]) over whole-machine scans — both are what
//! keep a pass's cost proportional to what it touches.

use crate::memory::PlannedAllocation;
use crate::profile::Demand;
use crate::queue::QueuedJob;
use dmhpc_des::time::SimTime;
use dmhpc_platform::{Cluster, SlowdownModel};
use dmhpc_workload::Job;

/// Queue-ordering behaviour: sort the wait queue before each pass.
///
/// Implementations must produce a **total, deterministic** order; ties
/// should fall back to `(arrival, id)` so identical runs schedule
/// identically.
pub trait Ordering: std::fmt::Debug + Send + Sync {
    /// Stable name used in report labels.
    fn name(&self) -> &str;

    /// Sort `entries` into scheduling order (front = next to run) as of
    /// simulated time `now`.
    fn order(&self, entries: &mut [QueuedJob], now: SimTime);
}

/// Memory-placement behaviour: decide a job's shape (node count, node
/// choice, local/remote split).
///
/// The scheduler calls [`Placement::nominal_shape`] to build backfill
/// reservations (idle-machine shape) and [`Placement::plan`] to commit a
/// concrete allocation right now. The two must agree: a job whose nominal
/// shape exists must eventually be placeable on an emptied machine, or the
/// queue wedges.
pub trait Placement: std::fmt::Debug + Send + Sync {
    /// Stable name used in report labels.
    fn name(&self) -> &str;

    /// The shape this policy would give `job` on an otherwise idle
    /// machine, with its predicted dilation — what reservations are made
    /// of. `None` means the job can never run on this machine.
    fn nominal_shape(
        &self,
        job: &Job,
        cluster: &Cluster,
        model: &SlowdownModel,
    ) -> Option<(Demand, f64)>;

    /// Try to place `job` on the cluster **right now**. `None` when no
    /// placement exists under this policy at this instant.
    fn plan(
        &self,
        job: &Job,
        cluster: &Cluster,
        model: &SlowdownModel,
    ) -> Option<PlannedAllocation>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MemoryPolicy, OrderPolicy};

    #[test]
    fn enums_are_object_safe_policies() {
        let order: Box<dyn Ordering> = Box::new(OrderPolicy::Sjf);
        let placement: Box<dyn Placement> = Box::new(MemoryPolicy::LocalOnly);
        assert_eq!(order.name(), "sjf");
        assert_eq!(placement.name(), "local-only");
    }
}
