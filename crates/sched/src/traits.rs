//! Pluggable policy traits and the scheduling context they receive.
//!
//! The scheduler decomposes into two behavioural axes that downstream
//! users may want to replace without forking this crate:
//!
//! * [`Ordering`] — who goes first. The built-in implementation is the
//!   [`crate::OrderPolicy`] enum (FCFS, SJF, largest-first, WFP, EDF,
//!   least-laxity, batch-budget).
//! * [`Placement`] — how a job's memory footprint maps onto nodes and
//!   pools. The built-in implementation is the [`crate::MemoryPolicy`]
//!   enum (local-only, pool first/best fit, slowdown-aware).
//!
//! Both traits receive a [`SchedContext`]: one read-only bundle of
//! everything the engine already maintains — the pass instant, the cluster
//! (capacity indexes included), the slowdown model, the running-job
//! release plan, and the active SLO target — plus per-job wait/deadline/
//! laxity accessors derived from them. Policies compose this information
//! freely; adding a new input extends the context instead of growing every
//! trait signature.
//!
//! [`crate::Scheduler::with_policies`] accepts any pair of boxed
//! implementations; [`crate::Scheduler::new`] wires up the enums from a
//! plain [`crate::SchedulerConfig`]. Custom policies must be deterministic
//! (pure functions of their inputs) or they void the simulator's
//! reproducibility guarantees.
//!
//! Policies run inside [`crate::Scheduler::schedule`], whose pass state is
//! incremental: running-job releases arrive as [`SchedContext::releases`]
//! over the engine's persistent [`crate::ReleaseIndex`], and placement
//! implementations should prefer the cluster's free-capacity indexes
//! ([`Cluster::free_node_iter`], [`Cluster::free_nodes_in_rack_iter`],
//! [`Cluster::pools_by_free`]) over whole-machine scans — both are what
//! keep a pass's cost proportional to what it touches.

use crate::memory::PlannedAllocation;
use crate::profile::Demand;
use crate::queue::QueuedJob;
use crate::release::ReleaseView;
use dmhpc_des::time::{SimDuration, SimTime};
use dmhpc_platform::{Cluster, SlowdownModel};
use dmhpc_workload::Job;

/// Read-only context for one scheduling pass: everything a policy may
/// consult, borrowed from the engine's state. Construction is cheap (a
/// bundle of references), so the scheduler materializes one wherever a
/// policy is about to run.
#[derive(Debug, Clone, Copy)]
pub struct SchedContext<'a> {
    /// The pass instant.
    pub now: SimTime,
    /// The cluster, read-only: capacity indexes, pool states, topology.
    pub cluster: &'a Cluster,
    /// The far-memory slowdown model the scheduler plans with.
    pub model: &'a SlowdownModel,
    /// Planned releases of running jobs, in ascending planned-end order.
    pub releases: ReleaseView<'a>,
    /// The run-wide SLO wait target (seconds), when the engine is driving
    /// an open service run with one. Per-job [`Job::slo`] stamps take
    /// precedence in [`SchedContext::deadline`]; this is the fallback for
    /// unstamped jobs.
    pub slo_wait_s: Option<f64>,
}

impl<'a> SchedContext<'a> {
    /// Assemble a context from its parts.
    pub fn new(
        now: SimTime,
        cluster: &'a Cluster,
        model: &'a SlowdownModel,
        releases: ReleaseView<'a>,
        slo_wait_s: Option<f64>,
    ) -> Self {
        SchedContext {
            now,
            cluster,
            model,
            releases,
            slo_wait_s,
        }
    }

    /// How long `entry` has waited in the queue as of this pass.
    pub fn wait(&self, entry: &QueuedJob) -> SimDuration {
        self.now.saturating_since(entry.enqueued)
    }

    /// `job`'s absolute start deadline: arrival plus its wait budget. The
    /// job's own [`Job::slo`] stamp wins; jobs without one fall back to
    /// the run-wide [`SchedContext::slo_wait_s`] target. `None` when
    /// neither constrains the job.
    pub fn deadline(&self, job: &Job) -> Option<SimTime> {
        if let Some(slo) = &job.slo {
            return Some(slo.deadline_for(job.arrival, job.walltime));
        }
        self.slo_wait_s
            .map(|w| job.arrival.saturating_add(SimDuration::from_secs_f64(w)))
    }

    /// `job`'s laxity in seconds: the slack left before starting it can no
    /// longer both meet its start deadline and run out its walltime —
    /// `deadline − now − walltime`. Negative means the deadline is already
    /// tight or lost; `None` means the job carries no deadline.
    pub fn laxity_s(&self, job: &Job) -> Option<f64> {
        let deadline = self.deadline(job)?;
        Some(deadline.as_secs_f64() - self.now.as_secs_f64() - job.walltime.as_secs_f64())
    }
}

/// What an [`Ordering`] tells the pass to do after sorting the queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PassDirective {
    /// Schedule normally.
    Proceed,
    /// Start nothing this pass; re-pass at `until` (the engine schedules a
    /// wake-up). Batch-forming policies hold the start set until a latency
    /// budget forces release. A directive with `until ≤ now` proceeds.
    Hold {
        /// When the held batch must be released.
        until: SimTime,
    },
}

/// Queue-ordering behaviour: sort the wait queue before each pass.
///
/// Implementations must produce a **total, deterministic** order; ties
/// should fall back to `(arrival, id)` so identical runs schedule
/// identically.
pub trait Ordering: std::fmt::Debug + Send + Sync {
    /// Stable name used in report labels.
    fn name(&self) -> &str;

    /// Sort `entries` into scheduling order (front = next to run) under
    /// `ctx`.
    fn order(&self, entries: &mut [QueuedJob], ctx: &SchedContext<'_>);

    /// After ordering: proceed with the pass, or hold the batch? The
    /// default always proceeds; batch-forming policies override it.
    fn directive(&self, entries: &[QueuedJob], ctx: &SchedContext<'_>) -> PassDirective {
        let (_, _) = (entries, ctx);
        PassDirective::Proceed
    }
}

/// Memory-placement behaviour: decide a job's shape (node count, node
/// choice, local/remote split).
///
/// The scheduler calls [`Placement::nominal_shape`] to build backfill
/// reservations (idle-machine shape) and [`Placement::plan`] to commit a
/// concrete allocation right now. The two must agree: a job whose nominal
/// shape exists must eventually be placeable on an emptied machine, or the
/// queue wedges.
pub trait Placement: std::fmt::Debug + Send + Sync {
    /// Stable name used in report labels.
    fn name(&self) -> &str;

    /// The shape this policy would give `job` on an otherwise idle
    /// machine, with its predicted dilation — what reservations are made
    /// of. `None` means the job can never run on this machine.
    fn nominal_shape(&self, job: &Job, ctx: &SchedContext<'_>) -> Option<(Demand, f64)>;

    /// Try to place `job` on the cluster **right now**. `None` when no
    /// placement exists under this policy at this instant.
    fn plan(&self, job: &Job, ctx: &SchedContext<'_>) -> Option<PlannedAllocation>;

    /// The smallest dilation any shape this policy would consider can
    /// achieve for `job` on an idle machine — what admission control and
    /// deadline-aware placement price feasibility with (a shape of
    /// dilation `d` started now meets the deadline iff
    /// `walltime × (d − 1) ≤ laxity`). The default is the nominal shape's
    /// dilation; policies that enumerate several shapes should override it
    /// with the true minimum.
    fn best_dilation(&self, job: &Job, ctx: &SchedContext<'_>) -> Option<f64> {
        self.nominal_shape(job, ctx).map(|(_, dilation)| dilation)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MemoryPolicy, OrderPolicy};
    use dmhpc_platform::{ClusterSpec, NodeSpec, PoolTopology};
    use dmhpc_workload::{JobBuilder, Slo};

    fn cluster() -> Cluster {
        Cluster::new(ClusterSpec::new(
            1,
            2,
            NodeSpec::new(8, 64 * 1024),
            PoolTopology::None,
        ))
    }

    #[test]
    fn enums_are_object_safe_policies() {
        let order: Box<dyn Ordering> = Box::new(OrderPolicy::Sjf);
        let placement: Box<dyn Placement> = Box::new(MemoryPolicy::LocalOnly);
        assert_eq!(order.name(), "sjf");
        assert_eq!(placement.name(), "local-only");
    }

    #[test]
    fn context_accessors_derive_wait_deadline_laxity() {
        let c = cluster();
        let model = SlowdownModel::None;
        let ctx = SchedContext::new(
            SimTime::from_secs(1000),
            &c,
            &model,
            ReleaseView::empty(),
            Some(600.0),
        );

        let plain = JobBuilder::new(1)
            .arrival_secs(700)
            .runtime_secs(100, 200)
            .build();
        let entry = QueuedJob {
            job: plain.clone(),
            enqueued: SimTime::from_secs(700),
        };
        assert_eq!(ctx.wait(&entry), SimDuration::from_secs(300));
        // No per-job stamp: the run-wide target applies.
        assert_eq!(ctx.deadline(&plain), Some(SimTime::from_secs(1300)));
        assert!((ctx.laxity_s(&plain).unwrap() - 100.0).abs() < 1e-9);

        // A per-job stamp overrides the run-wide target.
        let stamped = JobBuilder::new(2)
            .arrival_secs(700)
            .runtime_secs(100, 200)
            .slo(Slo::Deadline { deadline_s: 50.0 })
            .build();
        assert_eq!(ctx.deadline(&stamped), Some(SimTime::from_secs(750)));
        assert!(ctx.laxity_s(&stamped).unwrap() < 0.0, "deadline lost");

        // Neither: unconstrained.
        let free_ctx = SchedContext::new(
            SimTime::from_secs(1000),
            &c,
            &model,
            ReleaseView::empty(),
            None,
        );
        assert_eq!(free_ctx.deadline(&plain), None);
        assert_eq!(free_ctx.laxity_s(&plain), None);
    }

    #[test]
    fn default_directive_proceeds() {
        let c = cluster();
        let model = SlowdownModel::None;
        let ctx = SchedContext::new(SimTime::ZERO, &c, &model, ReleaseView::empty(), None);
        let order: Box<dyn Ordering> = Box::new(OrderPolicy::Fcfs);
        assert_eq!(order.directive(&[], &ctx), PassDirective::Proceed);
    }
}
