//! Disaggregated-memory allocation policies.
//!
//! Given a job and the current cluster state, a [`MemoryPolicy`] decides the
//! job's *shape*: how many nodes, which nodes, and how each node's share of
//! the footprint splits between local DRAM and pool memory.
//!
//! * [`MemoryPolicy::LocalOnly`] — the conventional-cluster baseline. A job
//!   whose per-node demand exceeds node DRAM is **inflated** to
//!   `ceil(total_mem / node_DRAM)` nodes: the real-world workaround that
//!   strands CPUs and motivates the paper.
//! * [`MemoryPolicy::PoolFirstFit`] — fill node DRAM, borrow the overflow
//!   from pools, choosing racks in index order. Falls back to inflation when
//!   pools cannot serve the job.
//! * [`MemoryPolicy::PoolBestFit`] — as first-fit, but packs borrowing jobs
//!   into the racks whose pools have the *least* sufficient free space,
//!   preserving large pool blocks for large borrowers.
//! * [`MemoryPolicy::SlowdownAware`] — the headline policy: enumerates the
//!   small set of feasible shapes (natural size fully local, natural size
//!   borrowing, every partial inflation in between) and picks the one
//!   minimizing expected node-seconds `k × dilation(k)`, subject to a
//!   per-job dilation budget.
//! * [`MemoryPolicy::LaxityAware`] — slowdown-aware with a deadline
//!   filter: shapes whose predicted dilated finish would overrun the
//!   job's remaining laxity sort behind those that still meet the
//!   deadline, so a deadline-tight job takes a cheaper-to-finish shape
//!   (usually more nodes, less borrowing) even when it costs more
//!   node-seconds. Jobs without a deadline see exactly the
//!   slowdown-aware order, bit for bit.

use crate::profile::Demand;
use dmhpc_platform::{
    Cluster, DilationInputs, MemoryAssignment, MiB, NodeId, RackId, SlowdownModel,
};
use dmhpc_workload::Job;

/// A concrete, placeable allocation decision for one job.
#[derive(Debug, Clone, PartialEq)]
pub struct PlannedAllocation {
    /// Concrete nodes plus local/remote split.
    pub assignment: MemoryAssignment,
    /// Dilation factor estimated at planning time (exact for static
    /// slowdown models; a current-pressure estimate for the contention
    /// model).
    pub dilation: f64,
}

/// How a job's memory footprint is placed. See module docs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MemoryPolicy {
    /// Node-local DRAM only; memory-hungry jobs inflate their node count.
    LocalOnly,
    /// Borrow overflow from pools, racks in index order; inflate as a
    /// fallback.
    PoolFirstFit,
    /// Borrow overflow from pools, tightest sufficient pool first; inflate
    /// as a fallback.
    PoolBestFit,
    /// Cost-optimal shape under a dilation budget.
    SlowdownAware {
        /// Upper bound on acceptable planned dilation (≥ 1). Shapes whose
        /// predicted dilation exceeds this are discarded.
        max_dilation: f64,
    },
    /// Slowdown-aware, but deadline-feasible shapes come first: among
    /// shapes that still meet the job's deadline started now, the
    /// node-seconds-cheapest wins; when none can, the one finishing
    /// earliest (lowest dilation) does. Without a deadline this is
    /// bit-identical to [`MemoryPolicy::SlowdownAware`].
    LaxityAware {
        /// Upper bound on acceptable planned dilation (≥ 1), as for
        /// [`MemoryPolicy::SlowdownAware`].
        max_dilation: f64,
    },
}

impl MemoryPolicy {
    /// Stable name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            MemoryPolicy::LocalOnly => "local-only",
            MemoryPolicy::PoolFirstFit => "pool-ff",
            MemoryPolicy::PoolBestFit => "pool-bf",
            MemoryPolicy::SlowdownAware { .. } => "slowdown-aware",
            MemoryPolicy::LaxityAware { .. } => "laxity-aware",
        }
    }

    /// The node count the job needs when memory must be entirely local.
    fn inflated_nodes(job: &Job, node_local: MiB) -> u32 {
        let k = job.total_mem().div_ceil(node_local);
        (k.max(1) as u32).max(job.nodes)
    }

    /// The shape this policy would give the job on an otherwise idle
    /// machine, with its predicted dilation — what reservations are made
    /// of. Returns `None` if the job cannot run on this machine at all
    /// (e.g. needs more nodes than exist even inflated).
    pub fn nominal_shape(
        &self,
        job: &Job,
        cluster: &Cluster,
        model: &SlowdownModel,
    ) -> Option<(Demand, f64)> {
        let spec = cluster.spec();
        let node_local = spec.node.local_mem;
        let total_nodes = spec.total_nodes();
        let fits_locally = job.mem_per_node <= node_local;

        let shape = match self {
            MemoryPolicy::LocalOnly => {
                let k = Self::inflated_nodes(job, node_local);
                (
                    Demand {
                        nodes: k,
                        remote_per_node: 0,
                    },
                    1.0,
                )
            }
            MemoryPolicy::PoolFirstFit | MemoryPolicy::PoolBestFit => {
                if fits_locally {
                    (
                        Demand {
                            nodes: job.nodes,
                            remote_per_node: 0,
                        },
                        1.0,
                    )
                } else {
                    let remote = job.mem_per_node - node_local;
                    if pool_can_ever_serve(cluster, job.nodes, remote) {
                        let far = remote as f64 / job.mem_per_node as f64;
                        let dil = model.dilation(DilationInputs {
                            far_fraction: far,
                            intensity: job.intensity,
                            pool_pressure: 0.0,
                        });
                        (
                            Demand {
                                nodes: job.nodes,
                                remote_per_node: remote,
                            },
                            dil,
                        )
                    } else {
                        let k = Self::inflated_nodes(job, node_local);
                        (
                            Demand {
                                nodes: k,
                                remote_per_node: 0,
                            },
                            1.0,
                        )
                    }
                }
            }
            // Without a scheduling context there is no laxity to consult,
            // so laxity-aware degenerates to slowdown-aware here; the
            // [`crate::traits::Placement`] impl routes context-bearing
            // calls through the laxity ordering.
            MemoryPolicy::SlowdownAware { max_dilation }
            | MemoryPolicy::LaxityAware { max_dilation } => {
                best_shape(job, cluster, model, *max_dilation, 0.0)?
            }
        };
        if shape.0.nodes > total_nodes {
            return None;
        }
        Some(shape)
    }

    /// Try to place the job on the cluster **right now**. Returns `None`
    /// when no placement exists under this policy at this instant.
    pub fn plan(
        &self,
        job: &Job,
        cluster: &Cluster,
        model: &SlowdownModel,
    ) -> Option<PlannedAllocation> {
        let spec = cluster.spec();
        let node_local = spec.node.local_mem;
        let fits_locally = job.mem_per_node <= node_local;

        match self {
            MemoryPolicy::LocalOnly => {
                let k = Self::inflated_nodes(job, node_local);
                place_local(job, cluster, k)
            }
            MemoryPolicy::PoolFirstFit | MemoryPolicy::PoolBestFit => {
                if fits_locally {
                    return place_local(job, cluster, job.nodes);
                }
                let remote = job.mem_per_node - node_local;
                let best_fit = matches!(self, MemoryPolicy::PoolBestFit);
                place_with_pool(job, cluster, model, job.nodes, node_local, remote, best_fit)
                    .or_else(|| {
                        // Pool can't serve now — inflate instead of waiting.
                        let k = Self::inflated_nodes(job, node_local);
                        place_local(job, cluster, k)
                    })
            }
            // As in `nominal_shape`: no context, no laxity — slowdown-aware
            // order. The `Placement` impl supplies the laxity-aware path.
            MemoryPolicy::SlowdownAware { max_dilation }
            | MemoryPolicy::LaxityAware { max_dilation } => {
                let pressure = current_pressure(cluster);
                // Enumerate shapes in cost order and take the first that is
                // placeable right now.
                let mut shapes = enumerate_shapes(job, cluster, model, *max_dilation, pressure);
                sort_shapes_for_laxity(&mut shapes, job.walltime.as_secs_f64(), None);
                place_first(job, cluster, model, node_local, shapes)
            }
        }
    }
}

/// Walk `shapes` in order and commit the first that is placeable now.
fn place_first(
    job: &Job,
    cluster: &Cluster,
    model: &SlowdownModel,
    node_local: MiB,
    shapes: Vec<(Demand, f64)>,
) -> Option<PlannedAllocation> {
    for (demand, _) in shapes {
        let placed = if demand.remote_per_node == 0 {
            place_local(job, cluster, demand.nodes)
        } else {
            place_with_pool(
                job,
                cluster,
                model,
                demand.nodes,
                node_local,
                demand.remote_per_node,
                true,
            )
        };
        if placed.is_some() {
            return placed;
        }
    }
    None
}

/// Sort shapes for the laxity-aware policy: deadline-feasible shapes first
/// in node-seconds cost order (exactly the slowdown-aware order), then
/// infeasible shapes by dilation (finish as early as possible). With no
/// laxity every shape counts as feasible, so the order — and hence every
/// decision — is bit-identical to [`MemoryPolicy::SlowdownAware`].
fn sort_shapes_for_laxity(shapes: &mut [(Demand, f64)], walltime_s: f64, laxity: Option<f64>) {
    let feasible = |dil: f64| match laxity {
        None => true,
        Some(l) => walltime_s * (dil - 1.0) <= l,
    };
    shapes.sort_by(|a, b| {
        feasible(b.1)
            .cmp(&feasible(a.1))
            .then_with(|| {
                if feasible(a.1) && feasible(b.1) {
                    let ca = a.0.nodes as f64 * a.1;
                    let cb = b.0.nodes as f64 * b.1;
                    // lint: allow(panic) — placement costs are finite arithmetic on validated specs; NaN is a policy bug
                    ca.partial_cmp(&cb).expect("finite costs")
                } else {
                    // lint: allow(panic) — dilations are finite arithmetic on validated specs; NaN is a policy bug
                    a.1.partial_cmp(&b.1).expect("finite dilations")
                }
            })
            .then(a.0.nodes.cmp(&b.0.nodes))
    });
}

impl crate::traits::Placement for MemoryPolicy {
    fn name(&self) -> &str {
        MemoryPolicy::name(self)
    }

    fn nominal_shape(
        &self,
        job: &Job,
        ctx: &crate::traits::SchedContext<'_>,
    ) -> Option<(Demand, f64)> {
        if let MemoryPolicy::LaxityAware { max_dilation } = self {
            let mut shapes = enumerate_shapes(job, ctx.cluster, ctx.model, *max_dilation, 0.0);
            sort_shapes_for_laxity(&mut shapes, job.walltime.as_secs_f64(), ctx.laxity_s(job));
            let shape = shapes.into_iter().next()?;
            if shape.0.nodes > ctx.cluster.spec().total_nodes() {
                return None;
            }
            return Some(shape);
        }
        MemoryPolicy::nominal_shape(self, job, ctx.cluster, ctx.model)
    }

    fn plan(&self, job: &Job, ctx: &crate::traits::SchedContext<'_>) -> Option<PlannedAllocation> {
        if let MemoryPolicy::LaxityAware { max_dilation } = self {
            let cluster = ctx.cluster;
            let mut shapes = enumerate_shapes(
                job,
                cluster,
                ctx.model,
                *max_dilation,
                current_pressure(cluster),
            );
            sort_shapes_for_laxity(&mut shapes, job.walltime.as_secs_f64(), ctx.laxity_s(job));
            return place_first(
                job,
                cluster,
                ctx.model,
                cluster.spec().node.local_mem,
                shapes,
            );
        }
        MemoryPolicy::plan(self, job, ctx.cluster, ctx.model)
    }

    fn best_dilation(&self, job: &Job, ctx: &crate::traits::SchedContext<'_>) -> Option<f64> {
        match self {
            // Shape-enumerating policies can do better than their nominal
            // (cost-optimal) shape when feasibility is what matters.
            MemoryPolicy::SlowdownAware { max_dilation }
            | MemoryPolicy::LaxityAware { max_dilation } => {
                enumerate_shapes(job, ctx.cluster, ctx.model, *max_dilation, 0.0)
                    .into_iter()
                    .map(|(_, dil)| dil)
                    // lint: allow(panic) — dilations are finite arithmetic on validated specs; NaN is a policy bug
                    .min_by(|a, b| a.partial_cmp(b).expect("finite dilations"))
            }
            _ => MemoryPolicy::nominal_shape(self, job, ctx.cluster, ctx.model)
                .map(|(_, dilation)| dilation),
        }
    }
}

/// Current system-wide pool pressure (0 when no pools).
fn current_pressure(cluster: &Cluster) -> f64 {
    let cap = cluster.total_pool_capacity();
    if cap == 0 {
        0.0
    } else {
        cluster.total_pool_used() as f64 / cap as f64
    }
}

/// Could any pool configuration ever serve `nodes × remote` (idle machine)?
fn pool_can_ever_serve(cluster: &Cluster, nodes: u32, remote_per_node: MiB) -> bool {
    use dmhpc_platform::PoolTopology;
    let spec = cluster.spec();
    match spec.pool {
        PoolTopology::None => false,
        PoolTopology::Global { mib } => nodes as u64 * remote_per_node <= mib,
        PoolTopology::PerRack { mib_per_rack } => {
            if remote_per_node > mib_per_rack {
                return false;
            }
            let per_rack = (mib_per_rack / remote_per_node).min(spec.nodes_per_rack as u64);
            per_rack * spec.racks as u64 >= nodes as u64
        }
    }
}

/// All shapes available to the slowdown-aware policy, with dilations, the
/// dilation budget already applied. The inflation fallback (dilation 1) is
/// always included so the job is never starved outright.
fn enumerate_shapes(
    job: &Job,
    cluster: &Cluster,
    model: &SlowdownModel,
    max_dilation: f64,
    pressure: f64,
) -> Vec<(Demand, f64)> {
    let node_local = cluster.spec().node.local_mem;
    let k_full = MemoryPolicy::inflated_nodes(job, node_local);
    let mut shapes = Vec::new();
    for k in job.nodes..=k_full.max(job.nodes) {
        let per_node = job.mem_per_node_at(k);
        if per_node <= node_local {
            shapes.push((
                Demand {
                    nodes: k,
                    remote_per_node: 0,
                },
                1.0,
            ));
            // Any larger k costs strictly more node-seconds at dilation 1.
            break;
        }
        let remote = per_node - node_local;
        if !pool_can_ever_serve(cluster, k, remote) {
            continue;
        }
        let far = remote as f64 / per_node as f64;
        let dil = model.dilation(DilationInputs {
            far_fraction: far,
            intensity: job.intensity,
            pool_pressure: pressure,
        });
        if dil <= max_dilation {
            shapes.push((
                Demand {
                    nodes: k,
                    remote_per_node: remote,
                },
                dil,
            ));
        }
    }
    shapes
}

/// Cost-optimal shape for the slowdown-aware policy (idle-machine pressure).
fn best_shape(
    job: &Job,
    cluster: &Cluster,
    model: &SlowdownModel,
    max_dilation: f64,
    pressure: f64,
) -> Option<(Demand, f64)> {
    enumerate_shapes(job, cluster, model, max_dilation, pressure)
        .into_iter()
        .min_by(|a, b| {
            let ca = a.0.nodes as f64 * a.1;
            let cb = b.0.nodes as f64 * b.1;
            ca.partial_cmp(&cb)
                // lint: allow(panic) — placement costs are finite arithmetic on validated specs; NaN is a policy bug
                .expect("finite costs")
                .then(a.0.nodes.cmp(&b.0.nodes))
        })
}

/// Place `k` nodes fully locally (first-fit).
fn place_local(job: &Job, cluster: &Cluster, k: u32) -> Option<PlannedAllocation> {
    if k > cluster.total_nodes() {
        return None;
    }
    let nodes = cluster.first_fit_nodes(k as usize)?;
    let assignment = MemoryAssignment::local(nodes, job.mem_per_node_at(k));
    debug_assert!(cluster.can_allocate(&assignment).is_ok());
    Some(PlannedAllocation {
        assignment,
        dilation: 1.0,
    })
}

/// Place `k` nodes each borrowing `remote` MiB from its rack's domain.
/// `best_fit` selects tightest-sufficient pools first; otherwise racks come
/// in index order.
fn place_with_pool(
    job: &Job,
    cluster: &Cluster,
    model: &SlowdownModel,
    k: u32,
    local: MiB,
    remote: MiB,
    best_fit: bool,
) -> Option<PlannedAllocation> {
    use dmhpc_platform::PoolTopology;
    let spec = cluster.spec();
    let racks = spec.racks;
    let global = matches!(spec.pool, PoolTopology::Global { .. });
    if matches!(spec.pool, PoolTopology::None) {
        return None;
    }
    if global && (k as u64) * remote > cluster.pool_free(dmhpc_platform::PoolId(0)) {
        return None;
    }

    // Per-rack capacity for this job.
    let usable = |rack: u32| -> u32 {
        let free_n = cluster.free_nodes_in_rack(RackId(rack));
        if global {
            free_n
        } else {
            let pool_free = cluster.pool_free(dmhpc_platform::PoolId(rack));
            free_n.min((pool_free / remote) as u32)
        }
    };
    let rack_order: Vec<u32> = if !best_fit {
        // First fit: racks in index order.
        (0..racks).collect()
    } else if global {
        // Pack racks with the fewest free nodes first.
        let mut order: Vec<u32> = (0..racks).collect();
        order.sort_by_key(|&r| (cluster.free_nodes_in_rack(RackId(r)), r));
        order
    } else {
        // Tightest sufficient pool first: with per-rack pools, pool id r
        // is rack r, and the cluster's free-space ordering is already
        // ascending `(free, id)` — exactly best-fit order, no sort.
        cluster.pools_by_free().map(|p| p.0).collect()
    };

    let mut chosen: Vec<NodeId> = Vec::with_capacity(k as usize);
    let mut remaining = k;
    for &rack in &rack_order {
        if remaining == 0 {
            break;
        }
        let take = usable(rack).min(remaining);
        if take == 0 {
            continue;
        }
        // Range query on the free-node index: O(take), not O(rack size).
        let before = chosen.len();
        chosen.extend(
            cluster
                .free_nodes_in_rack_iter(RackId(rack))
                .take(take as usize),
        );
        debug_assert_eq!(
            chosen.len() - before,
            take as usize,
            "free_nodes_in_rack out of sync"
        );
        remaining -= take;
    }
    if remaining > 0 {
        return None;
    }
    let assignment = MemoryAssignment::hybrid(chosen, local, remote);
    debug_assert!(cluster.can_allocate(&assignment).is_ok());
    let far = assignment.far_fraction();
    let dilation = model.dilation(DilationInputs {
        far_fraction: far,
        intensity: job.intensity,
        pool_pressure: current_pressure(cluster),
    });
    Some(PlannedAllocation {
        assignment,
        dilation,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmhpc_platform::{ClusterSpec, NodeSpec, PoolTopology};
    use dmhpc_workload::JobBuilder;

    const GIB: u64 = 1024;

    /// 2 racks × 4 nodes, 256 GiB DRAM, per-rack 512 GiB pools.
    fn cluster(pool: PoolTopology) -> Cluster {
        Cluster::new(ClusterSpec::new(2, 4, NodeSpec::new(64, 256 * GIB), pool))
    }

    fn per_rack() -> PoolTopology {
        PoolTopology::PerRack {
            mib_per_rack: 512 * GIB,
        }
    }

    fn light_job(nodes: u32) -> dmhpc_workload::Job {
        JobBuilder::new(1)
            .nodes(nodes)
            .mem_per_node(64 * GIB)
            .intensity(0.5)
            .build()
    }

    /// 2 nodes × 384 GiB: 128 GiB/node over DRAM.
    fn heavy_job() -> dmhpc_workload::Job {
        JobBuilder::new(2)
            .nodes(2)
            .mem_per_node(384 * GIB)
            .intensity(0.8)
            .build()
    }

    const LINEAR: SlowdownModel = SlowdownModel::Linear { penalty: 1.5 };

    #[test]
    fn local_only_natural_size() {
        let c = cluster(PoolTopology::None);
        let plan = MemoryPolicy::LocalOnly
            .plan(&light_job(3), &c, &LINEAR)
            .unwrap();
        assert_eq!(plan.assignment.node_count(), 3);
        assert_eq!(plan.assignment.remote_per_node, 0);
        assert_eq!(plan.dilation, 1.0);
    }

    #[test]
    fn local_only_inflates_memory_hungry_jobs() {
        let c = cluster(PoolTopology::None);
        // 2 × 384 GiB = 768 GiB total → ceil(768/256) = 3 nodes.
        let plan = MemoryPolicy::LocalOnly
            .plan(&heavy_job(), &c, &LINEAR)
            .unwrap();
        assert_eq!(plan.assignment.node_count(), 3);
        assert!(plan.assignment.local_per_node <= 256 * GIB);
        assert_eq!(plan.assignment.remote_per_node, 0);
        // Invariant 5: allocated DRAM covers the footprint.
        assert!(plan.assignment.node_count() as u64 * 256 * GIB >= heavy_job().total_mem());
    }

    #[test]
    fn pool_ff_borrows_instead_of_inflating() {
        let c = cluster(per_rack());
        let plan = MemoryPolicy::PoolFirstFit
            .plan(&heavy_job(), &c, &LINEAR)
            .unwrap();
        assert_eq!(plan.assignment.node_count(), 2, "natural size");
        assert_eq!(plan.assignment.local_per_node, 256 * GIB);
        assert_eq!(plan.assignment.remote_per_node, 128 * GIB);
        assert!(plan.dilation > 1.0 && plan.dilation < 1.5);
        // First-fit: rack 0 nodes.
        assert!(plan.assignment.nodes.iter().all(|n| n.0 < 4));
    }

    #[test]
    fn pool_ff_falls_back_to_inflation_when_pool_too_small() {
        let c = cluster(PoolTopology::PerRack {
            mib_per_rack: 64 * GIB, // too small for 128 GiB/node borrowing
        });
        let plan = MemoryPolicy::PoolFirstFit
            .plan(&heavy_job(), &c, &LINEAR)
            .unwrap();
        assert_eq!(plan.assignment.node_count(), 3, "inflation fallback");
        assert_eq!(plan.assignment.remote_per_node, 0);
    }

    #[test]
    fn pool_bf_picks_tightest_pool() {
        let mut c = cluster(per_rack());
        // Drain rack-0 pool to 200 GiB free: park a 1-node lease borrowing
        // 312 GiB.
        c.allocate(
            99,
            MemoryAssignment::hybrid(vec![NodeId(0)], 256 * GIB, 312 * GIB),
        )
        .unwrap();
        // Job borrowing 128 GiB/node on 1 node: best-fit should choose rack
        // 0 (200 GiB free < rack 1's 512 GiB) — tightest sufficient.
        let job = JobBuilder::new(3).nodes(1).mem_per_node(384 * GIB).build();
        let plan = MemoryPolicy::PoolBestFit.plan(&job, &c, &LINEAR).unwrap();
        assert!(plan.assignment.nodes[0].0 < 4, "rack 0 expected");
        // First-fit would also pick rack 0 here; make them differ: drain
        // rack 0 below sufficiency.
        c.allocate(
            98,
            MemoryAssignment::hybrid(vec![NodeId(1)], 256 * GIB, 150 * GIB),
        )
        .unwrap();
        // rack0 pool free = 512-312-150 = 50 GiB < 128 GiB.
        let plan = MemoryPolicy::PoolBestFit.plan(&job, &c, &LINEAR).unwrap();
        assert!(
            plan.assignment.nodes[0].0 >= 4,
            "rack 1 after rack 0 drained"
        );
    }

    #[test]
    fn slowdown_aware_borrows_when_cheap() {
        let c = cluster(per_rack());
        let policy = MemoryPolicy::SlowdownAware { max_dilation: 1.5 };
        // heavy job: natural 2 nodes, far=1/3, intensity .8:
        // dilation = 1 + .5·(1/3)·.8 ≈ 1.133; cost 2×1.133 = 2.27 < 3 (inflated).
        let plan = policy.plan(&heavy_job(), &c, &LINEAR).unwrap();
        assert_eq!(plan.assignment.node_count(), 2);
        assert!(plan.assignment.uses_pool());
    }

    #[test]
    fn slowdown_aware_inflates_when_borrowing_too_costly() {
        let c = cluster(per_rack());
        // Brutal penalty: borrowing dilates ×4 at full intensity.
        let model = SlowdownModel::Linear { penalty: 4.0 };
        let policy = MemoryPolicy::SlowdownAware { max_dilation: 4.0 };
        // heavy: borrow cost 2 × (1+3·(1/3)·0.8) = 2×1.8 = 3.6 > inflate 3.
        let plan = policy.plan(&heavy_job(), &c, &model).unwrap();
        assert_eq!(plan.assignment.node_count(), 3, "inflation is cheaper");
        assert!(!plan.assignment.uses_pool());
    }

    #[test]
    fn slowdown_aware_respects_budget() {
        let c = cluster(per_rack());
        let policy = MemoryPolicy::SlowdownAware { max_dilation: 1.05 };
        // Borrowing would dilate ≈1.13 > budget 1.05 → must inflate.
        let plan = policy.plan(&heavy_job(), &c, &LINEAR).unwrap();
        assert!(!plan.assignment.uses_pool());
    }

    #[test]
    fn nominal_shapes_match_plan_semantics() {
        let c = cluster(per_rack());
        let (d, dil) = MemoryPolicy::LocalOnly
            .nominal_shape(&heavy_job(), &c, &LINEAR)
            .unwrap();
        assert_eq!(
            d,
            Demand {
                nodes: 3,
                remote_per_node: 0
            }
        );
        assert_eq!(dil, 1.0);

        let (d, dil) = MemoryPolicy::PoolFirstFit
            .nominal_shape(&heavy_job(), &c, &LINEAR)
            .unwrap();
        assert_eq!(
            d,
            Demand {
                nodes: 2,
                remote_per_node: 128 * GIB
            }
        );
        assert!(dil > 1.0);

        let (d, _) = MemoryPolicy::SlowdownAware { max_dilation: 1.5 }
            .nominal_shape(&heavy_job(), &c, &LINEAR)
            .unwrap();
        assert_eq!(d.nodes, 2);
    }

    #[test]
    fn nominal_shape_none_when_job_cannot_fit_machine() {
        let c = cluster(PoolTopology::None);
        // 8-node machine; job wants 6 nodes × 2 TiB → inflated 48 nodes.
        let monster = JobBuilder::new(9).nodes(6).mem_per_node(2048 * GIB).build();
        assert!(MemoryPolicy::LocalOnly
            .nominal_shape(&monster, &c, &LINEAR)
            .is_none());
    }

    #[test]
    fn plan_none_when_busy() {
        let mut c = cluster(PoolTopology::None);
        let all: Vec<NodeId> = (0..8).map(NodeId).collect();
        c.allocate(1, MemoryAssignment::local(all, 1)).unwrap();
        assert!(MemoryPolicy::LocalOnly
            .plan(&light_job(1), &c, &LINEAR)
            .is_none());
    }

    #[test]
    fn planned_allocations_are_allocatable() {
        // Whatever a policy returns must be accepted by the cluster.
        let policies = [
            MemoryPolicy::LocalOnly,
            MemoryPolicy::PoolFirstFit,
            MemoryPolicy::PoolBestFit,
            MemoryPolicy::SlowdownAware { max_dilation: 1.5 },
        ];
        for policy in policies {
            let mut c = cluster(per_rack());
            for (i, job) in [light_job(2), heavy_job()].iter().enumerate() {
                if let Some(plan) = policy.plan(job, &c, &LINEAR) {
                    c.allocate(i as u64, plan.assignment).unwrap();
                    c.verify_invariants().unwrap();
                }
            }
        }
    }

    #[test]
    fn global_pool_placement() {
        let c = cluster(PoolTopology::Global { mib: 512 * GIB });
        let plan = MemoryPolicy::PoolFirstFit
            .plan(&heavy_job(), &c, &LINEAR)
            .unwrap();
        assert_eq!(plan.assignment.node_count(), 2);
        assert_eq!(plan.assignment.remote_per_node, 128 * GIB);
    }

    #[test]
    fn policy_names() {
        assert_eq!(MemoryPolicy::LocalOnly.name(), "local-only");
        assert_eq!(
            MemoryPolicy::SlowdownAware { max_dilation: 1.3 }.name(),
            "slowdown-aware"
        );
        assert_eq!(
            MemoryPolicy::LaxityAware { max_dilation: 1.3 }.name(),
            "laxity-aware"
        );
    }

    #[test]
    fn laxity_aware_without_deadline_matches_slowdown_aware() {
        use crate::release::ReleaseView;
        use crate::traits::{Placement, SchedContext};
        use dmhpc_des::time::SimTime;
        let c = cluster(per_rack());
        let ctx = SchedContext::new(SimTime::ZERO, &c, &LINEAR, ReleaseView::empty(), None);
        let sa = MemoryPolicy::SlowdownAware { max_dilation: 1.5 };
        let la = MemoryPolicy::LaxityAware { max_dilation: 1.5 };
        for job in [light_job(2), heavy_job()] {
            assert_eq!(
                Placement::nominal_shape(&sa, &job, &ctx),
                Placement::nominal_shape(&la, &job, &ctx),
            );
            assert_eq!(
                Placement::plan(&sa, &job, &ctx),
                Placement::plan(&la, &job, &ctx),
            );
        }
    }

    #[test]
    fn laxity_aware_trades_cost_for_feasibility() {
        use crate::release::ReleaseView;
        use crate::traits::{Placement, SchedContext};
        use dmhpc_des::time::SimTime;
        use dmhpc_workload::Slo;
        let c = cluster(per_rack());
        let ctx = SchedContext::new(SimTime::ZERO, &c, &LINEAR, ReleaseView::empty(), None);
        // Heavy job with 1000 s walltime and only 50 s of laxity: the
        // cost-optimal borrowing shape (2 nodes, dilation ≈ 1.13) would
        // finish ≈133 s past the deadline; the inflation shape (3 nodes,
        // dilation 1) still meets it.
        let job = JobBuilder::new(7)
            .nodes(2)
            .mem_per_node(384 * GIB)
            .intensity(0.8)
            .runtime_secs(900, 1000)
            .slo(Slo::Deadline { deadline_s: 1050.0 })
            .build();
        let sa = MemoryPolicy::SlowdownAware { max_dilation: 1.5 };
        let la = MemoryPolicy::LaxityAware { max_dilation: 1.5 };
        let sa_plan = Placement::plan(&sa, &job, &ctx).unwrap();
        assert_eq!(sa_plan.assignment.node_count(), 2, "cost-optimal borrows");
        let la_plan = Placement::plan(&la, &job, &ctx).unwrap();
        assert_eq!(la_plan.assignment.node_count(), 3, "feasible shape wins");
        assert_eq!(la_plan.dilation, 1.0);
        let (demand, dil) = Placement::nominal_shape(&la, &job, &ctx).unwrap();
        assert_eq!((demand.nodes, dil), (3, 1.0));
        // The minimum achievable dilation both policies can price
        // feasibility with is the fully-local shape's.
        assert_eq!(Placement::best_dilation(&la, &job, &ctx), Some(1.0));
    }

    #[test]
    fn laxity_aware_lost_deadline_finishes_earliest() {
        use crate::release::ReleaseView;
        use crate::traits::{Placement, SchedContext};
        use dmhpc_des::time::SimTime;
        use dmhpc_workload::Slo;
        // Pool too small for the whole rack: only borrowing shapes exist
        // up to k=2... actually make the deadline already lost so *no*
        // shape is feasible — the lowest-dilation shape must win.
        let c = cluster(per_rack());
        let ctx = SchedContext::new(
            SimTime::from_secs(2000),
            &c,
            &LINEAR,
            ReleaseView::empty(),
            None,
        );
        let job = JobBuilder::new(8)
            .nodes(2)
            .mem_per_node(384 * GIB)
            .intensity(0.8)
            .runtime_secs(900, 1000)
            .slo(Slo::Deadline { deadline_s: 100.0 })
            .build();
        let la = MemoryPolicy::LaxityAware { max_dilation: 1.5 };
        let plan = Placement::plan(&la, &job, &ctx).unwrap();
        assert_eq!(plan.dilation, 1.0, "finish-earliest shape");
        assert_eq!(plan.assignment.node_count(), 3);
    }
}
