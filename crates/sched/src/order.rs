//! Queue-ordering policies.

use crate::queue::QueuedJob;
use dmhpc_des::time::SimTime;

/// How the wait queue is ordered before each scheduling pass.
///
/// All orderings are total and deterministic: ties fall back to
/// `(arrival, id)` so two runs of the same seed schedule identically.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OrderPolicy {
    /// First-come first-served: ascending arrival.
    Fcfs,
    /// Shortest (requested) job first: ascending walltime. Starvation of
    /// long jobs is bounded by backfill reservations, not by the order.
    Sjf,
    /// Largest job first: descending node count — the capability-system
    /// ordering that keeps big science in front.
    LargestFirst,
    /// WFP-style utility (ALCF): `(wait / walltime)^exponent × nodes`,
    /// descending. Grows super-linearly for old jobs, so large-and-old wins.
    Wfp {
        /// Exponent on the normalized wait (3 at ALCF).
        exponent: f64,
    },
}

impl OrderPolicy {
    /// Stable name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            OrderPolicy::Fcfs => "fcfs",
            OrderPolicy::Sjf => "sjf",
            OrderPolicy::LargestFirst => "largest-first",
            OrderPolicy::Wfp { .. } => "wfp",
        }
    }

    /// Sort the queue in scheduling order (front = next to run).
    pub fn order(&self, entries: &mut [QueuedJob], now: SimTime) {
        match *self {
            OrderPolicy::Fcfs => {
                entries.sort_by_key(|e| (e.job.arrival, e.job.id));
            }
            OrderPolicy::Sjf => {
                entries.sort_by_key(|e| (e.job.walltime, e.job.arrival, e.job.id));
            }
            OrderPolicy::LargestFirst => {
                entries.sort_by_key(|e| (std::cmp::Reverse(e.job.nodes), e.job.arrival, e.job.id));
            }
            OrderPolicy::Wfp { exponent } => {
                // Score is recomputed against `now` each pass; cache it so
                // the comparator stays cheap and consistent.
                let mut scored: Vec<(f64, usize)> = entries
                    .iter()
                    .enumerate()
                    .map(|(i, e)| {
                        let wait = now.saturating_since(e.job.arrival).as_secs_f64();
                        let wall = e.job.walltime.as_secs_f64().max(1.0);
                        let score = (wait / wall).powf(exponent) * e.job.nodes as f64;
                        (score, i)
                    })
                    .collect();
                scored.sort_by(|a, b| {
                    b.0.partial_cmp(&a.0).expect("finite scores").then_with(|| {
                        let (ja, jb) = (&entries[a.1].job, &entries[b.1].job);
                        (ja.arrival, ja.id).cmp(&(jb.arrival, jb.id))
                    })
                });
                let order: Vec<usize> = scored.into_iter().map(|(_, i)| i).collect();
                apply_permutation(entries, &order);
            }
        }
    }
}

impl crate::traits::Ordering for OrderPolicy {
    fn name(&self) -> &str {
        OrderPolicy::name(self)
    }

    fn order(&self, entries: &mut [QueuedJob], now: SimTime) {
        OrderPolicy::order(self, entries, now)
    }
}

/// Reorder `entries` so that `entries_new[k] = entries_old[order[k]]`.
fn apply_permutation(entries: &mut [QueuedJob], order: &[usize]) {
    let snapshot: Vec<QueuedJob> = entries.to_vec();
    for (dst, &src) in order.iter().enumerate() {
        entries[dst] = snapshot[src].clone();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmhpc_des::time::SimDuration;
    use dmhpc_workload::{JobBuilder, JobId};

    fn queued(id: u64, arrival_s: u64, nodes: u32, wall_s: u64) -> QueuedJob {
        QueuedJob {
            job: JobBuilder::new(id)
                .arrival_secs(arrival_s)
                .nodes(nodes)
                .runtime(SimDuration::from_secs(wall_s.min(60)))
                .walltime(SimDuration::from_secs(wall_s))
                .build(),
            enqueued: SimTime::from_secs(arrival_s),
        }
    }

    fn ids(entries: &[QueuedJob]) -> Vec<u64> {
        entries.iter().map(|e| e.job.id.0).collect()
    }

    #[test]
    fn fcfs_by_arrival() {
        let mut q = vec![
            queued(1, 30, 1, 100),
            queued(2, 10, 1, 100),
            queued(3, 20, 1, 100),
        ];
        OrderPolicy::Fcfs.order(&mut q, SimTime::from_secs(100));
        assert_eq!(ids(&q), vec![2, 3, 1]);
    }

    #[test]
    fn sjf_by_walltime() {
        let mut q = vec![
            queued(1, 0, 1, 500),
            queued(2, 1, 1, 100),
            queued(3, 2, 1, 300),
        ];
        OrderPolicy::Sjf.order(&mut q, SimTime::from_secs(100));
        assert_eq!(ids(&q), vec![2, 3, 1]);
    }

    #[test]
    fn largest_first_by_nodes() {
        let mut q = vec![
            queued(1, 0, 4, 100),
            queued(2, 1, 64, 100),
            queued(3, 2, 16, 100),
        ];
        OrderPolicy::LargestFirst.order(&mut q, SimTime::from_secs(100));
        assert_eq!(ids(&q), vec![2, 3, 1]);
    }

    #[test]
    fn wfp_favors_old_large_jobs() {
        // Same walltime; job 1 is old and large, job 2 fresh and large,
        // job 3 old but small.
        let mut q = vec![
            queued(1, 0, 32, 3600),
            queued(2, 3500, 32, 3600),
            queued(3, 0, 1, 3600),
        ];
        OrderPolicy::Wfp { exponent: 3.0 }.order(&mut q, SimTime::from_secs(3600));
        assert_eq!(ids(&q)[0], 1, "old+large first");
        // Old small beats fresh large here: (1·1)·1 = 1 vs (0.027)^3·32 ≈ 6e-4.
        assert_eq!(ids(&q), vec![1, 3, 2]);
    }

    #[test]
    fn wfp_ties_fall_back_to_fcfs() {
        let mut q = vec![queued(2, 5, 1, 100), queued(1, 5, 1, 100)];
        OrderPolicy::Wfp { exponent: 3.0 }.order(&mut q, SimTime::from_secs(5));
        // Zero wait for both → scores equal → arrival/id order.
        assert_eq!(ids(&q), vec![1, 2]);
    }

    #[test]
    fn ordering_is_stable_under_equal_keys() {
        let mut q = vec![
            queued(5, 7, 2, 100),
            queued(6, 7, 2, 100),
            queued(7, 7, 2, 100),
        ];
        for policy in [
            OrderPolicy::Fcfs,
            OrderPolicy::Sjf,
            OrderPolicy::LargestFirst,
            OrderPolicy::Wfp { exponent: 3.0 },
        ] {
            policy.order(&mut q, SimTime::from_secs(50));
            assert_eq!(ids(&q), vec![5, 6, 7], "{}", policy.name());
        }
    }

    #[test]
    fn names() {
        assert_eq!(OrderPolicy::Fcfs.name(), "fcfs");
        assert_eq!(OrderPolicy::Wfp { exponent: 3.0 }.name(), "wfp");
    }

    #[test]
    fn empty_and_single() {
        let mut q: Vec<QueuedJob> = vec![];
        OrderPolicy::Fcfs.order(&mut q, SimTime::ZERO);
        let mut q = vec![queued(1, 0, 1, 10)];
        OrderPolicy::Wfp { exponent: 2.0 }.order(&mut q, SimTime::ZERO);
        assert_eq!(q[0].job.id, JobId(1));
    }
}
