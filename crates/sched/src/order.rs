//! Queue-ordering policies.

use crate::queue::QueuedJob;
use crate::traits::{PassDirective, SchedContext};
use dmhpc_des::time::{SimDuration, SimTime};
use std::cell::RefCell;

/// WFP pass scratch: the scored index buffer and the permutation snapshot.
type WfpScratch = (Vec<(f64, usize)>, Vec<QueuedJob>);

thread_local! {
    /// Per-thread scratch reused across WFP passes: the scored index
    /// buffer and the permutation snapshot. Ordering runs on every
    /// scheduling pass of every engine, and engines are thread-confined,
    /// so reusing these buffers drops the pass's steady-state allocations
    /// to zero without changing the produced order.
    static WFP_SCRATCH: RefCell<WfpScratch> = const { RefCell::new((Vec::new(), Vec::new())) };
}

/// How the wait queue is ordered before each scheduling pass.
///
/// All orderings are total and deterministic: ties fall back to
/// `(arrival, id)` so two runs of the same seed schedule identically.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OrderPolicy {
    /// First-come first-served: ascending arrival.
    Fcfs,
    /// Shortest (requested) job first: ascending walltime. Starvation of
    /// long jobs is bounded by backfill reservations, not by the order.
    Sjf,
    /// Largest job first: descending node count — the capability-system
    /// ordering that keeps big science in front.
    LargestFirst,
    /// WFP-style utility (ALCF): `(wait / walltime)^exponent × nodes`,
    /// descending. Grows super-linearly for old jobs, so large-and-old wins.
    Wfp {
        /// Exponent on the normalized wait (3 at ALCF).
        exponent: f64,
    },
    /// Earliest deadline first: ascending absolute start deadline (per-job
    /// [`dmhpc_workload::Slo`] stamp, else the run-wide SLO target).
    /// Deadline-free jobs sort last; with no deadlines anywhere this
    /// degrades to FCFS exactly.
    Edf,
    /// Least laxity first: ascending [`SchedContext::laxity_s`] — the job
    /// closest to missing its deadline (walltime included) goes first.
    /// Deadline-free jobs have infinite laxity and sort last.
    LeastLaxity,
    /// Batch formation with a latency budget: order FCFS, but hold every
    /// pass's start set until the oldest queued job has waited `hold_s`
    /// seconds — then release the whole accumulated batch. Larger batches
    /// give placement more choice per pass at bounded added wait (the
    /// InferSim-style batching policy).
    BatchBudget {
        /// Latency budget: the longest the oldest queued job may wait
        /// before the batch is forced out (seconds, ≥ 0).
        hold_s: f64,
    },
}

impl OrderPolicy {
    /// Stable name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            OrderPolicy::Fcfs => "fcfs",
            OrderPolicy::Sjf => "sjf",
            OrderPolicy::LargestFirst => "largest-first",
            OrderPolicy::Wfp { .. } => "wfp",
            OrderPolicy::Edf => "edf",
            OrderPolicy::LeastLaxity => "llf",
            OrderPolicy::BatchBudget { .. } => "batch-budget",
        }
    }

    /// Sort the queue in scheduling order (front = next to run).
    pub fn order(&self, entries: &mut [QueuedJob], ctx: &SchedContext<'_>) {
        match *self {
            OrderPolicy::Fcfs | OrderPolicy::BatchBudget { .. } => {
                entries.sort_by_key(|e| (e.job.arrival, e.job.id));
            }
            OrderPolicy::Sjf => {
                entries.sort_by_key(|e| (e.job.walltime, e.job.arrival, e.job.id));
            }
            OrderPolicy::LargestFirst => {
                entries.sort_by_key(|e| (std::cmp::Reverse(e.job.nodes), e.job.arrival, e.job.id));
            }
            OrderPolicy::Edf => {
                // Deadline-free jobs get the MAX sentinel: they queue
                // behind every constrained job, FCFS among themselves.
                entries.sort_by_key(|e| {
                    (
                        ctx.deadline(&e.job).unwrap_or(SimTime::MAX),
                        e.job.arrival,
                        e.job.id,
                    )
                });
            }
            OrderPolicy::LeastLaxity => {
                entries.sort_by(|a, b| {
                    let la = ctx.laxity_s(&a.job).unwrap_or(f64::INFINITY);
                    let lb = ctx.laxity_s(&b.job).unwrap_or(f64::INFINITY);
                    la.total_cmp(&lb)
                        .then_with(|| (a.job.arrival, a.job.id).cmp(&(b.job.arrival, b.job.id)))
                });
            }
            OrderPolicy::Wfp { exponent } => {
                // Score is recomputed against `now` each pass; cache it so
                // the comparator stays cheap and consistent.
                let now = ctx.now;
                WFP_SCRATCH.with(|scratch| {
                    let (scored, snapshot) = &mut *scratch.borrow_mut();
                    scored.clear();
                    scored.extend(entries.iter().enumerate().map(|(i, e)| {
                        let wait = now.saturating_since(e.job.arrival).as_secs_f64();
                        let wall = e.job.walltime.as_secs_f64().max(1.0);
                        let score = (wait / wall).powf(exponent) * e.job.nodes as f64;
                        (score, i)
                    }));
                    scored.sort_by(|a, b| {
                        // lint: allow(panic) — ordering scores are finite arithmetic on validated jobs; NaN is a policy bug
                        b.0.partial_cmp(&a.0).expect("finite scores").then_with(|| {
                            let (ja, jb) = (&entries[a.1].job, &entries[b.1].job);
                            (ja.arrival, ja.id).cmp(&(jb.arrival, jb.id))
                        })
                    });
                    // Apply the permutation: entries[k] = old entries[scored[k].1].
                    snapshot.clear();
                    snapshot.extend_from_slice(entries);
                    for (dst, &(_, src)) in scored.iter().enumerate() {
                        entries[dst] = snapshot[src].clone();
                    }
                });
            }
        }
    }

    /// Proceed or hold (see [`PassDirective`]): every built-in except
    /// [`OrderPolicy::BatchBudget`] always proceeds.
    pub fn directive(&self, entries: &[QueuedJob], ctx: &SchedContext<'_>) -> PassDirective {
        let OrderPolicy::BatchBudget { hold_s } = *self else {
            return PassDirective::Proceed;
        };
        // Release when the oldest enqueued job exhausts the budget; until
        // then, hold and let the batch accumulate.
        let Some(oldest) = entries.iter().map(|e| e.enqueued).min() else {
            return PassDirective::Proceed;
        };
        let until = oldest.saturating_add(SimDuration::from_secs_f64(hold_s));
        if ctx.now >= until {
            PassDirective::Proceed
        } else {
            PassDirective::Hold { until }
        }
    }
}

impl crate::traits::Ordering for OrderPolicy {
    fn name(&self) -> &str {
        OrderPolicy::name(self)
    }

    fn order(&self, entries: &mut [QueuedJob], ctx: &SchedContext<'_>) {
        OrderPolicy::order(self, entries, ctx)
    }

    fn directive(&self, entries: &[QueuedJob], ctx: &SchedContext<'_>) -> PassDirective {
        OrderPolicy::directive(self, entries, ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::release::ReleaseView;
    use dmhpc_des::time::SimDuration;
    use dmhpc_platform::{Cluster, ClusterSpec, NodeSpec, PoolTopology, SlowdownModel};
    use dmhpc_workload::{JobBuilder, JobId, Slo};

    fn cluster() -> Cluster {
        Cluster::new(ClusterSpec::new(
            1,
            2,
            NodeSpec::new(8, 64 * 1024),
            PoolTopology::None,
        ))
    }

    /// Run `policy` at `now` with an otherwise empty context.
    fn order_at(policy: OrderPolicy, entries: &mut [QueuedJob], now_s: u64) {
        order_with(policy, entries, now_s, None);
    }

    fn order_with(
        policy: OrderPolicy,
        entries: &mut [QueuedJob],
        now_s: u64,
        slo_wait_s: Option<f64>,
    ) {
        let c = cluster();
        let model = SlowdownModel::None;
        let ctx = SchedContext::new(
            SimTime::from_secs(now_s),
            &c,
            &model,
            ReleaseView::empty(),
            slo_wait_s,
        );
        policy.order(entries, &ctx);
    }

    fn queued(id: u64, arrival_s: u64, nodes: u32, wall_s: u64) -> QueuedJob {
        QueuedJob {
            job: JobBuilder::new(id)
                .arrival_secs(arrival_s)
                .nodes(nodes)
                .runtime(SimDuration::from_secs(wall_s.min(60)))
                .walltime(SimDuration::from_secs(wall_s))
                .build(),
            enqueued: SimTime::from_secs(arrival_s),
        }
    }

    fn queued_slo(id: u64, arrival_s: u64, wall_s: u64, slo: Slo) -> QueuedJob {
        let mut e = queued(id, arrival_s, 1, wall_s);
        e.job.slo = Some(slo);
        e
    }

    fn ids(entries: &[QueuedJob]) -> Vec<u64> {
        entries.iter().map(|e| e.job.id.0).collect()
    }

    #[test]
    fn fcfs_by_arrival() {
        let mut q = vec![
            queued(1, 30, 1, 100),
            queued(2, 10, 1, 100),
            queued(3, 20, 1, 100),
        ];
        order_at(OrderPolicy::Fcfs, &mut q, 100);
        assert_eq!(ids(&q), vec![2, 3, 1]);
    }

    #[test]
    fn sjf_by_walltime() {
        let mut q = vec![
            queued(1, 0, 1, 500),
            queued(2, 1, 1, 100),
            queued(3, 2, 1, 300),
        ];
        order_at(OrderPolicy::Sjf, &mut q, 100);
        assert_eq!(ids(&q), vec![2, 3, 1]);
    }

    #[test]
    fn largest_first_by_nodes() {
        let mut q = vec![
            queued(1, 0, 4, 100),
            queued(2, 1, 64, 100),
            queued(3, 2, 16, 100),
        ];
        order_at(OrderPolicy::LargestFirst, &mut q, 100);
        assert_eq!(ids(&q), vec![2, 3, 1]);
    }

    #[test]
    fn wfp_favors_old_large_jobs() {
        // Same walltime; job 1 is old and large, job 2 fresh and large,
        // job 3 old but small.
        let mut q = vec![
            queued(1, 0, 32, 3600),
            queued(2, 3500, 32, 3600),
            queued(3, 0, 1, 3600),
        ];
        order_at(OrderPolicy::Wfp { exponent: 3.0 }, &mut q, 3600);
        assert_eq!(ids(&q)[0], 1, "old+large first");
        // Old small beats fresh large here: (1·1)·1 = 1 vs (0.027)^3·32 ≈ 6e-4.
        assert_eq!(ids(&q), vec![1, 3, 2]);
    }

    #[test]
    fn wfp_ties_fall_back_to_fcfs() {
        let mut q = vec![queued(2, 5, 1, 100), queued(1, 5, 1, 100)];
        order_at(OrderPolicy::Wfp { exponent: 3.0 }, &mut q, 5);
        // Zero wait for both → scores equal → arrival/id order.
        assert_eq!(ids(&q), vec![1, 2]);
    }

    #[test]
    fn edf_by_stamped_deadline_with_fcfs_degradation() {
        // Tight relative budget beats loose absolute one; unstamped last.
        let mut q = vec![
            queued(1, 0, 100, 100),
            queued_slo(2, 10, 1000, Slo::Deadline { deadline_s: 500.0 }),
            queued_slo(3, 20, 1000, Slo::BudgetFactor { factor: 0.1 }),
        ];
        order_at(OrderPolicy::Edf, &mut q, 50);
        // Deadlines: job 2 at 510, job 3 at 120, job 1 none → MAX.
        assert_eq!(ids(&q), vec![3, 2, 1]);

        // No deadlines anywhere: EDF must equal FCFS.
        let mut a = vec![
            queued(1, 30, 1, 100),
            queued(2, 10, 1, 100),
            queued(3, 20, 1, 100),
        ];
        order_at(OrderPolicy::Edf, &mut a, 100);
        assert_eq!(ids(&a), vec![2, 3, 1]);

        // Run-wide SLO target applies to unstamped jobs: a constant offset
        // preserves arrival order among them.
        let mut b = vec![queued(1, 30, 1, 100), queued(2, 10, 1, 100)];
        order_with(OrderPolicy::Edf, &mut b, 100, Some(600.0));
        assert_eq!(ids(&b), vec![2, 1]);
    }

    #[test]
    fn least_laxity_accounts_for_walltime() {
        // Same deadline, different walltime: the longer job has less slack
        // and must go first — where EDF would tie-break by arrival.
        let mut q = vec![
            queued_slo(1, 0, 100, Slo::Deadline { deadline_s: 900.0 }),
            queued_slo(2, 10, 800, Slo::Deadline { deadline_s: 890.0 }),
            queued(3, 0, 1, 100),
        ];
        order_at(OrderPolicy::LeastLaxity, &mut q, 50);
        // Laxity: job 1 = 900-50-100 = 750; job 2 = 900-50-800 = 50;
        // job 3 = +inf.
        assert_eq!(ids(&q), vec![2, 1, 3]);
    }

    #[test]
    fn batch_budget_orders_fcfs_and_holds_until_budget() {
        let policy = OrderPolicy::BatchBudget { hold_s: 120.0 };
        let mut q = vec![queued(2, 40, 1, 100), queued(1, 10, 1, 100)];
        let c = cluster();
        let model = SlowdownModel::None;

        // Ordering is FCFS.
        order_at(policy, &mut q, 50);
        assert_eq!(ids(&q), vec![1, 2]);

        // Budget not exhausted at t=50 (oldest enqueued t=10): hold until
        // t=130.
        let ctx = SchedContext::new(
            SimTime::from_secs(50),
            &c,
            &model,
            ReleaseView::empty(),
            None,
        );
        assert_eq!(
            policy.directive(&q, &ctx),
            PassDirective::Hold {
                until: SimTime::from_secs(130)
            }
        );

        // At the release instant (and beyond) the batch goes out.
        let ctx = SchedContext::new(
            SimTime::from_secs(130),
            &c,
            &model,
            ReleaseView::empty(),
            None,
        );
        assert_eq!(policy.directive(&q, &ctx), PassDirective::Proceed);

        // An empty queue never holds.
        assert_eq!(policy.directive(&[], &ctx), PassDirective::Proceed);

        // A zero budget is plain FCFS.
        let zero = OrderPolicy::BatchBudget { hold_s: 0.0 };
        let ctx = SchedContext::new(
            SimTime::from_secs(10),
            &c,
            &model,
            ReleaseView::empty(),
            None,
        );
        assert_eq!(zero.directive(&q, &ctx), PassDirective::Proceed);
    }

    #[test]
    fn ordering_is_stable_under_equal_keys() {
        let mut q = vec![
            queued(5, 7, 2, 100),
            queued(6, 7, 2, 100),
            queued(7, 7, 2, 100),
        ];
        for policy in [
            OrderPolicy::Fcfs,
            OrderPolicy::Sjf,
            OrderPolicy::LargestFirst,
            OrderPolicy::Wfp { exponent: 3.0 },
            OrderPolicy::Edf,
            OrderPolicy::LeastLaxity,
            OrderPolicy::BatchBudget { hold_s: 60.0 },
        ] {
            order_at(policy, &mut q, 50);
            assert_eq!(ids(&q), vec![5, 6, 7], "{}", policy.name());
        }
    }

    #[test]
    fn names() {
        assert_eq!(OrderPolicy::Fcfs.name(), "fcfs");
        assert_eq!(OrderPolicy::Wfp { exponent: 3.0 }.name(), "wfp");
        assert_eq!(OrderPolicy::Edf.name(), "edf");
        assert_eq!(OrderPolicy::LeastLaxity.name(), "llf");
        assert_eq!(
            OrderPolicy::BatchBudget { hold_s: 60.0 }.name(),
            "batch-budget"
        );
    }

    #[test]
    fn empty_and_single() {
        let mut q: Vec<QueuedJob> = vec![];
        order_at(OrderPolicy::Fcfs, &mut q, 0);
        let mut q = vec![queued(1, 0, 1, 10)];
        order_at(OrderPolicy::Wfp { exponent: 2.0 }, &mut q, 0);
        assert_eq!(q[0].job.id, JobId(1));
    }
}
