//! Fleet-level meta-scheduling: routing jobs across federated sites.
//!
//! A *fleet* is N independent clusters ("sites"), each with its own
//! scheduler, behind one admission point. The federation engine in
//! `dmhpc-sim` advances all sites in lockstep epochs and, at each epoch
//! barrier, asks a [`MetaPolicy`] where every job that arrived during
//! the epoch should run. The policy sees only [`SiteSnapshot`]s — plain
//! observations taken at the barrier — so routing is a pure function of
//! the spec and seed regardless of how many worker threads advance the
//! sites.
//!
//! Built-ins cover the three natural families from the federation
//! literature: blind load spreading ([`MetaPolicyKind::RoundRobin`]),
//! queue balancing ([`MetaPolicyKind::LeastQueueDepth`]), and
//! memory-pressure balancing ([`MetaPolicyKind::LeastMemoryPressure`] —
//! the disaggregated-memory twist, where the meta-scheduler steers jobs
//! away from sites whose local + pool memory is nearly committed).
//!
//! Determinism contract: every policy must be a deterministic function
//! of `(job, snapshots, own state)`, and every comparison must break
//! ties by ascending site index so identical snapshots route
//! identically on every run.

use dmhpc_workload::Job;

/// One site's state as observed at an epoch barrier — everything a
/// routing policy may consult. Pure data (no references into engine
/// state), so snapshots cross thread boundaries freely.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SiteSnapshot {
    /// The site's index in the fleet (0-based, fleet order).
    pub site: usize,
    /// Jobs waiting in the site's queue, plus jobs routed to the site
    /// earlier in the same barrier batch.
    pub queue_depth: usize,
    /// Total nodes requested by those queued jobs.
    pub queued_nodes: u64,
    /// Nodes currently free (up and idle).
    pub free_nodes: usize,
    /// Nodes in the machine (up or down).
    pub total_nodes: u32,
    /// Committed memory fraction across local + pool capacity, in
    /// `[0, 1]`: `(local_used + pool_used) / (total_local + total_pool)`.
    pub mem_pressure: f64,
    /// Total memory capacity (local + pool, MiB) the pressure fraction is
    /// taken over — what lets in-batch routing charge a routed job's
    /// demand back into `mem_pressure`.
    pub mem_capacity: u64,
}

impl SiteSnapshot {
    /// Account for a job routed to this site within the current barrier
    /// batch, so later routing decisions in the same batch see it. The
    /// job's memory demand is folded into `mem_pressure` (not just its
    /// queue footprint): without that, every job of a barrier batch sees
    /// the same pressure ordering and the whole batch herds onto one
    /// site under [`MetaPolicyKind::LeastMemoryPressure`].
    pub fn note_routed(&mut self, job: &Job) {
        self.queue_depth += 1;
        self.queued_nodes += job.nodes as u64;
        if self.mem_capacity > 0 {
            self.mem_pressure += job.total_mem() as f64 / self.mem_capacity as f64;
        }
    }
}

/// Fleet-level routing behaviour: pick the site each arriving job runs
/// on.
///
/// Policies may be stateful (round-robin keeps a cursor) but must be
/// deterministic; `route` is called once per job in arrival order with
/// snapshots already adjusted for earlier routings in the same batch.
/// The returned index must be `< sites.len()`.
pub trait MetaPolicy: std::fmt::Debug + Send {
    /// Stable name used in labels and reports.
    fn name(&self) -> &str;

    /// Choose the destination site for `job` given the barrier
    /// snapshots. `sites` is never empty.
    fn route(&mut self, job: &Job, sites: &[SiteSnapshot]) -> usize;
}

/// The built-in [`MetaPolicy`] implementations, as a plain value for
/// specs, labels, and hashing. [`MetaPolicyKind::build`] yields the
/// runnable policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MetaPolicyKind {
    /// Cycle through sites in fleet order, ignoring state.
    #[default]
    RoundRobin,
    /// Send each job to the site with the shallowest queue; ties fall to
    /// fewer queued nodes, then the lowest site index.
    LeastQueueDepth,
    /// Send each job to the site with the lowest committed-memory
    /// fraction (local + pool); ties fall to the shallower queue, then
    /// the lowest site index.
    LeastMemoryPressure,
}

impl MetaPolicyKind {
    /// Stable name for labels and cache hashes.
    pub fn name(&self) -> &'static str {
        match self {
            MetaPolicyKind::RoundRobin => "round-robin",
            MetaPolicyKind::LeastQueueDepth => "least-queue",
            MetaPolicyKind::LeastMemoryPressure => "least-pressure",
        }
    }

    /// Parse the name produced by [`MetaPolicyKind::name`].
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "round-robin" => Some(MetaPolicyKind::RoundRobin),
            "least-queue" => Some(MetaPolicyKind::LeastQueueDepth),
            "least-pressure" => Some(MetaPolicyKind::LeastMemoryPressure),
            _ => None,
        }
    }

    /// Construct the runnable policy.
    pub fn build(&self) -> Box<dyn MetaPolicy> {
        match self {
            MetaPolicyKind::RoundRobin => Box::new(RoundRobin { next: 0 }),
            MetaPolicyKind::LeastQueueDepth => Box::new(LeastQueueDepth),
            MetaPolicyKind::LeastMemoryPressure => Box::new(LeastMemoryPressure),
        }
    }
}

/// See [`MetaPolicyKind::RoundRobin`].
#[derive(Debug, Default)]
pub struct RoundRobin {
    next: usize,
}

impl MetaPolicy for RoundRobin {
    fn name(&self) -> &str {
        "round-robin"
    }

    fn route(&mut self, _job: &Job, sites: &[SiteSnapshot]) -> usize {
        let site = self.next % sites.len();
        self.next = (self.next + 1) % sites.len();
        site
    }
}

/// See [`MetaPolicyKind::LeastQueueDepth`].
#[derive(Debug, Default)]
pub struct LeastQueueDepth;

impl MetaPolicy for LeastQueueDepth {
    fn name(&self) -> &str {
        "least-queue"
    }

    fn route(&mut self, _job: &Job, sites: &[SiteSnapshot]) -> usize {
        sites
            .iter()
            .min_by_key(|s| (s.queue_depth, s.queued_nodes, s.site))
            // lint: allow(panic) — construction validated a non-empty site list
            .expect("sites is never empty")
            .site
    }
}

/// See [`MetaPolicyKind::LeastMemoryPressure`].
#[derive(Debug, Default)]
pub struct LeastMemoryPressure;

impl MetaPolicy for LeastMemoryPressure {
    fn name(&self) -> &str {
        "least-pressure"
    }

    fn route(&mut self, _job: &Job, sites: &[SiteSnapshot]) -> usize {
        sites
            .iter()
            .min_by(|a, b| {
                a.mem_pressure
                    .total_cmp(&b.mem_pressure)
                    .then_with(|| (a.queue_depth, a.site).cmp(&(b.queue_depth, b.site)))
            })
            // lint: allow(panic) — construction validated a non-empty site list
            .expect("sites is never empty")
            .site
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmhpc_workload::JobBuilder;

    fn job() -> Job {
        JobBuilder::new(1)
            .nodes(4)
            .runtime_secs(10, 20)
            .mem_per_node(100)
            .build()
    }

    fn snap(site: usize, queue_depth: usize, queued_nodes: u64, mem: f64) -> SiteSnapshot {
        SiteSnapshot {
            site,
            queue_depth,
            queued_nodes,
            free_nodes: 8,
            total_nodes: 8,
            mem_pressure: mem,
            mem_capacity: 8_000,
        }
    }

    #[test]
    fn round_robin_cycles_sites_in_order() {
        let mut p = MetaPolicyKind::RoundRobin.build();
        let sites = [snap(0, 9, 9, 0.9), snap(1, 0, 0, 0.0), snap(2, 5, 5, 0.5)];
        let j = job();
        let got: Vec<usize> = (0..7).map(|_| p.route(&j, &sites)).collect();
        assert_eq!(got, vec![0, 1, 2, 0, 1, 2, 0], "state-blind cycle");
    }

    /// Tie-breaking table for the two state-driven policies: each row is
    /// (snapshots, expected site).
    #[test]
    fn least_queue_tie_breaking_table() {
        let j = job();
        let cases: Vec<(Vec<SiteSnapshot>, usize, &str)> = vec![
            (
                vec![snap(0, 3, 12, 0.1), snap(1, 1, 4, 0.9)],
                1,
                "shallower queue wins regardless of memory",
            ),
            (
                vec![snap(0, 2, 16, 0.1), snap(1, 2, 8, 0.1)],
                1,
                "equal depth: fewer queued nodes wins",
            ),
            (
                vec![snap(0, 2, 8, 0.5), snap(1, 2, 8, 0.1), snap(2, 2, 8, 0.0)],
                0,
                "full tie: lowest site index wins",
            ),
        ];
        for (sites, want, why) in cases {
            let mut p = MetaPolicyKind::LeastQueueDepth.build();
            assert_eq!(p.route(&j, &sites), want, "{why}");
        }
    }

    #[test]
    fn least_pressure_tie_breaking_table() {
        let j = job();
        let cases: Vec<(Vec<SiteSnapshot>, usize, &str)> = vec![
            (
                vec![snap(0, 0, 0, 0.8), snap(1, 9, 90, 0.3)],
                1,
                "lower memory pressure wins regardless of queue",
            ),
            (
                vec![snap(0, 4, 4, 0.5), snap(1, 2, 2, 0.5)],
                1,
                "equal pressure: shallower queue wins",
            ),
            (
                vec![snap(0, 2, 2, 0.5), snap(1, 2, 9, 0.5), snap(2, 2, 2, 0.5)],
                0,
                "full tie: lowest site index wins",
            ),
        ];
        for (sites, want, why) in cases {
            let mut p = MetaPolicyKind::LeastMemoryPressure.build();
            assert_eq!(p.route(&j, &sites), want, "{why}");
        }
    }

    #[test]
    fn note_routed_adjusts_in_batch_state() {
        let mut s = snap(0, 1, 2, 0.0);
        s.note_routed(&job());
        assert_eq!(s.queue_depth, 2);
        assert_eq!(s.queued_nodes, 6);
        // 4 nodes × 100 MiB against 8000 MiB of capacity.
        assert!((s.mem_pressure - 0.05).abs() < 1e-12);
        // Zero-capacity sites (degenerate specs) must not divide by zero.
        let mut z = snap(0, 0, 0, 0.0);
        z.mem_capacity = 0;
        z.note_routed(&job());
        assert_eq!(z.mem_pressure, 0.0);
    }

    /// The herding regression: a barrier batch routed under
    /// least-pressure must spread across equally-pressured sites instead
    /// of dumping every job on the first one.
    #[test]
    fn least_pressure_batch_spreads_instead_of_herding() {
        let mut p = MetaPolicyKind::LeastMemoryPressure.build();
        let mut sites = vec![snap(0, 0, 0, 0.2), snap(1, 0, 0, 0.2)];
        let j = job();
        let mut routed = Vec::new();
        for _ in 0..4 {
            let site = p.route(&j, &sites);
            sites[site].note_routed(&j);
            routed.push(site);
        }
        assert_eq!(
            routed,
            vec![0, 1, 0, 1],
            "in-batch pressure must alternate sites"
        );
    }

    #[test]
    fn kind_names_round_trip() {
        for kind in [
            MetaPolicyKind::RoundRobin,
            MetaPolicyKind::LeastQueueDepth,
            MetaPolicyKind::LeastMemoryPressure,
        ] {
            assert_eq!(MetaPolicyKind::parse(kind.name()), Some(kind));
            assert_eq!(kind.build().name(), kind.name());
        }
        assert_eq!(MetaPolicyKind::parse("nope"), None);
        assert_eq!(MetaPolicyKind::default(), MetaPolicyKind::RoundRobin);
    }
}
