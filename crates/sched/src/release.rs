//! The persistent release index.
//!
//! Every scheduling pass needs the planned releases of all running jobs to
//! forecast future capacity for backfilling. Rebuilding that list from the
//! running set on every pass costs O(running × nodes-per-job) — the
//! dominant fixed cost of a pass on a busy machine. [`ReleaseIndex`] keeps
//! the records **incrementally**: the engine inserts a job's release when
//! it starts, removes it when it finishes, and (should a planned end ever
//! move) reschedules it in O(log running). Entries stay sorted by
//! `(planned end, lease)`, so handing the scheduler a time-ordered view is
//! free.
//!
//! [`ReleaseView`] is the read-only borrow a pass receives: iteration in
//! ascending planned-end order with deterministic `(time, lease)`
//! tie-breaking — the order the availability profile's stable sort used to
//! produce from scratch, now a property of the container.
//!
//! Re-dilation under the contention model does **not** move planned ends:
//! the scheduler plans against walltime-based kill limits, which are fixed
//! at start. [`ReleaseIndex::reschedule`] exists for engines whose planned
//! ends do drift (e.g. checkpoint/restart extensions).

use dmhpc_des::time::SimTime;
use dmhpc_platform::MiB;
use std::collections::BTreeMap;

/// A running job's future release, as the engine reports it (walltime-based
/// planned end — schedulers do not know true runtimes).
#[derive(Debug, Clone)]
pub struct RunningRelease {
    /// Planned end (start + planned walltime).
    pub planned_end: SimTime,
    /// Nodes held, per rack.
    pub nodes_per_rack: Vec<u32>,
    /// Pool MiB held, per domain.
    pub pool_per_domain: Vec<MiB>,
}

/// Incrementally maintained set of running-job releases, sorted by
/// `(planned end, lease)`. See the module docs.
#[derive(Debug, Clone, Default)]
pub struct ReleaseIndex {
    /// The sorted entries; the key's second element is the lease id.
    by_end: BTreeMap<(SimTime, u64), RunningRelease>,
    /// Lease → planned end, for O(log n) removal by lease alone.
    ends: BTreeMap<u64, SimTime>,
}

impl ReleaseIndex {
    /// An empty index.
    pub const fn new() -> Self {
        ReleaseIndex {
            by_end: BTreeMap::new(),
            ends: BTreeMap::new(),
        }
    }

    /// Number of tracked releases.
    pub fn len(&self) -> usize {
        self.by_end.len()
    }

    /// True when nothing is running.
    pub fn is_empty(&self) -> bool {
        self.by_end.is_empty()
    }

    /// Track `lease`'s release.
    ///
    /// # Panics
    /// Panics if `lease` is already tracked — a lease runs once.
    pub fn insert(&mut self, lease: u64, release: RunningRelease) {
        let prev = self.ends.insert(lease, release.planned_end);
        assert!(prev.is_none(), "lease {lease} already tracked");
        self.by_end.insert((release.planned_end, lease), release);
    }

    /// Stop tracking `lease`; returns its release record if it was tracked.
    pub fn remove(&mut self, lease: u64) -> Option<RunningRelease> {
        let end = self.ends.remove(&lease)?;
        let release = self
            .by_end
            .remove(&(end, lease))
            // lint: allow(panic) — ends and by_end are updated together; disagreement is a bookkeeping bug
            .expect("ends and by_end agree");
        Some(release)
    }

    /// The release record tracked for `lease`, if any.
    pub fn get(&self, lease: u64) -> Option<&RunningRelease> {
        let end = self.ends.get(&lease)?;
        self.by_end.get(&(*end, lease))
    }

    /// Move `lease`'s planned end to `new_end`, keeping the order sorted.
    /// Returns false (and changes nothing) when `lease` is not tracked.
    pub fn reschedule(&mut self, lease: u64, new_end: SimTime) -> bool {
        let Some(end) = self.ends.get_mut(&lease) else {
            return false;
        };
        if *end != new_end {
            let mut release = self
                .by_end
                .remove(&(*end, lease))
                // lint: allow(panic) — ends and by_end are updated together; disagreement is a bookkeeping bug
                .expect("ends and by_end agree");
            release.planned_end = new_end;
            *end = new_end;
            self.by_end.insert((new_end, lease), release);
        }
        true
    }

    /// A read-only, time-ordered view for a scheduling pass.
    pub fn view(&self) -> ReleaseView<'_> {
        ReleaseView { index: self }
    }
}

/// Borrowed, read-only view of a [`ReleaseIndex`]: what
/// [`crate::Scheduler::schedule`] receives. Copyable so passes and tests
/// can hand it around freely.
#[derive(Debug, Clone, Copy)]
pub struct ReleaseView<'a> {
    index: &'a ReleaseIndex,
}

/// The empty index behind [`ReleaseView::empty`].
static EMPTY: ReleaseIndex = ReleaseIndex::new();

impl<'a> ReleaseView<'a> {
    /// A view with no releases (idle machine) — for passes driven outside
    /// an engine, e.g. unit tests and benches.
    pub fn empty() -> ReleaseView<'static> {
        ReleaseView { index: &EMPTY }
    }

    /// Number of releases in view.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// True when nothing is running.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Releases in ascending `(planned end, lease)` order.
    pub fn iter(&self) -> impl Iterator<Item = &'a RunningRelease> + 'a {
        self.index.by_end.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel(end_s: u64, nodes: u32) -> RunningRelease {
        RunningRelease {
            planned_end: SimTime::from_secs(end_s),
            nodes_per_rack: vec![nodes],
            pool_per_domain: vec![],
        }
    }

    fn ends(view: ReleaseView<'_>) -> Vec<u64> {
        view.iter().map(|r| r.planned_end.as_secs()).collect()
    }

    #[test]
    fn sorted_by_end_then_lease() {
        let mut idx = ReleaseIndex::new();
        idx.insert(3, rel(100, 1));
        idx.insert(1, rel(50, 2));
        idx.insert(2, rel(100, 3));
        assert_eq!(idx.len(), 3);
        assert_eq!(ends(idx.view()), vec![50, 100, 100]);
        // Equal ends tie-break on lease id: lease 2 before lease 3.
        let nodes: Vec<u32> = idx.view().iter().map(|r| r.nodes_per_rack[0]).collect();
        assert_eq!(nodes, vec![2, 3, 1]);
    }

    #[test]
    fn remove_by_lease() {
        let mut idx = ReleaseIndex::new();
        idx.insert(7, rel(10, 4));
        idx.insert(8, rel(20, 5));
        let gone = idx.remove(7).expect("tracked");
        assert_eq!(gone.nodes_per_rack, vec![4]);
        assert!(idx.remove(7).is_none(), "double remove is None");
        assert_eq!(idx.len(), 1);
        assert_eq!(idx.get(8).unwrap().planned_end.as_secs(), 20);
        assert!(idx.get(7).is_none());
    }

    #[test]
    fn reschedule_moves_order() {
        let mut idx = ReleaseIndex::new();
        idx.insert(1, rel(100, 1));
        idx.insert(2, rel(200, 2));
        assert!(idx.reschedule(2, SimTime::from_secs(50)));
        assert_eq!(ends(idx.view()), vec![50, 100]);
        assert!(idx.reschedule(2, SimTime::from_secs(50)), "no-op move ok");
        assert!(!idx.reschedule(9, SimTime::ZERO), "unknown lease");
        assert_eq!(idx.get(2).unwrap().planned_end.as_secs(), 50);
    }

    #[test]
    #[should_panic(expected = "already tracked")]
    fn duplicate_insert_panics() {
        let mut idx = ReleaseIndex::new();
        idx.insert(1, rel(10, 1));
        idx.insert(1, rel(20, 1));
    }

    #[test]
    fn empty_view() {
        let view = ReleaseView::empty();
        assert!(view.is_empty());
        assert_eq!(view.len(), 0);
        assert_eq!(view.iter().count(), 0);
    }
}
