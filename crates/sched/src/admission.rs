//! Admission control and deadline-priced preemption.
//!
//! The deadline-aware ordering family (EDF, least-laxity) decides *who goes
//! first*; this module closes the loop on the other two decisions a
//! deadline can drive:
//!
//! * [`AdmissionPolicy`] — whether a job should stay in the queue at all.
//!   `AdmitAll` is the classic batch-scheduler behaviour (and the default:
//!   it adds nothing to labels, cell hashes, or serialized specs).
//!   `RejectInfeasible` turns the scheduler into an admission controller:
//!   a job whose deadline can no longer be met by any placement on the
//!   current up-capacity machine is rejected with a typed
//!   [`RejectReason`] instead of aging in the queue. `DeferUntilFeasible`
//!   is the lenient middle ground: jobs that are only *transiently*
//!   unservable (capacity busy, pools degraded pending repair) are
//!   deferred — kept queued, surfaced once as deferred, re-checked at the
//!   instant their deadline would lapse — and rejected only when even a
//!   healthy idle machine could not meet the deadline any more.
//! * [`PreemptPolicy`] — whether a deadline-critical arrival may
//!   checkpoint running work to start in time. `Never` is the default.
//!   `LaxityCheckpoint` preempts the laxity-richest running jobs (the ones
//!   that can best afford a restart) and resubmits them with a
//!   checkpoint-restart overhead, reusing the fault-model interrupt paths.
//!
//! Both policies are engine-facing: the scheduler evaluates admission
//! verdicts for jobs a pass left queued, and the simulation engine acts on
//! them (emitting reject/defer events, scheduling re-check wake-ups,
//! driving preemption between passes).

use crate::traits::{Placement, SchedContext};
use dmhpc_des::time::SimTime;
use dmhpc_workload::Job;

/// Why a job was refused admission. `Display` renders the exact strings
/// carried by reject events and records — the first two predate this enum
/// and must stay byte-identical for replay stability.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The job cannot run on this machine under the active placement
    /// policy, even when the machine is idle.
    CapacityExceeded,
    /// The job's nominal shape never fits the availability profile on a
    /// healthy machine (pool topology too small for the shape).
    ProfileInfeasible,
    /// No up-capacity placement can start the job early enough to meet
    /// its deadline.
    DeadlineInfeasible,
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            RejectReason::CapacityExceeded => "demand exceeds machine capacity under this policy",
            RejectReason::ProfileInfeasible => "nominal shape never fits the profile",
            RejectReason::DeadlineInfeasible => "no up-capacity placement can meet the deadline",
        })
    }
}

/// The admission controller's verdict on one queued job.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AdmissionVerdict {
    /// Keep the job queued; nothing to report.
    Admit,
    /// Keep the job queued, surface it as deferred, and re-assess no later
    /// than `recheck_at` (the instant its deadline would lapse).
    Defer {
        /// When the engine must re-run admission for this job.
        recheck_at: SimTime,
    },
    /// Remove the job from the queue and record it as rejected.
    Reject(RejectReason),
}

/// Per-run admission control. See the module docs for the three modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AdmissionPolicy {
    /// Every job waits as long as it takes (classic batch behaviour).
    #[default]
    AdmitAll,
    /// Reject jobs whose deadline no placement on the current up-capacity
    /// machine can meet.
    RejectInfeasible,
    /// Defer transiently-unservable jobs; reject only once even a healthy
    /// idle machine could not meet the deadline.
    DeferUntilFeasible,
}

impl AdmissionPolicy {
    /// Stable name for labels and serialized specs.
    pub fn name(&self) -> &'static str {
        match self {
            AdmissionPolicy::AdmitAll => "admit-all",
            AdmissionPolicy::RejectInfeasible => "reject-infeasible",
            AdmissionPolicy::DeferUntilFeasible => "defer",
        }
    }

    /// Inverse of [`AdmissionPolicy::name`].
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "admit-all" => Some(AdmissionPolicy::AdmitAll),
            "reject-infeasible" => Some(AdmissionPolicy::RejectInfeasible),
            "defer" => Some(AdmissionPolicy::DeferUntilFeasible),
            _ => None,
        }
    }

    /// Assess one job a pass left queued. Jobs without a deadline are
    /// always admitted: admission control is a deadline mechanism, and a
    /// run without SLO stamps behaves identically under every policy.
    ///
    /// Feasibility is the laxity test: a shape with predicted dilation `d`
    /// started *now* finishes by the deadline iff
    /// `walltime × (d − 1) ≤ laxity`, using the best (smallest) dilation
    /// the placement policy can achieve. `RejectInfeasible` additionally
    /// demands the job's nominal node count fit the machine's current
    /// up-capacity, so capacity lost to faults fails jobs fast;
    /// `DeferUntilFeasible` assesses the healthy machine and defers
    /// instead, so transient degradation never terminally strands a job.
    pub fn assess(
        &self,
        job: &Job,
        ctx: &SchedContext<'_>,
        placement: &dyn Placement,
    ) -> AdmissionVerdict {
        if matches!(self, AdmissionPolicy::AdmitAll) {
            return AdmissionVerdict::Admit;
        }
        let Some(deadline) = ctx.deadline(job) else {
            return AdmissionVerdict::Admit;
        };
        let Some(laxity) = ctx.laxity_s(job) else {
            return AdmissionVerdict::Admit;
        };
        // Jobs impossible even on an idle machine are the scheduling
        // pass's problem (rejected at the queue head as CapacityExceeded);
        // admission only prices deadlines.
        let Some((demand, _)) = placement.nominal_shape(job, ctx) else {
            return AdmissionVerdict::Admit;
        };
        let best = placement.best_dilation(job, ctx).unwrap_or(1.0);
        let wall = job.walltime.as_secs_f64();
        let meets = laxity >= 0.0 && wall * (best - 1.0) <= laxity;
        match self {
            AdmissionPolicy::AdmitAll => unreachable!("handled above"),
            AdmissionPolicy::RejectInfeasible => {
                let up = ctx.cluster.available_nodes() >= demand.nodes as usize;
                if meets && up {
                    AdmissionVerdict::Admit
                } else {
                    AdmissionVerdict::Reject(RejectReason::DeadlineInfeasible)
                }
            }
            AdmissionPolicy::DeferUntilFeasible => {
                if !meets {
                    return AdmissionVerdict::Reject(RejectReason::DeadlineInfeasible);
                }
                // Still feasible on a healthy machine but not started:
                // re-check at the instant the best shape would start too
                // late. At that boundary the laxity test still passes with
                // equality, so fall back to the deadline itself — there
                // laxity is strictly negative and the reject arm fires.
                let lapse = SimTime::from_secs_f64(deadline.as_secs_f64() - wall * best);
                let recheck_at = if lapse > ctx.now { lapse } else { deadline };
                AdmissionVerdict::Defer { recheck_at }
            }
        }
    }
}

/// Whether a deadline-critical arrival may checkpoint running work. The
/// engine triggers preemption when a stamped job's deadline would be lost
/// by waiting for the next natural release but could still be met if it
/// started now.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PreemptPolicy {
    /// Running jobs are never disturbed (classic batch behaviour).
    #[default]
    Never,
    /// Checkpoint the laxity-richest running jobs — those that can best
    /// afford a restart — and resubmit them with `overhead_s` seconds of
    /// checkpoint-restart rework added to their remaining runtime.
    LaxityCheckpoint {
        /// Checkpoint-restart overhead charged to each preempted job.
        overhead_s: u64,
    },
}

impl PreemptPolicy {
    /// Stable name for labels and serialized specs.
    pub fn name(&self) -> &'static str {
        match self {
            PreemptPolicy::Never => "never",
            PreemptPolicy::LaxityCheckpoint { .. } => "laxity-checkpoint",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::release::ReleaseView;
    use crate::MemoryPolicy;
    use dmhpc_platform::{Cluster, ClusterSpec, NodeSpec, PoolTopology, SlowdownModel};
    use dmhpc_workload::{JobBuilder, Slo};

    const GIB: u64 = 1024;

    fn cluster() -> Cluster {
        Cluster::new(ClusterSpec::new(
            1,
            4,
            NodeSpec::new(64, 256 * GIB),
            PoolTopology::None,
        ))
    }

    fn ctx<'a>(now_s: u64, cluster: &'a Cluster, model: &'a SlowdownModel) -> SchedContext<'a> {
        SchedContext::new(
            SimTime::from_secs(now_s),
            cluster,
            model,
            ReleaseView::empty(),
            None,
        )
    }

    fn stamped(deadline_s: f64) -> dmhpc_workload::Job {
        JobBuilder::new(1)
            .arrival_secs(0)
            .nodes(1)
            .runtime_secs(50, 100)
            .mem_per_node(32 * GIB)
            .slo(Slo::Deadline { deadline_s })
            .build()
    }

    #[test]
    fn admit_all_is_inert() {
        let c = cluster();
        let model = SlowdownModel::None;
        let ctx = ctx(0, &c, &model);
        let verdict =
            AdmissionPolicy::AdmitAll.assess(&stamped(1.0), &ctx, &MemoryPolicy::LocalOnly);
        assert_eq!(verdict, AdmissionVerdict::Admit);
    }

    #[test]
    fn unstamped_jobs_are_always_admitted() {
        let c = cluster();
        let model = SlowdownModel::None;
        let ctx = ctx(0, &c, &model);
        let plain = JobBuilder::new(2).nodes(1).runtime_secs(50, 100).build();
        for policy in [
            AdmissionPolicy::RejectInfeasible,
            AdmissionPolicy::DeferUntilFeasible,
        ] {
            assert_eq!(
                policy.assess(&plain, &ctx, &MemoryPolicy::LocalOnly),
                AdmissionVerdict::Admit
            );
        }
    }

    #[test]
    fn reject_infeasible_prices_laxity() {
        let c = cluster();
        let model = SlowdownModel::None;
        // Deadline 500 s, walltime 100 s: feasible until t = 400.
        let job = stamped(500.0);
        let at_350 = ctx(350, &c, &model);
        assert_eq!(
            AdmissionPolicy::RejectInfeasible.assess(&job, &at_350, &MemoryPolicy::LocalOnly),
            AdmissionVerdict::Admit
        );
        let at_450 = ctx(450, &c, &model);
        assert_eq!(
            AdmissionPolicy::RejectInfeasible.assess(&job, &at_450, &MemoryPolicy::LocalOnly),
            AdmissionVerdict::Reject(RejectReason::DeadlineInfeasible)
        );
    }

    #[test]
    fn defer_until_feasible_defers_then_rejects() {
        let c = cluster();
        let model = SlowdownModel::None;
        let job = stamped(500.0);
        // Feasible but (by construction of the test) not started: defer,
        // re-check at the lapse instant deadline − walltime = t = 400.
        let at_100 = ctx(100, &c, &model);
        assert_eq!(
            AdmissionPolicy::DeferUntilFeasible.assess(&job, &at_100, &MemoryPolicy::LocalOnly),
            AdmissionVerdict::Defer {
                recheck_at: SimTime::from_secs(400)
            }
        );
        // At the boundary the laxity test passes with equality: defer one
        // more time, to the deadline itself.
        let at_400 = ctx(400, &c, &model);
        assert_eq!(
            AdmissionPolicy::DeferUntilFeasible.assess(&job, &at_400, &MemoryPolicy::LocalOnly),
            AdmissionVerdict::Defer {
                recheck_at: SimTime::from_secs(500)
            }
        );
        // Past it: even a healthy idle machine cannot meet the deadline.
        let at_401 = ctx(401, &c, &model);
        assert_eq!(
            AdmissionPolicy::DeferUntilFeasible.assess(&job, &at_401, &MemoryPolicy::LocalOnly),
            AdmissionVerdict::Reject(RejectReason::DeadlineInfeasible)
        );
    }

    #[test]
    fn reject_strings_are_stable() {
        assert_eq!(
            RejectReason::CapacityExceeded.to_string(),
            "demand exceeds machine capacity under this policy"
        );
        assert_eq!(
            RejectReason::ProfileInfeasible.to_string(),
            "nominal shape never fits the profile"
        );
        assert_eq!(
            RejectReason::DeadlineInfeasible.to_string(),
            "no up-capacity placement can meet the deadline"
        );
    }

    #[test]
    fn names_round_trip() {
        for policy in [
            AdmissionPolicy::AdmitAll,
            AdmissionPolicy::RejectInfeasible,
            AdmissionPolicy::DeferUntilFeasible,
        ] {
            assert_eq!(AdmissionPolicy::from_name(policy.name()), Some(policy));
        }
        assert_eq!(AdmissionPolicy::from_name("bogus"), None);
        assert_eq!(AdmissionPolicy::default(), AdmissionPolicy::AdmitAll);
        assert_eq!(PreemptPolicy::default(), PreemptPolicy::Never);
        assert_eq!(
            PreemptPolicy::LaxityCheckpoint { overhead_s: 60 }.name(),
            "laxity-checkpoint"
        );
    }
}
