//! The two-resource availability profile.
//!
//! Backfilling needs to answer: *"when will `n` nodes **and** the pool
//! memory they'd borrow be simultaneously free for `d` seconds?"* On a
//! conventional cluster the profile is one step function (free nodes over
//! time). With disaggregated memory it is a vector-valued step function —
//! free nodes **per rack** and free MiB **per pool domain** — because a node
//! can only borrow from its own rack's pool.
//!
//! ## Feasibility with a fixed rack split
//!
//! A job does not migrate between racks mid-run, so a placement is a *fixed
//! split* `k = (k_0, …, k_{R-1})` of its `n` nodes across racks, each node
//! borrowing `r` MiB from its rack's domain. A window `[s, s+d)` admits the
//! job iff some split satisfies, at **every** profile point in the window,
//! `k_i ≤ free_nodes_i` and the pool constraint. Taking per-rack minima over
//! the window reduces this to a one-shot greedy fill, which is exact.
//!
//! ## Why scanning point times is exact
//!
//! [`earliest_fit`](AvailabilityProfile::earliest_fit) only tries window
//! starts at profile breakpoints (plus the query time): if a start `s`
//! strictly inside a segment is feasible, the segment's own start `t* ≤ s`
//! is feasible too — the window `[t*, t*+d)` is contained in
//! `[t*, s) ∪ [s, s+d)`, both parts of which the `s`-window already proved
//! feasible. So breakpoint scanning finds the true earliest start.

use dmhpc_des::time::{SimDuration, SimTime};
use dmhpc_platform::{Cluster, MiB, PoolTopology, RackId};

/// What a job needs from the profile: `nodes` spread over racks, each
/// borrowing `remote_per_node` MiB from its rack's pool domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Demand {
    /// Node count.
    pub nodes: u32,
    /// Pool MiB per node (0 = purely local job).
    pub remote_per_node: MiB,
}

/// A future capacity release (a running job's planned end).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Release {
    /// When the capacity returns.
    pub time: SimTime,
    /// Nodes returned, per rack.
    pub nodes_per_rack: Vec<u32>,
    /// Pool MiB returned, per domain.
    pub pool_per_domain: Vec<MiB>,
}

/// Pool-domain structure, mirrored from [`PoolTopology`] without capacities.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DomainKind {
    None,
    PerRack,
    Global,
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct Point {
    time: SimTime,
    free_nodes: Vec<u32>,
    free_pool: Vec<MiB>,
}

/// Piecewise-constant forecast of free capacity. See module docs.
#[derive(Debug, Clone)]
pub struct AvailabilityProfile {
    kind: DomainKind,
    racks: usize,
    /// Sorted by time; `points[0].time` is the profile origin ("now"); the
    /// last point extends to infinity.
    points: Vec<Point>,
}

impl AvailabilityProfile {
    /// Build from a cluster's current state plus the planned releases of
    /// running jobs. Releases at or before `now` are folded into the origin.
    pub fn from_cluster(now: SimTime, cluster: &Cluster, releases: &[Release]) -> Self {
        let spec = cluster.spec();
        let kind = match spec.pool {
            PoolTopology::None => DomainKind::None,
            PoolTopology::PerRack { .. } => DomainKind::PerRack,
            PoolTopology::Global { .. } => DomainKind::Global,
        };
        let free_nodes: Vec<u32> = (0..spec.racks)
            .map(|r| cluster.free_nodes_in_rack(RackId(r)))
            .collect();
        let free_pool: Vec<MiB> = cluster.pools().iter().map(|p| p.free()).collect();
        Self::from_parts(now, kind, free_nodes, free_pool, releases)
    }

    fn from_parts(
        now: SimTime,
        kind: DomainKind,
        free_nodes: Vec<u32>,
        free_pool: Vec<MiB>,
        releases: &[Release],
    ) -> Self {
        let racks = free_nodes.len();
        let mut sorted: Vec<&Release> = releases.iter().collect();
        sorted.sort_by_key(|r| r.time);
        let mut points = vec![Point {
            time: now,
            free_nodes,
            free_pool,
        }];
        for rel in sorted {
            debug_assert_eq!(rel.nodes_per_rack.len(), racks, "release rack arity");
            // lint: allow(panic) — the profile is seeded with an origin point it never pops
            let last = points.last().expect("origin exists");
            let mut next = if rel.time <= last.time {
                // Late or simultaneous release: merge into the last point.
                // lint: allow(panic) — the profile is seeded with an origin point it never pops
                points.pop().expect("origin exists")
            } else {
                Point {
                    time: rel.time,
                    ..last.clone()
                }
            };
            for (f, &add) in next.free_nodes.iter_mut().zip(&rel.nodes_per_rack) {
                *f += add;
            }
            for (f, &add) in next.free_pool.iter_mut().zip(&rel.pool_per_domain) {
                *f += add;
            }
            points.push(next);
        }
        AvailabilityProfile {
            kind,
            racks,
            points,
        }
    }

    /// Number of breakpoints (diagnostics/benches).
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Always false: a profile has at least its origin point.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The profile origin.
    pub fn origin(&self) -> SimTime {
        self.points[0].time
    }

    /// Index of the last point with `time <= t` (clamped to the origin).
    fn segment_at(&self, t: SimTime) -> usize {
        match self.points.binary_search_by(|p| p.time.cmp(&t)) {
            Ok(i) => i,
            Err(0) => 0,
            Err(i) => i - 1,
        }
    }

    /// Per-rack node minima and per-domain pool minima over `[start, end)`.
    fn window_minima(&self, start: SimTime, end: SimTime) -> (Vec<u32>, Vec<MiB>) {
        let first = self.segment_at(start);
        let mut node_min = self.points[first].free_nodes.clone();
        let mut pool_min = self.points[first].free_pool.clone();
        for p in &self.points[first + 1..] {
            if p.time >= end {
                break;
            }
            for (m, &v) in node_min.iter_mut().zip(&p.free_nodes) {
                *m = (*m).min(v);
            }
            for (m, &v) in pool_min.iter_mut().zip(&p.free_pool) {
                *m = (*m).min(v);
            }
        }
        (node_min, pool_min)
    }

    /// Find a fixed rack split serving `demand` throughout `[start,
    /// start+dur)`, or `None`. The split is built greedily in ascending rack
    /// order (deterministic; concrete node choice is the memory policy's
    /// job).
    pub fn usable_split(
        &self,
        start: SimTime,
        dur: SimDuration,
        demand: &Demand,
    ) -> Option<Vec<u32>> {
        let end = start.saturating_add(dur);
        let (node_min, pool_min) = self.window_minima(start, end);
        let r = demand.remote_per_node;
        let n = demand.nodes;
        if r > 0 && self.kind == DomainKind::None {
            return None;
        }
        // Per-rack usable node counts under the pool constraint.
        let usable: Vec<u32> = match self.kind {
            DomainKind::None | DomainKind::Global => node_min.clone(),
            DomainKind::PerRack => node_min
                .iter()
                .zip(&pool_min)
                .map(|(&nm, &pm)| {
                    pm.checked_div(r)
                        .map_or(nm, |per_rack| nm.min(per_rack.min(u32::MAX as u64) as u32))
                })
                .collect(),
        };
        if self.kind == DomainKind::Global && r > 0 {
            let pool_nodes = (pool_min[0] / r).min(u32::MAX as u64) as u32;
            if pool_nodes < n {
                return None;
            }
        }
        let total: u64 = usable.iter().map(|&u| u as u64).sum();
        if total < n as u64 {
            return None;
        }
        let mut split = vec![0u32; self.racks];
        let mut remaining = n;
        for (i, &u) in usable.iter().enumerate() {
            let take = u.min(remaining);
            split[i] = take;
            remaining -= take;
            if remaining == 0 {
                break;
            }
        }
        debug_assert_eq!(remaining, 0);
        Some(split)
    }

    /// True iff the *specific* split fits throughout the window. Used to
    /// validate a memory policy's concrete placement against reservations.
    pub fn fits_split(
        &self,
        start: SimTime,
        dur: SimDuration,
        split: &[u32],
        remote_per_node: MiB,
    ) -> bool {
        let end = start.saturating_add(dur);
        let (node_min, pool_min) = self.window_minima(start, end);
        if split.iter().zip(&node_min).any(|(&k, &m)| k > m) {
            return false;
        }
        if remote_per_node == 0 {
            return true;
        }
        match self.kind {
            DomainKind::None => false,
            DomainKind::PerRack => split
                .iter()
                .zip(&pool_min)
                .all(|(&k, &pm)| k as u64 * remote_per_node <= pm),
            DomainKind::Global => {
                let total: u64 = split.iter().map(|&k| k as u64).sum();
                total * remote_per_node <= pool_min[0]
            }
        }
    }

    /// Earliest start `>= from` at which `demand` fits for `dur`, together
    /// with a witness split. `None` only if the demand can never fit (even
    /// an idle machine is too small). Exact — see module docs.
    pub fn earliest_fit(
        &self,
        from: SimTime,
        dur: SimDuration,
        demand: &Demand,
    ) -> Option<(SimTime, Vec<u32>)> {
        let from = from.max_of(self.origin());
        if let Some(split) = self.usable_split(from, dur, demand) {
            return Some((from, split));
        }
        for p in &self.points {
            if p.time <= from {
                continue;
            }
            if let Some(split) = self.usable_split(p.time, dur, demand) {
                return Some((p.time, split));
            }
        }
        None
    }

    /// Ensure a breakpoint exists at `t`; returns its index.
    fn ensure_point(&mut self, t: SimTime) -> usize {
        match self.points.binary_search_by(|p| p.time.cmp(&t)) {
            Ok(i) => i,
            Err(0) => {
                // Before the origin: clamp to origin (reservations cannot
                // start in the past).
                0
            }
            Err(i) => {
                let clone = Point {
                    time: t,
                    ..self.points[i - 1].clone()
                };
                self.points.insert(i, clone);
                i
            }
        }
    }

    /// Subtract a reservation: `split` nodes per rack, each borrowing
    /// `remote_per_node`, over `[start, start+dur)`.
    ///
    /// # Panics
    /// Panics if the reservation does not fit — callers must have validated
    /// with [`usable_split`](Self::usable_split)/[`fits_split`](Self::fits_split).
    pub fn reserve(
        &mut self,
        start: SimTime,
        dur: SimDuration,
        split: &[u32],
        remote_per_node: MiB,
    ) {
        assert_eq!(split.len(), self.racks, "split arity");
        let end = start.saturating_add(dur);
        let si = self.ensure_point(start);
        if end != SimTime::MAX {
            self.ensure_point(end);
        }
        let total_nodes: u64 = split.iter().map(|&k| k as u64).sum();
        for p in &mut self.points[si..] {
            if p.time >= end {
                break;
            }
            for (f, &k) in p.free_nodes.iter_mut().zip(split) {
                // lint: allow(panic) — reservations come from earliest_fit, which bounded them by free capacity
                *f = f.checked_sub(k).expect("reservation exceeds free nodes");
            }
            if remote_per_node > 0 {
                match self.kind {
                    // lint: allow(panic) — remote reservations are only produced for pool-backed clusters
                    DomainKind::None => panic!("remote reservation without pools"),
                    DomainKind::PerRack => {
                        for (f, &k) in p.free_pool.iter_mut().zip(split) {
                            *f = f
                                .checked_sub(k as u64 * remote_per_node)
                                // lint: allow(panic) — reservations come from earliest_fit, which bounded them by pool capacity
                                .expect("reservation exceeds pool");
                        }
                    }
                    DomainKind::Global => {
                        p.free_pool[0] = p.free_pool[0]
                            .checked_sub(total_nodes * remote_per_node)
                            // lint: allow(panic) — reservations come from earliest_fit, which bounded them by pool capacity
                            .expect("reservation exceeds pool");
                    }
                }
            }
        }
    }

    /// Free nodes per rack at time `t` (diagnostics/tests).
    pub fn free_nodes_at(&self, t: SimTime) -> Vec<u32> {
        self.points[self.segment_at(t)].free_nodes.clone()
    }

    /// Free pool per domain at time `t` (diagnostics/tests).
    pub fn free_pool_at(&self, t: SimTime) -> Vec<MiB> {
        self.points[self.segment_at(t)].free_pool.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }
    fn d(s: u64) -> SimDuration {
        SimDuration::from_secs(s)
    }

    /// 2 racks × 4 nodes, per-rack pools of 1000 MiB, 2 nodes free in rack
    /// 0 and 0 in rack 1 now; releases at t=100 (2 nodes r1 + 500 pool r1)
    /// and t=200 (2 nodes r0, 2 nodes r1, 500 pool each).
    fn profile() -> AvailabilityProfile {
        AvailabilityProfile::from_parts(
            t(0),
            DomainKind::PerRack,
            vec![2, 0],
            vec![1000, 0],
            &[
                Release {
                    time: t(100),
                    nodes_per_rack: vec![0, 2],
                    pool_per_domain: vec![0, 500],
                },
                Release {
                    time: t(200),
                    nodes_per_rack: vec![2, 2],
                    pool_per_domain: vec![0, 500],
                },
            ],
        )
    }

    #[test]
    fn builds_cumulative_points() {
        let p = profile();
        assert_eq!(p.len(), 3);
        assert_eq!(p.free_nodes_at(t(0)), vec![2, 0]);
        assert_eq!(p.free_nodes_at(t(150)), vec![2, 2]);
        assert_eq!(p.free_nodes_at(t(500)), vec![4, 4]);
        assert_eq!(p.free_pool_at(t(150)), vec![1000, 500]);
        assert_eq!(p.free_pool_at(t(500)), vec![1000, 1000]);
    }

    #[test]
    fn merges_simultaneous_and_past_releases() {
        let p = AvailabilityProfile::from_parts(
            t(10),
            DomainKind::None,
            vec![1],
            vec![],
            &[
                Release {
                    time: t(5), // in the past: folded into origin
                    nodes_per_rack: vec![1],
                    pool_per_domain: vec![],
                },
                Release {
                    time: t(20),
                    nodes_per_rack: vec![1],
                    pool_per_domain: vec![],
                },
                Release {
                    time: t(20),
                    nodes_per_rack: vec![1],
                    pool_per_domain: vec![],
                },
            ],
        );
        assert_eq!(p.len(), 2);
        assert_eq!(p.free_nodes_at(t(10)), vec![2]);
        assert_eq!(p.free_nodes_at(t(20)), vec![4]);
    }

    #[test]
    fn usable_split_respects_pool_per_rack() {
        let p = profile();
        // 2 nodes, 400 MiB each: rack 0 pool 1000 allows floor(1000/400)=2.
        let split = p.usable_split(
            t(0),
            d(50),
            &Demand {
                nodes: 2,
                remote_per_node: 400,
            },
        );
        assert_eq!(split, Some(vec![2, 0]));
        // 3 nodes now: only 2 free anywhere.
        assert_eq!(
            p.usable_split(
                t(0),
                d(50),
                &Demand {
                    nodes: 3,
                    remote_per_node: 0
                }
            ),
            None
        );
        // At t=100: 2+2 nodes, but rack-1 pool 500 allows only 1 node at 400.
        let split = p.usable_split(
            t(100),
            d(50),
            &Demand {
                nodes: 3,
                remote_per_node: 400,
            },
        );
        assert_eq!(split, Some(vec![2, 1]));
    }

    #[test]
    fn window_minima_span_segments() {
        let p = profile();
        // Window [0, 150) includes the t=100 release; minima are the t=0
        // values, so 3 nodes never fit in that window.
        assert_eq!(
            p.usable_split(
                t(0),
                d(150),
                &Demand {
                    nodes: 3,
                    remote_per_node: 0
                }
            ),
            None
        );
        // Window [100, 90s) fits 4 nodes.
        assert!(p
            .usable_split(
                t(100),
                d(90),
                &Demand {
                    nodes: 4,
                    remote_per_node: 0
                }
            )
            .is_some());
    }

    #[test]
    fn earliest_fit_scans_breakpoints() {
        let p = profile();
        let (start, split) = p
            .earliest_fit(
                t(0),
                d(50),
                &Demand {
                    nodes: 4,
                    remote_per_node: 0,
                },
            )
            .unwrap();
        assert_eq!(start, t(100));
        assert_eq!(split.iter().sum::<u32>(), 4);

        let (start, _) = p
            .earliest_fit(
                t(0),
                d(50),
                &Demand {
                    nodes: 8,
                    remote_per_node: 0,
                },
            )
            .unwrap();
        assert_eq!(start, t(200));

        // Demand that never fits: 9 nodes on an 8-node machine.
        assert!(p
            .earliest_fit(
                t(0),
                d(50),
                &Demand {
                    nodes: 9,
                    remote_per_node: 0
                }
            )
            .is_none());
    }

    #[test]
    fn earliest_fit_honors_from_mid_segment() {
        let p = profile();
        let (start, _) = p
            .earliest_fit(
                t(150),
                d(10),
                &Demand {
                    nodes: 4,
                    remote_per_node: 0,
                },
            )
            .unwrap();
        assert_eq!(start, t(150), "already feasible at the query time");
    }

    #[test]
    fn reserve_subtracts_and_restores() {
        let mut p = profile();
        // Reserve 2 nodes in rack 0 with 300 MiB each over [0, 120).
        p.reserve(t(0), d(120), &[2, 0], 300);
        assert_eq!(p.free_nodes_at(t(0)), vec![0, 0]);
        assert_eq!(p.free_pool_at(t(0)), vec![400, 0]);
        assert_eq!(p.free_nodes_at(t(110)), vec![0, 2]);
        // After the reservation ends capacity returns.
        assert_eq!(p.free_nodes_at(t(120)), vec![2, 2]);
        assert_eq!(p.free_pool_at(t(120)), vec![1000, 500]);
        assert_eq!(p.free_nodes_at(t(300)), vec![4, 4]);
    }

    #[test]
    fn reserve_then_earliest_fit_is_pushed_back() {
        let mut p = profile();
        // Head job: 4 nodes at t=100 for 200 s.
        let (s, split) = p
            .earliest_fit(
                t(0),
                d(200),
                &Demand {
                    nodes: 4,
                    remote_per_node: 0,
                },
            )
            .unwrap();
        assert_eq!(s, t(100));
        p.reserve(s, d(200), &split, 0);
        // A 1-node backfill of 100 s fits immediately (rack 0 has 2 free).
        let (s2, _) = p
            .earliest_fit(
                t(0),
                d(100),
                &Demand {
                    nodes: 1,
                    remote_per_node: 0,
                },
            )
            .unwrap();
        assert_eq!(s2, t(0));
        // But 8 nodes now only fit after the head finishes at 300.
        let (s3, _) = p
            .earliest_fit(
                t(0),
                d(10),
                &Demand {
                    nodes: 8,
                    remote_per_node: 0,
                },
            )
            .unwrap();
        assert_eq!(s3, t(300));
    }

    #[test]
    fn fits_split_validates_specific_placement() {
        let p = profile();
        assert!(p.fits_split(t(0), d(50), &[2, 0], 400));
        assert!(
            !p.fits_split(t(0), d(50), &[2, 0], 600),
            "2×600 > 1000 pool"
        );
        assert!(!p.fits_split(t(0), d(50), &[1, 1], 0), "rack 1 empty now");
        assert!(p.fits_split(t(100), d(50), &[1, 1], 400));
        assert!(
            !p.fits_split(t(100), d(50), &[0, 2], 400),
            "rack-1 pool 500"
        );
    }

    #[test]
    fn global_pool_semantics() {
        let p =
            AvailabilityProfile::from_parts(t(0), DomainKind::Global, vec![2, 2], vec![1000], &[]);
        // 4 nodes × 300 = 1200 > 1000: infeasible.
        assert!(p
            .usable_split(
                t(0),
                d(10),
                &Demand {
                    nodes: 4,
                    remote_per_node: 300
                }
            )
            .is_none());
        // 3 nodes × 300 = 900 <= 1000: feasible, spread 2+1.
        let split = p
            .usable_split(
                t(0),
                d(10),
                &Demand {
                    nodes: 3,
                    remote_per_node: 300,
                },
            )
            .unwrap();
        assert_eq!(split, vec![2, 1]);
        assert!(p.fits_split(t(0), d(10), &[2, 1], 300));
        assert!(!p.fits_split(t(0), d(10), &[2, 2], 300));
    }

    #[test]
    fn no_pool_topology_rejects_remote() {
        let p = AvailabilityProfile::from_parts(t(0), DomainKind::None, vec![4], vec![], &[]);
        assert!(p
            .usable_split(
                t(0),
                d(10),
                &Demand {
                    nodes: 1,
                    remote_per_node: 1
                }
            )
            .is_none());
        assert!(!p.fits_split(t(0), d(10), &[1], 1));
        assert!(p
            .usable_split(
                t(0),
                d(10),
                &Demand {
                    nodes: 4,
                    remote_per_node: 0
                }
            )
            .is_some());
    }

    #[test]
    #[should_panic(expected = "exceeds free nodes")]
    fn over_reserve_panics() {
        let mut p = profile();
        p.reserve(t(0), d(10), &[3, 0], 0);
    }

    #[test]
    fn reserve_to_infinity() {
        let mut p = AvailabilityProfile::from_parts(t(0), DomainKind::None, vec![4], vec![], &[]);
        p.reserve(t(5), SimDuration::MAX, &[2], 0);
        assert_eq!(p.free_nodes_at(t(4)), vec![4]);
        assert_eq!(p.free_nodes_at(t(1_000_000)), vec![2]);
    }

    /// Differential test: earliest_fit against a brute-force oracle that
    /// tries every breakpoint on randomized profiles.
    #[test]
    fn earliest_fit_matches_bruteforce() {
        use dmhpc_des::rng::Pcg64;
        let mut rng = Pcg64::new(71);
        for case in 0..200 {
            let racks = 1 + rng.index(3);
            let base: Vec<u32> = (0..racks).map(|_| rng.bounded_u64(4) as u32).collect();
            let pool: Vec<MiB> = (0..racks).map(|_| rng.bounded_u64(1000)).collect();
            let releases: Vec<Release> = (0..rng.index(5))
                .map(|_| Release {
                    time: t(rng.bounded_u64(500)),
                    nodes_per_rack: (0..racks).map(|_| rng.bounded_u64(3) as u32).collect(),
                    pool_per_domain: (0..racks).map(|_| rng.bounded_u64(400)).collect(),
                })
                .collect();
            let p = AvailabilityProfile::from_parts(
                t(0),
                DomainKind::PerRack,
                base.clone(),
                pool.clone(),
                &releases,
            );
            let demand = Demand {
                nodes: 1 + rng.bounded_u64(6) as u32,
                remote_per_node: rng.bounded_u64(300),
            };
            let dur = d(1 + rng.bounded_u64(300));
            let got = p.earliest_fit(t(0), dur, &demand).map(|(s, _)| s);
            // Oracle: scan a fine time grid (1 s) up to beyond the horizon.
            let mut oracle = None;
            for s in 0..1000u64 {
                if p.usable_split(t(s), dur, &demand).is_some() {
                    oracle = Some(t(s));
                    break;
                }
            }
            assert_eq!(got, oracle, "case {case}: demand {demand:?} dur {dur}");
        }
    }
}
