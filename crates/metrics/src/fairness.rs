//! User-level fairness.

use crate::jobstats::JobRecord;
use std::collections::BTreeMap;

/// Jain's fairness index over non-negative allocations:
/// `(Σx)² / (n · Σx²)`. 1 when all equal; → 1/n under total unfairness.
/// Returns 1.0 for empty or all-zero input (nothing to be unfair about).
pub fn jain_index(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 1.0;
    }
    let sum: f64 = values.iter().sum();
    let sq: f64 = values.iter().map(|x| x * x).sum();
    if sq == 0.0 {
        return 1.0;
    }
    (sum * sum) / (values.len() as f64 * sq)
}

/// Mean wait per user (seconds), users in ascending id order. Jobs that
/// never started are excluded.
pub fn per_user_mean_waits(records: &[JobRecord]) -> Vec<f64> {
    let mut acc: BTreeMap<u32, (f64, u32)> = BTreeMap::new();
    for r in records {
        if let Some(w) = r.wait() {
            let e = acc.entry(r.job.user).or_insert((0.0, 0));
            e.0 += w.as_secs_f64();
            e.1 += 1;
        }
    }
    acc.values().map(|&(sum, n)| sum / n as f64).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jobstats::JobOutcome;
    use dmhpc_des::time::SimTime;
    use dmhpc_workload::JobBuilder;

    #[test]
    fn jain_bounds() {
        assert_eq!(jain_index(&[]), 1.0);
        assert_eq!(jain_index(&[0.0, 0.0]), 1.0);
        assert!((jain_index(&[5.0, 5.0, 5.0]) - 1.0).abs() < 1e-12);
        // One user hogs everything: index → 1/n.
        let idx = jain_index(&[10.0, 0.0, 0.0, 0.0]);
        assert!((idx - 0.25).abs() < 1e-12);
        // Moderate skew lands strictly between.
        let idx = jain_index(&[1.0, 2.0, 3.0]);
        assert!(idx > 1.0 / 3.0 && idx < 1.0);
    }

    #[test]
    fn per_user_aggregation() {
        let mk = |id: u64, user: u32, arrival: u64, start: Option<u64>| JobRecord {
            job: JobBuilder::new(id).user(user).arrival_secs(arrival).build(),
            outcome: if start.is_some() {
                JobOutcome::Completed
            } else {
                JobOutcome::Rejected
            },
            start: start.map(SimTime::from_secs),
            finish: start.map(|s| SimTime::from_secs(s + 10)),
            nodes_allocated: 1,
            remote_per_node: 0,
            dilation_planned: 1.0,
            dilation_actual: 1.0,
        };
        let records = vec![
            mk(1, 0, 0, Some(100)), // user 0 waits 100
            mk(2, 0, 0, Some(300)), // user 0 waits 300 → mean 200
            mk(3, 7, 0, Some(50)),  // user 7 waits 50
            mk(4, 7, 0, None),      // rejected: excluded
        ];
        let waits = per_user_mean_waits(&records);
        assert_eq!(waits, vec![200.0, 50.0]);
        let j = jain_index(&waits);
        assert!(j < 1.0 && j > 0.5);
    }
}
