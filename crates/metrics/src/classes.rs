//! Job classification: who does disaggregation actually help?

use crate::jobstats::{JobOutcome, JobRecord};
use dmhpc_des::stats::OnlineStats;
use dmhpc_workload::Job;

/// Classification thresholds.
#[derive(Debug, Clone, Copy)]
pub struct ClassThresholds {
    /// Jobs with at least this many nodes are "large".
    pub large_nodes: u32,
    /// Jobs whose per-node footprint exceeds `heavy_frac × node_mem_mib`
    /// are "memory-heavy".
    pub heavy_frac: f64,
    /// Reference node DRAM, MiB.
    pub node_mem_mib: u64,
}

impl ClassThresholds {
    /// Conventional thresholds: large ≥ 16 nodes, heavy > 50% of DRAM.
    pub fn standard(node_mem_mib: u64) -> Self {
        ClassThresholds {
            large_nodes: 16,
            heavy_frac: 0.5,
            node_mem_mib,
        }
    }

    /// Classify one job.
    pub fn classify(&self, job: &Job) -> JobClass {
        let large = job.nodes >= self.large_nodes;
        let heavy = job.mem_per_node as f64 > self.heavy_frac * self.node_mem_mib as f64;
        match (large, heavy) {
            (false, false) => JobClass::SmallLight,
            (false, true) => JobClass::SmallHeavy,
            (true, false) => JobClass::LargeLight,
            (true, true) => JobClass::LargeHeavy,
        }
    }
}

/// The 2×2 job taxonomy used by reproduction figure F8.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JobClass {
    /// < large_nodes, light memory.
    SmallLight,
    /// < large_nodes, heavy memory.
    SmallHeavy,
    /// ≥ large_nodes, light memory.
    LargeLight,
    /// ≥ large_nodes, heavy memory.
    LargeHeavy,
}

impl JobClass {
    /// All classes in display order.
    pub const ALL: [JobClass; 4] = [
        JobClass::SmallLight,
        JobClass::SmallHeavy,
        JobClass::LargeLight,
        JobClass::LargeHeavy,
    ];

    /// Stable name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            JobClass::SmallLight => "small-light",
            JobClass::SmallHeavy => "small-heavy",
            JobClass::LargeLight => "large-light",
            JobClass::LargeHeavy => "large-heavy",
        }
    }
}

/// Aggregated outcomes for one class.
#[derive(Debug, Clone)]
pub struct ClassRow {
    /// Which class.
    pub class: JobClass,
    /// Jobs in the class (including rejected).
    pub jobs: usize,
    /// Mean wait, seconds (ran jobs only).
    pub mean_wait_s: f64,
    /// Mean bounded slowdown.
    pub mean_bsld: f64,
    /// Fraction of the class that borrowed pool memory.
    pub borrowed_fraction: f64,
    /// Fraction of the class that was inflated.
    pub inflated_fraction: f64,
}

/// Per-class aggregation over a run's records.
#[derive(Debug, Clone)]
pub struct ClassBreakdown {
    /// One row per class, in [`JobClass::ALL`] order.
    pub rows: Vec<ClassRow>,
}

impl ClassBreakdown {
    /// Aggregate `records` under `thresholds`.
    pub fn compute(records: &[JobRecord], thresholds: &ClassThresholds) -> Self {
        let mut rows = Vec::with_capacity(4);
        for class in JobClass::ALL {
            let mut wait = OnlineStats::new();
            let mut bsld = OnlineStats::new();
            let mut jobs = 0usize;
            let mut borrowed = 0usize;
            let mut inflated = 0usize;
            for r in records {
                if thresholds.classify(&r.job) != class {
                    continue;
                }
                jobs += 1;
                if r.outcome == JobOutcome::Rejected {
                    continue;
                }
                if let Some(w) = r.wait() {
                    wait.push(w.as_secs_f64());
                }
                if let Some(b) = r.bounded_slowdown() {
                    bsld.push(b);
                }
                if r.borrowed_pool() {
                    borrowed += 1;
                }
                if r.inflated() {
                    inflated += 1;
                }
            }
            rows.push(ClassRow {
                class,
                jobs,
                mean_wait_s: wait.mean(),
                mean_bsld: bsld.mean(),
                borrowed_fraction: frac(borrowed, jobs),
                inflated_fraction: frac(inflated, jobs),
            });
        }
        ClassBreakdown { rows }
    }

    /// Row for one class.
    pub fn row(&self, class: JobClass) -> &ClassRow {
        self.rows
            .iter()
            .find(|r| r.class == class)
            // lint: allow(panic) — the class table is seeded with every class key at construction
            .expect("all classes present")
    }
}

fn frac(num: usize, den: usize) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmhpc_des::time::SimTime;
    use dmhpc_workload::JobBuilder;

    fn thresholds() -> ClassThresholds {
        ClassThresholds::standard(1000)
    }

    fn rec(id: u64, nodes: u32, mem: u64, wait_s: u64, remote: u64, alloc: u32) -> JobRecord {
        let job = JobBuilder::new(id)
            .nodes(nodes)
            .mem_per_node(mem)
            .runtime_secs(100, 200)
            .build();
        JobRecord {
            job,
            outcome: JobOutcome::Completed,
            start: Some(SimTime::from_secs(wait_s)),
            finish: Some(SimTime::from_secs(wait_s + 100)),
            nodes_allocated: alloc,
            remote_per_node: remote,
            dilation_planned: 1.0,
            dilation_actual: 1.0,
        }
    }

    #[test]
    fn classification_quadrants() {
        let t = thresholds();
        assert_eq!(
            t.classify(&JobBuilder::new(1).nodes(1).mem_per_node(100).build()),
            JobClass::SmallLight
        );
        assert_eq!(
            t.classify(&JobBuilder::new(2).nodes(1).mem_per_node(900).build()),
            JobClass::SmallHeavy
        );
        assert_eq!(
            t.classify(&JobBuilder::new(3).nodes(32).mem_per_node(100).build()),
            JobClass::LargeLight
        );
        assert_eq!(
            t.classify(&JobBuilder::new(4).nodes(32).mem_per_node(900).build()),
            JobClass::LargeHeavy
        );
        // Boundary: exactly 50% is light; exactly large_nodes is large.
        assert_eq!(
            t.classify(&JobBuilder::new(5).nodes(16).mem_per_node(500).build()),
            JobClass::LargeLight
        );
    }

    #[test]
    fn breakdown_aggregates_by_class() {
        let records = vec![
            rec(1, 1, 100, 50, 0, 1),     // small-light
            rec(2, 1, 100, 150, 0, 1),    // small-light
            rec(3, 1, 900, 400, 200, 1),  // small-heavy, borrowed
            rec(4, 32, 900, 1000, 0, 40), // large-heavy, inflated
        ];
        let b = ClassBreakdown::compute(&records, &thresholds());
        let sl = b.row(JobClass::SmallLight);
        assert_eq!(sl.jobs, 2);
        assert!((sl.mean_wait_s - 100.0).abs() < 1e-9);
        let sh = b.row(JobClass::SmallHeavy);
        assert_eq!(sh.jobs, 1);
        assert_eq!(sh.borrowed_fraction, 1.0);
        assert_eq!(sh.inflated_fraction, 0.0);
        let lh = b.row(JobClass::LargeHeavy);
        assert_eq!(lh.inflated_fraction, 1.0);
        assert_eq!(b.row(JobClass::LargeLight).jobs, 0);
        assert_eq!(b.row(JobClass::LargeLight).mean_wait_s, 0.0);
    }

    #[test]
    fn class_names() {
        assert_eq!(JobClass::SmallHeavy.name(), "small-heavy");
        assert_eq!(JobClass::ALL.len(), 4);
    }
}
