//! Per-job outcome records and derived metrics.

use dmhpc_des::time::{SimDuration, SimTime};
use dmhpc_workload::Job;

/// Terminal state of a job in one simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobOutcome {
    /// Ran to completion.
    Completed,
    /// Hit its (possibly inflated) walltime limit and was killed.
    Killed,
    /// Could never run on this machine under this policy.
    Rejected,
    /// Terminally failed under a fault scenario: interrupted more times
    /// than the resubmission budget allows, or unservable after permanent
    /// capacity loss. Never produced by fault-free runs.
    Failed,
}

/// Everything the simulator knows about one finished job.
#[derive(Debug, Clone)]
pub struct JobRecord {
    /// The job as submitted.
    pub job: Job,
    /// Terminal state.
    pub outcome: JobOutcome,
    /// Start time (None for rejected jobs).
    pub start: Option<SimTime>,
    /// Finish/kill time (None for rejected jobs).
    pub finish: Option<SimTime>,
    /// Nodes actually allocated (≥ `job.nodes` when inflated).
    pub nodes_allocated: u32,
    /// Pool MiB borrowed per node (0 = fully local).
    pub remote_per_node: u64,
    /// Dilation the scheduler predicted at start.
    pub dilation_planned: f64,
    /// Dilation actually experienced (wall clock ÷ work consumed).
    pub dilation_actual: f64,
}

impl JobRecord {
    /// A record for a job that never ran.
    pub fn rejected(job: Job) -> Self {
        JobRecord {
            job,
            outcome: JobOutcome::Rejected,
            start: None,
            finish: None,
            nodes_allocated: 0,
            remote_per_node: 0,
            dilation_planned: 1.0,
            dilation_actual: 1.0,
        }
    }

    /// A record for a job terminally failed by a fault scenario before it
    /// ever started (e.g. permanent capacity loss left it unservable).
    /// Jobs failed *while running* carry their final attempt's
    /// start/finish instead — build those like completion records.
    pub fn failed_unstarted(job: Job) -> Self {
        JobRecord {
            outcome: JobOutcome::Failed,
            ..JobRecord::rejected(job)
        }
    }

    /// Queue wait (start − arrival); `None` if the job never started.
    pub fn wait(&self) -> Option<SimDuration> {
        self.start.map(|s| s - self.job.arrival)
    }

    /// Wall-clock residence on nodes (finish − start).
    pub fn residence(&self) -> Option<SimDuration> {
        match (self.start, self.finish) {
            (Some(s), Some(f)) => Some(f - s),
            _ => None,
        }
    }

    /// Turnaround (finish − arrival).
    pub fn turnaround(&self) -> Option<SimDuration> {
        self.finish.map(|f| f - self.job.arrival)
    }

    /// Bounded slowdown with the standard 10 s threshold:
    /// `max(1, (wait + residence) / max(residence, 10 s))`. `None` if the
    /// job never ran.
    pub fn bounded_slowdown(&self) -> Option<f64> {
        let wait = self.wait()?.as_secs_f64();
        let res = self.residence()?.as_secs_f64();
        Some(((wait + res) / res.max(10.0)).max(1.0))
    }

    /// True if the scheduler gave it more nodes than requested (memory
    /// inflation).
    pub fn inflated(&self) -> bool {
        self.nodes_allocated > self.job.nodes
    }

    /// Extra node-seconds paid to inflation, at actual residence.
    pub fn inflation_overhead_node_secs(&self) -> f64 {
        if !self.inflated() {
            return 0.0;
        }
        let res = self.residence().map(|r| r.as_secs_f64()).unwrap_or(0.0);
        (self.nodes_allocated - self.job.nodes) as f64 * res
    }

    /// True if any pool memory was borrowed.
    pub fn borrowed_pool(&self) -> bool {
        self.remote_per_node > 0
    }

    /// Fraction of the per-node footprint served remotely.
    pub fn far_fraction(&self) -> f64 {
        let total = self.job.mem_per_node_at(self.nodes_allocated.max(1));
        if total == 0 || self.remote_per_node == 0 {
            0.0
        } else {
            self.remote_per_node as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmhpc_workload::JobBuilder;

    fn record(arrival: u64, start: u64, finish: u64) -> JobRecord {
        JobRecord {
            job: JobBuilder::new(1)
                .arrival_secs(arrival)
                .nodes(4)
                .runtime_secs(finish - start, 2 * (finish - start))
                .build(),
            outcome: JobOutcome::Completed,
            start: Some(SimTime::from_secs(start)),
            finish: Some(SimTime::from_secs(finish)),
            nodes_allocated: 4,
            remote_per_node: 0,
            dilation_planned: 1.0,
            dilation_actual: 1.0,
        }
    }

    #[test]
    fn wait_turnaround_slowdown() {
        let r = record(100, 400, 1000);
        assert_eq!(r.wait().unwrap().as_secs(), 300);
        assert_eq!(r.residence().unwrap().as_secs(), 600);
        assert_eq!(r.turnaround().unwrap().as_secs(), 900);
        let bsld = r.bounded_slowdown().unwrap();
        assert!((bsld - 900.0 / 600.0).abs() < 1e-12);
    }

    #[test]
    fn bounded_slowdown_floors_short_jobs() {
        // 1-second job waiting 100 s: divisor is 10 s, not 1 s.
        let r = record(0, 100, 101);
        let bsld = r.bounded_slowdown().unwrap();
        assert!((bsld - 101.0 / 10.0).abs() < 1e-12);
        // Zero wait: slowdown is exactly 1 even for instant jobs.
        let r = record(50, 50, 51);
        assert_eq!(r.bounded_slowdown().unwrap(), 1.0);
    }

    #[test]
    fn rejected_has_no_metrics() {
        let r = JobRecord::rejected(JobBuilder::new(2).build());
        assert_eq!(r.outcome, JobOutcome::Rejected);
        assert!(r.wait().is_none());
        assert!(r.bounded_slowdown().is_none());
        assert!(!r.inflated());
    }

    #[test]
    fn inflation_accounting() {
        let mut r = record(0, 0, 100);
        r.nodes_allocated = 6; // job asked for 4
        assert!(r.inflated());
        assert!((r.inflation_overhead_node_secs() - 200.0).abs() < 1e-9);
    }

    #[test]
    fn far_fraction() {
        let mut r = record(0, 0, 100);
        r.job = JobBuilder::new(3).nodes(4).mem_per_node(1000).build();
        r.remote_per_node = 250;
        assert!(r.borrowed_pool());
        assert!((r.far_fraction() - 0.25).abs() < 1e-12);
        r.remote_per_node = 0;
        assert_eq!(r.far_fraction(), 0.0);
    }
}
