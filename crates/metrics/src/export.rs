//! CSV and JSON export of reports and series.
//!
//! CSV output is deliberately hand-rolled (the format here is numeric and
//! label-safe, no quoting edge cases) to avoid a dependency; JSON goes
//! through `serde_json`.

use crate::summary::SimReport;
use std::fmt::Write as _;

/// Column headers matching [`report_csv_row`].
pub const REPORT_CSV_HEADER: &str = "label,completed,killed,rejected,mean_wait_s,p50_wait_s,\
p95_wait_s,max_wait_s,mean_bsld,p95_bsld,mean_turnaround_s,makespan_h,throughput_jobs_per_day,\
node_util,pool_util,dram_util,queue_depth_mean,queue_depth_max,borrowed_fraction,\
mean_far_fraction,mean_dilation_borrowers,inflated_fraction,inflation_overhead_node_h,\
user_fairness";

/// One CSV row for a report (no trailing newline).
pub fn report_csv_row(r: &SimReport) -> String {
    format!(
        "{},{},{},{},{:.2},{:.2},{:.2},{:.2},{:.4},{:.4},{:.2},{:.3},{:.2},{:.4},{:.4},{:.4},{:.3},{:.0},{:.4},{:.4},{:.4},{:.4},{:.3},{:.4}",
        sanitize(&r.label),
        r.completed,
        r.killed,
        r.rejected,
        r.mean_wait_s,
        r.p50_wait_s,
        r.p95_wait_s,
        r.max_wait_s,
        r.mean_bsld,
        r.p95_bsld,
        r.mean_turnaround_s,
        r.makespan_h,
        r.throughput_jobs_per_day,
        r.node_util,
        r.pool_util,
        r.dram_util,
        r.queue_depth_mean,
        r.queue_depth_max,
        r.borrowed_fraction,
        r.mean_far_fraction,
        r.mean_dilation_borrowers,
        r.inflated_fraction,
        r.inflation_overhead_node_h,
        r.user_fairness,
    )
}

/// Full CSV document for a set of reports.
pub fn reports_to_csv(reports: &[SimReport]) -> String {
    let mut out = String::with_capacity(256 * (reports.len() + 1));
    out.push_str(REPORT_CSV_HEADER);
    out.push('\n');
    for r in reports {
        out.push_str(&report_csv_row(r));
        out.push('\n');
    }
    out
}

/// Pretty JSON for one report.
pub fn report_to_json(r: &SimReport) -> String {
    serde_json::to_string_pretty(r).expect("SimReport serializes")
}

/// CSV for an `(x, y)` series with custom column names.
pub fn series_to_csv(x_name: &str, y_name: &str, points: &[(f64, f64)]) -> String {
    let mut out = String::with_capacity(16 * (points.len() + 1));
    let _ = writeln!(out, "{},{}", sanitize(x_name), sanitize(y_name));
    for &(x, y) in points {
        let _ = writeln!(out, "{x:.6},{y:.6}");
    }
    out
}

/// CSV for multiple named `y` series sharing `x` values (figure output: one
/// column per policy). Series must be equal-length.
pub fn multi_series_to_csv(
    x_name: &str,
    xs: &[f64],
    series: &[(&str, Vec<f64>)],
) -> String {
    for (name, ys) in series {
        assert_eq!(
            ys.len(),
            xs.len(),
            "series {name} length {} != x length {}",
            ys.len(),
            xs.len()
        );
    }
    let mut out = String::new();
    let _ = write!(out, "{}", sanitize(x_name));
    for (name, _) in series {
        let _ = write!(out, ",{}", sanitize(name));
    }
    out.push('\n');
    for (i, &x) in xs.iter().enumerate() {
        let _ = write!(out, "{x:.6}");
        for (_, ys) in series {
            let _ = write!(out, ",{:.6}", ys[i]);
        }
        out.push('\n');
    }
    out
}

/// Strip CSV-hostile characters from labels.
fn sanitize(s: &str) -> String {
    s.replace([',', '\n', '\r', '"'], "_")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classes::ClassThresholds;
    use crate::summary::RunData;

    fn report(label: &str) -> SimReport {
        SimReport::compute(
            &RunData {
                label: label.into(),
                records: vec![],
                makespan_s: 3600.0,
                node_util: 0.5,
                pool_util: 0.0,
                dram_util: 0.25,
                queue_depth_mean: 0.0,
                queue_depth_max: 0.0,
            },
            &ClassThresholds::standard(1024),
        )
    }

    #[test]
    fn csv_shape() {
        let csv = reports_to_csv(&[report("a"), report("b")]);
        let lines: Vec<&str> = csv.trim_end().lines().collect();
        assert_eq!(lines.len(), 3);
        let ncols = lines[0].split(',').count();
        for l in &lines[1..] {
            assert_eq!(l.split(',').count(), ncols, "row arity matches header");
        }
        assert!(lines[1].starts_with("a,"));
    }

    #[test]
    fn labels_sanitized() {
        let row = report_csv_row(&report("has,comma\nand newline"));
        assert!(!row.contains("has,comma"));
        assert!(row.starts_with("has_comma_and newline,"));
    }

    #[test]
    fn json_roundtrip() {
        let r = report("x");
        let json = report_to_json(&r);
        let back: SimReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.label, "x");
        assert_eq!(back.node_util, 0.5);
    }

    #[test]
    fn series_csv() {
        let csv = series_to_csv("pool_gib", "wait_s", &[(0.0, 100.0), (512.0, 40.0)]);
        let lines: Vec<&str> = csv.trim_end().lines().collect();
        assert_eq!(lines[0], "pool_gib,wait_s");
        assert!(lines[1].starts_with("0.000000,100.000000"));
    }

    #[test]
    fn multi_series_csv() {
        let csv = multi_series_to_csv(
            "load",
            &[0.5, 0.9],
            &[("fcfs", vec![1.0, 5.0]), ("easy", vec![0.5, 2.0])],
        );
        let lines: Vec<&str> = csv.trim_end().lines().collect();
        assert_eq!(lines[0], "load,fcfs,easy");
        assert_eq!(lines.len(), 3);
    }

    #[test]
    #[should_panic(expected = "length")]
    fn multi_series_arity_checked() {
        multi_series_to_csv("x", &[1.0], &[("bad", vec![1.0, 2.0])]);
    }
}
