//! CSV and JSON export of reports and series.
//!
//! CSV output is deliberately hand-rolled (the format here is numeric and
//! label-safe, no quoting edge cases); JSON goes through the in-tree
//! [`crate::json`] module, so the whole export layer is dependency-free.

use crate::classes::{ClassBreakdown, ClassRow, JobClass};
use crate::jobstats::{JobOutcome, JobRecord};
use crate::json::{Json, JsonError};
use crate::summary::SimReport;
use dmhpc_des::time::{SimDuration, SimTime};
use dmhpc_workload::{Job, JobId, Slo};
use std::fmt::Write as _;

/// Column headers matching [`report_csv_row`].
pub const REPORT_CSV_HEADER: &str = "label,completed,killed,rejected,failed,interruptions,\
rework_s,avail_util,mean_wait_s,p50_wait_s,\
p95_wait_s,max_wait_s,mean_bsld,p95_bsld,mean_turnaround_s,makespan_h,throughput_jobs_per_day,\
node_util,pool_util,dram_util,queue_depth_mean,queue_depth_max,borrowed_fraction,\
mean_far_fraction,mean_dilation_borrowers,inflated_fraction,inflation_overhead_node_h,\
user_fairness";

/// One CSV row for a report (no trailing newline).
pub fn report_csv_row(r: &SimReport) -> String {
    format!(
        "{},{},{},{},{},{},{:.2},{:.4},{:.2},{:.2},{:.2},{:.2},{:.4},{:.4},{:.2},{:.3},{:.2},{:.4},{:.4},{:.4},{:.3},{:.0},{:.4},{:.4},{:.4},{:.4},{:.3},{:.4}",
        sanitize(&r.label),
        r.completed,
        r.killed,
        r.rejected,
        r.failed,
        r.interruptions,
        r.rework_s,
        r.avail_util,
        r.mean_wait_s,
        r.p50_wait_s,
        r.p95_wait_s,
        r.max_wait_s,
        r.mean_bsld,
        r.p95_bsld,
        r.mean_turnaround_s,
        r.makespan_h,
        r.throughput_jobs_per_day,
        r.node_util,
        r.pool_util,
        r.dram_util,
        r.queue_depth_mean,
        r.queue_depth_max,
        r.borrowed_fraction,
        r.mean_far_fraction,
        r.mean_dilation_borrowers,
        r.inflated_fraction,
        r.inflation_overhead_node_h,
        r.user_fairness,
    )
}

/// Full CSV document for a set of reports.
pub fn reports_to_csv(reports: &[SimReport]) -> String {
    let mut out = String::with_capacity(256 * (reports.len() + 1));
    out.push_str(REPORT_CSV_HEADER);
    out.push('\n');
    for r in reports {
        out.push_str(&report_csv_row(r));
        out.push('\n');
    }
    out
}

/// The JSON document model for one report.
pub fn report_to_value(r: &SimReport) -> Json {
    let classes = Json::Arr(
        r.classes
            .rows
            .iter()
            .map(|row| {
                Json::obj(vec![
                    ("class", Json::Str(row.class.name().into())),
                    ("jobs", Json::UInt(row.jobs as u64)),
                    ("mean_wait_s", Json::F64(row.mean_wait_s)),
                    ("mean_bsld", Json::F64(row.mean_bsld)),
                    ("borrowed_fraction", Json::F64(row.borrowed_fraction)),
                    ("inflated_fraction", Json::F64(row.inflated_fraction)),
                ])
            })
            .collect(),
    );
    Json::obj(vec![
        ("label", Json::Str(r.label.clone())),
        ("completed", Json::UInt(r.completed as u64)),
        ("killed", Json::UInt(r.killed as u64)),
        ("rejected", Json::UInt(r.rejected as u64)),
        ("failed", Json::UInt(r.failed as u64)),
        ("interruptions", Json::UInt(r.interruptions)),
        ("rework_s", Json::F64(r.rework_s)),
        ("avail_util", Json::F64(r.avail_util)),
        ("mean_wait_s", Json::F64(r.mean_wait_s)),
        ("p50_wait_s", Json::F64(r.p50_wait_s)),
        ("p95_wait_s", Json::F64(r.p95_wait_s)),
        ("max_wait_s", Json::F64(r.max_wait_s)),
        ("mean_bsld", Json::F64(r.mean_bsld)),
        ("p95_bsld", Json::F64(r.p95_bsld)),
        ("mean_turnaround_s", Json::F64(r.mean_turnaround_s)),
        ("makespan_h", Json::F64(r.makespan_h)),
        (
            "throughput_jobs_per_day",
            Json::F64(r.throughput_jobs_per_day),
        ),
        ("node_util", Json::F64(r.node_util)),
        ("pool_util", Json::F64(r.pool_util)),
        ("dram_util", Json::F64(r.dram_util)),
        ("queue_depth_mean", Json::F64(r.queue_depth_mean)),
        ("queue_depth_max", Json::F64(r.queue_depth_max)),
        ("borrowed_fraction", Json::F64(r.borrowed_fraction)),
        ("mean_far_fraction", Json::F64(r.mean_far_fraction)),
        (
            "mean_dilation_borrowers",
            Json::F64(r.mean_dilation_borrowers),
        ),
        ("inflated_fraction", Json::F64(r.inflated_fraction)),
        (
            "inflation_overhead_node_h",
            Json::F64(r.inflation_overhead_node_h),
        ),
        ("user_fairness", Json::F64(r.user_fairness)),
        ("classes", classes),
    ])
}

/// Pretty JSON for one report.
pub fn report_to_json(r: &SimReport) -> String {
    report_to_value(r).to_string_pretty()
}

/// Rebuild a report from its JSON document model.
pub fn report_from_value(v: &Json) -> Result<SimReport, JsonError> {
    let f = |key: &str| -> Result<f64, JsonError> { v.expect_key(key)?.to_f64() };
    let n = |key: &str| -> Result<usize, JsonError> { v.expect_key(key)?.to_usize() };
    let rows = v
        .expect_key("classes")?
        .to_arr()?
        .iter()
        .map(|row| {
            let name = row.expect_key("class")?.to_str()?;
            let class = JobClass::ALL
                .into_iter()
                .find(|c| c.name() == name)
                .ok_or_else(|| JsonError {
                    message: format!("unknown job class {name:?}"),
                    offset: 0,
                })?;
            Ok(ClassRow {
                class,
                jobs: row.expect_key("jobs")?.to_usize()?,
                mean_wait_s: row.expect_key("mean_wait_s")?.to_f64()?,
                mean_bsld: row.expect_key("mean_bsld")?.to_f64()?,
                borrowed_fraction: row.expect_key("borrowed_fraction")?.to_f64()?,
                inflated_fraction: row.expect_key("inflated_fraction")?.to_f64()?,
            })
        })
        .collect::<Result<Vec<_>, JsonError>>()?;
    let node_util = f("node_util")?;
    Ok(SimReport {
        label: v.expect_key("label")?.to_str()?.to_string(),
        completed: n("completed")?,
        killed: n("killed")?,
        rejected: n("rejected")?,
        // Fault fields were introduced after PR-3; documents written by
        // earlier engines (result-cache entries in particular) lack them
        // and are by construction fault-free: zero counters, and
        // availability-weighted utilization equal to plain utilization.
        failed: match v.get("failed") {
            Some(x) => x.to_usize()?,
            None => 0,
        },
        interruptions: match v.get("interruptions") {
            Some(x) => x.to_u64()?,
            None => 0,
        },
        rework_s: match v.get("rework_s") {
            Some(x) => x.to_f64()?,
            None => 0.0,
        },
        avail_util: match v.get("avail_util") {
            Some(x) => x.to_f64()?,
            None => node_util,
        },
        mean_wait_s: f("mean_wait_s")?,
        p50_wait_s: f("p50_wait_s")?,
        p95_wait_s: f("p95_wait_s")?,
        max_wait_s: f("max_wait_s")?,
        mean_bsld: f("mean_bsld")?,
        p95_bsld: f("p95_bsld")?,
        mean_turnaround_s: f("mean_turnaround_s")?,
        makespan_h: f("makespan_h")?,
        throughput_jobs_per_day: f("throughput_jobs_per_day")?,
        node_util,
        pool_util: f("pool_util")?,
        dram_util: f("dram_util")?,
        queue_depth_mean: f("queue_depth_mean")?,
        queue_depth_max: f("queue_depth_max")?,
        borrowed_fraction: f("borrowed_fraction")?,
        mean_far_fraction: f("mean_far_fraction")?,
        mean_dilation_borrowers: f("mean_dilation_borrowers")?,
        inflated_fraction: f("inflated_fraction")?,
        inflation_overhead_node_h: f("inflation_overhead_node_h")?,
        user_fairness: f("user_fairness")?,
        classes: ClassBreakdown { rows },
    })
}

/// Parse a report previously written by [`report_to_json`].
pub fn report_from_json(text: &str) -> Result<SimReport, JsonError> {
    report_from_value(&crate::json::parse(text)?)
}

/// The JSON document model for one per-job record. Times are encoded as
/// exact integer microseconds and floats via the shortest round-trip
/// writer, so [`record_from_value`] rebuilds the record bit-exactly —
/// which is what lets result caches replay runs without re-simulating.
pub fn record_to_value(r: &JobRecord) -> Json {
    let time = |t: Option<SimTime>| match t {
        Some(t) => Json::UInt(t.as_micros()),
        None => Json::Null,
    };
    let mut pairs = vec![
        ("id", Json::UInt(r.job.id.as_u64())),
        ("user", Json::UInt(r.job.user as u64)),
        ("arrival_us", Json::UInt(r.job.arrival.as_micros())),
        ("nodes", Json::UInt(r.job.nodes as u64)),
        ("walltime_us", Json::UInt(r.job.walltime.as_micros())),
        ("runtime_us", Json::UInt(r.job.runtime.as_micros())),
        ("mem_per_node", Json::UInt(r.job.mem_per_node)),
        ("intensity", Json::F64(r.job.intensity)),
    ];
    // SLO stamps are written only when present, so records of unstamped
    // jobs serialize byte-identically to pre-SLO exports.
    match r.job.slo {
        Some(Slo::Deadline { deadline_s }) => pairs.push(("slo_deadline_s", Json::F64(deadline_s))),
        Some(Slo::BudgetFactor { factor }) => pairs.push(("slo_budget_factor", Json::F64(factor))),
        None => {}
    }
    pairs.extend([
        ("outcome", Json::Str(outcome_name(r.outcome).into())),
        ("start_us", time(r.start)),
        ("finish_us", time(r.finish)),
        ("nodes_allocated", Json::UInt(r.nodes_allocated as u64)),
        ("remote_per_node", Json::UInt(r.remote_per_node)),
        ("dilation_planned", Json::F64(r.dilation_planned)),
        ("dilation_actual", Json::F64(r.dilation_actual)),
    ]);
    Json::obj(pairs)
}

/// Rebuild a per-job record from its JSON document model.
pub fn record_from_value(v: &Json) -> Result<JobRecord, JsonError> {
    let time = |key: &str| -> Result<Option<SimTime>, JsonError> {
        match v.expect_key(key)? {
            Json::Null => Ok(None),
            t => Ok(Some(SimTime::from_micros(t.to_u64()?))),
        }
    };
    let outcome = match v.expect_key("outcome")?.to_str()? {
        "completed" => JobOutcome::Completed,
        "killed" => JobOutcome::Killed,
        "rejected" => JobOutcome::Rejected,
        "failed" => JobOutcome::Failed,
        other => {
            return Err(JsonError {
                message: format!("unknown job outcome {other:?}"),
                offset: 0,
            })
        }
    };
    let slo = if let Some(d) = v.get("slo_deadline_s") {
        Some(Slo::Deadline {
            deadline_s: d.to_f64()?,
        })
    } else if let Some(f) = v.get("slo_budget_factor") {
        Some(Slo::BudgetFactor {
            factor: f.to_f64()?,
        })
    } else {
        None
    };
    Ok(JobRecord {
        job: Job {
            id: JobId(v.expect_key("id")?.to_u64()?),
            user: v.expect_key("user")?.to_u64()? as u32,
            arrival: SimTime::from_micros(v.expect_key("arrival_us")?.to_u64()?),
            nodes: v.expect_key("nodes")?.to_u64()? as u32,
            walltime: SimDuration::from_micros(v.expect_key("walltime_us")?.to_u64()?),
            runtime: SimDuration::from_micros(v.expect_key("runtime_us")?.to_u64()?),
            mem_per_node: v.expect_key("mem_per_node")?.to_u64()?,
            intensity: v.expect_key("intensity")?.to_f64()?,
            slo,
        },
        outcome,
        start: time("start_us")?,
        finish: time("finish_us")?,
        nodes_allocated: v.expect_key("nodes_allocated")?.to_u64()? as u32,
        remote_per_node: v.expect_key("remote_per_node")?.to_u64()?,
        dilation_planned: v.expect_key("dilation_planned")?.to_f64()?,
        dilation_actual: v.expect_key("dilation_actual")?.to_f64()?,
    })
}

fn outcome_name(o: JobOutcome) -> &'static str {
    match o {
        JobOutcome::Completed => "completed",
        JobOutcome::Killed => "killed",
        JobOutcome::Rejected => "rejected",
        JobOutcome::Failed => "failed",
    }
}

/// CSV for an `(x, y)` series with custom column names.
pub fn series_to_csv(x_name: &str, y_name: &str, points: &[(f64, f64)]) -> String {
    let mut out = String::with_capacity(16 * (points.len() + 1));
    let _ = writeln!(out, "{},{}", sanitize(x_name), sanitize(y_name));
    for &(x, y) in points {
        let _ = writeln!(out, "{x:.6},{y:.6}");
    }
    out
}

/// CSV for multiple named `y` series sharing `x` values (figure output: one
/// column per policy). Series must be equal-length.
pub fn multi_series_to_csv(x_name: &str, xs: &[f64], series: &[(&str, Vec<f64>)]) -> String {
    for (name, ys) in series {
        assert_eq!(
            ys.len(),
            xs.len(),
            "series {name} length {} != x length {}",
            ys.len(),
            xs.len()
        );
    }
    let mut out = String::new();
    let _ = write!(out, "{}", sanitize(x_name));
    for (name, _) in series {
        let _ = write!(out, ",{}", sanitize(name));
    }
    out.push('\n');
    for (i, &x) in xs.iter().enumerate() {
        let _ = write!(out, "{x:.6}");
        for (_, ys) in series {
            let _ = write!(out, ",{:.6}", ys[i]);
        }
        out.push('\n');
    }
    out
}

/// Strip CSV-hostile characters from labels. Public so other table
/// writers (e.g. experiment-result export) keep row arity intact for
/// arbitrary user-supplied labels.
pub fn sanitize(s: &str) -> String {
    s.replace([',', '\n', '\r', '"'], "_")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classes::ClassThresholds;
    use crate::summary::RunData;

    fn report(label: &str) -> SimReport {
        SimReport::compute(
            &RunData {
                label: label.into(),
                records: vec![],
                makespan_s: 3600.0,
                node_util: 0.5,
                pool_util: 0.0,
                dram_util: 0.25,
                queue_depth_mean: 0.0,
                queue_depth_max: 0.0,
                faults: crate::FaultSummary {
                    avail_util: 0.5,
                    ..Default::default()
                },
            },
            &ClassThresholds::standard(1024),
        )
    }

    #[test]
    fn csv_shape() {
        let csv = reports_to_csv(&[report("a"), report("b")]);
        let lines: Vec<&str> = csv.trim_end().lines().collect();
        assert_eq!(lines.len(), 3);
        let ncols = lines[0].split(',').count();
        for l in &lines[1..] {
            assert_eq!(l.split(',').count(), ncols, "row arity matches header");
        }
        assert!(lines[1].starts_with("a,"));
    }

    #[test]
    fn labels_sanitized() {
        let row = report_csv_row(&report("has,comma\nand newline"));
        assert!(!row.contains("has,comma"));
        assert!(row.starts_with("has_comma_and newline,"));
    }

    #[test]
    fn json_roundtrip() {
        let r = report("x");
        let json = report_to_json(&r);
        let back = report_from_json(&json).unwrap();
        assert_eq!(back.label, "x");
        assert_eq!(back.node_util, 0.5);
        assert_eq!(back.classes.rows.len(), r.classes.rows.len());
        // Bit-exact field round trip through the shortest-float writer.
        assert_eq!(back.p95_bsld, r.p95_bsld);
        assert_eq!(back.user_fairness, r.user_fairness);
    }

    #[test]
    fn record_roundtrip_is_bit_exact() {
        let rec = JobRecord {
            job: Job {
                id: JobId(7),
                user: 3,
                arrival: SimTime::from_micros(123_456_789),
                nodes: 4,
                walltime: SimDuration::from_secs(3600),
                runtime: SimDuration::from_micros(987_654_321),
                mem_per_node: 96 * 1024,
                intensity: 0.62,
                slo: Some(Slo::BudgetFactor { factor: 2.5 }),
            },
            outcome: JobOutcome::Killed,
            start: Some(SimTime::from_micros(200_000_000)),
            finish: None,
            nodes_allocated: 5,
            remote_per_node: 2048,
            dilation_planned: 1.23456789,
            dilation_actual: 1.3,
        };
        let back = record_from_value(
            &crate::json::parse(&record_to_value(&rec).to_string_pretty()).unwrap(),
        )
        .unwrap();
        assert_eq!(back.job.id, rec.job.id);
        assert_eq!(back.job.arrival, rec.job.arrival);
        assert_eq!(back.job.walltime, rec.job.walltime);
        assert_eq!(back.job.intensity, rec.job.intensity);
        assert_eq!(back.outcome, rec.outcome);
        assert_eq!(back.start, rec.start);
        assert_eq!(back.finish, None);
        assert_eq!(back.dilation_planned, rec.dilation_planned);
        assert_eq!(back.job.slo, rec.job.slo, "stamp round-trips");

        // An unstamped job writes no SLO key at all and reads back as None.
        let mut plain = rec.clone();
        plain.job.slo = None;
        let doc = record_to_value(&plain).to_string_pretty();
        assert!(!doc.contains("slo"), "absent stamp leaves no trace");
        let back = record_from_value(&crate::json::parse(&doc).unwrap()).unwrap();
        assert_eq!(back.job.slo, None);
    }

    #[test]
    fn pre_fault_documents_parse_with_defaults() {
        // A report written before the fault fields existed (PR-2/PR-3
        // result-cache entries) must parse with zero fault counters and
        // avail_util == node_util — not miss.
        let mut doc = report_to_json(&report("old"));
        for key in ["failed", "interruptions", "rework_s", "avail_util"] {
            let needle = format!("\"{key}\"");
            let start = doc.find(&needle).expect("field present");
            let end = doc[start..].find('\n').unwrap() + start + 1;
            doc.replace_range(start..end, "");
        }
        let back = report_from_json(&doc).unwrap();
        assert_eq!(back.failed, 0);
        assert_eq!(back.interruptions, 0);
        assert_eq!(back.rework_s, 0.0);
        assert_eq!(back.avail_util, back.node_util, "bit-equal default");
    }

    #[test]
    fn series_csv() {
        let csv = series_to_csv("pool_gib", "wait_s", &[(0.0, 100.0), (512.0, 40.0)]);
        let lines: Vec<&str> = csv.trim_end().lines().collect();
        assert_eq!(lines[0], "pool_gib,wait_s");
        assert!(lines[1].starts_with("0.000000,100.000000"));
    }

    #[test]
    fn multi_series_csv() {
        let csv = multi_series_to_csv(
            "load",
            &[0.5, 0.9],
            &[("fcfs", vec![1.0, 5.0]), ("easy", vec![0.5, 2.0])],
        );
        let lines: Vec<&str> = csv.trim_end().lines().collect();
        assert_eq!(lines[0], "load,fcfs,easy");
        assert_eq!(lines.len(), 3);
    }

    #[test]
    #[should_panic(expected = "length")]
    fn multi_series_arity_checked() {
        multi_series_to_csv("x", &[1.0], &[("bad", vec![1.0, 2.0])]);
    }
}
