//! A minimal JSON document model with parser and writer.
//!
//! The workspace builds offline, so (de)serialization of experiment specs
//! and reports goes through this hand-rolled module instead of `serde`.
//! It supports the full JSON grammar with two deliberate simplifications:
//!
//! * Numbers are kept **exact for integers**: literals without a fraction
//!   or exponent parse to [`Json::UInt`]/[`Json::Int`], so `u64` seeds and
//!   MiB capacities round-trip bit-exactly; everything else is an `f64`
//!   written with Rust's shortest round-trip formatting.
//! * Objects preserve insertion order (a `Vec` of pairs, not a map), so
//!   output is deterministic.

use std::fmt::Write as _;

/// A parsed or constructed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Non-negative integer literal (exact).
    UInt(u64),
    /// Negative integer literal (exact).
    Int(i64),
    /// Any number with a fraction or exponent.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object, insertion-ordered.
    Obj(Vec<(String, Json)>),
}

/// A JSON syntax or shape error, with byte offset for syntax errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input (0 for shape errors on parsed values).
    pub offset: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Build an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Look up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Require a key in an object (shape error otherwise).
    pub fn expect_key(&self, key: &str) -> Result<&Json, JsonError> {
        self.get(key)
            .ok_or_else(|| shape(format!("missing key {key:?}")))
    }

    /// The value as a float, coercing exact integers.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::UInt(u) => Some(u as f64),
            Json::Int(i) => Some(i as f64),
            Json::F64(x) => Some(x),
            _ => None,
        }
    }

    /// The value as an exact `u64`.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::UInt(u) => Some(u),
            Json::Int(i) if i >= 0 => Some(i as u64),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Json::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Typed accessors that produce shape errors, for deserializers.
    pub fn to_f64(&self) -> Result<f64, JsonError> {
        self.as_f64()
            .ok_or_else(|| shape(format!("expected number, got {self:?}")))
    }

    /// Exact `u64` or shape error.
    pub fn to_u64(&self) -> Result<u64, JsonError> {
        self.as_u64()
            .ok_or_else(|| shape(format!("expected unsigned integer, got {self:?}")))
    }

    /// Exact `usize` or shape error.
    pub fn to_usize(&self) -> Result<usize, JsonError> {
        Ok(self.to_u64()? as usize)
    }

    /// Bool or shape error.
    pub fn to_bool(&self) -> Result<bool, JsonError> {
        self.as_bool()
            .ok_or_else(|| shape(format!("expected bool, got {self:?}")))
    }

    /// String or shape error.
    pub fn to_str(&self) -> Result<&str, JsonError> {
        self.as_str()
            .ok_or_else(|| shape(format!("expected string, got {self:?}")))
    }

    /// Array or shape error.
    pub fn to_arr(&self) -> Result<&[Json], JsonError> {
        self.as_arr()
            .ok_or_else(|| shape(format!("expected array, got {self:?}")))
    }

    /// Serialize compactly (no whitespace).
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serialize with 2-space indentation.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(u) => {
                let _ = write!(out, "{u}");
            }
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::F64(x) => {
                if x.is_finite() {
                    // `{:?}` is Rust's shortest round-trip float repr.
                    let _ = write!(out, "{x:?}");
                } else {
                    // JSON has no Inf/NaN; null is the conventional fallback.
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                write_seq(out, indent, depth, items.len(), '[', ']', |out, i, d| {
                    items[i].write(out, indent, d);
                });
            }
            Json::Obj(pairs) => {
                write_seq(out, indent, depth, pairs.len(), '{', '}', |out, i, d| {
                    write_escaped(out, &pairs[i].0);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    pairs[i].1.write(out, indent, d);
                });
            }
        }
    }
}

fn shape(message: String) -> JsonError {
    JsonError { message, offset: 0 }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    len: usize,
    open: char,
    close: char,
    mut item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            for _ in 0..(depth + 1) * width {
                out.push(' ');
            }
        }
        item(out, i, depth + 1);
    }
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse a JSON document. Exactly one value is expected (trailing
/// whitespace allowed).
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.eat(b'[', "expected [")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected , or ] in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.eat(b'{', "expected {")?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected : after object key")?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected , or } in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"', "expected string")?;
        let mut s = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(s),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'b' => s.push('\u{0008}'),
                        b'f' => s.push('\u{000c}'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                self.eat(b'\\', "expected low surrogate")?;
                                self.eat(b'u', "expected low surrogate")?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            let Some(c) = char::from_u32(code) else {
                                return Err(self.err("invalid unicode escape"));
                            };
                            s.push(c);
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                b if b < 0x20 => return Err(self.err("unescaped control character")),
                b if b < 0x80 => s.push(b as char),
                _ => {
                    // Multi-byte UTF-8: step back and validate exactly one
                    // character's worth of bytes (validating the whole
                    // remaining input here would make parsing quadratic in
                    // document size).
                    self.pos -= 1;
                    let len = match self.bytes[self.pos] {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        0xF0..=0xF7 => 4,
                        _ => return Err(self.err("invalid utf-8")),
                    };
                    let end = (self.pos + len).min(self.bytes.len());
                    let chunk = std::str::from_utf8(&self.bytes[self.pos..end])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    // lint: allow(panic) — the slice was sized from the utf-8 width byte just decoded
                    let c = chunk.chars().next().expect("validated non-empty");
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let Some(b) = self.peek() else {
                return Err(self.err("truncated \\u escape"));
            };
            let d = match b {
                b'0'..=b'9' => (b - b'0') as u32,
                b'a'..=b'f' => (b - b'a') as u32 + 10,
                b'A'..=b'F' => (b - b'A') as u32 + 10,
                _ => return Err(self.err("invalid hex digit")),
            };
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut integral = true;
        if self.peek() == Some(b'.') {
            integral = false;
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        // lint: allow(panic) — the number scanner matched only ASCII digit/sign/exponent bytes
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number bytes");
        if integral {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Json::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Json::F64)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for text in [
            "null",
            "true",
            "false",
            "0",
            "42",
            "-7",
            "18446744073709551615",
        ] {
            let v = parse(text).unwrap();
            assert_eq!(v.to_string_compact(), text, "{text}");
        }
    }

    #[test]
    fn u64_is_exact() {
        let v = parse("9007199254740993").unwrap(); // 2^53 + 1: not f64-safe
        assert_eq!(v.as_u64(), Some(9007199254740993));
        assert_eq!(v.to_string_compact(), "9007199254740993");
    }

    #[test]
    fn floats_round_trip() {
        for x in [0.9, 1.35, -2.5e-3, 1e20] {
            let text = Json::F64(x).to_string_compact();
            let back = parse(&text).unwrap();
            assert_eq!(back.as_f64(), Some(x), "{text}");
        }
    }

    #[test]
    fn strings_escape() {
        let s = "a\"b\\c\nd\te\u{1F600}";
        let text = Json::Str(s.into()).to_string_compact();
        assert_eq!(parse(&text).unwrap().as_str(), Some(s));
        // And explicit \u escapes parse, including surrogate pairs.
        assert_eq!(
            parse("\"\\u0041\\ud83d\\ude00\"").unwrap().as_str(),
            Some("A\u{1F600}")
        );
    }

    #[test]
    fn nested_structure() {
        let text = r#"{"a": [1, 2.5, {"b": null}], "c": "x"}"#;
        let v = parse(text).unwrap();
        assert_eq!(v.get("a").unwrap().to_arr().unwrap().len(), 3);
        assert_eq!(v.get("c").unwrap().as_str(), Some("x"));
        let pretty = v.to_string_pretty();
        assert_eq!(parse(&pretty).unwrap(), v);
    }

    #[test]
    fn object_order_preserved() {
        let v = Json::obj(vec![("z", Json::UInt(1)), ("a", Json::UInt(2))]);
        assert_eq!(v.to_string_compact(), r#"{"z":1,"a":2}"#);
    }

    #[test]
    fn errors_carry_offset() {
        let e = parse("{\"a\": }").unwrap_err();
        assert!(e.offset > 0);
        assert!(parse("[1, 2").is_err());
        assert!(parse("01x").is_err());
        assert!(parse("\"\u{0001}\"").is_err());
        assert!(parse("12 34").unwrap_err().message.contains("trailing"));
    }

    #[test]
    fn shape_accessors() {
        let v = parse(r#"{"n": 3, "s": "x", "b": true, "a": [1]}"#).unwrap();
        assert_eq!(v.expect_key("n").unwrap().to_u64().unwrap(), 3);
        assert_eq!(v.expect_key("s").unwrap().to_str().unwrap(), "x");
        assert!(v.expect_key("b").unwrap().to_bool().unwrap());
        assert_eq!(v.expect_key("a").unwrap().to_arr().unwrap().len(), 1);
        assert!(v.expect_key("zzz").is_err());
        assert!(v.expect_key("s").unwrap().to_f64().is_err());
    }
}
