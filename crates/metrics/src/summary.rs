//! Whole-run reports — the object every experiment prints.

use crate::classes::{ClassBreakdown, ClassThresholds};
use crate::fairness::{jain_index, per_user_mean_waits};
use crate::jobstats::{JobOutcome, JobRecord};
use dmhpc_des::stats::{CdfCollector, OnlineStats};

/// Fault/availability counters a run accumulates — all zero (and
/// `avail_util == node_util`) for fault-free runs.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultSummary {
    /// Times a running job was interrupted (node failure, drain start, or
    /// pool-degradation eviction).
    pub interruptions: u64,
    /// Interruptions that led to a resubmission (the rest failed
    /// terminally).
    pub resubmissions: u64,
    /// Seconds of work thrown away by interruptions. Under
    /// resubmit-from-scratch this is the aborted attempts' wall-clock
    /// time; under checkpoint/restart it is the configured restore
    /// overhead in work seconds (the restore itself dilates with the
    /// restarted placement, so its realized wall cost can be higher).
    pub rework_s: f64,
    /// Node-seconds of capacity lost to downtime (Down/Draining nodes).
    pub downtime_node_s: f64,
    /// Availability-weighted node utilization: busy node-seconds over
    /// *in-service* node-seconds. Equals plain `node_util` when no
    /// downtime occurred; higher than it otherwise (the machine that
    /// remained was busier than the raw denominator suggests).
    pub avail_util: f64,
}

/// Raw inputs a simulation run hands to report computation. System-level
/// utilizations are computed by the engine's collector (it owns the
/// time-weighted series); everything job-derived is computed here.
#[derive(Debug, Clone)]
pub struct RunData {
    /// Run label (policy triple, scenario id…).
    pub label: String,
    /// Per-job outcomes.
    pub records: Vec<JobRecord>,
    /// Simulated span from first arrival to last finish, seconds.
    pub makespan_s: f64,
    /// Time-weighted fraction of nodes busy.
    pub node_util: f64,
    /// Time-weighted fraction of pool capacity in use (0 without pools).
    pub pool_util: f64,
    /// Time-weighted fraction of node DRAM pinned by jobs.
    pub dram_util: f64,
    /// Time-weighted mean queue depth.
    pub queue_depth_mean: f64,
    /// Maximum queue depth.
    pub queue_depth_max: f64,
    /// Fault/availability counters ([`FaultSummary::default`] when the run
    /// had no fault scenario).
    pub faults: FaultSummary,
}

/// The headline metrics of one run (one row of reproduction table T2).
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Run label.
    pub label: String,
    /// Completed job count.
    pub completed: usize,
    /// Jobs killed at their walltime limit.
    pub killed: usize,
    /// Jobs rejected as unrunnable.
    pub rejected: usize,
    /// Jobs terminally failed by a fault scenario (0 for fault-free runs).
    pub failed: usize,
    /// Running-job interruptions by node failures, drains, and pool
    /// degradations (0 for fault-free runs).
    pub interruptions: u64,
    /// Wall-clock seconds of work lost and redone due to interruptions.
    pub rework_s: f64,
    /// Availability-weighted node utilization (== `node_util` without
    /// downtime).
    pub avail_util: f64,
    /// Mean wait, seconds.
    pub mean_wait_s: f64,
    /// Median wait, seconds.
    pub p50_wait_s: f64,
    /// 95th-percentile wait, seconds.
    pub p95_wait_s: f64,
    /// Maximum wait, seconds.
    pub max_wait_s: f64,
    /// Mean bounded slowdown.
    pub mean_bsld: f64,
    /// 95th-percentile bounded slowdown.
    pub p95_bsld: f64,
    /// Mean turnaround, seconds.
    pub mean_turnaround_s: f64,
    /// Makespan, hours.
    pub makespan_h: f64,
    /// Completed jobs per simulated day.
    pub throughput_jobs_per_day: f64,
    /// Time-weighted node utilization.
    pub node_util: f64,
    /// Time-weighted pool utilization.
    pub pool_util: f64,
    /// Time-weighted DRAM utilization.
    pub dram_util: f64,
    /// Time-weighted mean queue depth.
    pub queue_depth_mean: f64,
    /// Peak queue depth.
    pub queue_depth_max: f64,
    /// Fraction of ran jobs that borrowed pool memory.
    pub borrowed_fraction: f64,
    /// Mean far-memory fraction among borrowers.
    pub mean_far_fraction: f64,
    /// Mean actual dilation among borrowers.
    pub mean_dilation_borrowers: f64,
    /// Fraction of ran jobs that were node-inflated.
    pub inflated_fraction: f64,
    /// Node-hours wasted by inflation.
    pub inflation_overhead_node_h: f64,
    /// Jain fairness over per-user mean waits.
    pub user_fairness: f64,
    /// Per-class breakdown (F8).
    pub classes: ClassBreakdown,
}

impl SimReport {
    /// Compute the report.
    pub fn compute(data: &RunData, thresholds: &ClassThresholds) -> Self {
        let mut wait = OnlineStats::new();
        let mut wait_cdf = CdfCollector::with_capacity(data.records.len());
        let mut bsld = OnlineStats::new();
        let mut bsld_cdf = CdfCollector::with_capacity(data.records.len());
        let mut turnaround = OnlineStats::new();
        let mut completed = 0usize;
        let mut killed = 0usize;
        let mut rejected = 0usize;
        let mut failed = 0usize;
        let mut ran = 0usize;
        let mut borrowed = 0usize;
        let mut far = OnlineStats::new();
        let mut dil = OnlineStats::new();
        let mut inflated = 0usize;
        let mut inflation_ns = 0.0f64;

        for r in &data.records {
            match r.outcome {
                JobOutcome::Completed => completed += 1,
                JobOutcome::Killed => killed += 1,
                JobOutcome::Rejected => {
                    rejected += 1;
                    continue;
                }
                JobOutcome::Failed => {
                    failed += 1;
                    // Unstarted terminal failures have no wait/residence.
                    if r.start.is_none() {
                        continue;
                    }
                }
            }
            ran += 1;
            if let Some(w) = r.wait() {
                wait.push(w.as_secs_f64());
                wait_cdf.push(w.as_secs_f64());
            }
            if let Some(b) = r.bounded_slowdown() {
                bsld.push(b);
                bsld_cdf.push(b);
            }
            if let Some(t) = r.turnaround() {
                turnaround.push(t.as_secs_f64());
            }
            if r.borrowed_pool() {
                borrowed += 1;
                far.push(r.far_fraction());
                dil.push(r.dilation_actual);
            }
            if r.inflated() {
                inflated += 1;
                inflation_ns += r.inflation_overhead_node_secs();
            }
        }

        let days = data.makespan_s / 86_400.0;
        SimReport {
            label: data.label.clone(),
            completed,
            killed,
            rejected,
            failed,
            interruptions: data.faults.interruptions,
            rework_s: data.faults.rework_s,
            avail_util: data.faults.avail_util,
            mean_wait_s: wait.mean(),
            p50_wait_s: wait_cdf.quantile(0.5),
            p95_wait_s: wait_cdf.quantile(0.95),
            max_wait_s: wait.max().max(0.0),
            mean_bsld: bsld.mean(),
            p95_bsld: bsld_cdf.quantile(0.95),
            mean_turnaround_s: turnaround.mean(),
            makespan_h: data.makespan_s / 3600.0,
            throughput_jobs_per_day: if days > 0.0 {
                completed as f64 / days
            } else {
                0.0
            },
            node_util: data.node_util,
            pool_util: data.pool_util,
            dram_util: data.dram_util,
            queue_depth_mean: data.queue_depth_mean,
            queue_depth_max: data.queue_depth_max,
            borrowed_fraction: frac(borrowed, ran),
            mean_far_fraction: far.mean(),
            mean_dilation_borrowers: dil.mean(),
            inflated_fraction: frac(inflated, ran),
            inflation_overhead_node_h: inflation_ns / 3600.0,
            user_fairness: jain_index(&per_user_mean_waits(&data.records)),
            classes: ClassBreakdown::compute(&data.records, thresholds),
        }
    }
}

fn frac(num: usize, den: usize) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmhpc_des::time::SimTime;
    use dmhpc_workload::JobBuilder;

    fn rec(id: u64, arrival: u64, start: u64, finish: u64) -> JobRecord {
        JobRecord {
            job: JobBuilder::new(id)
                .arrival_secs(arrival)
                .runtime_secs(finish - start, 2 * (finish - start))
                .build(),
            outcome: JobOutcome::Completed,
            start: Some(SimTime::from_secs(start)),
            finish: Some(SimTime::from_secs(finish)),
            nodes_allocated: 1,
            remote_per_node: 0,
            dilation_planned: 1.0,
            dilation_actual: 1.0,
        }
    }

    fn data(records: Vec<JobRecord>) -> RunData {
        RunData {
            label: "test".into(),
            records,
            makespan_s: 86_400.0,
            node_util: 0.8,
            pool_util: 0.3,
            dram_util: 0.4,
            queue_depth_mean: 2.5,
            queue_depth_max: 10.0,
            faults: FaultSummary {
                avail_util: 0.8,
                ..FaultSummary::default()
            },
        }
    }

    #[test]
    fn report_aggregates() {
        let mut records = vec![
            rec(1, 0, 100, 1100), // wait 100
            rec(2, 0, 300, 1300), // wait 300
        ];
        records.push(JobRecord::rejected(JobBuilder::new(3).build()));
        let mut killed = rec(4, 0, 0, 500);
        killed.outcome = JobOutcome::Killed;
        records.push(killed);

        let mut failed = rec(5, 0, 0, 400);
        failed.outcome = JobOutcome::Failed;
        records.push(failed);
        records.push(JobRecord::failed_unstarted(JobBuilder::new(6).build()));

        let r = SimReport::compute(&data(records), &ClassThresholds::standard(1024));
        assert_eq!(r.completed, 2);
        assert_eq!(r.killed, 1);
        assert_eq!(r.rejected, 1);
        assert_eq!(r.failed, 2, "ran-then-failed plus never-started");
        assert_eq!(r.avail_util, 0.8);
        // Waits: 100, 300, 0 (killed), 0 (ran-then-failed) → mean 100.
        assert!((r.mean_wait_s - 100.0).abs() < 1e-9);
        assert_eq!(r.max_wait_s, 300.0);
        assert!((r.throughput_jobs_per_day - 2.0).abs() < 1e-9);
        assert_eq!(r.node_util, 0.8);
        assert_eq!(r.borrowed_fraction, 0.0);
        assert_eq!(r.user_fairness, 1.0, "single user");
    }

    #[test]
    fn borrower_stats() {
        let mut a = rec(1, 0, 0, 100);
        a.job = JobBuilder::new(1)
            .nodes(1)
            .mem_per_node(1000)
            .runtime_secs(100, 200)
            .build();
        a.remote_per_node = 500;
        a.dilation_actual = 1.2;
        let b = rec(2, 0, 0, 100);
        let r = SimReport::compute(&data(vec![a, b]), &ClassThresholds::standard(1024));
        assert!((r.borrowed_fraction - 0.5).abs() < 1e-12);
        assert!((r.mean_far_fraction - 0.5).abs() < 1e-12);
        assert!((r.mean_dilation_borrowers - 1.2).abs() < 1e-12);
    }

    #[test]
    fn empty_run() {
        let r = SimReport::compute(&data(vec![]), &ClassThresholds::standard(1024));
        assert_eq!(r.completed, 0);
        assert_eq!(r.mean_wait_s, 0.0);
        assert_eq!(r.p95_bsld, 0.0);
    }

    #[test]
    fn report_serializes() {
        let r = SimReport::compute(
            &data(vec![rec(1, 0, 10, 110)]),
            &ClassThresholds::standard(1024),
        );
        let json = crate::export::report_to_json(&r);
        assert!(json.contains("\"label\": \"test\""));
        assert!(json.contains("mean_wait_s"));
    }
}
