//! # dmhpc-metrics — scheduling metrics and reporting
//!
//! Turns raw simulation output (per-job [`JobRecord`]s plus time-weighted
//! system series) into the numbers every table and figure of the
//! reproduction reports:
//!
//! * per-job: wait, turnaround, **bounded slowdown** (the standard
//!   `max(1, (wait+run)/max(run, 10s))`), actual dilation;
//! * per-system: node/pool/DRAM utilization, makespan, throughput;
//! * per-class: the small/large × memory-light/heavy breakdown
//!   ([`ClassBreakdown`]) that shows *who* disaggregation helps;
//! * fairness: Jain's index over per-user mean waits;
//! * export: CSV rows and JSON documents ([`export`]).
//!
//! Everything is computed from value types with no simulator dependencies,
//! so the analysis layer is unit-testable in isolation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod classes;
pub mod export;
mod fairness;
mod jobstats;
pub mod json;
mod streaming;
mod summary;

pub use classes::{ClassBreakdown, ClassRow, ClassThresholds, JobClass};
pub use fairness::{jain_index, per_user_mean_waits};
pub use jobstats::{JobOutcome, JobRecord};
pub use streaming::{ServiceSummary, StreamingJobStats, SystemSeriesStats};
pub use summary::{FaultSummary, RunData, SimReport};
